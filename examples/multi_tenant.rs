//! Multi-tenant accelerator: run a latency-tolerant streaming kernel and a
//! cache-friendly compute kernel *concurrently* on different cores, and
//! see how the NoC design affects the mix.
//!
//! Run with: `cargo run --release --example multi_tenant`

use tenoc::core::presets::Preset;
use tenoc::core::system::{System, SystemConfig};
use tenoc::workloads::by_name;

fn main() {
    let compute = by_name("AES").unwrap().scaled(0.3); // LL: compute-bound
    let stream = by_name("KM").unwrap().scaled(0.3); // HH: bandwidth-bound

    println!("mix: half the cores run {} (LL), half run {} (HH)\n", compute.name, stream.name);
    println!("{:<24} {:>8} {:>12} {:>10}", "network", "IPC", "MC stall", "DRAM eff");
    for preset in [Preset::BaselineTbDor, Preset::CpCr2pSingle, Preset::Perfect] {
        let cfg = SystemConfig::with_icnt(preset.icnt(6));
        let mut sys = System::new_mixed(cfg, &[compute.clone(), stream.clone()]);
        let m = sys.run();
        println!(
            "{:<24} {:>8.1} {:>11.0}% {:>9.0}%",
            preset.label(),
            m.ipc,
            m.mc_stall_fraction * 100.0,
            m.dram_efficiency * 100.0
        );
    }
    println!("\nthe streaming tenant saturates the reply path; the compute tenant");
    println!("is insulated by its locality — the throughput-effective design lifts");
    println!("the mix without growing the die");
}
