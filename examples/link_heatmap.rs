//! Visualize per-link utilization under many-to-few-to-many traffic: an
//! ASCII heatmap showing how the top-bottom MC placement concentrates
//! reply traffic around the edge rows — the congestion that the staggered
//! checkerboard placement dissolves.
//!
//! Run with: `cargo run --release --example link_heatmap`

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tenoc::noc::openloop::TrafficPattern;
use tenoc::noc::{Interconnect, Mesh, Network, NetworkConfig, Packet, Placement};

/// Drives request/reply traffic for `cycles` and returns (network, cycles).
fn drive(cfg: NetworkConfig, rate: f64, cycles: u64) -> Network {
    let mcs = cfg.net_mcs();
    let cores: Vec<usize> = (0..cfg.mesh.len()).filter(|n| !mcs.contains(n)).collect();
    let mut net = Network::new(cfg);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut backlog: Vec<Packet> = Vec::new();
    for now in 0..cycles {
        let _ = now;
        for &c in &cores {
            if rng.gen_bool(rate) {
                let mc = mcs[rng.gen_range(0..mcs.len())];
                backlog.push(Packet::request(c, mc, 8, 0));
            }
        }
        backlog.retain(|&p| net.try_inject(p.header.src, p).is_err());
        net.step();
        for &mc in &mcs {
            while let Some(req) = net.pop(mc) {
                backlog.push(Packet::reply(mc, req.header.src, 64, 0));
            }
        }
        for &c in &cores {
            while net.pop(c).is_some() {}
        }
    }
    net
}

trait McList {
    fn net_mcs(&self) -> Vec<usize>;
}
impl McList for NetworkConfig {
    fn net_mcs(&self) -> Vec<usize> {
        self.mc_nodes.clone()
    }
}

fn heatmap(title: &str, net: &Network) {
    let k = net.config().mesh.radix();
    let cycles = net.cycle().max(1) as f64;
    println!("\n{title}");
    println!("(per-node: max utilization over its outgoing links; # > 60%, * > 30%, + > 10%, . <= 10%, M = memory controller)");
    for y in 0..k {
        let mut row = String::new();
        for x in 0..k {
            let node = y * k + x;
            let max_util = net
                .link_loads()
                .iter()
                .filter(|&&(n, _, _)| n == node)
                .map(|&(_, _, f)| f as f64 / cycles)
                .fold(0.0f64, f64::max);
            let c = if net.config().mc_nodes.contains(&node) {
                'M'
            } else if max_util > 0.6 {
                '#'
            } else if max_util > 0.3 {
                '*'
            } else if max_util > 0.1 {
                '+'
            } else {
                '.'
            };
            row.push(c);
            row.push(' ');
        }
        println!("  {row}");
    }
    // The busiest individual links.
    let mut loads = net.link_loads();
    loads.sort_by_key(|&(_, _, f)| std::cmp::Reverse(f));
    println!("  busiest links:");
    for &(node, dir, flits) in loads.iter().take(3) {
        let c = net.config().mesh.coord(node);
        println!("    {c} -> {dir}: {:.2} flits/cycle", flits as f64 / cycles);
    }
}

fn main() {
    let _ = TrafficPattern::UniformRandom; // (see crate::openloop for sweeps)
    let rate = 0.05;
    let cycles = 30_000;

    let tb = NetworkConfig::baseline_mesh(6);
    heatmap("top-bottom MC placement (paper Figure 3)", &drive(tb, rate, cycles));

    let cp = {
        let base = NetworkConfig::baseline_mesh(6);
        let mesh = Mesh::all_full(6);
        let mc_nodes = Mesh::checkerboard(6).mcs(Placement::Checkerboard, 8);
        NetworkConfig { mesh, mc_nodes, ..base }
    };
    heatmap("staggered checkerboard MC placement (paper Figure 12)", &drive(cp, rate, cycles));
}
