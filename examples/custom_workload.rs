//! Define a custom synthetic kernel and evaluate how sensitive it is to
//! the on-chip network — the methodology of the paper's Section III
//! applied to your own workload.
//!
//! Run with: `cargo run --release --example custom_workload`

use tenoc::core::experiments::run_benchmark;
use tenoc::core::presets::Preset;
use tenoc::simt::{KernelSpec, TrafficClass};

fn main() {
    // A pointer-chasing-style kernel: divergent (8 lines per access),
    // streaming, with little memory-level parallelism.
    let kernel = KernelSpec::builder("my-kernel")
        .class(TrafficClass::HH)
        .warps_per_core(16)
        .insts_per_warp(120)
        .mem_fraction(0.35)
        .stream_fraction(0.9)
        .lines_per_mem(8)
        .mem_dep_distance(1)
        .build();

    println!(
        "kernel: {} ({} warps/core, {:.0}% memory instructions)",
        kernel.name,
        kernel.warps_per_core,
        kernel.mem_fraction * 100.0
    );

    let base = run_benchmark(Preset::BaselineTbDor, &kernel, 1.0);
    let perfect = run_benchmark(Preset::Perfect, &kernel, 1.0);
    let te = run_benchmark(Preset::ThroughputEffective, &kernel, 1.0);

    println!("\n{:<24} {:>8} {:>12} {:>10}", "network", "IPC", "net latency", "MC stall");
    for (name, m) in
        [("baseline mesh", base), ("perfect network", perfect), ("throughput-effective", te)]
    {
        println!(
            "{name:<24} {:>8.1} {:>9.1} cyc {:>9.0}%",
            m.ipc,
            m.avg_net_latency,
            m.mc_stall_fraction * 100.0
        );
    }
    let headroom = (perfect.ipc / base.ipc - 1.0) * 100.0;
    let captured = (te.ipc / base.ipc - 1.0) * 100.0;
    println!("\nnetwork headroom: {headroom:+.1}%; the throughput-effective design captures {captured:+.1}%");
    println!("while *shrinking* the NoC (see `cargo bench -p tenoc-bench --bench tab06_area`)");
}
