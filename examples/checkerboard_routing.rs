//! Walk the checkerboard routing algorithm by hand: print the routers a
//! packet visits on a checkerboard mesh, including a case-2 route through
//! a random intermediate full-router.
//!
//! Run with: `cargo run --release --example checkerboard_routing`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use tenoc::noc::routing::{plan_injection, trace_path};
use tenoc::noc::{Coord, Mesh, PacketClass, RoutingKind, VcLayout};

fn show(mesh: &Mesh, src: Coord, dst: Coord, rng: &mut SmallRng) {
    let layout = VcLayout::new(4, 2, true);
    let s = mesh.node(src);
    let d = mesh.node(dst);
    match plan_injection(RoutingKind::Checkerboard, mesh, s, d, rng) {
        Err(e) => println!("{src} -> {dst}: UNROUTABLE ({e})"),
        Ok((phase, via)) => {
            let path = trace_path(
                RoutingKind::Checkerboard,
                &layout,
                mesh,
                s,
                d,
                PacketClass::Request,
                rng,
            )
            .expect("plan succeeded");
            let coords: Vec<String> = path
                .iter()
                .map(|&n| {
                    let c = mesh.coord(n);
                    let tag = if mesh.is_half(n) { "h" } else { "F" };
                    format!("{c}{tag}")
                })
                .collect();
            let via_txt =
                via.map(|v| format!(" via intermediate {}", mesh.coord(v))).unwrap_or_default();
            println!("{src} -> {dst}: phase {phase:?}{via_txt}");
            println!("    {}", coords.join(" -> "));
        }
    }
}

fn main() {
    let mesh = Mesh::checkerboard(6);
    let mut rng = SmallRng::seed_from_u64(42);
    println!("6x6 checkerboard mesh (F = full-router, h = half-router)\n");

    // Plain XY route (turn node is a full-router).
    show(&mesh, Coord::new(0, 0), Coord::new(2, 3), &mut rng);
    // Case 1: XY turn node is a half-router, so the packet goes YX.
    show(&mesh, Coord::new(0, 0), Coord::new(1, 2), &mut rng);
    // Case 2: half-to-half with both turn nodes half — routed YX to a
    // random intermediate full-router, then XY.
    show(&mesh, Coord::new(1, 0), Coord::new(3, 2), &mut rng);
    show(&mesh, Coord::new(1, 0), Coord::new(3, 2), &mut rng);
    // The documented impossible pair: full-to-full, odd parity.
    show(&mesh, Coord::new(0, 0), Coord::new(1, 1), &mut rng);

    println!("\nMC placement avoids the impossible pairs by putting all MCs on");
    println!(
        "half-routers: {:?}",
        mesh.checkerboard_mcs(8).iter().map(|&n| mesh.coord(n).to_string()).collect::<Vec<_>>()
    );
}
