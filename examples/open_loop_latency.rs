//! Open-loop latency/throughput sweep under many-to-few-to-many traffic,
//! comparing the baseline mesh with the checkerboard + multi-port design
//! (a small version of the paper's Figure 21).
//!
//! Run with: `cargo run --release --example open_loop_latency`

use tenoc::noc::openloop::{run_open_loop, OpenLoopConfig, TrafficPattern};
use tenoc::noc::NetworkConfig;

fn main() {
    let mut cp_cr_2p = NetworkConfig::checkerboard_mesh(6);
    cp_cr_2p.mc_inject_ports = 2;
    let configs = [
        ("TB-DOR (baseline)", NetworkConfig::baseline_mesh(6)),
        ("CP-CR-2P (thr.-eff.)", cp_cr_2p),
    ];
    println!("open-loop many-to-few-to-many: 1-flit requests, 4-flit replies");
    println!("{:>6} {:>22} {:>22}", "rate", configs[0].0, configs[1].0);
    for i in 1..=10 {
        let rate = i as f64 * 0.012;
        print!("{rate:>6.3}");
        for (_, cfg) in &configs {
            let mut ol = OpenLoopConfig::new(cfg.clone(), rate, TrafficPattern::UniformRandom);
            ol.warmup = 2_000;
            ol.measure = 5_000;
            ol.drain = 10_000;
            let r = run_open_loop(&ol);
            if r.saturated() {
                print!(" {:>22}", "saturated");
            } else {
                print!(" {:>17.1} cyc", r.avg_latency);
            }
        }
        println!();
    }
    println!("\nthe throughput-effective design saturates at a higher offered load");
}
