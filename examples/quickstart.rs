//! Quickstart: simulate one benchmark on the baseline mesh and on the
//! paper's throughput-effective NoC, and compare.
//!
//! Run with: `cargo run --release --example quickstart`

use tenoc::core::area::{throughput_effectiveness, AreaModel};
use tenoc::core::experiments::run_benchmark;
use tenoc::core::presets::Preset;
use tenoc::workloads::by_name;

fn main() {
    // Pick a network-bound benchmark from the suite (Table I).
    let spec = by_name("KM").expect("Kmeans is in the suite");
    println!("benchmark: {} ({:?} class)", spec.name, spec.class);

    // Closed-loop runs: 28 SIMT cores + NoC + 8 L2/GDDR3 MC nodes.
    let scale = 0.2; // shorten the kernel for a quick demo
    let base = run_benchmark(Preset::BaselineTbDor, &spec, scale);
    let te = run_benchmark(Preset::ThroughputEffective, &spec, scale);
    let te_single = run_benchmark(Preset::CpCr2pSingle, &spec, scale);

    println!("\n{:<28} {:>10} {:>12} {:>12}", "design", "IPC", "area [mm^2]", "IPC/mm^2");
    for (preset, m) in [
        (Preset::BaselineTbDor, base),
        (Preset::ThroughputEffective, te),
        (Preset::CpCr2pSingle, te_single),
    ] {
        let area = AreaModel::chip_area(&preset.icnt(6));
        println!(
            "{:<28} {:>10.1} {:>12.1} {:>12.4}",
            preset.label(),
            m.ipc,
            area.total(),
            throughput_effectiveness(m.ipc, &area)
        );
    }
    println!(
        "\nhigher IPC per mm^2 at equal or better throughput is what\n\"throughput-effective\" means; MC reply-injection stalls drop {:.0}% -> {:.0}%",
        base.mc_stall_fraction * 100.0,
        te.mc_stall_fraction * 100.0
    );
}
