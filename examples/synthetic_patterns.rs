//! Evaluate routing algorithms on classic adversarial traffic patterns —
//! the methodology behind O1Turn and ROMM, which the paper's checkerboard
//! routing builds on.
//!
//! Run with: `cargo run --release --example synthetic_patterns`

use tenoc::noc::synthetic::{run_synthetic, SynthConfig, SynthPattern};
use tenoc::noc::{NetworkConfig, RoutingKind, VcLayout};

fn mesh(routing: RoutingKind) -> NetworkConfig {
    let mut c = NetworkConfig::baseline_mesh(6);
    c.routing = routing;
    if routing.needs_phase_split() {
        c.vcs = VcLayout::new(4, 2, true);
    }
    c
}

/// Highest unsaturated injection rate (packets/cycle/node).
fn saturation(routing: RoutingKind, pattern: SynthPattern) -> f64 {
    let mut last_ok = 0.0;
    for i in 1..=20 {
        let rate = i as f64 * 0.025;
        let cfg = SynthConfig::new(mesh(routing), rate, pattern);
        if run_synthetic(&cfg).saturated() {
            break;
        }
        last_ok = rate;
    }
    last_ok
}

fn main() {
    let routings = [RoutingKind::DorXy, RoutingKind::O1Turn, RoutingKind::Romm];
    println!("saturation throughput (packets/cycle/node), 6x6 mesh, 1-flit packets\n");
    print!("{:>14}", "pattern");
    for r in routings {
        print!(" {r:>10?}");
    }
    println!();
    for pattern in SynthPattern::ALL {
        print!("{:>14}", format!("{pattern:?}"));
        for r in routings {
            print!(" {:>10.3}", saturation(r, pattern));
        }
        println!();
    }
    println!("\nDOR excels on benign patterns (neighbor, uniform) but struggles on");
    println!("adversarial permutations; randomized O1Turn/ROMM trade a little");
    println!("best-case throughput for worst-case robustness.");
}
