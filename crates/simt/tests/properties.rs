//! Property-based tests of the SIMT core: conservation laws, timing
//! independence of the generated workload, and determinism.

use proptest::prelude::*;
use tenoc_simt::{CoreConfig, KernelSpec, ShaderCore, TrafficClass};

fn arbitrary_spec() -> impl Strategy<Value = KernelSpec> {
    (
        1usize..=16, // warps
        20u64..200,  // insts per warp
        0.0f64..0.6, // mem fraction
        0.0f64..0.5, // write fraction
        0.0f64..1.0, // stream fraction
        prop::sample::select(vec![1u32, 2, 4, 8]),
        1u32..6, // dep distance
    )
        .prop_map(|(warps, insts, mem, wr, stream, lines, dep)| {
            KernelSpec::builder("prop")
                .class(TrafficClass::LH)
                .warps_per_core(warps)
                .insts_per_warp(insts)
                .mem_fraction(mem)
                .write_fraction(wr)
                .stream_fraction(stream)
                .lines_per_mem(lines)
                .mem_dep_distance(dep)
                .build()
        })
}

/// Runs a core to completion against a memory with fixed `latency`,
/// returning (cycles, reads, writes, retired).
fn run(spec: &KernelSpec, latency: u64, seed: u64) -> (u64, u64, u64, u64) {
    let mut core = ShaderCore::new(0, CoreConfig::gtx280_like(), spec, seed);
    let mut pending: Vec<(u64, u64)> = Vec::new();
    let mut cycle = 0u64;
    while (!core.done() || core.outstanding_fetches() > 0) && cycle < 3_000_000 {
        core.step(cycle);
        while let Some(req) = core.pop_request() {
            if !req.is_write {
                pending.push((cycle + latency, req.line_addr));
            }
        }
        let (due, rest): (Vec<_>, Vec<_>) = pending.iter().partition(|&&(t, _)| t <= cycle);
        pending = rest;
        for (_, line) in due {
            core.push_fill(line);
        }
        cycle += 1;
    }
    assert!(core.done(), "core must finish");
    (cycle, core.stats().read_requests, core.stats().write_requests, core.retired_warp_insts())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every warp retires exactly its configured instruction count.
    #[test]
    fn instruction_conservation(spec in arbitrary_spec(), seed in 1u64..1000) {
        let (_, _, _, retired) = run(&spec, 50, seed);
        prop_assert_eq!(retired, spec.total_warp_insts());
    }

    /// The generated *instruction stream* is timing independent (the
    /// replay-determinism fix: resource stalls never re-randomize
    /// instructions). For pure streaming kernels — no reuse, so no cache
    /// hits or MSHR merges — the request counts must match exactly across
    /// memory latencies.
    #[test]
    fn streaming_traffic_is_timing_independent(spec in arbitrary_spec(), seed in 1u64..1000) {
        let mut spec = spec;
        spec.stream_fraction = 1.0;
        let (_, r_fast, w_fast, _) = run(&spec, 5, seed);
        let (_, r_slow, w_slow, _) = run(&spec, 400, seed);
        prop_assert_eq!(r_fast, r_slow, "read traffic must not depend on memory latency");
        prop_assert_eq!(w_fast, w_slow, "write traffic must not depend on memory latency");
    }

    /// For general kernels, cache contents and MSHR merging legitimately
    /// depend on timing, but only slightly: request counts stay within a
    /// few percent across a 80x latency change.
    #[test]
    fn general_traffic_is_nearly_timing_independent(spec in arbitrary_spec(), seed in 1u64..1000) {
        let (_, r_fast, w_fast, _) = run(&spec, 5, seed);
        let (_, r_slow, w_slow, _) = run(&spec, 400, seed);
        let close = |a: u64, b: u64, rel: f64| {
            let (a, b) = (a as f64, b as f64);
            (a - b).abs() <= 8.0 + rel * a.max(b)
        };
        prop_assert!(close(r_fast, r_slow, 0.05), "reads drifted: {r_fast} vs {r_slow}");
        // Write traffic includes dirty write-backs, whose count follows the
        // (timing-dependent) eviction schedule — allow a wide band.
        prop_assert!(close(w_fast, w_slow, 0.5), "writes drifted: {w_fast} vs {w_slow}");
    }

    /// Identical seeds reproduce identical executions; different seeds
    /// (virtually always) differ in timing for memory-bound kernels.
    #[test]
    fn determinism_per_seed(spec in arbitrary_spec(), seed in 1u64..1000) {
        let a = run(&spec, 80, seed);
        let b = run(&spec, 80, seed);
        prop_assert_eq!(a, b);
    }

    /// Slower memory never makes the kernel finish sooner.
    #[test]
    fn latency_monotonicity(spec in arbitrary_spec(), seed in 1u64..1000) {
        let (fast, _, _, _) = run(&spec, 10, seed);
        let (slow, _, _, _) = run(&spec, 300, seed);
        prop_assert!(slow + 8 >= fast, "slow memory finished earlier: {slow} vs {fast}");
    }

    /// A core never exceeds its MSHR capacity in outstanding fetches.
    #[test]
    fn mshr_capacity_respected(spec in arbitrary_spec(), seed in 1u64..100) {
        let mut core = ShaderCore::new(0, CoreConfig::gtx280_like(), &spec, seed);
        let mut pending: Vec<(u64, u64)> = Vec::new();
        for cycle in 0..30_000u64 {
            core.step(cycle);
            prop_assert!(core.outstanding_fetches() <= 64);
            while let Some(req) = core.pop_request() {
                if !req.is_write {
                    pending.push((cycle + 200, req.line_addr));
                }
            }
            let (due, rest): (Vec<_>, Vec<_>) = pending.iter().partition(|&&(t, _)| t <= cycle);
            pending = rest;
            for (_, line) in due {
                core.push_fill(line);
            }
            if core.done() && core.outstanding_fetches() == 0 {
                break;
            }
        }
    }
}
