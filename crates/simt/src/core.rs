//! The shader core: warp scheduler, SIMD issue, coalescing, L1 and MSHRs.

use crate::kernel::KernelSpec;
use crate::warp::{PendingInst, Warp, WarpState};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tenoc_cache::{Access, Cache, CacheConfig, LookupResult, MshrOutcome, MshrTable};

/// High-order address-space tags keeping streaming and working-set regions
/// disjoint across cores and warps.
const STREAM_REGION: u64 = 1 << 44;
const LOCAL_REGION: u64 = 2 << 44;

/// A memory request leaving the core toward the L2/MC.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct MemRequest {
    /// Line-aligned address.
    pub line_addr: u64,
    /// `true` for write-through/write-back traffic (no reply expected);
    /// `false` for line fetches (a fill must be pushed back).
    pub is_write: bool,
    /// Size of the *network request packet* in bytes: 8 for reads (the
    /// reply carries the 64-byte line), 64 for writes.
    pub size_bytes: u32,
}

/// Warp scheduling policy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SchedulerPolicy {
    /// Round-robin among ready warps (the paper's Table II policy).
    RoundRobin,
    /// Greedy-then-oldest: keep issuing from the same warp until it
    /// stalls, then switch to the oldest ready warp. Improves intra-warp
    /// locality at some latency-hiding cost.
    GreedyThenOldest,
}

/// Core microarchitecture parameters (paper Table II).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Scalar threads per warp.
    pub warp_size: u32,
    /// Cycles a warp instruction occupies the 8-wide issue pipeline
    /// (32 threads / 8 lanes = 4).
    pub issue_interval: u64,
    /// MSHR entries.
    pub mshrs: usize,
    /// Maximum merged targets per MSHR entry.
    pub mshr_targets: usize,
    /// L1 data cache geometry.
    pub l1: CacheConfig,
    /// Outgoing request queue capacity (back-pressure from the NoC).
    pub out_queue_cap: usize,
    /// Warp scheduling policy.
    pub scheduler: SchedulerPolicy,
}

impl CoreConfig {
    /// Parameters matching the paper's compute node: 32-thread warps over
    /// an 8-wide pipeline, 64 MSHRs, 16 KB L1.
    pub fn gtx280_like() -> Self {
        CoreConfig {
            warp_size: 32,
            issue_interval: 4,
            mshrs: 64,
            mshr_targets: 32,
            l1: CacheConfig::l1_16k(),
            out_queue_cap: 16,
            scheduler: SchedulerPolicy::RoundRobin,
        }
    }
}

/// Execution statistics of one core.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Warp instructions retired.
    pub warp_insts: u64,
    /// Cycles stepped until the kernel finished.
    pub cycles: u64,
    /// Memory instructions replayed for lack of MSHRs or queue space.
    pub replays: u64,
    /// Read line-fetches sent to the memory system.
    pub read_requests: u64,
    /// Write requests sent to the memory system.
    pub write_requests: u64,
    /// Issue cycles with no ready warp (exposed memory latency).
    pub idle_issue_cycles: u64,
}

/// One SIMT compute node (see the crate-level example).
pub struct ShaderCore {
    id: usize,
    cfg: CoreConfig,
    spec: KernelSpec,
    warps: Vec<Warp>,
    rr: usize,
    issue_free_at: u64,
    /// No warp can become issue-eligible before this cycle (the earliest
    /// `WaitingDep` expiry found by a failed scheduler scan; `u64::MAX`
    /// when only a fill can wake the core). Lets idle cycles skip the
    /// warp scan; cleared by [`ShaderCore::push_fill`], the only other
    /// event that changes readiness.
    idle_until: u64,
    l1: Cache,
    mshrs: MshrTable,
    /// Scratch for MSHR completions (reused across fills).
    fill_targets: Vec<u64>,
    out: VecDeque<MemRequest>,
    stats: CoreStats,
    done: bool,
}

impl ShaderCore {
    /// Builds a core running `spec`, with per-warp RNGs derived from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec or cache configuration is invalid.
    pub fn new(id: usize, cfg: CoreConfig, spec: &KernelSpec, seed: u64) -> Self {
        spec.validate().expect("invalid kernel spec");
        let warps =
            (0..spec.warps_per_core).map(|w| Warp::new(id, w, spec.insts_per_warp, seed)).collect();
        ShaderCore {
            id,
            l1: Cache::new(cfg.l1),
            mshrs: MshrTable::new(cfg.mshrs, cfg.mshr_targets),
            fill_targets: Vec::new(),
            warps,
            rr: 0,
            issue_free_at: 0,
            idle_until: 0,
            out: VecDeque::new(),
            stats: CoreStats::default(),
            done: spec.total_warp_insts() == 0,
            cfg,
            spec: spec.clone(),
        }
    }

    /// Core index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// `true` once every warp has retired all its instructions. Fills for
    /// in-flight reads may still arrive afterwards.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Warp instructions retired so far.
    pub fn retired_warp_insts(&self) -> u64 {
        self.stats.warp_insts
    }

    /// Scalar instructions retired: warp instructions x warp size x the
    /// kernel's mean active-lane fraction (branch divergence means a warp
    /// slot does not always carry 32 useful lanes).
    pub fn retired_scalar_insts(&self) -> u64 {
        let lanes = self.cfg.warp_size as f64 * self.spec.active_lane_fraction;
        (self.stats.warp_insts as f64 * lanes).round() as u64
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// L1 statistics.
    pub fn l1_stats(&self) -> &tenoc_cache::CacheStats {
        self.l1.stats()
    }

    /// Outstanding read line-fetches (MSHR entries in use).
    pub fn outstanding_fetches(&self) -> usize {
        self.mshrs.len()
    }

    /// Removes the next outgoing memory request, if any.
    pub fn pop_request(&mut self) -> Option<MemRequest> {
        self.out.pop_front()
    }

    /// Outgoing requests waiting to enter the network.
    pub fn pending_requests(&self) -> usize {
        self.out.len()
    }

    /// Delivers a read fill for `line_addr`: releases the MSHR entry,
    /// wakes the merged warps and installs the line in the L1 (possibly
    /// generating a dirty write-back request).
    ///
    /// # Panics
    ///
    /// Panics if no fetch for `line_addr` is outstanding.
    pub fn push_fill(&mut self, line_addr: u64) {
        self.idle_until = 0;
        let mut targets = std::mem::take(&mut self.fill_targets);
        self.mshrs.complete_into(line_addr, &mut targets);
        if let Some(ev) = self.l1.fill(line_addr) {
            if ev.dirty {
                self.out.push_back(MemRequest {
                    line_addr: ev.line_addr,
                    is_write: true,
                    size_bytes: 64,
                });
                self.stats.write_requests += 1;
            }
        }
        let limit = self.dep_limit();
        for &t in &targets {
            self.warps[t as usize].complete_load(limit);
        }
        self.fill_targets = targets;
    }

    /// Advances the core by one core-clock cycle.
    pub fn step(&mut self, now: u64) {
        if self.done {
            return;
        }
        self.stats.cycles += 1;
        if now < self.issue_free_at {
            return;
        }
        // A previous failed scan proved no warp wakes before `idle_until`
        // (fills reset it): this cycle is idle without re-scanning.
        if now < self.idle_until {
            self.stats.idle_issue_cycles += 1;
            return;
        }
        let n = self.warps.len();
        let picked = match self.cfg.scheduler {
            SchedulerPolicy::RoundRobin => {
                (0..n).map(|i| (self.rr + i) % n).find(|&w| self.warps[w].ready(now))
            }
            // Greedy: stick with the last-issued warp while it stays
            // ready; otherwise fall back to the lowest-id (oldest) ready
            // warp.
            SchedulerPolicy::GreedyThenOldest => {
                let last = (self.rr + n - 1) % n;
                if self.warps[last].ready(now) {
                    Some(last)
                } else {
                    (0..n).find(|&w| self.warps[w].ready(now))
                }
            }
        };
        let Some(wid) = picked else {
            if self.warps.iter().all(|w| w.state == WarpState::Done) {
                self.done = true;
            } else {
                self.stats.idle_issue_cycles += 1;
                // Readiness only changes with time (WaitingDep expiry) or
                // a fill (which clears this): sleep until the earliest
                // dependency expires.
                self.idle_until = self
                    .warps
                    .iter()
                    .filter_map(|w| match w.state {
                        WarpState::WaitingDep(until) => Some(until),
                        _ => None,
                    })
                    .min()
                    .unwrap_or(u64::MAX);
            }
            return;
        };
        self.rr = (wid + 1) % n;
        self.issue_free_at = now + self.cfg.issue_interval;
        self.issue_instruction(wid, now);
        if self.warps.iter().all(|w| w.state == WarpState::Done) {
            self.done = true;
        }
    }

    fn issue_instruction(&mut self, wid: usize, now: u64) {
        let inst = match self.warps[wid].pending_inst.take() {
            Some(i) => i,
            None => self.generate_inst(wid),
        };
        if !inst.is_mem {
            let lat = self.spec.alu_latency;
            let w = &mut self.warps[wid];
            w.retire_one();
            if w.state != WarpState::Done {
                w.state = WarpState::WaitingDep(now + lat);
            }
            self.stats.warp_insts += 1;
            return;
        }
        // Atomic resource check: the instruction replays if the MSHRs or
        // the outgoing queue cannot absorb every transaction. The drawn
        // instruction is kept so the stream is timing-independent.
        let mut new_fetches = 0usize;
        let mut out_needed = 0usize;
        for &line in &inst.lines {
            if self.l1.contains(line) {
                continue;
            }
            if inst.is_write {
                out_needed += 1; // write-through, no allocation
            } else if !self.mshrs.contains(line) {
                new_fetches += 1;
                out_needed += 1;
            }
        }
        if self.mshrs.len() + new_fetches > self.cfg.mshrs
            || self.out.len() + out_needed > self.cfg.out_queue_cap
        {
            self.stats.replays += 1;
            self.warps[wid].pending_inst = Some(inst);
            return; // warp stays ready; the same instruction retries later
        }
        let mut loads_outstanding = 0u32;
        for &line in &inst.lines {
            if inst.is_write {
                match self.l1.access(line, Access::Write) {
                    LookupResult::Hit => {} // dirty in L1; written back on eviction
                    LookupResult::Miss => {
                        self.out.push_back(MemRequest {
                            line_addr: line,
                            is_write: true,
                            size_bytes: 64,
                        });
                        self.stats.write_requests += 1;
                    }
                }
            } else {
                match self.l1.access(line, Access::Read) {
                    LookupResult::Hit => {}
                    LookupResult::Miss => match self.mshrs.allocate(line, wid as u64) {
                        MshrOutcome::Allocated => {
                            self.out.push_back(MemRequest {
                                line_addr: line,
                                is_write: false,
                                size_bytes: 8,
                            });
                            self.stats.read_requests += 1;
                            loads_outstanding += 1;
                        }
                        MshrOutcome::Merged => loads_outstanding += 1,
                        MshrOutcome::Full => unreachable!("capacity checked above"),
                    },
                }
            }
        }
        let limit = self.dep_limit();
        let w = &mut self.warps[wid];
        w.retire_one();
        w.add_outstanding(loads_outstanding, limit);
        if loads_outstanding == 0 && w.state != WarpState::Done {
            // Hits and stores still incur a short dependency bubble.
            w.state = WarpState::WaitingDep(now + self.spec.alu_latency);
        }
        self.stats.warp_insts += 1;
    }

    /// Draws the next instruction of a warp from its RNG (exactly once per
    /// instruction).
    fn generate_inst(&mut self, wid: usize) -> PendingInst {
        let is_mem = self.warps[wid].rng.gen_bool(self.spec.mem_fraction);
        if !is_mem {
            return PendingInst { is_mem: false, is_write: false, lines: Vec::new() };
        }
        let is_write = self.warps[wid].rng.gen_bool(self.spec.write_fraction);
        let lines = self.generate_lines(wid);
        PendingInst { is_mem: true, is_write, lines }
    }

    /// In-flight load-transaction allowance per warp before it blocks.
    fn dep_limit(&self) -> u32 {
        (self.spec.mem_dep_distance * self.spec.lines_per_mem).max(1)
    }

    /// Generates the distinct line addresses one memory instruction
    /// touches after coalescing.
    fn generate_lines(&mut self, wid: usize) -> Vec<u64> {
        let n = self.spec.lines_per_mem as u64;
        let line = self.cfg.l1.line_bytes;
        let streaming = self.warps[wid].rng.gen_bool(self.spec.stream_fraction);
        let core_bits = (self.id as u64) << 34;
        let w = &mut self.warps[wid];
        if streaming {
            let warp_bits = (w.id as u64) << 28;
            let base = STREAM_REGION | core_bits | warp_bits;
            let start = base + w.stream_cursor * n * line;
            w.stream_cursor += 1;
            (0..n).map(|i| start + i * line).collect()
        } else {
            let ws_lines = (self.spec.working_set / line).max(1);
            let base = LOCAL_REGION | core_bits;
            let mut out = Vec::with_capacity(n as usize);
            for _ in 0..n {
                let l = base + w.rng.gen_range(0..ws_lines) * line;
                if !out.contains(&l) {
                    out.push(l);
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelSpec;

    fn run_with_ideal_memory(spec: &KernelSpec, max_cycles: u64) -> (ShaderCore, u64) {
        let mut core = ShaderCore::new(0, CoreConfig::gtx280_like(), spec, 1);
        let mut cycle = 0;
        while !core.done() && cycle < max_cycles {
            core.step(cycle);
            while let Some(req) = core.pop_request() {
                if !req.is_write {
                    core.push_fill(req.line_addr);
                }
            }
            cycle += 1;
        }
        (core, cycle)
    }

    #[test]
    fn pure_alu_kernel_saturates_issue() {
        let spec = KernelSpec::builder("alu")
            .warps_per_core(32)
            .insts_per_warp(100)
            .mem_fraction(0.0)
            .build();
        let (core, cycles) = run_with_ideal_memory(&spec, 1_000_000);
        assert!(core.done());
        assert_eq!(core.retired_warp_insts(), 3200);
        // One warp instruction every 4 cycles: 12800 cycles minimum.
        let ideal = 3200 * 4;
        assert!(
            (cycles as f64) < ideal as f64 * 1.05,
            "32 warps must hide ALU latency: {cycles} vs ideal {ideal}"
        );
        // Peak scalar IPC is 8.
        let ipc = core.retired_scalar_insts() as f64 / cycles as f64;
        assert!(ipc > 7.5, "ipc {ipc}");
    }

    #[test]
    fn single_warp_exposes_dependency_latency() {
        let spec = KernelSpec::builder("dep")
            .warps_per_core(1)
            .insts_per_warp(100)
            .mem_fraction(0.0)
            .alu_latency(20)
            .build();
        let (core, cycles) = run_with_ideal_memory(&spec, 1_000_000);
        assert!(core.done());
        assert!(cycles >= 99 * 20, "dependency chain must be exposed: {cycles}");
    }

    #[test]
    fn streaming_kernel_generates_read_traffic() {
        let spec = KernelSpec::builder("stream")
            .warps_per_core(8)
            .insts_per_warp(50)
            .mem_fraction(1.0)
            .write_fraction(0.0)
            .stream_fraction(1.0)
            .lines_per_mem(2)
            .build();
        let (core, _) = run_with_ideal_memory(&spec, 1_000_000);
        assert!(core.done());
        // Every memory instruction touches 2 fresh lines: all miss.
        assert_eq!(core.stats().read_requests, 8 * 50 * 2);
        assert_eq!(core.stats().write_requests, 0);
    }

    #[test]
    fn small_working_set_mostly_hits_l1() {
        let spec = KernelSpec::builder("local")
            .warps_per_core(8)
            .insts_per_warp(200)
            .mem_fraction(1.0)
            .write_fraction(0.0)
            .stream_fraction(0.0)
            .working_set(4 * 1024) // fits easily in 16 KB L1
            .build();
        let (core, _) = run_with_ideal_memory(&spec, 1_000_000);
        assert!(core.done());
        let hit = core.l1_stats().hit_rate();
        assert!(hit > 0.9, "4 KB working set must hit in a 16 KB L1, rate {hit}");
        // At most the 64 distinct lines of the working set are fetched.
        assert!(core.stats().read_requests <= 64);
    }

    #[test]
    fn writes_emit_write_requests_without_replies() {
        let spec = KernelSpec::builder("store")
            .warps_per_core(4)
            .insts_per_warp(50)
            .mem_fraction(1.0)
            .write_fraction(1.0)
            .stream_fraction(1.0)
            .build();
        let mut core = ShaderCore::new(0, CoreConfig::gtx280_like(), &spec, 1);
        let mut writes = 0;
        let mut cycle = 0;
        while !core.done() && cycle < 1_000_000 {
            core.step(cycle);
            while let Some(req) = core.pop_request() {
                assert!(req.is_write);
                assert_eq!(req.size_bytes, 64);
                writes += 1;
            }
            cycle += 1;
        }
        assert!(core.done(), "stores never block the warp");
        assert_eq!(writes, 4 * 50);
        assert_eq!(core.outstanding_fetches(), 0);
    }

    #[test]
    fn back_pressure_replays_instead_of_overflowing() {
        let spec = KernelSpec::builder("pressure")
            .warps_per_core(32)
            .insts_per_warp(20)
            .mem_fraction(1.0)
            .stream_fraction(1.0)
            .lines_per_mem(4)
            .build();
        // Never drain the outgoing queue: the core must stall, not panic.
        let mut core = ShaderCore::new(0, CoreConfig::gtx280_like(), &spec, 1);
        for cycle in 0..10_000 {
            core.step(cycle);
        }
        assert!(core.pending_requests() <= 16);
        assert!(core.stats().replays > 0);
        assert!(!core.done());
    }

    #[test]
    fn divergence_scales_scalar_count_not_timing() {
        let full = KernelSpec::builder("full")
            .warps_per_core(4)
            .insts_per_warp(50)
            .mem_fraction(0.0)
            .build();
        let div = KernelSpec::builder("div")
            .warps_per_core(4)
            .insts_per_warp(50)
            .mem_fraction(0.0)
            .active_lane_fraction(0.5)
            .build();
        let run = |spec: &KernelSpec| {
            let mut core = ShaderCore::new(0, CoreConfig::gtx280_like(), spec, 1);
            let mut cycle = 0;
            while !core.done() && cycle < 100_000 {
                core.step(cycle);
                cycle += 1;
            }
            (cycle, core.retired_scalar_insts())
        };
        let (t_full, s_full) = run(&full);
        let (t_div, s_div) = run(&div);
        assert_eq!(t_full, t_div, "divergence must not change warp timing");
        assert_eq!(s_full, 4 * 50 * 32);
        assert_eq!(s_div, 4 * 50 * 16, "half the lanes retire half the scalars");
    }

    #[test]
    fn gto_scheduler_completes_and_prefers_one_warp() {
        let spec = KernelSpec::builder("gto")
            .warps_per_core(8)
            .insts_per_warp(100)
            .mem_fraction(0.0)
            .alu_latency(0)
            .build();
        let mut cfg = CoreConfig::gtx280_like();
        cfg.scheduler = SchedulerPolicy::GreedyThenOldest;
        let mut core = ShaderCore::new(0, cfg, &spec, 1);
        let mut cycle = 0;
        while !core.done() && cycle < 100_000 {
            core.step(cycle);
            cycle += 1;
        }
        assert!(core.done());
        assert_eq!(core.retired_warp_insts(), 800);
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let spec = KernelSpec::builder("det")
            .warps_per_core(8)
            .insts_per_warp(100)
            .mem_fraction(0.4)
            .stream_fraction(0.5)
            .build();
        let (a, ca) = run_with_ideal_memory(&spec, 1_000_000);
        let (b, cb) = run_with_ideal_memory(&spec, 1_000_000);
        assert_eq!(ca, cb);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn memory_latency_blocks_low_occupancy_kernels() {
        // With one warp and slow memory, the core crawls. This mirrors NNC
        // in the paper (too few threads to hide latency).
        let spec = KernelSpec::builder("nnc")
            .warps_per_core(1)
            .insts_per_warp(50)
            .mem_fraction(1.0)
            .write_fraction(0.0)
            .stream_fraction(1.0)
            .mem_dep_distance(1)
            .build();
        let mut core = ShaderCore::new(0, CoreConfig::gtx280_like(), &spec, 1);
        let mut pending: Vec<(u64, u64)> = Vec::new(); // (deliver_at, line)
        let latency = 200;
        let mut cycle = 0;
        while !core.done() && cycle < 1_000_000 {
            core.step(cycle);
            while let Some(req) = core.pop_request() {
                if !req.is_write {
                    pending.push((cycle + latency, req.line_addr));
                }
            }
            let (due, rest): (Vec<_>, Vec<_>) = pending.iter().partition(|&&(t, _)| t <= cycle);
            pending = rest;
            for (_, line) in due {
                core.push_fill(line);
            }
            cycle += 1;
        }
        assert!(core.done());
        // The final load retires at issue, so 49 full round-trips remain.
        assert!(cycle > 48 * latency, "each load serializes at ~200 cycles: {cycle}");
    }
}
