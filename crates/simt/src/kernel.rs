//! Synthetic kernel specifications: the statistical workload model that
//! stands in for the paper's CUDA benchmarks.

use serde::{Deserialize, Serialize};

/// Traffic class of a benchmark, following the paper's two-letter scheme
/// (Section III-B): the first letter is the speedup with a perfect NoC
/// (high/low), the second is the traffic intensity (heavy/light).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TrafficClass {
    /// Low speedup, light traffic: locality-optimized kernels.
    LL,
    /// Low speedup, heavy traffic: bandwidth-hungry but latency-tolerant
    /// (or otherwise not network-bound).
    LH,
    /// High speedup, heavy traffic: network-bound kernels.
    HH,
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TrafficClass::LL => "LL",
            TrafficClass::LH => "LH",
            TrafficClass::HH => "HH",
        };
        f.write_str(s)
    }
}

/// A synthetic kernel: per-benchmark statistical parameters from which
/// per-warp instruction streams are generated deterministically.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KernelSpec {
    /// Benchmark name (abbreviation from the paper's Table I).
    pub name: String,
    /// Traffic class (for reporting and class-level assertions).
    pub class: TrafficClass,
    /// Concurrent warps per core (occupancy; at most the dispatch-queue
    /// capacity of 32).
    pub warps_per_core: usize,
    /// Warp-instructions each warp executes before retiring.
    pub insts_per_warp: u64,
    /// Probability that an instruction is a global memory operation.
    pub mem_fraction: f64,
    /// Probability that a memory operation is a store.
    pub write_fraction: f64,
    /// Probability that a memory operation streams (touches fresh lines,
    /// never reused) rather than hitting the core's local working set.
    pub stream_fraction: f64,
    /// Size of the core-local working set in bytes (locality of the
    /// non-streaming accesses; below the 16 KB L1 it mostly hits).
    pub working_set: u64,
    /// Distinct cache lines touched per memory instruction after
    /// coalescing (1 = perfectly coalesced, 32 = fully divergent).
    pub lines_per_mem: u32,
    /// Result-dependency latency of arithmetic chains, in core cycles.
    pub alu_latency: u64,
    /// Independent memory instructions a warp may have in flight before it
    /// blocks (memory-level parallelism; models a scoreboard that stalls
    /// only on first use of a loaded value).
    pub mem_dep_distance: u32,
    /// Mean fraction of a warp's 32 lanes that are active (SIMT branch
    /// divergence under immediate-post-dominator reconvergence). Scales
    /// retired *scalar* instructions; the timing model is unaffected
    /// because a warp occupies the pipeline regardless of its mask.
    pub active_lane_fraction: f64,
}

impl KernelSpec {
    /// Starts building a kernel spec with conservative defaults
    /// (locality-friendly, light traffic).
    pub fn builder(name: &str) -> KernelSpecBuilder {
        KernelSpecBuilder {
            spec: KernelSpec {
                name: name.to_owned(),
                class: TrafficClass::LL,
                warps_per_core: 32,
                insts_per_warp: 500,
                mem_fraction: 0.05,
                write_fraction: 0.1,
                stream_fraction: 0.2,
                working_set: 8 * 1024,
                lines_per_mem: 1,
                alu_latency: 8,
                mem_dep_distance: 2,
                active_lane_fraction: 1.0,
            },
        }
    }

    /// Total warp-instructions per core.
    pub fn total_warp_insts(&self) -> u64 {
        self.warps_per_core as u64 * self.insts_per_warp
    }

    /// Scales the kernel length by `factor` (used to shorten benchmark
    /// harness runs), keeping at least 16 instructions per warp.
    pub fn scaled(&self, factor: f64) -> KernelSpec {
        let mut s = self.clone();
        s.insts_per_warp = ((s.insts_per_warp as f64 * factor) as u64).max(16);
        s
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a message naming the out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.warps_per_core == 0 || self.warps_per_core > 32 {
            return Err(format!("{}: warps_per_core must be 1..=32", self.name));
        }
        for (name, p) in [
            ("mem_fraction", self.mem_fraction),
            ("write_fraction", self.write_fraction),
            ("stream_fraction", self.stream_fraction),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{}: {name} must be a probability", self.name));
            }
        }
        if self.lines_per_mem == 0 || self.lines_per_mem > 32 {
            return Err(format!("{}: lines_per_mem must be 1..=32", self.name));
        }
        if self.insts_per_warp == 0 {
            return Err(format!("{}: insts_per_warp must be positive", self.name));
        }
        if self.mem_dep_distance == 0 {
            return Err(format!("{}: mem_dep_distance must be positive", self.name));
        }
        if !(self.active_lane_fraction > 0.0 && self.active_lane_fraction <= 1.0) {
            return Err(format!("{}: active_lane_fraction must be in (0, 1]", self.name));
        }
        Ok(())
    }
}

/// Builder for [`KernelSpec`] (see [`KernelSpec::builder`]).
#[derive(Clone, Debug)]
pub struct KernelSpecBuilder {
    spec: KernelSpec,
}

impl KernelSpecBuilder {
    /// Sets the traffic class label.
    pub fn class(mut self, c: TrafficClass) -> Self {
        self.spec.class = c;
        self
    }

    /// Sets concurrent warps per core.
    pub fn warps_per_core(mut self, w: usize) -> Self {
        self.spec.warps_per_core = w;
        self
    }

    /// Sets warp-instructions per warp.
    pub fn insts_per_warp(mut self, n: u64) -> Self {
        self.spec.insts_per_warp = n;
        self
    }

    /// Sets the fraction of instructions that access global memory.
    pub fn mem_fraction(mut self, f: f64) -> Self {
        self.spec.mem_fraction = f;
        self
    }

    /// Sets the fraction of memory operations that are stores.
    pub fn write_fraction(mut self, f: f64) -> Self {
        self.spec.write_fraction = f;
        self
    }

    /// Sets the fraction of memory operations that stream fresh lines.
    pub fn stream_fraction(mut self, f: f64) -> Self {
        self.spec.stream_fraction = f;
        self
    }

    /// Sets the core-local working-set size in bytes.
    pub fn working_set(mut self, b: u64) -> Self {
        self.spec.working_set = b;
        self
    }

    /// Sets distinct lines touched per memory instruction.
    pub fn lines_per_mem(mut self, l: u32) -> Self {
        self.spec.lines_per_mem = l;
        self
    }

    /// Sets the arithmetic dependency latency.
    pub fn alu_latency(mut self, l: u64) -> Self {
        self.spec.alu_latency = l;
        self
    }

    /// Sets the number of independent memory instructions in flight per
    /// warp before it blocks.
    pub fn mem_dep_distance(mut self, d: u32) -> Self {
        self.spec.mem_dep_distance = d;
        self
    }

    /// Sets the mean fraction of active lanes per warp (branch
    /// divergence).
    pub fn active_lane_fraction(mut self, f: f64) -> Self {
        self.spec.active_lane_fraction = f;
        self
    }

    /// Finalizes the spec.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range.
    pub fn build(self) -> KernelSpec {
        self.spec.validate().expect("invalid kernel spec");
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_spec() {
        let s = KernelSpec::builder("x")
            .class(TrafficClass::HH)
            .warps_per_core(16)
            .insts_per_warp(100)
            .mem_fraction(0.3)
            .build();
        assert_eq!(s.total_warp_insts(), 1600);
        assert_eq!(s.class, TrafficClass::HH);
    }

    #[test]
    #[should_panic(expected = "warps_per_core")]
    fn rejects_zero_warps() {
        let _ = KernelSpec::builder("x").warps_per_core(0).build();
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_fraction() {
        let _ = KernelSpec::builder("x").mem_fraction(1.5).build();
    }

    #[test]
    fn scaling_preserves_minimum() {
        let s = KernelSpec::builder("x").insts_per_warp(1000).build();
        assert_eq!(s.scaled(0.1).insts_per_warp, 100);
        assert_eq!(s.scaled(0.000001).insts_per_warp, 16);
    }

    #[test]
    fn class_display() {
        assert_eq!(TrafficClass::LL.to_string(), "LL");
        assert_eq!(TrafficClass::HH.to_string(), "HH");
    }
}
