//! Per-warp execution state.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scheduling state of a warp.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WarpState {
    /// Eligible for issue.
    Ready,
    /// Blocked on a result dependency until the given core cycle.
    WaitingDep(u64),
    /// Blocked on outstanding load transactions (count tracked in the
    /// warp).
    WaitingMem,
    /// All instructions retired.
    Done,
}

/// A generated (but possibly not yet issued) warp instruction.
///
/// Instructions are drawn from the warp's RNG exactly once and held here
/// until the core can issue them, so that replays (resource stalls) never
/// change the generated instruction stream — the workload is identical
/// across network configurations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PendingInst {
    /// `true` for a global memory operation.
    pub is_mem: bool,
    /// `true` if the memory operation is a store.
    pub is_write: bool,
    /// Distinct line addresses the operation touches after coalescing
    /// (empty for ALU instructions).
    pub lines: Vec<u64>,
}

/// One warp of 32 scalar threads.
#[derive(Clone, Debug)]
pub struct Warp {
    /// Warp index within its core.
    pub id: usize,
    /// Instructions retired so far.
    pub retired: u64,
    /// Instructions this warp will execute in total.
    pub total: u64,
    /// Scheduling state.
    pub state: WarpState,
    /// Outstanding load transactions (warp resumes when it reaches zero).
    pub outstanding_loads: u32,
    /// Cursor for streaming accesses (advances by one fresh region per
    /// streaming memory instruction).
    pub stream_cursor: u64,
    /// Deterministic instruction-stream generator.
    pub rng: SmallRng,
    /// Instruction drawn but not yet successfully issued (kept across
    /// replays).
    pub pending_inst: Option<PendingInst>,
}

impl Warp {
    /// Creates a warp with a deterministic RNG derived from
    /// `(seed, core, warp)`.
    pub fn new(core_id: usize, id: usize, total: u64, seed: u64) -> Self {
        let mix = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((core_id as u64) << 32)
            .wrapping_add(id as u64 + 1);
        let mut rng = SmallRng::seed_from_u64(mix);
        // Start streaming at a random position within the warp's region so
        // the memory-controller interleave sees spread traffic from cycle
        // one (real kernels' warps process different segments of a large
        // array; starting every warp at its region base would alias all
        // initial accesses onto one MC).
        let stream_cursor = rng.gen_range(0..1 << 18);
        Warp {
            id,
            retired: 0,
            total,
            state: if total == 0 { WarpState::Done } else { WarpState::Ready },
            outstanding_loads: 0,
            stream_cursor,
            rng,
            pending_inst: None,
        }
    }

    /// `true` if the warp may issue at `now`.
    pub fn ready(&self, now: u64) -> bool {
        match self.state {
            WarpState::Ready => true,
            WarpState::WaitingDep(until) => now >= until,
            _ => false,
        }
    }

    /// Retires one instruction; transitions to `Done` at the end of the
    /// stream.
    pub fn retire_one(&mut self) {
        self.retired += 1;
        if self.retired >= self.total {
            self.state = WarpState::Done;
        }
    }

    /// Records `n` more outstanding load transactions, blocking the warp
    /// once `limit` transactions are in flight (the memory-level
    /// parallelism allowance).
    pub fn add_outstanding(&mut self, n: u32, limit: u32) {
        if n > 0 {
            self.outstanding_loads += n;
            if self.state != WarpState::Done && self.outstanding_loads >= limit {
                self.state = WarpState::WaitingMem;
            }
        }
    }

    /// Completes one outstanding load; unblocks when the in-flight count
    /// drops below `limit`.
    ///
    /// # Panics
    ///
    /// Panics if no load was outstanding (simulator bug).
    pub fn complete_load(&mut self, limit: u32) {
        assert!(self.outstanding_loads > 0, "load completion without outstanding load");
        self.outstanding_loads -= 1;
        if self.outstanding_loads < limit && self.state == WarpState::WaitingMem {
            self.state = WarpState::Ready;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_ready_to_done() {
        let mut w = Warp::new(0, 0, 2, 1);
        assert!(w.ready(0));
        w.retire_one();
        assert_eq!(w.state, WarpState::Ready);
        w.retire_one();
        assert_eq!(w.state, WarpState::Done);
        assert!(!w.ready(100));
    }

    #[test]
    fn memory_blocking_and_release() {
        let mut w = Warp::new(0, 0, 10, 1);
        w.add_outstanding(2, 1);
        assert_eq!(w.state, WarpState::WaitingMem);
        assert!(!w.ready(0));
        w.complete_load(1);
        assert!(!w.ready(0), "still one load outstanding (limit 1)");
        w.complete_load(1);
        assert!(w.ready(0));
    }

    #[test]
    fn mlp_allowance_delays_blocking() {
        let mut w = Warp::new(0, 0, 10, 1);
        w.add_outstanding(2, 4);
        assert_eq!(w.state, WarpState::Ready, "2 in flight < limit 4");
        w.add_outstanding(2, 4);
        assert_eq!(w.state, WarpState::WaitingMem, "4 in flight hits limit 4");
        w.complete_load(4);
        assert_eq!(w.state, WarpState::Ready, "3 in flight < limit 4");
    }

    #[test]
    fn dependency_stall_expires() {
        let mut w = Warp::new(0, 0, 10, 1);
        w.state = WarpState::WaitingDep(10);
        assert!(!w.ready(9));
        assert!(w.ready(10));
    }

    #[test]
    fn rngs_differ_across_warps_and_cores() {
        use rand::Rng;
        let mut a = Warp::new(0, 0, 1, 7);
        let mut b = Warp::new(0, 1, 1, 7);
        let mut c = Warp::new(1, 0, 1, 7);
        let (x, y, z): (u64, u64, u64) = (a.rng.gen(), b.rng.gen(), c.rng.gen());
        assert_ne!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn rng_is_deterministic() {
        use rand::Rng;
        let mut a = Warp::new(3, 5, 1, 42);
        let mut b = Warp::new(3, 5, 1, 42);
        let (x, y): (u64, u64) = (a.rng.gen(), b.rng.gen());
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "without outstanding")]
    fn spurious_completion_panics() {
        let mut w = Warp::new(0, 0, 1, 1);
        w.complete_load(1);
    }

    #[test]
    fn zero_length_warp_is_done_immediately() {
        let w = Warp::new(0, 0, 0, 1);
        assert_eq!(w.state, WarpState::Done);
    }
}
