//! # tenoc-simt — SIMT shader-core timing model
//!
//! A closed-loop timing model of the paper's compute node (Figure 4):
//! an 8-wide SIMD pipeline executing 32-thread warps over four cycles, a
//! dispatch queue of up to 32 ready warps, round-robin warp scheduling,
//! memory-access coalescing, a 16 KB write-back L1 data cache and 64
//! MSHRs.
//!
//! Because the original CUDA binaries cannot be executed here, cores run
//! **synthetic kernels** ([`KernelSpec`]): statistical instruction streams
//! whose memory intensity, coalescing degree, locality, read/write mix and
//! occupancy are tuned per benchmark (see `tenoc-workloads`). The streams
//! are generated from per-warp deterministic RNGs, so every simulation is
//! exactly reproducible.
//!
//! The core exposes a simple memory-system boundary: it emits
//! [`MemRequest`]s (line fetches and write-throughs) and consumes read
//! fills via [`ShaderCore::push_fill`]. The system simulator in
//! `tenoc-core` moves these across the NoC to the L2/DRAM nodes.
//!
//! # Example
//!
//! Run one core against an ideal (instantly-answering) memory:
//!
//! ```
//! use tenoc_simt::{CoreConfig, KernelSpec, ShaderCore};
//!
//! let spec = KernelSpec::builder("demo")
//!     .warps_per_core(8)
//!     .insts_per_warp(100)
//!     .mem_fraction(0.1)
//!     .build();
//! let mut core = ShaderCore::new(0, CoreConfig::gtx280_like(), &spec, 1);
//! let mut cycle = 0;
//! while !core.done() && cycle < 1_000_000 {
//!     core.step(cycle);
//!     while let Some(req) = core.pop_request() {
//!         if !req.is_write {
//!             core.push_fill(req.line_addr); // zero-latency memory
//!         }
//!     }
//!     cycle += 1;
//! }
//! assert!(core.done());
//! assert_eq!(core.retired_warp_insts(), 8 * 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod core;
pub mod kernel;
pub mod warp;

pub use crate::core::{CoreConfig, CoreStats, MemRequest, SchedulerPolicy, ShaderCore};
pub use kernel::{KernelSpec, KernelSpecBuilder, TrafficClass};
pub use warp::{Warp, WarpState};
