//! The tuner's reproducible frontier report.
//!
//! Everything the search decided — and everything it threw away — is
//! serialized here: per-stage candidate counts (no silent truncation of
//! the grid), rejection witnesses, promotion scores, the successive-
//! halving trace, the Pareto frontier with each point's resolved
//! configuration and telemetry heatmap, and where the paper's named
//! design points landed. The JSON is deterministic (stable entry order,
//! stable float formatting, no wall-clock fields), so a golden snapshot
//! pins the whole search end-to-end.

use serde::json::Value;
use serde::{Deserialize, Serialize};

/// Candidate counts per stage. The invariant `enumerated =
/// unconstructible + rejected + legal` (plus any out-of-grid pinned
/// reference points) makes grid truncation visible: every enumerated
/// point is accounted for somewhere.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GridCounts {
    /// Grid points enumerated from the axes.
    pub enumerated: u64,
    /// Points no legal VC layout can express (builder witnesses).
    pub unconstructible: u64,
    /// Constructed candidates the verifier rejected (prover witnesses).
    pub rejected: u64,
    /// Verified candidates entering the stage-1 ranking.
    pub legal: u64,
    /// Pinned reference points injected from outside the grid.
    pub pinned_out_of_grid: u64,
    /// Candidates promoted to open-loop probing by static score.
    pub stage1_promoted: u64,
    /// Candidates promoted to closed-loop halving by probe score.
    pub stage2_promoted: u64,
    /// Closed-loop cells simulated (or served from cache) in stage 3.
    pub stage3_cells: u64,
    /// Candidates alive after the last halving rung.
    pub finalists: u64,
    /// Pareto-optimal finalists.
    pub frontier: u64,
}

/// One rejected grid point with its witnesses. Points sharing the exact
/// same witness set are merged (names are listed) to keep the report
/// readable without losing a single rejection.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rejection {
    /// `unconstructible` (builder) or `verify` (prover).
    pub stage: String,
    /// The witness messages.
    pub witnesses: Vec<String>,
    /// Every grid point rejected with exactly these witnesses, in
    /// enumeration order.
    pub names: Vec<String>,
}

/// A stage-1 (static audit) ranking entry, recorded for every promoted
/// or pinned candidate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Stage1Entry {
    /// Candidate name.
    pub name: String,
    /// Preset labels resolving to the identical fabric.
    pub aliases: Vec<String>,
    /// Canonical hash of the resolved configuration.
    pub config_hash: String,
    /// Static throughput-effectiveness score (bound per mm², ×1000).
    pub te_score: f64,
    /// Many-to-few saturation bound, packets/cycle/source-node.
    pub saturation_rate: f64,
    /// The bound in ejected flits/cycle/node.
    pub accepted_bound: f64,
    /// Total chip area, mm².
    pub area_mm2: f64,
    /// NoC share of the chip area, mm².
    pub noc_area_mm2: f64,
    /// Promoted to stage 2 on score (pinned candidates ride along even
    /// when `false`).
    pub promoted: bool,
    /// Pinned reference point.
    pub pinned: bool,
}

/// A stage-2 (open-loop probe) entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Stage2Entry {
    /// Candidate name.
    pub name: String,
    /// Fabric family (organization/routing/slicing). Promotion is
    /// stratified by family: each family's best first, then each
    /// family's second-best, and so on until the keep quota fills —
    /// open-loop saturation throughput ranks fairly *within* a family
    /// but under-prices area-lean families whose payoff is closed-loop.
    pub family: String,
    /// Probed injection rates, flits/cycle/node (multiples of the static
    /// saturation bound).
    pub rates: Vec<f64>,
    /// Measured steady-state ejection rate at each probed rate, in
    /// flits/cycle/node of the candidate's own fabric (half-width flits
    /// for double networks).
    pub ejection_rates: Vec<f64>,
    /// Measured steady-state ejection at each probed rate in payload
    /// bytes/cycle/node — width-independent, so comparable across
    /// candidates of different channel widths and slicings.
    pub ejection_bytes: Vec<f64>,
    /// Best measured ejection (bytes/cycle/node) per mm² of chip area,
    /// ×1000.
    pub probe_score: f64,
    /// Promoted to closed-loop halving on score.
    pub promoted: bool,
    /// Pinned reference point.
    pub pinned: bool,
}

/// One successive-halving rung.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rung {
    /// Benchmark simulated at this rung.
    pub benchmark: String,
    /// Candidates entering the rung.
    pub entrants: u64,
    /// Candidates kept after re-ranking on cumulative IPC/mm² (pinned
    /// reference points always survive).
    pub survivors: Vec<String>,
}

/// Measured IPC of one finalist on one benchmark.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchIpc {
    /// Benchmark abbreviation.
    pub benchmark: String,
    /// Measured closed-loop IPC.
    pub ipc: f64,
    /// Mean network latency seen by the workload, cycles.
    pub avg_net_latency: f64,
}

/// A candidate that survived every halving rung.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Finalist {
    /// Candidate name.
    pub name: String,
    /// Preset labels resolving to the identical fabric.
    pub aliases: Vec<String>,
    /// Canonical hash of the resolved configuration.
    pub config_hash: String,
    /// Total chip area, mm².
    pub area_mm2: f64,
    /// Per-benchmark measured IPC, ladder order.
    pub per_bench: Vec<BenchIpc>,
    /// Harmonic-mean IPC over the ladder.
    pub hm_ipc: f64,
    /// The objective: harmonic-mean IPC per mm² of chip area.
    pub ipc_per_mm2: f64,
    /// Pinned reference point.
    pub pinned: bool,
}

/// A telemetry heatmap of one physical network of a frontier point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeatmapReport {
    /// Network label (`net`, or `request`/`reply` for sliced fabrics).
    pub label: String,
    /// Benchmark the heatmap was captured on.
    pub benchmark: String,
    /// `heatmap[y][x]`: mean outgoing-link utilization of node `(x, y)`.
    pub heatmap: Vec<Vec<f64>>,
}

/// One Pareto-optimal design point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Candidate name.
    pub name: String,
    /// Preset labels resolving to the identical fabric.
    pub aliases: Vec<String>,
    /// Canonical hash of the resolved configuration — the fingerprint a
    /// re-run must reproduce.
    pub config_hash: String,
    /// Total chip area, mm².
    pub area_mm2: f64,
    /// NoC share of the chip area, mm².
    pub noc_area_mm2: f64,
    /// Harmonic-mean IPC over the ladder.
    pub hm_ipc: f64,
    /// The objective: harmonic-mean IPC per mm².
    pub ipc_per_mm2: f64,
    /// Static score the point entered the search with.
    pub te_score: f64,
    /// The resolved interconnect configuration, canonical field order.
    pub resolved: Value,
    /// Link-utilization heatmaps captured on the first ladder benchmark.
    pub heatmaps: Vec<HeatmapReport>,
}

/// Where one of the paper's named presets landed in the search.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NamedPoint {
    /// Preset label.
    pub preset: String,
    /// Grid candidate with the identical resolved configuration, or `-`
    /// when the preset lies outside the searched grid.
    pub candidate: String,
    /// How far it got: `not-in-grid`, `rejected`, `ranked`, `probed`,
    /// `halved`, or `finalist`.
    pub stage_reached: String,
    /// Whether it is one of the Pareto points.
    pub on_frontier: bool,
}

/// The full frontier report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TuneReport {
    /// Mesh radix searched.
    pub k: u64,
    /// Kernel scale of the closed-loop stage.
    pub scale: f64,
    /// Workload seed of the closed-loop stage.
    pub seed: u64,
    /// Successive-halving benchmark ladder, rung order.
    pub benchmarks: Vec<String>,
    /// Per-stage candidate accounting.
    pub counts: GridCounts,
    /// Every rejection, with witnesses.
    pub rejections: Vec<Rejection>,
    /// Static ranking of promoted and pinned candidates, best first.
    pub stage1: Vec<Stage1Entry>,
    /// Open-loop probe results, best first.
    pub stage2: Vec<Stage2Entry>,
    /// The successive-halving trace.
    pub rungs: Vec<Rung>,
    /// Candidates measured to the end of the ladder, best objective first.
    pub finalists: Vec<Finalist>,
    /// The IPC/mm² Pareto frontier, smallest area first.
    pub frontier: Vec<FrontierPoint>,
    /// Where the paper's named design points landed.
    pub named_points: Vec<NamedPoint>,
}

impl TuneReport {
    /// Serializes the report to pretty JSON (deterministic: entry order,
    /// map order and float formatting are all stable).
    ///
    /// # Panics
    ///
    /// Never panics: the report is plain data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is plain data")
    }

    /// Whether any frontier point resolves to the given preset label.
    pub fn frontier_has_alias(&self, label: &str) -> bool {
        self.frontier.iter().any(|p| p.aliases.iter().any(|a| a == label))
    }
}

/// Execution counters that deliberately live *outside* the report: cache
/// hits and simulated-cell counts vary with cache state, and the report
/// bytes must not.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneStats {
    /// Open-loop probes ticked.
    pub probes: usize,
    /// Closed-loop cells requested across all rungs.
    pub stage3_cells: usize,
    /// Of those, served from the result cache.
    pub stage3_cache_hits: usize,
}
