//! The tuner's design space: organization axes, the fallible candidate
//! builder, and deterministic naming.
//!
//! A *candidate* is one point of the search grid resolved to a concrete
//! [`IcntConfig`]. Construction is fallible by design: VC-layout rules
//! (phase splitting, torus datelines) make some axis combinations
//! impossible to even express, and the builder turns each such point
//! into a human-readable *unconstructible* witness instead of a panic —
//! the free tier-zero rejection of the staged search.

use serde::Serialize;
use tenoc_core::IcntConfig;
use tenoc_noc::{Mesh, NetworkConfig, Placement, RoutingKind, VcLayout};

/// Network organization: topology plus memory-controller placement, the
/// coarse axis of the paper's design space (Section V).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Org {
    /// Full-router mesh, MCs on the top/bottom rows (the baseline).
    MeshTb,
    /// Full-router mesh, checkerboard-staggered MC placement.
    MeshCp,
    /// Checkerboard mesh (alternating half routers), staggered MCs.
    CbMeshCp,
    /// Torus with wraparound links, MCs on the top/bottom rows.
    TorusTb,
    /// Concentrated mesh (2 cores per router), MCs on the top/bottom rows.
    CMeshTb,
}

impl Org {
    /// Every organization, in enumeration order.
    pub const ALL: [Org; 5] = [Org::MeshTb, Org::MeshCp, Org::CbMeshCp, Org::TorusTb, Org::CMeshTb];

    /// Short label used in candidate names.
    pub fn label(self) -> &'static str {
        match self {
            Org::MeshTb => "mesh-tb",
            Org::MeshCp => "mesh-cp",
            Org::CbMeshCp => "cbmesh-cp",
            Org::TorusTb => "torus-tb",
            Org::CMeshTb => "cmesh-tb",
        }
    }

    /// Whether the organization has wraparound links (and therefore needs
    /// dateline VCs).
    pub fn is_torus(self) -> bool {
        self == Org::TorusTb
    }

    /// The organization's base configuration at radix `k` — topology, MC
    /// placement and Table III defaults. Per-candidate axes (routing,
    /// VCs, buffers, channel width, ports) are overridden on top.
    pub fn base(self, k: usize) -> NetworkConfig {
        match self {
            Org::MeshTb => NetworkConfig::baseline_mesh(k),
            Org::MeshCp => {
                // Staggered MC placement on a full-router mesh, exactly as
                // `Preset::CpDor2vc` builds it.
                let base = NetworkConfig::baseline_mesh(k);
                let mesh = Mesh::all_full(k);
                let mc_nodes =
                    Mesh::checkerboard(k).mcs(Placement::Checkerboard, base.mc_nodes.len());
                NetworkConfig { mesh, mc_nodes, ..base }
            }
            Org::CbMeshCp => NetworkConfig::checkerboard_mesh(k),
            Org::TorusTb => NetworkConfig::baseline_torus(k),
            Org::CMeshTb => NetworkConfig::concentrated_mesh(k, 2),
        }
    }

    /// The routing functions worth pairing with this organization in the
    /// default grid (others are either redundant by symmetry or known
    /// illegal for every axis combination).
    pub fn default_routings(self) -> Vec<RoutingKind> {
        match self {
            Org::MeshTb | Org::MeshCp => vec![RoutingKind::DorXy, RoutingKind::O1Turn],
            Org::CbMeshCp => {
                vec![RoutingKind::Checkerboard, RoutingKind::DorXy, RoutingKind::O1Turn]
            }
            // Torus-with-checkerboard is deliberately kept: it is
            // unconstructible at every grid VC count and demonstrates the
            // builder's rejection witnesses.
            Org::TorusTb => vec![RoutingKind::DorXy, RoutingKind::Checkerboard],
            Org::CMeshTb => vec![RoutingKind::DorXy],
        }
    }
}

/// Short label for a routing function, used in candidate names.
pub fn routing_label(r: RoutingKind) -> &'static str {
    match r {
        RoutingKind::DorXy => "dor-xy",
        RoutingKind::DorYx => "dor-yx",
        RoutingKind::Checkerboard => "cr",
        RoutingKind::O1Turn => "o1turn",
        RoutingKind::Romm => "romm",
    }
}

/// One point of the search grid, before construction.
#[derive(Copy, Clone, Debug)]
pub struct Point {
    /// Topology + MC placement.
    pub org: Org,
    /// Routing function.
    pub routing: RoutingKind,
    /// Total virtual channels (split across the 2 protocol classes).
    pub vc_total: u8,
    /// Buffer depth per VC, in flits.
    pub vc_depth: usize,
    /// Channel width in bytes.
    pub channel_bytes: u32,
    /// `true` slices the fabric into two half-width physical networks.
    pub double: bool,
    /// MC injection ports.
    pub mc_inject: usize,
    /// MC ejection ports.
    pub mc_eject: usize,
}

impl Point {
    /// The point's deterministic name, e.g. `cbmesh-cp/cr/4v/d8/c16/dbl/i2e1`.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/{}v/d{}/c{}/{}/i{}e{}",
            self.org.label(),
            routing_label(self.routing),
            self.vc_total,
            self.vc_depth,
            self.channel_bytes,
            if self.double { "dbl" } else { "sgl" },
            self.mc_inject,
            self.mc_eject
        )
    }

    /// The point's fabric *family*: organization, routing and slicing —
    /// the axes that change what kind of fabric it is, as opposed to the
    /// tuning knobs (VCs, depth, width, ports) that vary within a kind.
    /// Stage-2 promotion is stratified by family so that open-loop
    /// saturation throughput (which prices families very differently
    /// from closed-loop IPC) ranks candidates within a family without
    /// letting one family flood the cut.
    pub fn family(&self) -> String {
        format!(
            "{}/{}/{}",
            self.org.label(),
            routing_label(self.routing),
            if self.double { "dbl" } else { "sgl" }
        )
    }

    /// Resolves the point to a concrete interconnect configuration, or an
    /// unconstructible-witness explaining which VC-layout rule the axis
    /// combination cannot satisfy. The checks mirror the `VcLayout`
    /// constructor panics exactly, so a constructed candidate can never
    /// panic downstream.
    pub fn build(&self, k: usize) -> Result<IcntConfig, String> {
        let split = self.routing.needs_phase_split();
        let total = self.vc_total;
        if total < 2 || !total.is_multiple_of(2) {
            return Err(format!("{total} VCs cannot split evenly across 2 protocol classes"));
        }
        if split && !(total / 2).is_multiple_of(2) {
            return Err(format!(
                "{} routing needs phase-split VCs: {total} total leaves {} per class, \
                 which cannot halve into XY/YX phases",
                routing_label(self.routing),
                total / 2
            ));
        }
        if self.org.is_torus() {
            let subset = if split { total / 4 } else { total / 2 };
            if subset < 2 || !subset.is_multiple_of(2) {
                return Err(format!(
                    "torus dateline needs an even number (>= 2) of VCs per class/phase \
                     subset, got {subset}"
                ));
            }
        }
        if self.double && !self.channel_bytes.is_multiple_of(2) {
            return Err(format!(
                "a {}-byte channel cannot slice into two half-width networks",
                self.channel_bytes
            ));
        }
        let mut cfg = self.org.base(k);
        cfg.routing = self.routing;
        cfg.vc_depth = self.vc_depth;
        cfg.channel_bytes = self.channel_bytes;
        cfg.mc_inject_ports = self.mc_inject;
        cfg.mc_eject_ports = self.mc_eject;
        let mut vcs = VcLayout::new(total, 2, split);
        if self.org.is_torus() {
            vcs = vcs.with_dateline();
        }
        cfg.vcs = vcs;
        Ok(if self.double { IcntConfig::Double(cfg) } else { IcntConfig::Mesh(cfg) })
    }
}

/// A constructible candidate: a named point resolved to its interconnect
/// configuration and canonical content hash.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Deterministic grid name (see [`Point::name`]), or `pin:<label>`
    /// for a pinned reference preset absent from the grid.
    pub name: String,
    /// Fabric family ([`Point::family`]) used for stratified stage-2
    /// promotion; pinned out-of-grid candidates are each their own
    /// family.
    pub family: String,
    /// The resolved interconnect.
    pub icnt: IcntConfig,
    /// Canonical hash of the resolved configuration ([`config_hash`]).
    pub config_hash: String,
    /// Preset labels whose resolved configuration is identical.
    pub aliases: Vec<String>,
    /// Pinned reference points ride through every stage un-eliminated so
    /// the final report can place them against the frontier.
    pub pinned: bool,
}

/// Canonical content hash of a resolved interconnect configuration — the
/// same address `tenoc-serve` keys its result cache by, so two
/// candidates (or a candidate and a preset) with equal hashes are the
/// same fabric.
pub fn config_hash(icnt: &IcntConfig) -> String {
    tenoc_serve::hash_value(&icnt.to_value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenoc_core::Preset;

    #[test]
    fn grid_point_reproduces_thr_eff_exactly() {
        // The whole search hinges on the grid containing the paper's
        // throughput-effective design: same point, same canonical hash.
        let p = Point {
            org: Org::CbMeshCp,
            routing: RoutingKind::Checkerboard,
            vc_total: 4,
            vc_depth: 8,
            channel_bytes: 16,
            double: true,
            mc_inject: 2,
            mc_eject: 1,
        };
        let icnt = p.build(6).expect("thr-eff point is constructible");
        assert_eq!(config_hash(&icnt), config_hash(&Preset::ThroughputEffective.icnt(6)));
    }

    #[test]
    fn baseline_torus_and_cmesh_points_match_their_presets() {
        for (org, vc, preset) in [
            (Org::MeshTb, 2, Preset::BaselineTbDor),
            (Org::TorusTb, 4, Preset::TorusDor),
            (Org::CMeshTb, 2, Preset::CMeshDor),
        ] {
            let p = Point {
                org,
                routing: RoutingKind::DorXy,
                vc_total: vc,
                vc_depth: 8,
                channel_bytes: 16,
                double: false,
                mc_inject: 1,
                mc_eject: 1,
            };
            let icnt = p.build(6).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
            assert_eq!(
                config_hash(&icnt),
                config_hash(&preset.icnt(6)),
                "{} != {}",
                p.name(),
                preset.label()
            );
        }
    }

    #[test]
    fn unconstructible_points_return_witnesses_not_panics() {
        let cases = [
            // Checkerboard routing with 2 VCs: no room for phase halves.
            Point {
                org: Org::CbMeshCp,
                routing: RoutingKind::Checkerboard,
                vc_total: 2,
                vc_depth: 8,
                channel_bytes: 16,
                double: false,
                mc_inject: 1,
                mc_eject: 1,
            },
            // Torus with 2 VCs: one VC per class cannot hold a dateline.
            Point {
                org: Org::TorusTb,
                routing: RoutingKind::DorXy,
                vc_total: 2,
                vc_depth: 8,
                channel_bytes: 16,
                double: false,
                mc_inject: 1,
                mc_eject: 1,
            },
            // Torus + checkerboard at 4 VCs: 1 VC per class/phase subset.
            Point {
                org: Org::TorusTb,
                routing: RoutingKind::Checkerboard,
                vc_total: 4,
                vc_depth: 8,
                channel_bytes: 16,
                double: false,
                mc_inject: 1,
                mc_eject: 1,
            },
        ];
        for p in cases {
            let err = p.build(6).expect_err(&p.name());
            assert!(!err.is_empty());
        }
    }
}
