//! # tenoc-tune — staged-fidelity search of the IPC/mm² Pareto frontier
//!
//! The paper's thesis is that *throughput-effective* networks — the ones
//! that maximize application throughput per mm² of chip area — are found
//! by co-designing topology, MC placement, routing and channel
//! organization, not by maximizing any single network metric. This crate
//! turns that claim into a search: it enumerates a deterministic design
//! grid over every axis the repository models and drives each candidate
//! through four fidelity tiers, spending simulation cycles only on
//! candidates that static analysis cannot already rule out:
//!
//! - **Stage 0 — construct + verify (free):** grid points that violate
//!   VC-layout rules are rejected by the builder with a witness; the
//!   rest are run through `tenoc-verify`'s prover, and illegal fabrics
//!   are rejected with the prover's witnesses. Every rejection is
//!   recorded in the report.
//! - **Stage 1 — static rank (cheap):** survivors are ranked by the
//!   audit's static throughput-effectiveness score (many-to-few
//!   saturation bound per mm²) and the best are promoted.
//! - **Stage 2 — open-loop probes (medium):** promoted candidates are
//!   probed at a few injection rates around their static bound, all
//!   probes of one candidate advancing in lockstep; the measured
//!   steady-state ejection rate per mm² decides promotion.
//! - **Stage 3 — closed-loop halving (expensive):** survivors race
//!   through a successive-halving ladder of full closed-loop benchmark
//!   simulations, with results memoized through `tenoc-serve`'s
//!   content-addressed cache, and the finalists' measured harmonic-mean
//!   IPC per mm² defines the Pareto frontier.
//!
//! Pinned reference designs (the baseline mesh, the torus, the
//! concentrated mesh) ride through every stage regardless of rank so the
//! final report can place them against the frontier. The whole search is
//! **bit-deterministic at any worker count**: candidate enumeration is
//! ordered, every tie-break is total, probe seeds derive from content
//! hashes, and the report carries no wall-clock or cache-state fields.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;
pub mod space;

use std::collections::HashMap;
use std::path::PathBuf;

pub use report::{
    BenchIpc, Finalist, FrontierPoint, GridCounts, HeatmapReport, NamedPoint, Rejection, Rung,
    Stage1Entry, Stage2Entry, TuneReport, TuneStats,
};
pub use space::{config_hash, Candidate, Org, Point};

use serde::Serialize;
use tenoc_core::experiments::run_traced_with_system_config;
use tenoc_core::{audit_icnt, harmonic_mean, AuditEntry, Preset, SystemConfig, TelemetryConfig};
use tenoc_harness::pool::run_indexed;
use tenoc_harness::{run_config_cells, ConfigCell};
use tenoc_noc::openloop::{
    run_probes_lockstep, OpenLoopConfig, OpenLoopProbe, OpenLoopResult, TrafficPattern,
};
use tenoc_noc::{ArenaDoubleNetwork, ArenaNetwork, DoubleNetwork, Network, RoutingKind};
use tenoc_serve::{config_cell_key, CachedCell, DiskCache};
use tenoc_verify::load::TrafficMatrix;

/// One organization axis of the grid: a topology/placement paired with
/// the routing functions to try on it.
#[derive(Clone, Debug)]
pub struct OrgAxis {
    /// Topology + MC placement.
    pub org: Org,
    /// Routing functions enumerated for this organization.
    pub routings: Vec<RoutingKind>,
}

/// The search specification: grid axes plus stage knobs. Everything that
/// shapes the report lives here; everything about *how fast* the search
/// runs (worker count, batching, caching) lives in [`TuneOptions`].
#[derive(Clone, Debug)]
pub struct TuneSpec {
    /// Mesh radix.
    pub k: usize,
    /// Organization × routing axes.
    pub axes: Vec<OrgAxis>,
    /// Total VC counts to try.
    pub vc_totals: Vec<u8>,
    /// Per-VC buffer depths (flits) to try.
    pub vc_depths: Vec<usize>,
    /// Channel widths (bytes) to try.
    pub channel_bytes: Vec<u32>,
    /// Channel slicings to try: `false` = one full-width network,
    /// `true` = two half-width slices.
    pub slicings: Vec<bool>,
    /// `[inject, eject]` MC port counts to try.
    pub mc_ports: Vec<[usize; 2]>,
    /// Candidates promoted from the static ranking to open-loop probing.
    pub stage1_keep: usize,
    /// Candidates promoted from probing to closed-loop halving. The
    /// promotion is stratified by fabric family (organization/routing/
    /// slicing): each family's best candidate first, then each family's
    /// second-best, and so on, score-ordered within a depth, until the
    /// quota fills.
    pub stage2_keep: usize,
    /// Probe injection rates, as multiples of each candidate's static
    /// many-to-few saturation bound.
    pub probe_multipliers: Vec<f64>,
    /// Open-loop probe windows: `[warmup, measure, drain]` cycles.
    pub probe_windows: [u64; 3],
    /// Successive-halving benchmark ladder (rung order). Must not be
    /// empty.
    pub benchmarks: Vec<String>,
    /// Kernel scale for the closed-loop stage.
    pub scale: f64,
    /// Workload seed for the closed-loop stage (shared by every cell, so
    /// tuner cells hit the same cache addresses as fixed-seed sweeps).
    pub seed: u64,
    /// Reference presets carried through every stage un-eliminated.
    pub pinned: Vec<Preset>,
}

impl TuneSpec {
    /// The default search at radix `k`: every organization the
    /// repository models, the paper's channel/VC/port axes, and the
    /// smoke-suite benchmark ladder. About 480 grid points.
    pub fn default_at(k: usize) -> Self {
        TuneSpec {
            k,
            axes: Org::ALL
                .iter()
                .map(|&org| OrgAxis { org, routings: org.default_routings() })
                .collect(),
            vc_totals: vec![2, 4],
            vc_depths: vec![4, 8],
            channel_bytes: vec![16, 32],
            slicings: vec![false, true],
            mc_ports: vec![[1, 1], [2, 1], [2, 2]],
            stage1_keep: 32,
            stage2_keep: 16,
            probe_multipliers: vec![0.6, 0.9, 1.3],
            probe_windows: [2_000, 6_000, 8_000],
            benchmarks: vec!["HIS".to_string(), "MM".to_string(), "RD".to_string()],
            scale: 0.12,
            seed: 0x7e0c,
            pinned: vec![Preset::BaselineTbDor, Preset::TorusDor, Preset::CMeshDor],
        }
    }

    /// A deliberately small search for tests: two organizations, one
    /// rung, tiny probe windows — but still containing the paper's
    /// throughput-effective point. 16 grid points.
    pub fn tiny() -> Self {
        TuneSpec {
            k: 6,
            axes: vec![
                OrgAxis { org: Org::CbMeshCp, routings: vec![RoutingKind::Checkerboard] },
                OrgAxis { org: Org::MeshTb, routings: vec![RoutingKind::DorXy] },
            ],
            vc_totals: vec![2, 4],
            vc_depths: vec![8],
            channel_bytes: vec![16],
            slicings: vec![false, true],
            mc_ports: vec![[1, 1], [2, 1]],
            stage1_keep: 6,
            stage2_keep: 4,
            probe_multipliers: vec![0.5, 1.0],
            probe_windows: [200, 600, 800],
            benchmarks: vec!["HIS".to_string()],
            scale: 0.02,
            seed: 0x7e0c,
            pinned: vec![Preset::BaselineTbDor],
        }
    }
}

/// Execution knobs that must not change a single report byte: worker
/// count, lockstep batch size, and result caching.
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Worker threads for every parallel stage.
    pub jobs: usize,
    /// Lockstep batch size for same-shape closed-loop cells.
    pub batch: usize,
    /// Directory of a persistent result cache shared with `tenoc serve`
    /// (cells are keyed by canonical content address, so re-runs and
    /// preset sweeps are memoized across processes).
    pub cache_dir: Option<PathBuf>,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions { jobs: 1, batch: 8, cache_dir: None }
    }
}

/// How far a candidate got, for the named-point placement table.
#[derive(Copy, Clone, PartialEq, Debug)]
enum Reached {
    Rejected,
    Ranked,
    Probed,
    Halved,
    Finalist,
}

impl Reached {
    fn label(self) -> &'static str {
        match self {
            Reached::Rejected => "rejected",
            Reached::Ranked => "ranked",
            Reached::Probed => "probed",
            Reached::Halved => "halved",
            Reached::Finalist => "finalist",
        }
    }
}

/// Appends a rejection, merging points that share the exact witness set.
fn push_rejection(
    rejections: &mut Vec<Rejection>,
    stage: &str,
    witnesses: Vec<String>,
    name: &str,
) {
    if let Some(r) = rejections.iter_mut().find(|r| r.stage == stage && r.witnesses == witnesses) {
        r.names.push(name.to_string());
        return;
    }
    rejections.push(Rejection {
        stage: stage.to_string(),
        witnesses,
        names: vec![name.to_string()],
    });
}

/// Deterministic per-probe seed: the candidate's content hash folded
/// into the spec seed, so a probe's traffic depends on *what* is probed,
/// never on enumeration position.
fn probe_seed(spec_seed: u64, config_hash: &str, rate_index: usize) -> u64 {
    let h = u64::from_str_radix(config_hash, 16).unwrap_or(0);
    tenoc_harness::cell_seed(spec_seed ^ h, rate_index as u64)
}

fn probe_candidate(
    cand: &Candidate,
    audit: &AuditEntry,
    spec: &TuneSpec,
) -> (Vec<f64>, Vec<OpenLoopResult>) {
    let sat =
        audit.matrix(TrafficMatrix::ManyToFew).map(|m| m.saturation_rate).unwrap_or(0.01).max(1e-6);
    let rates: Vec<f64> = spec.probe_multipliers.iter().map(|m| m * sat).collect();
    // Probes drive the candidate's *actual* fabric: a double candidate
    // is probed on its two half-width slices, not on the unsliced base
    // (which would cap its measured ejection at the single-network
    // capacity and structurally penalize every sliced design). Fabrics
    // of different channel widths eject different flit counts for the
    // same payload, so cross-candidate comparison happens on the
    // width-independent `ejection_bytes_rate`.
    let base = cand.icnt.net().clone();
    let double = matches!(cand.icnt, tenoc_core::IcntConfig::Double(_));
    let [warmup, measure, drain] = spec.probe_windows;
    let cfgs: Vec<OpenLoopConfig> = rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let mut cfg = OpenLoopConfig::new(base.clone(), rate, TrafficPattern::UniformRandom);
            cfg.warmup = warmup;
            cfg.measure = measure;
            cfg.drain = drain;
            cfg.seed = probe_seed(spec.seed, &cand.config_hash, i);
            cfg
        })
        .collect();
    // Engine choice mirrors `IcntConfig::build_interconnect`: the arena
    // engine when the (sliced, for doubles) config is arena-eligible,
    // the oracle network otherwise. The choice is a pure function of the
    // config, so it cannot perturb determinism.
    let results = if double {
        if base.channel_bytes.is_multiple_of(2) && ArenaNetwork::supports(&base.slice()) {
            let mut probes: Vec<OpenLoopProbe<ArenaDoubleNetwork>> = cfgs
                .into_iter()
                .map(|cfg| {
                    let net = ArenaDoubleNetwork::from_single(&cfg.net);
                    OpenLoopProbe::new(cfg, net)
                })
                .collect();
            run_probes_lockstep(&mut probes)
        } else {
            let mut probes: Vec<OpenLoopProbe<DoubleNetwork>> = cfgs
                .into_iter()
                .map(|cfg| {
                    let net = DoubleNetwork::from_single(&cfg.net);
                    OpenLoopProbe::new(cfg, net)
                })
                .collect();
            run_probes_lockstep(&mut probes)
        }
    } else if ArenaNetwork::supports(&base) {
        let mut probes: Vec<OpenLoopProbe<ArenaNetwork>> = cfgs
            .into_iter()
            .map(|cfg| {
                let net = ArenaNetwork::new(cfg.net.clone());
                OpenLoopProbe::new(cfg, net)
            })
            .collect();
        run_probes_lockstep(&mut probes)
    } else {
        let mut probes: Vec<OpenLoopProbe<Network>> = cfgs
            .into_iter()
            .map(|cfg| {
                let net = Network::new(cfg.net.clone());
                OpenLoopProbe::new(cfg, net)
            })
            .collect();
        run_probes_lockstep(&mut probes)
    };
    (rates, results)
}

/// The Pareto frontier of `(area ↓, hm_ipc ↑)` over the finalists:
/// smallest area first, strictly increasing harmonic-mean IPC.
fn pareto_indices(finalists: &[Finalist]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..finalists.len()).collect();
    order.sort_by(|&a, &b| {
        finalists[a]
            .area_mm2
            .total_cmp(&finalists[b].area_mm2)
            .then(finalists[b].hm_ipc.total_cmp(&finalists[a].hm_ipc))
            .then(finalists[a].name.cmp(&finalists[b].name))
    });
    let mut best = f64::NEG_INFINITY;
    let mut keep = Vec::new();
    for i in order {
        if finalists[i].hm_ipc > best {
            best = finalists[i].hm_ipc;
            keep.push(i);
        }
    }
    keep
}

/// Runs the staged search and returns the frontier report plus the
/// execution counters that deliberately stay out of it.
///
/// The report is bit-identical at any `jobs`/`batch` value and with any
/// cache state (cold, warm, or absent).
///
/// # Errors
///
/// Returns an error only for result-cache I/O failures.
///
/// # Panics
///
/// Panics if the spec has an empty benchmark ladder or names an unknown
/// benchmark, or if a closed-loop cell hits the safety cycle limit.
pub fn run_tune(spec: &TuneSpec, opts: &TuneOptions) -> std::io::Result<(TuneReport, TuneStats)> {
    assert!(!spec.benchmarks.is_empty(), "benchmark ladder must not be empty");
    let jobs = opts.jobs.max(1);
    let mut stats = TuneStats::default();
    let mut rejections: Vec<Rejection> = Vec::new();

    // ---- Stage 0a: enumerate and construct -------------------------------
    let mut enumerated: u64 = 0;
    let mut unconstructible: u64 = 0;
    let mut cands: Vec<Candidate> = Vec::new();
    for axis in &spec.axes {
        for &routing in &axis.routings {
            for &vc_total in &spec.vc_totals {
                for &vc_depth in &spec.vc_depths {
                    for &channel_bytes in &spec.channel_bytes {
                        for &double in &spec.slicings {
                            for &[mc_inject, mc_eject] in &spec.mc_ports {
                                let p = Point {
                                    org: axis.org,
                                    routing,
                                    vc_total,
                                    vc_depth,
                                    channel_bytes,
                                    double,
                                    mc_inject,
                                    mc_eject,
                                };
                                enumerated += 1;
                                match p.build(spec.k) {
                                    Ok(icnt) => {
                                        let config_hash = config_hash(&icnt);
                                        cands.push(Candidate {
                                            name: p.name(),
                                            family: p.family(),
                                            icnt,
                                            config_hash,
                                            aliases: Vec::new(),
                                            pinned: false,
                                        });
                                    }
                                    Err(witness) => {
                                        unconstructible += 1;
                                        push_rejection(
                                            &mut rejections,
                                            "unconstructible",
                                            vec![witness],
                                            &p.name(),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // ---- Pinned reference points and preset aliases ----------------------
    let preset_hashes: Vec<(String, String)> =
        Preset::NAMED.iter().map(|p| (p.label(), config_hash(&p.icnt(spec.k)))).collect();
    let mut pinned_out_of_grid: u64 = 0;
    for p in &spec.pinned {
        let h = config_hash(&p.icnt(spec.k));
        match cands.iter_mut().find(|c| c.config_hash == h) {
            Some(c) => c.pinned = true,
            None => {
                pinned_out_of_grid += 1;
                cands.push(Candidate {
                    name: format!("pin:{}", p.label()),
                    family: format!("pin:{}", p.label()),
                    icnt: p.icnt(spec.k),
                    config_hash: h,
                    aliases: Vec::new(),
                    pinned: true,
                });
            }
        }
    }
    for c in &mut cands {
        c.aliases = preset_hashes
            .iter()
            .filter(|(_, h)| *h == c.config_hash)
            .map(|(label, _)| label.clone())
            .collect();
    }

    // ---- Stage 0b: verify; Stage 1: static rank --------------------------
    let audits: Vec<AuditEntry> =
        run_indexed(cands.len(), jobs, |i| audit_icnt(&cands[i].name, &cands[i].icnt));
    let mut reached: Vec<Reached> = vec![Reached::Rejected; cands.len()];
    let mut legal: Vec<usize> = Vec::new();
    for (i, a) in audits.iter().enumerate() {
        if !a.legal {
            push_rejection(&mut rejections, "verify", a.violations.clone(), &cands[i].name);
            continue;
        }
        let unroutable =
            a.matrix(TrafficMatrix::ManyToFew).map(|m| m.demands_unroutable).unwrap_or(0);
        if unroutable > 0 {
            push_rejection(
                &mut rejections,
                "unroutable",
                vec![format!(
                    "{unroutable} many-to-few demands have no legal path; the fabric \
                     cannot serve its own memory traffic"
                )],
                &cands[i].name,
            );
            continue;
        }
        reached[i] = Reached::Ranked;
        legal.push(i);
    }
    let rejected = cands.len() as u64 - legal.len() as u64;

    legal.sort_by(|&a, &b| {
        audits[b].te_score.total_cmp(&audits[a].te_score).then(cands[a].name.cmp(&cands[b].name))
    });
    let stage1_cut: Vec<usize> = legal.iter().copied().take(spec.stage1_keep).collect();
    let probe_set: Vec<usize> =
        legal.iter().copied().filter(|&i| stage1_cut.contains(&i) || cands[i].pinned).collect();
    let stage1: Vec<Stage1Entry> = probe_set
        .iter()
        .map(|&i| {
            let a = &audits[i];
            let m2f = a.matrix(TrafficMatrix::ManyToFew);
            Stage1Entry {
                name: cands[i].name.clone(),
                aliases: cands[i].aliases.clone(),
                config_hash: cands[i].config_hash.clone(),
                te_score: a.te_score,
                saturation_rate: m2f.map(|m| m.saturation_rate).unwrap_or(0.0),
                accepted_bound: m2f.map(|m| m.accepted_bound).unwrap_or(0.0),
                area_mm2: a.area_mm2,
                noc_area_mm2: a.noc_area_mm2,
                promoted: stage1_cut.contains(&i),
                pinned: cands[i].pinned,
            }
        })
        .collect();

    // ---- Stage 2: open-loop probes ---------------------------------------
    for &i in &probe_set {
        reached[i] = Reached::Probed;
    }
    let probed: Vec<(Vec<f64>, Vec<OpenLoopResult>)> = run_indexed(probe_set.len(), jobs, |j| {
        probe_candidate(&cands[probe_set[j]], &audits[probe_set[j]], spec)
    });
    stats.probes = probed.iter().map(|(r, _)| r.len()).sum();
    let mut stage2: Vec<Stage2Entry> = probe_set
        .iter()
        .zip(&probed)
        .map(|(&i, (rates, results))| {
            let best = results.iter().map(|r| r.ejection_bytes_rate).fold(0.0, f64::max);
            Stage2Entry {
                name: cands[i].name.clone(),
                family: cands[i].family.clone(),
                rates: rates.clone(),
                ejection_rates: results.iter().map(|r| r.ejection_rate).collect(),
                ejection_bytes: results.iter().map(|r| r.ejection_bytes_rate).collect(),
                probe_score: 1000.0 * best / audits[i].area_mm2,
                promoted: false,
                pinned: cands[i].pinned,
            }
        })
        .collect();
    let mut order: Vec<usize> = (0..stage2.len()).collect();
    order.sort_by(|&a, &b| {
        stage2[b]
            .probe_score
            .total_cmp(&stage2[a].probe_score)
            .then(stage2[a].name.cmp(&stage2[b].name))
    });
    // Stratified promotion: every family's best candidate first, then
    // every family's second-best, and so on (score order within each
    // depth) until `stage2_keep` slots are filled. Open-loop saturation
    // throughput prices fabric families very differently from the
    // closed-loop objective — a sliced network trades peak reply
    // bandwidth for area, which only pays off below saturation — so a
    // global top-N here would let one family flood the cut and starve
    // exactly the designs the closed-loop stage exists to measure.
    let mut family_depth: HashMap<&str, usize> = HashMap::new();
    let mut depth_pools: Vec<Vec<usize>> = Vec::new();
    for &j in &order {
        let d = family_depth.entry(stage2[j].family.as_str()).or_insert(0);
        if depth_pools.len() == *d {
            depth_pools.push(Vec::new());
        }
        depth_pools[*d].push(j);
        *d += 1;
    }
    let mut slots = spec.stage2_keep;
    'promote: for pool in &depth_pools {
        for &j in pool {
            if slots == 0 {
                break 'promote;
            }
            stage2[j].promoted = true;
            slots -= 1;
        }
    }
    let mut alive: Vec<usize> = order
        .iter()
        .filter(|&&j| stage2[j].promoted || stage2[j].pinned)
        .map(|&j| probe_set[j])
        .collect();
    let stage2_promoted = alive.len() as u64;
    stage2.sort_by(|a, b| b.probe_score.total_cmp(&a.probe_score).then(a.name.cmp(&b.name)));

    // ---- Stage 3: successive halving over the benchmark ladder -----------
    let mut cache = match &opts.cache_dir {
        Some(dir) => Some(DiskCache::open(dir)?),
        None => None,
    };
    let mut per_bench: HashMap<usize, Vec<BenchIpc>> = HashMap::new();
    let mut rungs: Vec<Rung> = Vec::new();
    let mut stage3_cells: u64 = 0;
    for (r, bench) in spec.benchmarks.iter().enumerate() {
        for &i in &alive {
            reached[i] = Reached::Halved;
        }
        let cells: Vec<ConfigCell> = alive
            .iter()
            .map(|&i| ConfigCell {
                icnt: cands[i].icnt.clone(),
                benchmark: bench.clone(),
                scale: spec.scale,
                seed: spec.seed,
            })
            .collect();
        stage3_cells += cells.len() as u64;
        stats.stage3_cells += cells.len();
        let keys: Vec<String> =
            cells.iter().map(|c| config_cell_key(&c.icnt, &c.benchmark, c.scale, c.seed)).collect();
        let mut metrics: Vec<Option<tenoc_core::RunMetrics>> = keys
            .iter()
            .map(|k| cache.as_ref().and_then(|c| c.get(k)).map(|hit| hit.metrics))
            .collect();
        stats.stage3_cache_hits += metrics.iter().filter(|m| m.is_some()).count();
        let miss: Vec<usize> = (0..cells.len()).filter(|&j| metrics[j].is_none()).collect();
        let miss_cells: Vec<ConfigCell> = miss.iter().map(|&j| cells[j].clone()).collect();
        let fresh = run_config_cells(&miss_cells, jobs, opts.batch);
        for (&j, &(class, m)) in miss.iter().zip(fresh.iter()) {
            metrics[j] = Some(m);
            if let Some(c) = cache.as_mut() {
                c.put(&keys[j], CachedCell { class, metrics: m })?;
            }
        }
        for (&i, m) in alive.iter().zip(&metrics) {
            let m = m.expect("every cell measured");
            per_bench.entry(i).or_default().push(BenchIpc {
                benchmark: bench.clone(),
                ipc: m.ipc,
                avg_net_latency: m.avg_net_latency,
            });
        }
        // Re-rank on the objective measured so far and halve the field
        // (pinned reference points always survive; the last rung keeps
        // everyone — its entrants are the finalists).
        alive.sort_by(|&a, &b| {
            let obj =
                |i: usize| harmonic_mean(per_bench[&i].iter().map(|x| x.ipc)) / audits[i].area_mm2;
            obj(b).total_cmp(&obj(a)).then(cands[a].name.cmp(&cands[b].name))
        });
        if r + 1 < spec.benchmarks.len() {
            let open = alive.iter().filter(|&&i| !cands[i].pinned).count();
            let keep = open.div_ceil(2).max(2.min(open));
            let mut kept = 0usize;
            alive.retain(|&i| {
                if cands[i].pinned {
                    return true;
                }
                kept += 1;
                kept <= keep
            });
        }
        rungs.push(Rung {
            benchmark: bench.clone(),
            entrants: cells.len() as u64,
            survivors: alive.iter().map(|&i| cands[i].name.clone()).collect(),
        });
    }

    // ---- Finalists and the frontier --------------------------------------
    for &i in &alive {
        reached[i] = Reached::Finalist;
    }
    let finalists: Vec<Finalist> = alive
        .iter()
        .map(|&i| {
            let per = per_bench[&i].clone();
            let hm = harmonic_mean(per.iter().map(|x| x.ipc));
            Finalist {
                name: cands[i].name.clone(),
                aliases: cands[i].aliases.clone(),
                config_hash: cands[i].config_hash.clone(),
                area_mm2: audits[i].area_mm2,
                per_bench: per,
                hm_ipc: hm,
                ipc_per_mm2: hm / audits[i].area_mm2,
                pinned: cands[i].pinned,
            }
        })
        .collect();
    let frontier_idx = pareto_indices(&finalists);

    // Telemetry heatmaps for each frontier point, captured on the first
    // ladder benchmark (telemetry observes without perturbing, so this
    // re-run measures exactly the cell stage 3 scored).
    let heat_bench = spec.benchmarks[0].clone();
    let heat_spec = tenoc_workloads::by_name(&heat_bench)
        .unwrap_or_else(|| panic!("unknown benchmark {heat_bench}"));
    let heatmaps: Vec<Vec<HeatmapReport>> = run_indexed(frontier_idx.len(), jobs, |j| {
        let f = &finalists[frontier_idx[j]];
        let i = alive[frontier_idx[j]];
        debug_assert_eq!(cands[i].name, f.name);
        let mut cfg = SystemConfig::with_icnt(cands[i].icnt.clone());
        cfg.seed = spec.seed;
        let (_, reports) =
            run_traced_with_system_config(cfg, &heat_spec, spec.scale, TelemetryConfig::default());
        reports
            .into_iter()
            .map(|t| HeatmapReport {
                label: t.label,
                benchmark: heat_bench.clone(),
                heatmap: t.heatmap,
            })
            .collect()
    });
    let frontier: Vec<FrontierPoint> = frontier_idx
        .iter()
        .zip(heatmaps)
        .map(|(&j, heatmaps)| {
            let f = &finalists[j];
            let i = alive[j];
            FrontierPoint {
                name: f.name.clone(),
                aliases: f.aliases.clone(),
                config_hash: f.config_hash.clone(),
                area_mm2: f.area_mm2,
                noc_area_mm2: audits[i].noc_area_mm2,
                hm_ipc: f.hm_ipc,
                ipc_per_mm2: f.ipc_per_mm2,
                te_score: audits[i].te_score,
                resolved: tenoc_serve::canonicalize(&cands[i].icnt.to_value()),
                heatmaps,
            }
        })
        .collect();

    // ---- Named-point placement -------------------------------------------
    let named_points: Vec<NamedPoint> = preset_hashes
        .iter()
        .map(|(label, h)| {
            let cand = cands.iter().position(|c| &c.config_hash == h);
            NamedPoint {
                preset: label.clone(),
                candidate: cand.map(|i| cands[i].name.clone()).unwrap_or_else(|| "-".into()),
                stage_reached: cand
                    .map(|i| reached[i].label().to_string())
                    .unwrap_or_else(|| "not-in-grid".into()),
                on_frontier: frontier.iter().any(|p| &p.config_hash == h),
            }
        })
        .collect();

    let counts = GridCounts {
        enumerated,
        unconstructible,
        rejected,
        legal: legal.len() as u64,
        pinned_out_of_grid,
        stage1_promoted: probe_set.len() as u64,
        stage2_promoted,
        stage3_cells,
        finalists: finalists.len() as u64,
        frontier: frontier.len() as u64,
    };
    let report = TuneReport {
        k: spec.k as u64,
        scale: spec.scale,
        seed: spec.seed,
        benchmarks: spec.benchmarks.clone(),
        counts,
        rejections,
        stage1,
        stage2,
        rungs,
        finalists,
        frontier,
        named_points,
    };
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_search_is_deterministic_across_jobs_and_finds_thr_eff() {
        let spec = TuneSpec::tiny();
        let (a, _) = run_tune(&spec, &TuneOptions { jobs: 1, batch: 1, cache_dir: None }).unwrap();
        let (b, _) = run_tune(&spec, &TuneOptions { jobs: 4, batch: 8, cache_dir: None }).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "report must be byte-identical at any jobs/batch");
        assert!(
            a.frontier_has_alias("Thr-Eff"),
            "tiny search must rediscover the throughput-effective point; frontier: {:?}",
            a.frontier.iter().map(|p| &p.name).collect::<Vec<_>>()
        );
        // Every enumerated point is accounted for.
        let c = &a.counts;
        assert_eq!(
            c.enumerated + c.pinned_out_of_grid,
            c.unconstructible + c.rejected + c.legal,
            "grid accounting must balance: {c:?}"
        );
        assert!(c.frontier >= 1 && c.frontier <= c.finalists);
    }

    #[test]
    fn cache_reuse_does_not_change_the_report() {
        let dir = std::env::temp_dir().join(format!("tenoc-tune-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let spec = TuneSpec::tiny();
        let cold_opts = TuneOptions { jobs: 2, batch: 4, cache_dir: Some(dir.clone()) };
        let (cold, cold_stats) = run_tune(&spec, &cold_opts).unwrap();
        let (warm, warm_stats) = run_tune(&spec, &cold_opts).unwrap();
        assert_eq!(cold.to_json(), warm.to_json());
        assert_eq!(cold_stats.stage3_cache_hits, 0);
        assert_eq!(warm_stats.stage3_cache_hits, warm_stats.stage3_cells);
        let (nocache, _) = run_tune(&spec, &TuneOptions::default()).unwrap();
        assert_eq!(cold.to_json(), nocache.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_baseline_survives_to_the_finalists() {
        let spec = TuneSpec::tiny();
        let (report, _) = run_tune(&spec, &TuneOptions::default()).unwrap();
        let baseline = report
            .named_points
            .iter()
            .find(|n| n.preset == "TB-DOR")
            .expect("baseline is a named point");
        assert_eq!(baseline.stage_reached, "finalist", "pinned points ride every stage");
    }
}
