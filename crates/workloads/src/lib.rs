//! # tenoc-workloads — the synthetic Table I benchmark suite
//!
//! The paper evaluates 31 CUDA benchmarks (Table I) spanning three traffic
//! classes (Section III-B): **LL** (light traffic, low perfect-NoC
//! speedup), **LH** (heavy traffic but not network-bound) and **HH**
//! (heavy traffic, network-bound). The original binaries cannot run here,
//! so each benchmark is modeled as a [`KernelSpec`] — a statistical
//! instruction stream whose memory intensity, coalescing degree, locality,
//! read/write mix and occupancy were tuned so that the benchmark lands in
//! its paper class on the closed-loop simulator (see `DESIGN.md` for the
//! substitution rationale and `EXPERIMENTS.md` for the resulting
//! paper-vs-measured comparison).
//!
//! # Example
//!
//! ```
//! use tenoc_workloads::{suite, by_name, TrafficClass};
//!
//! assert_eq!(suite().len(), 31);
//! let rd = by_name("RD").expect("parallel reduction is in the suite");
//! assert_eq!(rd.class, TrafficClass::HH);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tenoc_simt::TrafficClass;
use tenoc_simt::{KernelSpec, KernelSpecBuilder};

/// Full benchmark names keyed by abbreviation (paper Table I).
pub const FULL_NAMES: [(&str, &str); 31] = [
    ("AES", "AES Cryptography"),
    ("BIN", "Binomial Option Pricing"),
    ("HSP", "HotSpot"),
    ("NE", "Neural Network Digit Recognition"),
    ("NDL", "Needleman-Wunsch"),
    ("HW", "Heart Wall Tracking"),
    ("LE", "Leukocyte"),
    ("HIS", "64-bin Histogram"),
    ("LU", "LU Decomposition"),
    ("SLA", "Scan of Large Arrays"),
    ("BP", "Back Propagation"),
    ("CON", "Separable Convolution"),
    ("NNC", "Nearest Neighbor"),
    ("BLK", "Black-Scholes Option Pricing"),
    ("MM", "Matrix Multiplication"),
    ("LPS", "3D Laplace Solver"),
    ("RAY", "Ray Tracing"),
    ("DG", "gpuDG"),
    ("SS", "Similarity Score"),
    ("TRA", "Matrix Transpose"),
    ("SR", "Speckle Reducing Anisotropic Diffusion"),
    ("WP", "Weather Prediction"),
    ("MUM", "MUMmerGPU"),
    ("LIB", "LIBOR Monte Carlo"),
    ("FWT", "Fast Walsh Transform"),
    ("SCP", "Scalar Product"),
    ("STC", "Streamcluster"),
    ("KM", "Kmeans"),
    ("CFD", "CFD Solver"),
    ("BFS", "BFS Graph Traversal"),
    ("RD", "Parallel Reduction"),
];

fn ll(name: &str) -> KernelSpecBuilder {
    KernelSpec::builder(name).class(TrafficClass::LL)
}

fn lh(name: &str) -> KernelSpecBuilder {
    KernelSpec::builder(name).class(TrafficClass::LH)
}

fn hh(name: &str) -> KernelSpecBuilder {
    KernelSpec::builder(name).class(TrafficClass::HH)
}

/// The full 31-benchmark suite in the paper's Table/figure order
/// (LL group, then LH, then HH).
pub fn suite() -> Vec<KernelSpec> {
    vec![
        // ---- LL: locality-optimized, light traffic, low speedup ----
        // Heavy use of scratchpad/L1; tiny working sets; little streaming.
        ll("AES")
            .warps_per_core(32)
            .insts_per_warp(900)
            .mem_fraction(0.02)
            .stream_fraction(0.02)
            .working_set(4 << 10)
            .lines_per_mem(1)
            .build(),
        ll("BIN")
            .warps_per_core(32)
            .insts_per_warp(1000)
            .mem_fraction(0.02)
            .stream_fraction(0.05)
            .working_set(8 << 10)
            .lines_per_mem(1)
            .build(),
        ll("HSP")
            .warps_per_core(24)
            .insts_per_warp(800)
            .mem_fraction(0.04)
            .stream_fraction(0.10)
            .working_set(8 << 10)
            .lines_per_mem(1)
            .mem_dep_distance(2)
            .build(),
        ll("NE")
            .warps_per_core(24)
            .insts_per_warp(900)
            .mem_fraction(0.03)
            .stream_fraction(0.05)
            .working_set(8 << 10)
            .lines_per_mem(1)
            .build(),
        ll("NDL")
            .warps_per_core(16)
            .insts_per_warp(800)
            .mem_fraction(0.028)
            .stream_fraction(0.12)
            .working_set(12 << 10)
            .lines_per_mem(1)
            .mem_dep_distance(1)
            .build(),
        ll("HW")
            .warps_per_core(24)
            .insts_per_warp(1000)
            .mem_fraction(0.03)
            .stream_fraction(0.08)
            .working_set(8 << 10)
            .lines_per_mem(1)
            .build(),
        ll("LE")
            .warps_per_core(32)
            .insts_per_warp(1100)
            .mem_fraction(0.04)
            .stream_fraction(0.08)
            .working_set(8 << 10)
            .lines_per_mem(1)
            .build(),
        ll("HIS")
            .warps_per_core(32)
            .insts_per_warp(700)
            .mem_fraction(0.034)
            .stream_fraction(0.08)
            .working_set(8 << 10)
            .lines_per_mem(1)
            .build(),
        ll("LU")
            .warps_per_core(24)
            .insts_per_warp(900)
            .mem_fraction(0.034)
            .stream_fraction(0.15)
            .working_set(16 << 10)
            .lines_per_mem(1)
            .mem_dep_distance(1)
            .build(),
        ll("SLA")
            .warps_per_core(14)
            .insts_per_warp(700)
            .mem_fraction(0.038)
            .stream_fraction(0.25)
            .working_set(16 << 10)
            .lines_per_mem(1)
            .mem_dep_distance(1)
            .build(),
        ll("BP")
            .warps_per_core(14)
            .insts_per_warp(700)
            .mem_fraction(0.032)
            .stream_fraction(0.30)
            .working_set(16 << 10)
            .lines_per_mem(1)
            .mem_dep_distance(1)
            .build(),
        // ---- LH: heavy traffic but latency-tolerant / below saturation ----
        // Moderate streaming with deep memory-level parallelism.
        lh("CON")
            .warps_per_core(32)
            .insts_per_warp(600)
            .mem_fraction(0.040)
            .stream_fraction(0.35)
            .working_set(96 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(6)
            .build(),
        // NNC: too few threads to hide latency or saturate memory.
        lh("NNC")
            .warps_per_core(2)
            .insts_per_warp(600)
            .mem_fraction(0.30)
            .stream_fraction(0.60)
            .working_set(64 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(2)
            .build(),
        lh("BLK")
            .warps_per_core(32)
            .insts_per_warp(600)
            .mem_fraction(0.036)
            .stream_fraction(0.45)
            .working_set(128 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(6)
            .build(),
        lh("MM")
            .warps_per_core(32)
            .insts_per_warp(700)
            .mem_fraction(0.044)
            .stream_fraction(0.30)
            .working_set(192 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(6)
            .build(),
        lh("LPS")
            .warps_per_core(24)
            .insts_per_warp(600)
            .mem_fraction(0.044)
            .stream_fraction(0.35)
            .working_set(128 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(6)
            .build(),
        lh("RAY")
            .warps_per_core(24)
            .insts_per_warp(700)
            .mem_fraction(0.024)
            .stream_fraction(0.30)
            .working_set(256 << 10)
            .lines_per_mem(4)
            .mem_dep_distance(6)
            .active_lane_fraction(0.8)
            .build(),
        lh("DG")
            .warps_per_core(32)
            .insts_per_warp(700)
            .mem_fraction(0.040)
            .stream_fraction(0.40)
            .working_set(192 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(6)
            .build(),
        lh("SS")
            .warps_per_core(32)
            .insts_per_warp(600)
            .mem_fraction(0.044)
            .stream_fraction(0.40)
            .working_set(128 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(6)
            .build(),
        lh("TRA")
            .warps_per_core(32)
            .insts_per_warp(500)
            .mem_fraction(0.040)
            .stream_fraction(0.45)
            .working_set(256 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(8)
            .build(),
        lh("SR")
            .warps_per_core(24)
            .insts_per_warp(600)
            .mem_fraction(0.044)
            .stream_fraction(0.40)
            .working_set(128 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(6)
            .build(),
        lh("WP")
            .warps_per_core(16)
            .insts_per_warp(700)
            .mem_fraction(0.048)
            .stream_fraction(0.45)
            .working_set(192 << 10)
            .lines_per_mem(2)
            .write_fraction(0.25)
            .mem_dep_distance(4)
            .build(),
        // ---- HH: streaming, memory-bound, network-bound ----
        hh("MUM")
            .warps_per_core(24)
            .insts_per_warp(400)
            .mem_fraction(0.12)
            .stream_fraction(0.80)
            .working_set(512 << 10)
            .lines_per_mem(4)
            .mem_dep_distance(3)
            .active_lane_fraction(0.7)
            .build(),
        hh("LIB")
            .warps_per_core(32)
            .insts_per_warp(450)
            .mem_fraction(0.20)
            .stream_fraction(0.90)
            .working_set(256 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(4)
            .build(),
        hh("FWT")
            .warps_per_core(32)
            .insts_per_warp(400)
            .mem_fraction(0.18)
            .stream_fraction(0.85)
            .working_set(512 << 10)
            .lines_per_mem(2)
            .write_fraction(0.30)
            .mem_dep_distance(4)
            .build(),
        hh("SCP")
            .warps_per_core(32)
            .insts_per_warp(350)
            .mem_fraction(0.24)
            .stream_fraction(0.95)
            .working_set(256 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(4)
            .build(),
        hh("STC")
            .warps_per_core(32)
            .insts_per_warp(400)
            .mem_fraction(0.22)
            .stream_fraction(0.85)
            .working_set(512 << 10)
            .lines_per_mem(2)
            .write_fraction(0.20)
            .mem_dep_distance(4)
            .build(),
        hh("KM")
            .warps_per_core(32)
            .insts_per_warp(400)
            .mem_fraction(0.28)
            .stream_fraction(0.90)
            .working_set(256 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(4)
            .build(),
        hh("CFD")
            .warps_per_core(32)
            .insts_per_warp(350)
            .mem_fraction(0.32)
            .stream_fraction(0.92)
            .working_set(512 << 10)
            .lines_per_mem(4)
            .mem_dep_distance(3)
            .build(),
        hh("BFS")
            .warps_per_core(24)
            .insts_per_warp(400)
            .mem_fraction(0.25)
            .stream_fraction(0.85)
            .working_set(1 << 20)
            .lines_per_mem(8)
            .mem_dep_distance(2)
            .active_lane_fraction(0.55)
            .build(),
        hh("RD")
            .warps_per_core(32)
            .insts_per_warp(300)
            .mem_fraction(0.45)
            .stream_fraction(0.98)
            .working_set(256 << 10)
            .lines_per_mem(2)
            .mem_dep_distance(4)
            .build(),
    ]
}

/// Looks up a benchmark by its abbreviation.
pub fn by_name(name: &str) -> Option<KernelSpec> {
    suite().into_iter().find(|s| s.name == name)
}

/// The benchmarks of one traffic class, in suite order.
pub fn by_class(class: TrafficClass) -> Vec<KernelSpec> {
    suite().into_iter().filter(|s| s.class == class).collect()
}

/// A reduced smoke suite (one benchmark per class) for fast tests.
pub fn smoke_suite() -> Vec<KernelSpec> {
    ["HIS", "MM", "RD"].iter().map(|n| by_name(n).expect("known benchmark")).collect()
}

/// The full name of a benchmark abbreviation, if known.
pub fn full_name(abbr: &str) -> Option<&'static str> {
    FULL_NAMES.iter().find(|(a, _)| *a == abbr).map(|(_, f)| *f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_31_valid_benchmarks() {
        let s = suite();
        assert_eq!(s.len(), 31);
        for spec in &s {
            spec.validate().unwrap();
        }
    }

    #[test]
    fn class_sizes_match_paper_grouping() {
        assert_eq!(by_class(TrafficClass::LL).len(), 11);
        assert_eq!(by_class(TrafficClass::LH).len(), 11);
        assert_eq!(by_class(TrafficClass::HH).len(), 9);
    }

    #[test]
    fn names_are_unique_and_named() {
        let s = suite();
        let names: std::collections::HashSet<_> = s.iter().map(|k| k.name.clone()).collect();
        assert_eq!(names.len(), 31);
        for spec in &s {
            assert!(full_name(&spec.name).is_some(), "{} needs a full name", spec.name);
        }
    }

    #[test]
    fn classes_are_ordered_ll_lh_hh() {
        let s = suite();
        let order: Vec<TrafficClass> = s.iter().map(|k| k.class).collect();
        let boundary1 = order.iter().position(|&c| c == TrafficClass::LH).unwrap();
        let boundary2 = order.iter().position(|&c| c == TrafficClass::HH).unwrap();
        assert!(order[..boundary1].iter().all(|&c| c == TrafficClass::LL));
        assert!(order[boundary1..boundary2].iter().all(|&c| c == TrafficClass::LH));
        assert!(order[boundary2..].iter().all(|&c| c == TrafficClass::HH));
    }

    #[test]
    fn hh_benchmarks_are_more_memory_intense_than_ll() {
        let ll_max = by_class(TrafficClass::LL)
            .iter()
            .map(|k| k.mem_fraction * k.lines_per_mem as f64)
            .fold(0.0, f64::max);
        let hh_min = by_class(TrafficClass::HH)
            .iter()
            .map(|k| k.mem_fraction * k.lines_per_mem as f64)
            .fold(f64::INFINITY, f64::min);
        assert!(hh_min > ll_max, "HH ({hh_min}) must out-demand LL ({ll_max})");
    }

    #[test]
    fn nnc_has_too_few_warps() {
        assert!(by_name("NNC").unwrap().warps_per_core <= 4);
    }

    #[test]
    fn lookup_is_case_sensitive_exact() {
        assert!(by_name("RD").is_some());
        assert!(by_name("rd").is_none());
        assert!(by_name("XYZ").is_none());
    }

    #[test]
    fn smoke_suite_covers_all_classes() {
        let s = smoke_suite();
        let classes: std::collections::HashSet<_> =
            s.iter().map(|k| format!("{}", k.class)).collect();
        assert_eq!(classes.len(), 3);
    }
}
