use tenoc_core::experiments::{hm_speedup, run_suite, speedups_percent};
use tenoc_core::presets::Preset;

fn main() {
    let scale = std::env::var("TENOC_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.1);
    let base = run_suite(Preset::BaselineTbDor, scale);
    eprintln!("baseline done");
    println!("{:6} {:3} {:>9} {:>7} {:>7} {:>7}", "bench", "cls", "ipc", "mcinj", "stall", "dramE");
    for r in &base {
        println!(
            "{:6} {:3} {:9.2} {:7.3} {:7.3} {:7.3}",
            r.name,
            r.class.to_string(),
            r.metrics.ipc,
            r.metrics.mc_injection_rate,
            r.metrics.mc_stall_fraction,
            r.metrics.dram_efficiency
        );
    }
    for p in [
        Preset::Perfect,
        Preset::TbDor2xBw,
        Preset::TbDor1Cycle,
        Preset::CpDor2vc,
        Preset::CpDor4vc,
        Preset::CpCr4vc,
        Preset::DoubleCpCr,
        Preset::DoubleCpCr2InjPorts,
        Preset::DoubleCpCr2Both,
    ] {
        let r = run_suite(p, scale);
        let sp = speedups_percent(&base, &r);
        print!(
            "\n== {} (HM speedup {:+.1}%)\n   ",
            p.label(),
            (hm_speedup(&base, &r) - 1.0) * 100.0
        );
        for (name, _, s) in &sp {
            print!("{name}:{s:+.0}% ");
        }
        println!();
        eprintln!("{} done", p.label());
    }
}
