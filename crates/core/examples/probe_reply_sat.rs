use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tenoc_noc::{Interconnect, Network, NetworkConfig, Packet, VcLayout};

fn reply_saturation(cfg: NetworkConfig, flit_bytes_note: &str) {
    let mcs = cfg.mc_nodes.clone();
    let cores: Vec<usize> = (0..cfg.mesh.len()).filter(|n| !mcs.contains(n)).collect();
    // Saturation probe: MCs always have replies to send.
    let mut net = Network::new(cfg);
    let mut rng = SmallRng::seed_from_u64(9);
    let cycles = 20_000u64;
    for _ in 0..cycles {
        for &mc in &mcs {
            loop {
                let dst = cores[rng.gen_range(0..cores.len())];
                if net.try_inject(mc, Packet::reply(mc, dst, 64, 0)).is_err() {
                    break;
                }
            }
        }
        net.step();
        for &c in &cores {
            while net.pop(c).is_some() {}
        }
    }
    let s = net.stats();
    let bytes: f64 = mcs.iter().map(|&m| s.injected_flits_by_node[m] as f64).sum::<f64>()
        / cycles as f64
        / mcs.len() as f64;
    println!("{flit_bytes_note}: {:.2} flits/c/MC", bytes);
}

fn main() {
    // Single CP-CR 16B 4VC (replies share with requests, but requests absent here).
    reply_saturation(NetworkConfig::checkerboard_mesh(6), "single 16B 4VC       ");
    // Reply slice: 8B, 2VC, 1 class, 2 NI ports.
    let mut slice = NetworkConfig::checkerboard_mesh(6);
    slice.channel_bytes = 8;
    slice.vcs = VcLayout::new(2, 1, true);
    slice.mc_inject_ports = 2;
    reply_saturation(slice.clone(), "slice 8B 2VC 2port   ");
    let mut s4 = slice.clone();
    s4.vcs = VcLayout::new(4, 1, true);
    reply_saturation(s4, "slice 8B 4VC 2port   ");
    let mut s1 = slice.clone();
    s1.mc_inject_ports = 1;
    reply_saturation(s1, "slice 8B 2VC 1port   ");
    let mut d16 = slice.clone();
    d16.vc_depth = 16;
    reply_saturation(d16, "slice 8B 2VC 2p d16  ");
    let mut s44 = slice.clone();
    s44.vcs = VcLayout::new(4, 1, true);
    s44.mc_inject_ports = 4;
    reply_saturation(s44, "slice 8B 4VC 4port   ");
    let mut s4d = slice.clone();
    s4d.vcs = VcLayout::new(4, 1, true);
    s4d.vc_depth = 16;
    reply_saturation(s4d, "slice 8B 4VC 2p d16  ");
    let mut s8 = slice;
    s8.vcs = VcLayout::new(8, 1, true);
    reply_saturation(s8, "slice 8B 8VC 2port   ");
}
