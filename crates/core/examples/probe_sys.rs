use tenoc_core::presets::Preset;
use tenoc_core::system::{IcntConfig, System, SystemConfig};
use tenoc_workloads::by_name;

fn main() {
    let spec = by_name("RD").unwrap().scaled(0.1);
    for p in [Preset::CpCr4vc, Preset::DoubleCpCr, Preset::DoubleCpCr2InjPorts] {
        let cfg = SystemConfig::with_icnt(p.icnt(6));
        let mut sys = System::new(cfg, &spec);
        let m = sys.run();
        println!(
            "{:22} ipc={:6.2} mcinj={:.3}f stall={:.3} dramE={:.3} netlat={:.1} corelat(replay)={}",
            p.label(),
            m.ipc,
            m.mc_injection_rate,
            m.mc_stall_fraction,
            m.dram_efficiency,
            m.avg_net_latency,
            m.core_replays
        );
    }
    // Depth-16 slice variant (equal per-port byte storage).
    let mut net = tenoc_noc::NetworkConfig::checkerboard_mesh(6);
    net.vc_depth = 16;
    let cfg = SystemConfig::with_icnt(IcntConfig::Double(net));
    let mut sys = System::new(cfg, &spec);
    let m = sys.run();
    println!(
        "{:22} ipc={:6.2} mcinj={:.3}f stall={:.3}",
        "Double-d16", m.ipc, m.mc_injection_rate, m.mc_stall_fraction
    );
}
