//! Property-style integration tests of the closed-loop system: every
//! preset must run arbitrary (small) kernels to completion with conserved
//! instruction counts, and key metrics must stay within physical bounds.

use proptest::prelude::*;
use tenoc_core::experiments::run_with_system_config;
use tenoc_core::presets::Preset;
use tenoc_core::system::SystemConfig;
use tenoc_simt::{KernelSpec, TrafficClass};

fn small_spec() -> impl Strategy<Value = KernelSpec> {
    (
        1usize..=8,
        16u64..60,
        0.0f64..0.5,
        0.0f64..0.4,
        0.0f64..1.0,
        prop::sample::select(vec![1u32, 2, 4]),
    )
        .prop_map(|(warps, insts, mem, wr, stream, lines)| {
            KernelSpec::builder("sys-prop")
                .class(TrafficClass::LH)
                .warps_per_core(warps)
                .insts_per_warp(insts)
                .mem_fraction(mem)
                .write_fraction(wr)
                .stream_fraction(stream)
                .lines_per_mem(lines)
                .build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every major preset completes and conserves instructions.
    #[test]
    fn presets_complete_and_conserve(spec in small_spec(), seed in 1u64..500) {
        for preset in [
            Preset::BaselineTbDor,
            Preset::CpCr4vc,
            Preset::DoubleCpCr2InjPorts,
            Preset::Perfect,
        ] {
            let mut cfg = SystemConfig::with_icnt(preset.icnt(6));
            cfg.seed = seed;
            let m = run_with_system_config(cfg, &spec, 1.0);
            prop_assert!(m.completed, "{:?}", preset.label());
            prop_assert_eq!(m.scalar_insts, 28 * spec.total_warp_insts() * 32);
            // Physical bounds.
            prop_assert!(m.ipc > 0.0 && m.ipc <= 224.0 + 1e-9, "ipc {}", m.ipc);
            prop_assert!((0.0..=1.0).contains(&m.mc_stall_fraction));
            prop_assert!((0.0..=1.0).contains(&m.dram_efficiency));
            prop_assert!((0.0..=1.0).contains(&m.l2_read_hit_rate));
            prop_assert!(m.avg_net_latency >= 0.0);
        }
    }

    /// The perfect network is never slower than the baseline mesh beyond
    /// DRAM-scheduling noise.
    #[test]
    fn perfect_dominates_baseline(spec in small_spec(), seed in 1u64..500) {
        let mut base_cfg = SystemConfig::with_icnt(Preset::BaselineTbDor.icnt(6));
        base_cfg.seed = seed;
        let base = run_with_system_config(base_cfg, &spec, 1.0);
        let mut perf_cfg = SystemConfig::with_icnt(Preset::Perfect.icnt(6));
        perf_cfg.seed = seed;
        let perfect = run_with_system_config(perf_cfg, &spec, 1.0);
        // On very short kernels the perfect network reorders DRAM
        // arrivals, which can cost a few percent of row locality — allow
        // that scheduling noise.
        prop_assert!(
            perfect.ipc >= base.ipc * 0.85,
            "perfect {} vs baseline {}",
            perfect.ipc,
            base.ipc
        );
    }
}
