//! Proves the cycle kernel's zero-allocation steady state: after a
//! warm-up that grows every FIFO to its peak occupancy, 1k cycles of the
//! fig. 20 combined design point's network (checkerboard double network,
//! 2 MC injection ports) under sustained MC-bound traffic perform zero
//! heap allocations.
//!
//! This file holds exactly one test: the counting global allocator is
//! process-wide, so a concurrently running test could blur the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tenoc_core::system::IcntConfig;
use tenoc_core::Preset;
use tenoc_noc::{Interconnect, Packet, Tick};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn fig20_network_steady_state_allocates_nothing() {
    let IcntConfig::Double(cfg) = Preset::ThroughputEffective.icnt(6) else {
        panic!("fig. 20 combined preset must be a double network");
    };
    let mcs = cfg.mc_nodes.clone();
    let cores: Vec<usize> = (0..cfg.mesh.len()).filter(|n| !mcs.contains(n)).collect();
    let mut net = tenoc_noc::DoubleNetwork::from_single(&cfg);

    // Sustained many-to-few traffic: every cycle each class attempts a
    // couple of injections; blocked attempts are dropped (backpressure).
    let drive = |net: &mut tenoc_noc::DoubleNetwork, cycles: u64, tag0: u64| {
        for i in 0..cycles {
            for lane in 0..2u64 {
                let t = tag0 + i * 2 + lane;
                let core = cores[(t as usize * 5 + 3) % cores.len()];
                let mc = mcs[t as usize % mcs.len()];
                let _ = net.try_inject(core, Packet::request(core, mc, 8, t));
                let _ = net.try_inject(mc, Packet::reply(mc, core, 64, t));
            }
            net.tick();
            for node in 0..cfg.mesh.len() {
                while net.pop(node).is_some() {}
            }
        }
    };

    // Warm-up: reach peak queue occupancy everywhere.
    drive(&mut net, 2_000, 0);

    let before = ALLOCS.load(Ordering::SeqCst);
    drive(&mut net, 1_000, 4_000);
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "cycle kernel allocated {} times in 1k warm cycles",
        after - before
    );

    // Sanity: the run above actually moved traffic through the fabric.
    assert!(net.stats().cycles >= 3_000);
    assert!(net.flit_hops() > 10_000);
}
