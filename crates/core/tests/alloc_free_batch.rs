//! Proves the batched arena kernel's zero-allocation steady state: after
//! a warm-up that grows every slab, ring and packet-table row to its peak
//! occupancy, 1k lockstep cycles of a 4-cell [`NetBatch`] of fig. 20
//! combined design-point double networks perform zero heap allocations.
//!
//! This file holds exactly one test: the counting global allocator is
//! process-wide, so a concurrently running test could blur the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use tenoc_core::system::IcntConfig;
use tenoc_core::Preset;
use tenoc_noc::{ArenaDoubleNetwork, Interconnect, NetBatch, Packet, Tick};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn batched_arena_steady_state_allocates_nothing() {
    let IcntConfig::Double(cfg) = Preset::ThroughputEffective.icnt(6) else {
        panic!("fig. 20 combined preset must be a double network");
    };
    let mcs = cfg.mc_nodes.clone();
    let cores: Vec<usize> = (0..cfg.mesh.len()).filter(|n| !mcs.contains(n)).collect();
    let mut batch = NetBatch::new(
        (0..4)
            .map(|i| {
                let mut c = cfg.clone();
                c.seed = cfg.seed.wrapping_add(i);
                ArenaDoubleNetwork::from_single(&c)
            })
            .collect(),
    );

    // Sustained many-to-few traffic in every cell: each cycle each cell
    // attempts a couple of injections per class; blocked attempts are
    // dropped (backpressure).
    let drive = |batch: &mut NetBatch<ArenaDoubleNetwork>, cycles: u64, tag0: u64| {
        for i in 0..cycles {
            for cell in 0..batch.len() {
                for lane in 0..2u64 {
                    let t = tag0 + i * 2 + lane + ((cell as u64) << 40);
                    let core = cores[(t as usize * 5 + 3) % cores.len()];
                    let mc = mcs[t as usize % mcs.len()];
                    let net = batch.cell_mut(cell);
                    let _ = net.try_inject(core, Packet::request(core, mc, 8, t));
                    let _ = net.try_inject(mc, Packet::reply(mc, core, 64, t));
                }
            }
            batch.tick();
            for cell in 0..batch.len() {
                for node in 0..cfg.mesh.len() {
                    while batch.cell_mut(cell).pop(node).is_some() {}
                }
            }
        }
    };

    // Warm-up: reach peak queue and packet-table occupancy everywhere.
    drive(&mut batch, 2_000, 0);

    let before = ALLOCS.load(Ordering::SeqCst);
    drive(&mut batch, 1_000, 4_000);
    let after = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "batched kernel allocated {} times in 1k warm lockstep cycles",
        after - before
    );

    // Sanity: the run above actually moved traffic through every cell.
    for cell in 0..batch.len() {
        assert!(batch.cell(cell).stats().cycles >= 3_000);
        assert!(batch.cell(cell).flit_hops() > 10_000);
    }
}
