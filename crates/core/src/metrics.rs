//! Metrics collected from closed-loop runs.

use serde::{Deserialize, Serialize};

/// Results of one closed-loop simulation.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// `true` if the kernel ran to completion and all queues drained.
    pub completed: bool,
    /// Core-clock cycles elapsed.
    pub core_cycles: u64,
    /// Interconnect-clock cycles elapsed.
    pub icnt_cycles: u64,
    /// Scalar instructions retired across all cores.
    pub scalar_insts: u64,
    /// Application-level throughput in scalar instructions per core
    /// cycle — the paper's headline metric.
    pub ipc: f64,
    /// Mean in-network packet latency (interconnect cycles).
    pub avg_net_latency: f64,
    /// Mean flits injected per MC node per interconnect cycle (the "MC
    /// output bandwidth" of Figure 1/8).
    pub mc_injection_rate: f64,
    /// Mean flits injected per compute node per interconnect cycle.
    pub core_injection_rate: f64,
    /// Mean fraction of time the MCs' reply injection was blocked
    /// (Figure 11).
    pub mc_stall_fraction: f64,
    /// Mean DRAM efficiency across channels (Section V-E definition).
    pub dram_efficiency: f64,
    /// L2 read hit rate across banks.
    pub l2_read_hit_rate: f64,
    /// Accepted traffic averaged over all nodes (flits/cycle/node).
    pub accepted_flits_per_node: f64,
    /// Memory instructions replayed at the cores (resource pressure).
    pub core_replays: u64,
    /// Total link traversals (flit-hops) in the interconnect; zero for
    /// ideal networks. Feed to [`crate::PowerModel`] for energy estimates.
    pub flit_hops: u64,
}

impl RunMetrics {
    /// Speedup of `self` over a baseline run (ratio of IPCs), or `None`
    /// when the baseline retired nothing (`ipc <= 0`) and no meaningful
    /// ratio exists.
    ///
    /// Returning `0.0` for that case — as an earlier version did —
    /// silently collapsed any downstream [`harmonic_mean`] of speedups to
    /// zero, turning one broken baseline run into a whole-suite zero.
    /// Callers must now decide explicitly (report code skips the
    /// benchmark with a warning).
    pub fn speedup_over(&self, baseline: &RunMetrics) -> Option<f64> {
        if baseline.ipc <= 0.0 {
            return None;
        }
        Some(self.ipc / baseline.ipc)
    }

    /// Accepted traffic in bytes/cycle/node given the flit width used by
    /// the run's interconnect.
    pub fn accepted_bytes_per_node(&self, flit_bytes: u32) -> f64 {
        self.accepted_flits_per_node * flit_bytes as f64
    }
}

/// Harmonic mean of a sequence of positive throughputs — the mean the
/// paper uses for IPC across benchmarks.
///
/// Returns 0.0 on an empty input or if any element is non-positive.
pub fn harmonic_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut n = 0usize;
    let mut inv = 0.0f64;
    for v in values {
        if v <= 0.0 {
            return 0.0;
        }
        inv += 1.0 / v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        n as f64 / inv
    }
}

/// Arithmetic mean (used for Figure 2's average throughput axis).
pub fn arithmetic_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut n = 0usize;
    let mut sum = 0.0;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_of_equal_values() {
        assert!((harmonic_mean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_weights_slow_benchmarks() {
        let hm = harmonic_mean([1.0, 100.0]);
        assert!(hm < 2.0, "harmonic mean must be dominated by the slow value: {hm}");
    }

    #[test]
    fn harmonic_mean_edge_cases() {
        assert_eq!(harmonic_mean(std::iter::empty()), 0.0);
        assert_eq!(harmonic_mean([1.0, 0.0]), 0.0);
    }

    #[test]
    fn arithmetic_mean_basic() {
        assert!((arithmetic_mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(arithmetic_mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn speedup_ratio() {
        let mut a = RunMetrics {
            completed: true,
            core_cycles: 100,
            icnt_cycles: 50,
            scalar_insts: 1000,
            ipc: 10.0,
            avg_net_latency: 0.0,
            mc_injection_rate: 0.0,
            core_injection_rate: 0.0,
            mc_stall_fraction: 0.0,
            dram_efficiency: 0.0,
            l2_read_hit_rate: 0.0,
            accepted_flits_per_node: 0.5,
            core_replays: 0,
            flit_hops: 0,
        };
        let b = RunMetrics { ipc: 5.0, ..a };
        a.ipc = 10.0;
        assert!((a.speedup_over(&b).unwrap() - 2.0).abs() < 1e-12);
        assert!((a.accepted_bytes_per_node(16) - 8.0).abs() < 1e-12);
    }

    /// Satellite regression: a zero-IPC (or pathological negative-IPC)
    /// baseline must yield `None`, not a silent `0.0` that collapses a
    /// harmonic mean of speedups across a suite.
    #[test]
    fn speedup_over_degenerate_baseline_is_none() {
        let mut a = RunMetrics {
            completed: true,
            core_cycles: 100,
            icnt_cycles: 50,
            scalar_insts: 1000,
            ipc: 10.0,
            avg_net_latency: 0.0,
            mc_injection_rate: 0.0,
            core_injection_rate: 0.0,
            mc_stall_fraction: 0.0,
            dram_efficiency: 0.0,
            l2_read_hit_rate: 0.0,
            accepted_flits_per_node: 0.5,
            core_replays: 0,
            flit_hops: 0,
        };
        let zero = RunMetrics { ipc: 0.0, ..a };
        assert_eq!(a.speedup_over(&zero), None);
        a.ipc = 0.0;
        assert_eq!(a.speedup_over(&zero), None, "0/0 is undefined, not 0");
        // The failure mode this guards: one None-worthy baseline used to
        // contribute 0.0 and zero the suite harmonic mean.
        let good = [2.0, 3.0];
        assert!(harmonic_mean(good) > 0.0);
        assert_eq!(harmonic_mean(good.into_iter().chain([0.0])), 0.0);
    }
}
