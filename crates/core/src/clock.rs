//! Multiple clock domains stepped in global time order.
//!
//! The accelerator has three clock domains (paper Table II): compute cores
//! at 1296 MHz, interconnect + L2 at 602 MHz and DRAM at 1107 MHz. The
//! scheduler tracks the next edge of each domain in nanoseconds and always
//! steps the earliest one, exactly like GPGPU-Sim's multi-clock main loop.

use serde::{Deserialize, Serialize};

/// A clock domain identifier.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Domain {
    /// Compute cores.
    Core,
    /// Interconnect and L2 banks.
    Icnt,
    /// DRAM channels.
    Dram,
}

/// Clock frequencies in MHz.
#[derive(Copy, Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct ClockConfig {
    /// Compute-core clock (paper: 1296 MHz).
    pub core_mhz: f64,
    /// Interconnect and L2 clock (paper: 602 MHz).
    pub icnt_mhz: f64,
    /// DRAM clock (paper: 1107 MHz).
    pub dram_mhz: f64,
}

impl ClockConfig {
    /// The paper's Table II clocks.
    pub fn gtx280() -> Self {
        ClockConfig { core_mhz: 1296.0, icnt_mhz: 602.0, dram_mhz: 1107.0 }
    }
}

/// Edge scheduler over the three domains.
#[derive(Clone, Debug)]
pub struct Clocks {
    next: [f64; 3],
    period: [f64; 3],
    cycles: [u64; 3],
}

impl Clocks {
    /// Creates a scheduler; all domains tick first at time 0.
    ///
    /// # Panics
    ///
    /// Panics if any frequency is non-positive.
    pub fn new(cfg: ClockConfig) -> Self {
        assert!(cfg.core_mhz > 0.0 && cfg.icnt_mhz > 0.0 && cfg.dram_mhz > 0.0);
        let period = [1e3 / cfg.core_mhz, 1e3 / cfg.icnt_mhz, 1e3 / cfg.dram_mhz];
        Clocks { next: [0.0; 3], period, cycles: [0; 3] }
    }

    /// Returns the domain with the earliest pending edge and advances it.
    /// Ties break in `Core`, `Icnt`, `Dram` order.
    pub fn tick(&mut self) -> Domain {
        let mut idx = 0;
        for i in 1..3 {
            if self.next[i] < self.next[idx] {
                idx = i;
            }
        }
        self.next[idx] += self.period[idx];
        self.cycles[idx] += 1;
        match idx {
            0 => Domain::Core,
            1 => Domain::Icnt,
            _ => Domain::Dram,
        }
    }

    /// Completed cycles of a domain.
    pub fn cycles(&self, d: Domain) -> u64 {
        self.cycles[Self::index(d)]
    }

    fn index(d: Domain) -> usize {
        match d {
            Domain::Core => 0,
            Domain::Icnt => 1,
            Domain::Dram => 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_determine_tick_ratios() {
        let mut c = Clocks::new(ClockConfig::gtx280());
        for _ in 0..300_000 {
            c.tick();
        }
        let core = c.cycles(Domain::Core) as f64;
        let icnt = c.cycles(Domain::Icnt) as f64;
        let dram = c.cycles(Domain::Dram) as f64;
        assert!((core / icnt - 1296.0 / 602.0).abs() < 0.01, "core/icnt = {}", core / icnt);
        assert!((dram / icnt - 1107.0 / 602.0).abs() < 0.01, "dram/icnt = {}", dram / icnt);
    }

    #[test]
    fn equal_clocks_alternate() {
        let mut c = Clocks::new(ClockConfig { core_mhz: 100.0, icnt_mhz: 100.0, dram_mhz: 100.0 });
        let first_three: Vec<Domain> = (0..3).map(|_| c.tick()).collect();
        assert_eq!(first_three, vec![Domain::Core, Domain::Icnt, Domain::Dram]);
    }

    #[test]
    fn cycle_counters_start_at_zero() {
        let c = Clocks::new(ClockConfig::gtx280());
        assert_eq!(c.cycles(Domain::Core), 0);
        assert_eq!(c.cycles(Domain::Icnt), 0);
        assert_eq!(c.cycles(Domain::Dram), 0);
    }
}
