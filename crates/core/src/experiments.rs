//! Experiment runners: one closed-loop run per (design point, benchmark),
//! plus suite sweeps used by the figure-regeneration benches.

use crate::metrics::RunMetrics;
use crate::presets::Preset;
use crate::system::{IcntConfig, System, SystemConfig};
use tenoc_simt::{KernelSpec, TrafficClass};

/// One benchmark's result within a suite sweep.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Benchmark abbreviation.
    pub name: String,
    /// Traffic class.
    pub class: TrafficClass,
    /// Closed-loop metrics.
    pub metrics: RunMetrics,
}

/// Runs one benchmark on one design point. `scale` shortens the kernel
/// (1.0 = full length; the harness default is read from the environment
/// via [`scale_from_env`]).
///
/// # Panics
///
/// Panics if the run hits the safety cycle limit without completing —
/// closed-loop runs must always drain.
pub fn run_benchmark(preset: Preset, spec: &KernelSpec, scale: f64) -> RunMetrics {
    run_with_icnt(preset.icnt(6), spec, scale)
}

/// Runs one benchmark on an explicit interconnect configuration.
///
/// # Panics
///
/// Panics if the run does not complete (deadlock or cycle-limit).
pub fn run_with_icnt(icnt: IcntConfig, spec: &KernelSpec, scale: f64) -> RunMetrics {
    run_with_system_config(SystemConfig::with_icnt(icnt), spec, scale)
}

/// Runs one benchmark on a fully explicit system configuration (used by
/// ablation studies that vary non-NoC parameters such as the DRAM
/// scheduling policy or L2 geometry).
///
/// # Panics
///
/// Panics if the run does not complete (deadlock or cycle-limit).
pub fn run_with_system_config(cfg: SystemConfig, spec: &KernelSpec, scale: f64) -> RunMetrics {
    let scaled = spec.scaled(scale);
    let mut sys = System::new(cfg, &scaled);
    let m = sys.run();
    assert!(m.completed, "{} did not complete (possible deadlock)", scaled.name);
    m
}

/// Runs a whole benchmark list on one design point.
pub fn run_list(preset: Preset, specs: &[KernelSpec], scale: f64) -> Vec<SuiteResult> {
    specs
        .iter()
        .map(|spec| SuiteResult {
            name: spec.name.clone(),
            class: spec.class,
            metrics: run_benchmark(preset, spec, scale),
        })
        .collect()
}

/// Runs the full 31-benchmark suite on one design point.
pub fn run_suite(preset: Preset, scale: f64) -> Vec<SuiteResult> {
    run_list(preset, &tenoc_workloads::suite(), scale)
}

/// Kernel-length scale factor for harness runs: `TENOC_FULL=1` selects
/// full-length kernels, `TENOC_SCALE=<f>` an explicit factor; the default
/// is 0.12 (fast, preserves every qualitative trend).
pub fn scale_from_env() -> f64 {
    if std::env::var("TENOC_FULL").map(|v| v == "1").unwrap_or(false) {
        return 1.0;
    }
    std::env::var("TENOC_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|f| *f > 0.0)
        .unwrap_or(0.12)
}

/// Per-benchmark speedup (percent) of `new` over `base`, matched by name.
///
/// # Panics
///
/// Panics if the two sweeps cover different benchmarks.
pub fn speedups_percent(
    base: &[SuiteResult],
    new: &[SuiteResult],
) -> Vec<(String, TrafficClass, f64)> {
    assert_eq!(base.len(), new.len(), "mismatched sweeps");
    base.iter()
        .zip(new)
        .map(|(b, n)| {
            assert_eq!(b.name, n.name, "benchmark order mismatch");
            (b.name.clone(), b.class, (n.metrics.ipc / b.metrics.ipc - 1.0) * 100.0)
        })
        .collect()
}

/// Harmonic-mean IPC of a sweep.
pub fn hm_ipc(results: &[SuiteResult]) -> f64 {
    crate::metrics::harmonic_mean(results.iter().map(|r| r.metrics.ipc))
}

/// Harmonic-mean IPC restricted to one class.
pub fn hm_ipc_class(results: &[SuiteResult], class: TrafficClass) -> f64 {
    crate::metrics::harmonic_mean(
        results.iter().filter(|r| r.class == class).map(|r| r.metrics.ipc),
    )
}

/// Harmonic mean of per-benchmark speedup ratios (as the paper reports
/// "harmonic mean speedup").
pub fn hm_speedup(base: &[SuiteResult], new: &[SuiteResult]) -> f64 {
    let ratios: Vec<f64> =
        base.iter().zip(new).map(|(b, n)| n.metrics.ipc / b.metrics.ipc).collect();
    crate::metrics::harmonic_mean(ratios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenoc_workloads::by_name;

    const SCALE: f64 = 0.05;

    #[test]
    fn baseline_run_completes_for_each_class_representative() {
        for name in ["HIS", "MM", "RD"] {
            let spec = by_name(name).unwrap();
            let m = run_benchmark(Preset::BaselineTbDor, &spec, SCALE);
            assert!(m.completed, "{name}");
            assert!(m.ipc > 0.0);
        }
    }

    #[test]
    fn perfect_network_speedup_is_larger_for_hh_than_ll() {
        let ll = by_name("AES").unwrap();
        let hh = by_name("RD").unwrap();
        let sp = |spec: &tenoc_simt::KernelSpec| {
            let base = run_benchmark(Preset::BaselineTbDor, spec, SCALE);
            let perfect = run_benchmark(Preset::Perfect, spec, SCALE);
            perfect.ipc / base.ipc
        };
        let sp_ll = sp(&ll);
        let sp_hh = sp(&hh);
        assert!(sp_hh > sp_ll, "HH speedup ({sp_hh:.2}) must exceed LL speedup ({sp_ll:.2})");
        assert!(sp_ll < 1.35, "LL must be nearly network-insensitive: {sp_ll:.2}");
    }

    #[test]
    fn scale_env_default() {
        // Not setting the env vars in tests: default applies.
        let s = scale_from_env();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn speedups_are_matched_by_name() {
        let specs = [by_name("HIS").unwrap()];
        let a = run_list(Preset::BaselineTbDor, &specs, SCALE);
        let b = run_list(Preset::Perfect, &specs, SCALE);
        let s = speedups_percent(&a, &b);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, "HIS");
    }
}
