//! Experiment runners: one closed-loop run per (design point, benchmark),
//! plus suite sweeps used by the figure-regeneration benches.

use crate::metrics::RunMetrics;
use crate::presets::Preset;
use crate::system::{IcntConfig, System, SystemConfig};
use tenoc_noc::{TelemetryConfig, TelemetryReport};
use tenoc_simt::{KernelSpec, TrafficClass};

/// One benchmark's result within a suite sweep.
#[derive(Clone, Debug)]
pub struct SuiteResult {
    /// Benchmark abbreviation.
    pub name: String,
    /// Traffic class.
    pub class: TrafficClass,
    /// Closed-loop metrics.
    pub metrics: RunMetrics,
}

/// Runs one benchmark on one design point. `scale` shortens the kernel
/// (1.0 = full length; the harness default is read from the environment
/// via [`scale_from_env`]).
///
/// # Panics
///
/// Panics if the run hits the safety cycle limit without completing —
/// closed-loop runs must always drain.
pub fn run_benchmark(preset: Preset, spec: &KernelSpec, scale: f64) -> RunMetrics {
    run_with_icnt(preset.icnt(6), spec, scale)
}

/// Runs one benchmark on an explicit interconnect configuration.
///
/// # Panics
///
/// Panics if the run does not complete (deadlock or cycle-limit).
pub fn run_with_icnt(icnt: IcntConfig, spec: &KernelSpec, scale: f64) -> RunMetrics {
    run_with_system_config(SystemConfig::with_icnt(icnt), spec, scale)
}

/// Runs one benchmark on a fully explicit system configuration (used by
/// ablation studies that vary non-NoC parameters such as the DRAM
/// scheduling policy or L2 geometry).
///
/// # Panics
///
/// Panics if the run does not complete (deadlock or cycle-limit).
pub fn run_with_system_config(cfg: SystemConfig, spec: &KernelSpec, scale: f64) -> RunMetrics {
    let scaled = spec.scaled(scale);
    let mut sys = System::new(cfg, &scaled);
    let m = sys.run();
    assert!(m.completed, "{} did not complete (possible deadlock)", scaled.name);
    m
}

/// Like [`run_with_system_config`], with the interconnect's telemetry
/// armed for the whole run. Returns the metrics (identical to an
/// untraced run — telemetry observes without perturbing) plus one
/// [`TelemetryReport`] per physical network (empty for ideal networks).
///
/// # Panics
///
/// Panics if the run does not complete (deadlock or cycle-limit).
pub fn run_traced_with_system_config(
    cfg: SystemConfig,
    spec: &KernelSpec,
    scale: f64,
    tcfg: TelemetryConfig,
) -> (RunMetrics, Vec<TelemetryReport>) {
    let scaled = spec.scaled(scale);
    let mut sys = System::new(cfg, &scaled);
    sys.enable_telemetry(tcfg);
    let m = sys.run();
    assert!(m.completed, "{} did not complete (possible deadlock)", scaled.name);
    let reports = sys.telemetry_reports();
    (m, reports)
}

/// Runs one benchmark on a preset with telemetry armed (the engine
/// behind `tenoc trace`).
///
/// # Panics
///
/// Panics if the run does not complete (deadlock or cycle-limit).
pub fn run_traced(
    preset: Preset,
    spec: &KernelSpec,
    scale: f64,
    tcfg: TelemetryConfig,
) -> (RunMetrics, Vec<TelemetryReport>) {
    run_traced_with_system_config(SystemConfig::with_icnt(preset.icnt(6)), spec, scale, tcfg)
}

/// Runs a whole benchmark list on one design point.
pub fn run_list(preset: Preset, specs: &[KernelSpec], scale: f64) -> Vec<SuiteResult> {
    specs
        .iter()
        .map(|spec| SuiteResult {
            name: spec.name.clone(),
            class: spec.class,
            metrics: run_benchmark(preset, spec, scale),
        })
        .collect()
}

/// Runs the full 31-benchmark suite on one design point.
pub fn run_suite(preset: Preset, scale: f64) -> Vec<SuiteResult> {
    run_list(preset, &tenoc_workloads::suite(), scale)
}

/// Kernel-length scale factor for harness runs: `TENOC_FULL=1` selects
/// full-length kernels, `TENOC_SCALE=<f>` an explicit factor; the default
/// is 0.12 (fast, preserves every qualitative trend).
pub fn scale_from_env() -> f64 {
    if std::env::var("TENOC_FULL").map(|v| v == "1").unwrap_or(false) {
        return 1.0;
    }
    std::env::var("TENOC_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|f| *f > 0.0)
        .unwrap_or(0.12)
}

/// Per-benchmark speedup (percent) of `new` over `base`, matched by name.
///
/// # Panics
///
/// Panics if the two sweeps cover different benchmarks.
pub fn speedups_percent(
    base: &[SuiteResult],
    new: &[SuiteResult],
) -> Vec<(String, TrafficClass, f64)> {
    assert_eq!(base.len(), new.len(), "mismatched sweeps");
    base.iter()
        .zip(new)
        .map(|(b, n)| {
            assert_eq!(b.name, n.name, "benchmark order mismatch");
            (b.name.clone(), b.class, (n.metrics.ipc / b.metrics.ipc - 1.0) * 100.0)
        })
        .collect()
}

/// Harmonic-mean IPC of a sweep.
pub fn hm_ipc(results: &[SuiteResult]) -> f64 {
    crate::metrics::harmonic_mean(results.iter().map(|r| r.metrics.ipc))
}

/// Harmonic-mean IPC restricted to one class.
pub fn hm_ipc_class(results: &[SuiteResult], class: TrafficClass) -> f64 {
    crate::metrics::harmonic_mean(
        results.iter().filter(|r| r.class == class).map(|r| r.metrics.ipc),
    )
}

/// Harmonic mean of per-benchmark speedup ratios (as the paper reports
/// "harmonic mean speedup").
///
/// A benchmark whose baseline retired nothing has no defined speedup
/// ([`RunMetrics::speedup_over`] returns `None`); it is **skipped with a
/// warning** on stderr rather than contributing a silent `0.0` that would
/// collapse the whole suite's harmonic mean to zero.
pub fn hm_speedup(base: &[SuiteResult], new: &[SuiteResult]) -> f64 {
    let ratios: Vec<f64> = base
        .iter()
        .zip(new)
        .filter_map(|(b, n)| match n.metrics.speedup_over(&b.metrics) {
            Some(r) => Some(r),
            None => {
                eprintln!(
                    "warning: skipping {} in hm_speedup: baseline IPC is {} (no defined speedup)",
                    b.name, b.metrics.ipc
                );
                None
            }
        })
        .collect();
    crate::metrics::harmonic_mean(ratios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenoc_workloads::by_name;

    const SCALE: f64 = 0.05;

    #[test]
    fn baseline_run_completes_for_each_class_representative() {
        for name in ["HIS", "MM", "RD"] {
            let spec = by_name(name).unwrap();
            let m = run_benchmark(Preset::BaselineTbDor, &spec, SCALE);
            assert!(m.completed, "{name}");
            assert!(m.ipc > 0.0);
        }
    }

    #[test]
    fn perfect_network_speedup_is_larger_for_hh_than_ll() {
        let ll = by_name("AES").unwrap();
        let hh = by_name("RD").unwrap();
        let sp = |spec: &tenoc_simt::KernelSpec| {
            let base = run_benchmark(Preset::BaselineTbDor, spec, SCALE);
            let perfect = run_benchmark(Preset::Perfect, spec, SCALE);
            perfect.ipc / base.ipc
        };
        let sp_ll = sp(&ll);
        let sp_hh = sp(&hh);
        assert!(sp_hh > sp_ll, "HH speedup ({sp_hh:.2}) must exceed LL speedup ({sp_ll:.2})");
        assert!(sp_ll < 1.35, "LL must be nearly network-insensitive: {sp_ll:.2}");
    }

    #[test]
    fn scale_env_default() {
        // Not setting the env vars in tests: default applies.
        let s = scale_from_env();
        assert!(s > 0.0 && s <= 1.0);
    }

    #[test]
    fn speedups_are_matched_by_name() {
        let specs = [by_name("HIS").unwrap()];
        let a = run_list(Preset::BaselineTbDor, &specs, SCALE);
        let b = run_list(Preset::Perfect, &specs, SCALE);
        let s = speedups_percent(&a, &b);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].0, "HIS");
    }

    /// Satellite regression: a zero-IPC baseline benchmark is skipped
    /// (with a warning) rather than zeroing the suite harmonic mean.
    #[test]
    fn hm_speedup_skips_degenerate_baselines() {
        let with_ipc = |name: &str, ipc: f64| SuiteResult {
            name: name.into(),
            class: TrafficClass::LL,
            metrics: RunMetrics {
                completed: true,
                core_cycles: 100,
                icnt_cycles: 50,
                scalar_insts: (ipc * 100.0) as u64,
                ipc,
                avg_net_latency: 0.0,
                mc_injection_rate: 0.0,
                core_injection_rate: 0.0,
                mc_stall_fraction: 0.0,
                dram_efficiency: 0.0,
                l2_read_hit_rate: 0.0,
                accepted_flits_per_node: 0.0,
                core_replays: 0,
                flit_hops: 0,
            },
        };
        let base = [with_ipc("OK", 2.0), with_ipc("DEAD", 0.0)];
        let new = [with_ipc("OK", 4.0), with_ipc("DEAD", 1.0)];
        let hm = hm_speedup(&base, &new);
        assert!((hm - 2.0).abs() < 1e-12, "DEAD must be skipped, not zero the mean: {hm}");
        assert_eq!(hm_speedup(&base[1..], &new[1..]), 0.0, "nothing left after skipping");
    }

    /// Acceptance: tracing the thr-eff preset emits latency histograms
    /// for both classes, a per-link utilization heatmap matching the mesh
    /// dimensions, and a non-empty flight-recorder sample — and the
    /// metrics are identical to an untraced run.
    #[test]
    fn traced_thr_eff_run_emits_full_telemetry() {
        let spec = by_name("RD").unwrap();
        let untraced = run_benchmark(Preset::ThroughputEffective, &spec, SCALE);
        let (m, reports) = run_traced(
            Preset::ThroughputEffective,
            &spec,
            SCALE,
            tenoc_noc::TelemetryConfig::default(),
        );
        assert_eq!(m, untraced, "telemetry must not perturb the simulation");
        // Double network: one report per slice, each a 6x6 mesh.
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].label, "request");
        assert_eq!(reports[1].label, "reply");
        for r in &reports {
            assert_eq!(r.radix, 6);
            assert_eq!(r.heatmap.len(), 6);
            assert!(r.heatmap.iter().all(|row| row.len() == 6));
            assert!(r.heatmap.iter().flatten().any(|&u| u > 0.0), "{}: heat", r.label);
            assert!(!r.links.is_empty());
            assert!(!r.flight.is_empty(), "{}: flight recorder sample", r.label);
            assert!(r.avg_occupancy.iter().any(|&o| o > 0.0), "{}: occupancy", r.label);
        }
        // Both classes show up across the slices' histograms.
        assert!(reports[0].hist.total[0].count() > 0, "request-class histogram");
        assert!(reports[1].hist.total[1].count() > 0, "reply-class histogram");
        assert!(reports[0].hist.network[0].count() > 0);
        assert!(reports[1].hist.network[1].count() > 0);
    }
}
