//! The closed-loop accelerator system: compute cores, interconnect, L2
//! banks and DRAM channels stepped in their own clock domains.

use crate::clock::{ClockConfig, Clocks, Domain};
use crate::mc::{McConfig, McNode, McRequest};
use crate::metrics::RunMetrics;
use tenoc_noc::{
    ArenaDoubleNetwork, ArenaNetwork, BandwidthLimitedInterconnect, DoubleNetwork, Interconnect,
    Network, NetworkConfig, NodeId, Packet, PerfectInterconnect, Tick,
};
use tenoc_simt::{CoreConfig, KernelSpec, MemRequest, ShaderCore};

/// Tag bit marking write requests inside a network packet.
const WRITE_BIT: u64 = 1 << 63;
/// Tag bits 48..63 carry the requesting core's index (for concentrated
/// configurations where several cores share one network terminal).
const CORE_SHIFT: u32 = 48;
const ADDR_MASK: u64 = (1 << CORE_SHIFT) - 1;

/// Which interconnect implementation the system uses.
///
/// All variants carry a full [`NetworkConfig`]: even the ideal models need
/// the node geometry and MC placement.
#[derive(Clone, Debug)]
pub enum IcntConfig {
    /// A single physical mesh.
    Mesh(NetworkConfig),
    /// Two channel-sliced meshes (requests / replies); the carried config
    /// describes the *single-network equivalent* and is sliced via
    /// [`DoubleNetwork::from_single`].
    Double(NetworkConfig),
    /// Zero-latency, infinite-bandwidth network (limit studies).
    Perfect(NetworkConfig),
    /// Zero-latency network with an aggregate cap in flits/interconnect
    /// cycle (Figure 6 limit study).
    BwLimited(NetworkConfig, f64),
}

impl serde::Serialize for IcntConfig {
    fn to_value(&self) -> serde::json::Value {
        // A tagged object: the variant name plus the carried network
        // configuration (and the bandwidth cap where present). This is the
        // canonical identity of an interconnect for content addressing —
        // two `IcntConfig`s with equal serializations build simulators
        // that produce identical results for identical workloads.
        let kind = match self {
            IcntConfig::Mesh(_) => "mesh",
            IcntConfig::Double(_) => "double",
            IcntConfig::Perfect(_) => "perfect",
            IcntConfig::BwLimited(..) => "bw-limited",
        };
        let mut fields =
            vec![("kind".to_string(), kind.to_value()), ("net".to_string(), self.net().to_value())];
        if let IcntConfig::BwLimited(_, flits) = self {
            fields.push(("cap_flits_per_cycle".to_string(), flits.to_value()));
        }
        serde::json::Value::Object(fields)
    }
}

impl IcntConfig {
    /// The geometry-bearing network configuration.
    pub fn net(&self) -> &NetworkConfig {
        match self {
            IcntConfig::Mesh(c)
            | IcntConfig::Double(c)
            | IcntConfig::Perfect(c)
            | IcntConfig::BwLimited(c, _) => c,
        }
    }

    fn build(&self, engine: EngineKind) -> Box<dyn Interconnect> {
        // Debug builds statically verify every network configuration they
        // are about to simulate: the auditor runs tenoc-verify's channel-
        // dependency-graph analysis inside `Network::new` and panics with
        // the report on any violation. Release builds skip the check.
        tenoc_verify::install_debug_auditor();
        match self {
            IcntConfig::Mesh(c) => {
                if engine == EngineKind::Arena && ArenaNetwork::supports(c) {
                    Box::new(ArenaNetwork::new(c.clone()))
                } else {
                    Box::new(Network::new(c.clone()))
                }
            }
            IcntConfig::Double(c) => {
                let arena_ok = engine == EngineKind::Arena
                    && c.channel_bytes.is_multiple_of(2)
                    && ArenaNetwork::supports(&c.slice());
                if arena_ok {
                    Box::new(ArenaDoubleNetwork::from_single(c))
                } else {
                    Box::new(DoubleNetwork::from_single(c))
                }
            }
            IcntConfig::Perfect(c) => {
                Box::new(PerfectInterconnect::new(c.mesh.len(), c.channel_bytes))
            }
            IcntConfig::BwLimited(c, flits) => {
                Box::new(BandwidthLimitedInterconnect::new(c.mesh.len(), c.channel_bytes, *flits))
            }
        }
    }
}

/// Which network execution engine a system simulates with. Both engines
/// produce bit-identical results (the arena is equivalence-tested against
/// the per-cell oracle); they differ only in memory layout and speed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The per-router oracle kernel ([`Network`] / [`DoubleNetwork`]).
    /// Required for telemetry, and the reference for equivalence tests.
    #[default]
    PerCell,
    /// The flat structure-of-arrays kernel ([`ArenaNetwork`] /
    /// [`ArenaDoubleNetwork`]); supports phase-interleaved batching.
    /// Falls back to the oracle for shapes the arena cannot pack.
    Arena,
}

/// Full system configuration.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Interconnect selection.
    pub icnt: IcntConfig,
    /// Compute-core microarchitecture.
    pub core: CoreConfig,
    /// MC node (L2 + DRAM) configuration.
    pub mc: McConfig,
    /// Clock frequencies.
    pub clocks: ClockConfig,
    /// Address-interleave chunk across MCs in bytes (paper: 256).
    pub chunk: u64,
    /// Compute cores sharing each compute-node router (concentration).
    /// The paper's configuration is 1; GPUs historically concentrated
    /// several cores per network port, and future designs scale core
    /// counts faster than mesh radix.
    pub cores_per_node: usize,
    /// Workload seed.
    pub seed: u64,
    /// Safety limit on core cycles.
    pub max_core_cycles: u64,
    /// Network execution engine (identical results either way).
    pub engine: EngineKind,
}

impl SystemConfig {
    /// A system around the given interconnect with all other parameters at
    /// their Table II values. Concentrated fabrics imply their own
    /// concentration (cores per compute router); every other topology
    /// keeps the paper's 1:1 core-to-router mapping.
    pub fn with_icnt(icnt: IcntConfig) -> Self {
        let cores_per_node = icnt.net().mesh.concentration();
        SystemConfig {
            icnt,
            core: CoreConfig::gtx280_like(),
            mc: McConfig::gtx280_like(),
            clocks: ClockConfig::gtx280(),
            chunk: 256,
            cores_per_node,
            seed: 0x7e0c,
            max_core_cycles: 50_000_000,
            engine: EngineKind::PerCell,
        }
    }
}

/// The closed-loop simulator.
pub struct System {
    cfg: SystemConfig,
    icnt: Box<dyn Interconnect>,
    cores: Vec<ShaderCore>,
    core_nodes: Vec<NodeId>,
    /// `core_nodes` deduplicated (one entry per compute-node terminal),
    /// precomputed so the reply-draining loop needs no per-tick set.
    unique_core_nodes: Vec<NodeId>,
    mc_nodes: Vec<NodeId>,
    mcs: Vec<McNode>,
    clocks: Clocks,
    /// One staged outgoing packet per core (requests refused by the NI
    /// wait here rather than being lost).
    staged: Vec<Option<Packet>>,
    /// Requests ejected at an MC but refused by its input queue.
    staged_mc: Vec<Option<McRequest>>,
}

impl System {
    /// Builds a system running `spec` on every compute core.
    ///
    /// # Panics
    ///
    /// Panics if the network configuration is invalid or the kernel spec
    /// is out of range.
    pub fn new(cfg: SystemConfig, spec: &KernelSpec) -> Self {
        Self::new_mixed(cfg, std::slice::from_ref(spec))
    }

    /// Builds a system running a *mix* of kernels: core `i` runs
    /// `specs[i % specs.len()]`. Models multi-tenant accelerators or
    /// concurrent kernel execution.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty, the network configuration is invalid or
    /// any kernel spec is out of range.
    pub fn new_mixed(cfg: SystemConfig, specs: &[KernelSpec]) -> Self {
        assert!(!specs.is_empty(), "at least one kernel spec required");
        assert!(cfg.cores_per_node >= 1, "concentration must be at least 1");
        let net = cfg.icnt.net().clone();
        let mc_nodes = net.mc_nodes.clone();
        let node_list: Vec<NodeId> =
            (0..net.mesh.len()).filter(|n| !mc_nodes.contains(n)).collect();
        // With concentration c, node_list entry i hosts cores
        // i*c .. (i+1)*c; `core_nodes[j]` is core j's terminal.
        let core_nodes: Vec<NodeId> =
            node_list.iter().flat_map(|&n| std::iter::repeat_n(n, cfg.cores_per_node)).collect();
        let cores = core_nodes
            .iter()
            .enumerate()
            .map(|(i, _)| ShaderCore::new(i, cfg.core.clone(), &specs[i % specs.len()], cfg.seed))
            .collect();
        let mcs = mc_nodes
            .iter()
            .map(|_| McNode::new(cfg.mc.clone(), mc_nodes.len(), cfg.chunk))
            .collect();
        System {
            icnt: cfg.icnt.build(cfg.engine),
            staged: vec![None; core_nodes.len()],
            staged_mc: vec![None; mc_nodes.len()],
            cores,
            core_nodes,
            unique_core_nodes: node_list,
            mc_nodes,
            mcs,
            clocks: Clocks::new(cfg.clocks),
            cfg,
        }
    }

    /// Number of compute cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    fn mc_index_of(&self, addr: u64) -> usize {
        ((addr / self.cfg.chunk) % self.mc_nodes.len() as u64) as usize
    }

    pub(crate) fn all_done(&self) -> bool {
        self.cores
            .iter()
            .all(|c| c.done() && c.pending_requests() == 0 && c.outstanding_fetches() == 0)
            && self.staged.iter().all(Option::is_none)
            && self.staged_mc.iter().all(Option::is_none)
            && self.icnt.in_flight() == 0
            && self.mcs.iter().all(McNode::idle)
    }

    /// Advances one domain by one cycle of its own clock. The per-domain
    /// bodies and the interconnect's own [`Tick`] all hang off this single
    /// dispatch point, so every clocked component in the system moves
    /// through the same trait.
    pub(crate) fn tick_domain(&mut self, domain: Domain) {
        match domain {
            Domain::Core => self.step_core_domain(),
            Domain::Icnt => self.step_icnt_domain(),
            Domain::Dram => self.step_dram_domain(),
        }
    }

    fn step_core_domain(&mut self) {
        let now = self.clocks.cycles(Domain::Core) - 1;
        for core in &mut self.cores {
            core.step(now);
        }
    }

    fn step_icnt_domain(&mut self) {
        self.icnt_exchange();
        self.icnt.tick();
    }

    /// The terminal-side half of an interconnect cycle: drain replies to
    /// cores, inject core requests, and run the MC side (eject requests,
    /// service L2, inject replies). The network's own [`Tick`] follows —
    /// either directly ([`System::step_icnt_domain`]) or phase-interleaved
    /// across many systems (the lockstep batch runner).
    pub(crate) fn icnt_exchange(&mut self) {
        let now = self.clocks.cycles(Domain::Icnt) - 1;
        let dram_now = self.clocks.cycles(Domain::Dram);
        // Replies to cores. With concentration > 1 several cores share a
        // terminal, so the destination core is read from the tag.
        for i in 0..self.unique_core_nodes.len() {
            let node = self.unique_core_nodes[i];
            while let Some(p) = self.icnt.pop(node) {
                debug_assert_eq!(p.header.tag & WRITE_BIT, 0, "cores only receive read replies");
                let core = ((p.header.tag >> CORE_SHIFT) & 0x7fff) as usize;
                self.cores[core].push_fill(p.header.tag & ADDR_MASK);
            }
        }
        // Core requests into the network.
        for (i, &node) in self.core_nodes.iter().enumerate() {
            loop {
                if self.staged[i].is_none() {
                    let Some(MemRequest { line_addr, is_write, size_bytes }) =
                        self.cores[i].pop_request()
                    else {
                        break;
                    };
                    let mc = self.mc_nodes[self.mc_index_of(line_addr)];
                    debug_assert_eq!(
                        line_addr >> CORE_SHIFT,
                        0,
                        "address fits below the core-id bits"
                    );
                    let mut tag = line_addr | ((i as u64) << CORE_SHIFT);
                    if is_write {
                        tag |= WRITE_BIT;
                    }
                    self.staged[i] = Some(Packet::request(node, mc, size_bytes, tag));
                }
                let pkt = self.staged[i].take().expect("staged above");
                match self.icnt.try_inject(node, pkt) {
                    Ok(()) => {}
                    Err(back) => {
                        self.staged[i] = Some(back);
                        break;
                    }
                }
            }
        }
        // MC side: eject requests, service L2, inject replies.
        for (m, &node) in self.mc_nodes.iter().enumerate() {
            // Retry a previously refused request first.
            if let Some(req) = self.staged_mc[m].take() {
                if let Err(back) = self.mcs[m].enqueue(req) {
                    self.staged_mc[m] = Some(back);
                }
            }
            while self.staged_mc[m].is_none() {
                let Some(p) = self.icnt.pop(node) else { break };
                let req = McRequest {
                    src: p.header.src,
                    line_addr: p.header.tag & !WRITE_BIT,
                    is_write: p.header.tag & WRITE_BIT != 0,
                };
                if let Err(back) = self.mcs[m].enqueue(req) {
                    self.staged_mc[m] = Some(back);
                }
            }
            self.mcs[m].step_l2(now, dram_now);
            let mut stalled = false;
            while let Some(reply) = self.mcs[m].peek_reply() {
                // reply.tag carries line address + core-id bits intact.
                let pkt = Packet::reply(node, reply.dst, 64, reply.tag);
                match self.icnt.try_inject(node, pkt) {
                    Ok(()) => {
                        self.mcs[m].pop_reply();
                    }
                    Err(_) => {
                        stalled = true;
                        break;
                    }
                }
            }
            if stalled {
                self.mcs[m].note_inject_stall();
            }
        }
    }

    /// Advances the system's clock by one edge and reports which domain it
    /// fell in (the batch runner drives lockstep systems through this).
    pub(crate) fn clock_tick(&mut self) -> Domain {
        self.clocks.tick()
    }

    /// Phase count of the interconnect's cycle (see
    /// [`Interconnect::phase_count`]).
    pub(crate) fn icnt_phase_count(&self) -> usize {
        self.icnt.phase_count()
    }

    /// One sub-phase of the interconnect's cycle (see
    /// [`Interconnect::tick_phase`]).
    pub(crate) fn icnt_tick_phase(&mut self, phase: usize) {
        self.icnt.tick_phase(phase);
    }

    /// Core cycles elapsed so far.
    pub(crate) fn core_cycles(&self) -> u64 {
        self.clocks.cycles(Domain::Core)
    }

    /// The configured core-cycle safety limit.
    pub(crate) fn max_core_cycles(&self) -> u64 {
        self.cfg.max_core_cycles
    }

    fn step_dram_domain(&mut self) {
        let now = self.clocks.cycles(Domain::Dram) - 1;
        for mc in &mut self.mcs {
            mc.step_dram(now);
        }
    }

    /// Runs the system until the kernel completes and all queues drain.
    ///
    /// Returns the collected metrics; `completed` is `false` if the safety
    /// cycle limit was hit first (indicating deadlock or an impossibly
    /// long configuration).
    pub fn run(&mut self) -> RunMetrics {
        let mut check = 0u32;
        loop {
            let domain = self.clocks.tick();
            self.tick_domain(domain);
            if domain == Domain::Core {
                check += 1;
                if check >= 512 {
                    check = 0;
                    if self.all_done() {
                        return self.metrics(true);
                    }
                    if self.clocks.cycles(Domain::Core) > self.cfg.max_core_cycles {
                        return self.metrics(false);
                    }
                }
            }
        }
    }

    /// Arms the interconnect's observability layer (latency histograms,
    /// link/VC counters, occupancy sampling, flight recorder). Call
    /// before [`System::run`]; a no-op on ideal networks, which have
    /// nothing to observe. Telemetry never changes simulated outcomes.
    pub fn enable_telemetry(&mut self, cfg: tenoc_noc::TelemetryConfig) {
        self.icnt.enable_telemetry(cfg);
    }

    /// Snapshots of the interconnect's telemetry: one report per physical
    /// network (two for a double network), empty when telemetry was never
    /// enabled or the network is ideal.
    pub fn telemetry_reports(&self) -> Vec<tenoc_noc::TelemetryReport> {
        self.icnt.telemetry_reports()
    }

    /// Total read/write requests the cores emitted (debug aid).
    pub fn debug_core_requests(&self) -> (u64, u64) {
        let r = self.cores.iter().map(|c| c.stats().read_requests).sum();
        let w = self.cores.iter().map(|c| c.stats().write_requests).sum();
        (r, w)
    }

    /// Prints per-MC DRAM diagnostics (debug aid for experiments).
    pub fn debug_dram(&self) {
        for (i, mc) in self.mcs.iter().enumerate() {
            let d = mc.dram_stats();
            println!(
                "  mc{i}: acc={} eff={:.3} rowhit={:.3} act={} pre={} busy={} cyc={} lat={:.1} l2h={:.3} in_blocked={}",
                d.accepted,
                d.efficiency(),
                d.row_hit_rate(),
                d.activates,
                d.precharges,
                d.busy_cycles,
                d.cycles,
                d.avg_latency(),
                mc.l2_stats().hit_rate(),
                mc.stats().input_blocked,
            );
        }
    }

    /// Collects metrics at the current instant.
    pub fn metrics(&self, completed: bool) -> RunMetrics {
        let core_cycles = self.clocks.cycles(Domain::Core).max(1);
        let icnt_cycles = self.clocks.cycles(Domain::Icnt).max(1);
        let scalar: u64 = self.cores.iter().map(|c| c.retired_scalar_insts()).sum();
        let net = self.icnt.stats();
        let mc_inject_flits: u64 =
            self.mc_nodes.iter().map(|&n| net.injected_flits_by_node[n]).sum();
        let core_inject_flits: u64 =
            self.core_nodes.iter().map(|&n| net.injected_flits_by_node[n]).sum();
        let stall =
            self.mcs.iter().map(|m| m.stall_fraction()).sum::<f64>() / self.mcs.len().max(1) as f64;
        let dram_eff = self.mcs.iter().map(|m| m.dram_stats().efficiency()).sum::<f64>()
            / self.mcs.len().max(1) as f64;
        let l2_hits: u64 = self.mcs.iter().map(|m| m.l2_stats().read_hits).sum();
        let l2_misses: u64 = self.mcs.iter().map(|m| m.l2_stats().read_misses).sum();
        let replays: u64 = self.cores.iter().map(|c| c.stats().replays).sum();
        RunMetrics {
            completed,
            core_cycles,
            icnt_cycles,
            scalar_insts: scalar,
            ipc: scalar as f64 / core_cycles as f64,
            avg_net_latency: net.avg_network_latency(),
            mc_injection_rate: mc_inject_flits as f64
                / icnt_cycles as f64
                / self.mc_nodes.len().max(1) as f64,
            core_injection_rate: core_inject_flits as f64
                / icnt_cycles as f64
                / self.core_nodes.len().max(1) as f64,
            mc_stall_fraction: stall,
            dram_efficiency: dram_eff,
            l2_read_hit_rate: if l2_hits + l2_misses == 0 {
                0.0
            } else {
                l2_hits as f64 / (l2_hits + l2_misses) as f64
            },
            accepted_flits_per_node: net.accepted_flits_per_node_cycle(),
            core_replays: replays,
            flit_hops: self.icnt.flit_hops(),
        }
    }
}

impl Tick for System {
    /// One edge of the earliest-pending clock domain (ties break Core,
    /// Icnt, Dram order). [`System::run`] is a drain-detection loop around
    /// this; external harnesses can drive the system edge by edge instead.
    fn tick(&mut self) {
        let domain = self.clocks.tick();
        self.tick_domain(domain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenoc_simt::KernelSpec;

    fn tiny_spec(mem: f64) -> KernelSpec {
        KernelSpec::builder("tiny")
            .warps_per_core(4)
            .insts_per_warp(60)
            .mem_fraction(mem)
            .stream_fraction(0.5)
            .build()
    }

    #[test]
    fn compute_only_kernel_completes_on_mesh() {
        let cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
        let mut sys = System::new(cfg, &tiny_spec(0.0));
        let m = sys.run();
        assert!(m.completed);
        assert_eq!(m.scalar_insts, 28 * 4 * 60 * 32);
        assert!(m.ipc > 0.0);
    }

    #[test]
    fn memory_kernel_completes_on_mesh() {
        let cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
        let mut sys = System::new(cfg, &tiny_spec(0.3));
        let m = sys.run();
        assert!(m.completed, "closed loop must drain: {m:?}");
        assert!(m.mc_injection_rate > 0.0, "replies flowed through MC routers");
        assert!(m.dram_efficiency > 0.0);
    }

    #[test]
    fn memory_kernel_completes_on_checkerboard() {
        let cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::checkerboard_mesh(6)));
        let mut sys = System::new(cfg, &tiny_spec(0.3));
        let m = sys.run();
        assert!(m.completed);
    }

    #[test]
    fn memory_kernel_completes_on_double_network() {
        let mut net = NetworkConfig::checkerboard_mesh(6);
        net.mc_inject_ports = 2;
        let cfg = SystemConfig::with_icnt(IcntConfig::Double(net));
        let mut sys = System::new(cfg, &tiny_spec(0.3));
        let m = sys.run();
        assert!(m.completed);
    }

    #[test]
    fn perfect_network_is_at_least_as_fast() {
        let spec = KernelSpec::builder("mem")
            .warps_per_core(8)
            .insts_per_warp(80)
            .mem_fraction(0.5)
            .stream_fraction(0.9)
            .lines_per_mem(2)
            .build();
        let mesh = {
            let cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
            System::new(cfg, &spec).run()
        };
        let perfect = {
            let cfg = SystemConfig::with_icnt(IcntConfig::Perfect(NetworkConfig::baseline_mesh(6)));
            System::new(cfg, &spec).run()
        };
        assert!(mesh.completed && perfect.completed);
        assert!(perfect.ipc >= mesh.ipc, "perfect {} must beat mesh {}", perfect.ipc, mesh.ipc);
    }

    #[test]
    fn mixed_kernels_run_to_completion() {
        let light = tiny_spec(0.0);
        let heavy = KernelSpec::builder("heavy")
            .warps_per_core(8)
            .insts_per_warp(40)
            .mem_fraction(0.4)
            .stream_fraction(0.9)
            .build();
        let cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
        let mut sys = System::new_mixed(cfg, &[light.clone(), heavy.clone()]);
        let m = sys.run();
        assert!(m.completed);
        // 14 cores run each spec.
        let expect = 14 * (light.total_warp_insts() + heavy.total_warp_insts()) * 32;
        assert_eq!(m.scalar_insts, expect);
    }

    #[test]
    fn concentration_doubles_core_count_and_completes() {
        let mut cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
        cfg.cores_per_node = 2;
        let spec = tiny_spec(0.2);
        let mut sys = System::new(cfg, &spec);
        assert_eq!(sys.num_cores(), 56);
        let m = sys.run();
        assert!(m.completed);
        assert_eq!(m.scalar_insts, 56 * spec.total_warp_insts() * 32);
    }

    #[test]
    fn concentration_increases_pressure_on_the_network() {
        let spec = KernelSpec::builder("mem")
            .warps_per_core(8)
            .insts_per_warp(60)
            .mem_fraction(0.3)
            .stream_fraction(0.9)
            .build();
        let base = {
            let cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
            System::new(cfg, &spec).run()
        };
        let conc = {
            let mut cfg =
                SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
            cfg.cores_per_node = 2;
            System::new(cfg, &spec).run()
        };
        assert!(conc.completed);
        // Twice the demand on the same network: per-core throughput drops.
        let per_core_base = base.ipc / 28.0;
        let per_core_conc = conc.ipc / 56.0;
        assert!(
            per_core_conc < per_core_base,
            "concentration must increase contention: {per_core_conc} vs {per_core_base}"
        );
        assert!(conc.mc_stall_fraction >= base.mc_stall_fraction * 0.9);
    }

    /// Driving the system through `Tick` advances all three clock domains
    /// at their configured ratios, same as `run`'s internal loop.
    #[test]
    fn system_ticks_edge_by_edge() {
        let cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
        let mut sys = System::new(cfg, &tiny_spec(0.2));
        for _ in 0..30_000 {
            sys.tick();
        }
        let m = sys.metrics(false);
        let ratio = m.core_cycles as f64 / m.icnt_cycles as f64;
        assert!((ratio - 1296.0 / 602.0).abs() < 0.05, "core/icnt ratio {ratio}");
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
        let a = System::new(cfg.clone(), &tiny_spec(0.25)).run();
        let b = System::new(cfg, &tiny_spec(0.25)).run();
        assert_eq!(a.core_cycles, b.core_cycles);
        assert_eq!(a.scalar_insts, b.scalar_insts);
    }
}
