//! Structured experiment reports: JSON export/import of sweep results and
//! markdown table rendering, so external tooling (plotting scripts,
//! regression dashboards) can consume the harness output without parsing
//! printed tables.

use crate::experiments::SuiteResult;
use crate::metrics::RunMetrics;
use serde::{Deserialize, Serialize};
use tenoc_simt::TrafficClass;

/// A serializable record of one benchmark's run within a sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkRecord {
    /// Benchmark abbreviation (Table I).
    pub name: String,
    /// Traffic class label (`LL`/`LH`/`HH`).
    pub class: String,
    /// Collected metrics.
    pub metrics: RunMetrics,
}

/// A serializable sweep: one design point over a benchmark list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Design-point label (e.g. `TB-DOR`).
    pub design: String,
    /// Kernel length scale used.
    pub scale: f64,
    /// Per-benchmark results.
    pub benchmarks: Vec<BenchmarkRecord>,
}

impl SweepReport {
    /// Builds a report from suite results.
    pub fn new(design: &str, scale: f64, results: &[SuiteResult]) -> Self {
        SweepReport {
            design: design.to_owned(),
            scale,
            benchmarks: results
                .iter()
                .map(|r| BenchmarkRecord {
                    name: r.name.clone(),
                    class: r.class.to_string(),
                    metrics: r.metrics,
                })
                .collect(),
        }
    }

    /// Serializes to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics for reports built by [`SweepReport::new`] (all fields
    /// are plain data).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is plain data")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Harmonic-mean IPC over all benchmarks.
    pub fn hm_ipc(&self) -> f64 {
        crate::metrics::harmonic_mean(self.benchmarks.iter().map(|b| b.metrics.ipc))
    }

    /// Renders a GitHub-flavored markdown table of the key metrics.
    pub fn to_markdown(&self) -> String {
        let mut out = format!(
            "### {} (scale {})\n\n| bench | class | IPC | net lat | MC stall | DRAM eff |\n|---|---|---|---|---|---|\n",
            self.design, self.scale
        );
        for b in &self.benchmarks {
            out.push_str(&format!(
                "| {} | {} | {:.1} | {:.1} | {:.0}% | {:.0}% |\n",
                b.name,
                b.class,
                b.metrics.ipc,
                b.metrics.avg_net_latency,
                b.metrics.mc_stall_fraction * 100.0,
                b.metrics.dram_efficiency * 100.0
            ));
        }
        out
    }

    /// Writes the JSON report under `$TENOC_REPORT_DIR` (if set), named
    /// `<design>.json`. Returns the path written, or `None` when the
    /// variable is unset.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the file.
    pub fn write_to_env_dir(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        let Ok(dir) = std::env::var("TENOC_REPORT_DIR") else {
            return Ok(None);
        };
        let mut path = std::path::PathBuf::from(dir);
        std::fs::create_dir_all(&path)?;
        let safe: String =
            self.design.chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect();
        path.push(format!("{safe}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(Some(path))
    }
}

/// `TrafficClass` to canonical label (helper for external consumers).
pub fn class_label(class: TrafficClass) -> &'static str {
    match class {
        TrafficClass::LL => "LL",
        TrafficClass::LH => "LH",
        TrafficClass::HH => "HH",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{run_list, SuiteResult};
    use crate::presets::Preset;
    use tenoc_workloads::by_name;

    fn sample() -> Vec<SuiteResult> {
        run_list(Preset::BaselineTbDor, &[by_name("HIS").unwrap()], 0.03)
    }

    #[test]
    fn json_roundtrip_preserves_results() {
        let report = SweepReport::new("TB-DOR", 0.03, &sample());
        let json = report.to_json();
        let back = SweepReport::from_json(&json).unwrap();
        assert_eq!(back.design, report.design);
        assert_eq!(back.benchmarks.len(), report.benchmarks.len());
        let (a, b) = (&report.benchmarks[0].metrics, &back.benchmarks[0].metrics);
        // Integers round-trip exactly; floats to printing precision.
        assert_eq!(a.core_cycles, b.core_cycles);
        assert_eq!(a.scalar_insts, b.scalar_insts);
        assert_eq!(a.flit_hops, b.flit_hops);
        assert!((a.ipc - b.ipc).abs() < 1e-9);
        assert!((a.avg_net_latency - b.avg_net_latency).abs() < 1e-9);
    }

    #[test]
    fn markdown_contains_all_benchmarks() {
        let report = SweepReport::new("TB-DOR", 0.03, &sample());
        let md = report.to_markdown();
        assert!(md.contains("| HIS | LL |"));
        assert!(md.starts_with("### TB-DOR"));
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(SweepReport::from_json("{not json").is_err());
    }

    #[test]
    fn hm_ipc_of_single_benchmark_is_its_ipc() {
        let results = sample();
        let report = SweepReport::new("x", 0.03, &results);
        assert!((report.hm_ipc() - results[0].metrics.ipc).abs() < 1e-9);
    }

    #[test]
    fn env_dir_unset_writes_nothing() {
        std::env::remove_var("TENOC_REPORT_DIR");
        let report = SweepReport::new("x", 0.03, &sample());
        assert_eq!(report.write_to_env_dir().unwrap(), None);
    }

    #[test]
    fn class_labels() {
        assert_eq!(class_label(TrafficClass::LL), "LL");
        assert_eq!(class_label(TrafficClass::HH), "HH");
    }
}
