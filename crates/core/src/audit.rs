//! Static config-space audit: verification, load bounds and area in one
//! deterministic report.
//!
//! An audit is the free fidelity tier of the design-space exploration
//! staging in ROADMAP item 5: every candidate configuration is first
//! *verified* (illegal configurations are rejected with the prover's
//! witnesses), then *bounded* (per-matrix saturation-throughput upper
//! bounds and zero-load latency from `tenoc-verify`'s load analyzer),
//! then *priced* (ORION-calibrated chip area), and legal candidates are
//! ranked by a static throughput-effectiveness score — all without
//! simulating a single cycle. The `tenoc audit` subcommand serializes the
//! result as deterministic JSON suitable for golden-snapshot regression.

use crate::area::AreaModel;
use crate::presets::Preset;
use crate::system::IcntConfig;
use serde::{Deserialize, Serialize};
use tenoc_noc::{NetworkConfig, VcLayout};
use tenoc_verify::load::{
    analyze_load, analyze_load_double, ClassZeroLoad, LoadReport, TrafficMatrix,
};
use tenoc_verify::{analyze, analyze_double, VerifyReport};

/// Per-matrix static metrics of one audited configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatrixMetrics {
    /// Matrix label (`uniform` / `transpose` / `many-to-few`).
    pub matrix: String,
    /// Saturation-throughput upper bound, in packets/cycle/source-node
    /// (see `tenoc_verify::load::demands` for the normalization).
    pub saturation_rate: f64,
    /// The bound in ejected flits/cycle/node (all nodes), the open-loop
    /// harness's accepted-throughput unit.
    pub accepted_bound: f64,
    /// Largest normalized resource load at unit injection scale.
    pub max_load: f64,
    /// The binding resource (for double networks, of the binding slice).
    pub bottleneck: String,
    /// The hottest physical channel, `"node dir"` (double networks: of
    /// the binding slice), or `"-"` when no channel carries load.
    pub hottest_channel: String,
    /// Zero-load latency bounds per class present in the matrix.
    pub zero_load: Vec<ClassZeroLoad>,
    /// Demands the routing function cannot deliver (non-zero only for
    /// synthetic all-to-all matrices on checkerboard meshes).
    pub demands_unroutable: usize,
}

impl MatrixMetrics {
    fn from_report(r: &LoadReport) -> Self {
        MatrixMetrics {
            matrix: r.matrix.clone(),
            saturation_rate: r.saturation_rate,
            accepted_bound: r.accepted_bound,
            max_load: r.max_load,
            bottleneck: r.bottleneck.clone(),
            hottest_channel: hottest_label(r),
            zero_load: r.zero_load.clone(),
            demands_unroutable: r.demands_unroutable,
        }
    }
}

fn hottest_label(r: &LoadReport) -> String {
    match r.hottest_channels(1e-9).first() {
        Some(c) => format!("{} {}", c.node, c.dir),
        None => "-".to_string(),
    }
}

/// One audited configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Configuration name (preset label, or the variant's name).
    pub name: String,
    /// The verifier's one-line subject of the underlying network config.
    pub subject: String,
    /// Whether verification found no violations.
    pub legal: bool,
    /// `true` for ideal (zero-area, zero-latency) networks, which are
    /// verified trivially and carry no load analysis.
    pub ideal: bool,
    /// Violation messages (with witnesses) for illegal configurations.
    pub violations: Vec<String>,
    /// Static load metrics per traffic matrix (legal, physical configs
    /// only — there is no point bounding an illegal fabric).
    pub matrices: Vec<MatrixMetrics>,
    /// Total chip area in mm² (ORION-calibrated model).
    pub area_mm2: f64,
    /// NoC share of the chip area in mm².
    pub noc_area_mm2: f64,
    /// Static throughput-effectiveness score: the many-to-few
    /// accepted-throughput bound per mm² of chip area (×1000 for
    /// readability). A *relative ranking* proxy for the paper's IPC/mm²
    /// — saturation bandwidth stands in for application throughput, so
    /// compare scores only against other entries of the same audit.
    pub te_score: f64,
}

impl AuditEntry {
    /// The metrics of one traffic matrix, when the entry was legal and
    /// physical (illegal and ideal entries carry no load analysis).
    pub fn matrix(&self, m: TrafficMatrix) -> Option<&MatrixMetrics> {
        self.matrices.iter().find(|x| x.matrix == m.label())
    }
}

/// A full config-space audit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Mesh radix the grid was audited at.
    pub k: u64,
    /// Audited configurations: legal physical entries first (ranked by
    /// descending `te_score`), then ideal networks, then illegal ones.
    pub entries: Vec<AuditEntry>,
}

impl AuditReport {
    /// Serializes the report to pretty JSON (deterministic: entry order,
    /// map order and float formatting are all stable).
    ///
    /// # Panics
    ///
    /// Never panics: the report is plain data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is plain data")
    }

    /// The legal, physical (rankable) entries, best first.
    pub fn ranked(&self) -> impl Iterator<Item = &AuditEntry> {
        self.entries.iter().filter(|e| e.legal && !e.ideal)
    }
}

/// Audits one interconnect configuration under a given name.
pub fn audit_icnt(name: &str, icnt: &IcntConfig) -> AuditEntry {
    let net = icnt.net();
    let ideal = matches!(icnt, IcntConfig::Perfect(_) | IcntConfig::BwLimited(_, _));
    let verify: VerifyReport = match icnt {
        IcntConfig::Double(c) => analyze_double(c),
        _ => analyze(net),
    };
    let legal = verify.violations().next().is_none();
    let violations = verify.violations().map(|f| f.to_string()).collect();

    let mut matrices = Vec::new();
    if legal && !ideal {
        for m in TrafficMatrix::ALL {
            matrices.push(match icnt {
                IcntConfig::Double(c) => {
                    let d = analyze_load_double(c, m);
                    // Report the binding slice's resource picture with the
                    // combined bound.
                    let binding =
                        if d.reply.max_load >= d.request.max_load { &d.reply } else { &d.request };
                    let mut zero_load = d.request.zero_load.clone();
                    zero_load.extend(d.reply.zero_load.iter().cloned());
                    MatrixMetrics {
                        matrix: m.label().to_string(),
                        saturation_rate: d.saturation_rate,
                        accepted_bound: d.accepted_bound,
                        max_load: binding.max_load,
                        bottleneck: binding.bottleneck.clone(),
                        hottest_channel: hottest_label(binding),
                        zero_load,
                        demands_unroutable: d.request.demands_unroutable
                            + d.reply.demands_unroutable,
                    }
                }
                _ => MatrixMetrics::from_report(&analyze_load(net, m)),
            });
        }
    }

    let area = AreaModel::chip_area(icnt);
    let mut entry = AuditEntry {
        name: name.to_string(),
        subject: verify.subject.clone(),
        legal,
        ideal,
        violations,
        matrices,
        area_mm2: area.total(),
        noc_area_mm2: area.noc(),
        te_score: 0.0,
    };
    entry.te_score = entry
        .matrix(TrafficMatrix::ManyToFew)
        .map(|m| 1000.0 * m.accepted_bound / area.total())
        .unwrap_or(0.0);
    entry
}

/// Named illegal variants included in the default grid so the audit
/// demonstrates rejection-with-witness alongside the ranking: a
/// checkerboard network without phase-split VCs (routing-deadlock cycle),
/// O1TURN on a checkerboard mesh (illegal turns at half-routers), and a
/// torus without dateline VCs (ring cycle across the wraparound links).
pub fn illegal_variants(k: usize) -> Vec<(String, IcntConfig)> {
    let mut unsplit = NetworkConfig::checkerboard_mesh(k);
    unsplit.vcs = VcLayout::new(2, 2, false);
    let mut o1turn = NetworkConfig::checkerboard_mesh(k);
    o1turn.routing = tenoc_noc::RoutingKind::O1Turn;
    let mut undated = NetworkConfig::baseline_torus(k);
    undated.vcs = VcLayout::new(4, 2, false);
    vec![
        ("CR-unsplit-VCs".to_string(), IcntConfig::Mesh(unsplit)),
        ("O1TURN-on-CR-mesh".to_string(), IcntConfig::Mesh(o1turn)),
        ("Torus-no-dateline".to_string(), IcntConfig::Mesh(undated)),
    ]
}

/// Audits the default grid: every named preset plus the
/// [`illegal_variants`], on a `k x k` mesh. Entries are ordered legal
/// physical (by descending score, ties by name), then ideal, then
/// illegal.
pub fn audit_grid(k: usize) -> AuditReport {
    let mut entries = Vec::new();
    for p in Preset::NAMED {
        entries.push(audit_icnt(&p.label(), &p.icnt(k)));
    }
    for (name, icnt) in illegal_variants(k) {
        entries.push(audit_icnt(&name, &icnt));
    }
    entries.sort_by(|a, b| {
        let class = |e: &AuditEntry| match (e.legal, e.ideal) {
            (true, false) => 0u8,
            (true, true) => 1,
            _ => 2,
        };
        class(a).cmp(&class(b)).then(b.te_score.total_cmp(&a.te_score)).then(a.name.cmp(&b.name))
    });
    AuditReport { k: k as u64, entries }
}
