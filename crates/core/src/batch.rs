//! Lockstep execution of many same-shape systems (the batched sweep
//! kernel's system-level driver).
//!
//! [`run_lockstep`] advances B systems through one shared clock schedule
//! in *rounds*: each running cell takes a bounded quantum of clock edges,
//! then the batch rotates, keeping every cell within one round of its
//! peers while a cell's slabs, cores and MC queues stay cache-resident
//! for its whole turn.
//!
//! Per-cell equivalence to [`System::run`] is structural: systems share no
//! state (each owns its cores, MCs, network, RNG streams and clocks), so
//! each cell executes exactly its solo operation sequence regardless of
//! how turns interleave, and the drain check fires at the same
//! 512-core-edge cadence as the solo loop (counters persist across
//! rounds). A finished system freezes at exactly the edge its solo run
//! would have finished on; the rest keep stepping. Determinism therefore
//! survives batching at any width.

use crate::clock::Domain;
use crate::metrics::RunMetrics;
use crate::system::System;

/// Runs every system to completion in lockstep, returning each system's
/// metrics in input order — bit-identical to calling [`System::run`] on
/// each system alone.
///
/// # Panics
///
/// Panics (debug builds) if the systems' clock configurations diverge:
/// lockstep requires one shared edge schedule.
pub fn run_lockstep(systems: &mut [System]) -> Vec<RunMetrics> {
    // Clock edges a cell advances before the batch rotates to the next
    // cell. The quantum trades skew for locality: within a round a cell's
    // slabs, cores and MC queues stay cache-resident, and one round is
    // long enough to amortize reloading them. Any quantum gives the same
    // results — cells share no state — so this is a scheduling choice,
    // not a semantic one.
    const ROUND_EDGES: u32 = 65536;
    let n = systems.len();
    let mut results: Vec<Option<RunMetrics>> = (0..n).map(|_| None).collect();
    let mut running: Vec<usize> = (0..n).collect();
    // Per-cell core-edge counters for the drain check; these persist
    // across rounds so every cell sees the solo loop's exact cadence.
    let mut checks: Vec<u32> = vec![0; n];
    while !running.is_empty() {
        running.retain(|&i| {
            let sys = &mut systems[i];
            for _ in 0..ROUND_EDGES {
                let domain = sys.clock_tick();
                if domain == Domain::Icnt {
                    sys.icnt_exchange();
                    for p in 0..sys.icnt_phase_count() {
                        sys.icnt_tick_phase(p);
                    }
                } else {
                    sys.tick_domain(domain);
                }
                if domain == Domain::Core {
                    checks[i] += 1;
                    if checks[i] >= 512 {
                        checks[i] = 0;
                        if sys.all_done() {
                            results[i] = Some(sys.metrics(true));
                            return false;
                        }
                        if sys.core_cycles() > sys.max_core_cycles() {
                            results[i] = Some(sys.metrics(false));
                            return false;
                        }
                    }
                }
            }
            true
        });
    }
    results.into_iter().map(|r| r.expect("every system reached a verdict")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Preset;
    use crate::system::{IcntConfig, SystemConfig};
    use tenoc_noc::NetworkConfig;
    use tenoc_simt::KernelSpec;

    fn spec(mem: f64) -> KernelSpec {
        KernelSpec::builder("b")
            .warps_per_core(4)
            .insts_per_warp(60)
            .mem_fraction(mem)
            .stream_fraction(0.6)
            .build()
    }

    fn sys(engine: crate::system::EngineKind, seed: u64) -> System {
        let mut cfg = SystemConfig::with_icnt(IcntConfig::Mesh(NetworkConfig::baseline_mesh(6)));
        cfg.seed = seed;
        cfg.engine = engine;
        System::new(cfg, &spec(0.3))
    }

    /// Per-domain wall-time breakdown of the thr-eff/RD probe on both
    /// engines. A diagnostic, not a check: run with
    /// `cargo test --release -p tenoc-core profile_domains -- --ignored --nocapture`.
    #[test]
    #[ignore]
    fn profile_domains() {
        use crate::system::EngineKind;
        use std::time::Instant;
        let scale = 0.2;
        let spec0 = tenoc_workloads::by_name("RD").unwrap().scaled(scale);
        for engine in [EngineKind::PerCell, EngineKind::Arena] {
            let mut cfg = SystemConfig::with_icnt(Preset::ThroughputEffective.icnt(6));
            cfg.engine = engine;
            let mut sys = System::new(cfg, &spec0);
            let mut t_exchange = 0u128;
            let mut t_phase = [0u128; 8];
            let mut t_core = 0u128;
            let mut t_other = 0u128;
            let mut icnt_edges = 0u64;
            let mut check = 0u32;
            loop {
                let domain = sys.clock_tick();
                if domain == Domain::Icnt {
                    icnt_edges += 1;
                    let t0 = Instant::now();
                    sys.icnt_exchange();
                    t_exchange += t0.elapsed().as_nanos();
                    for p in 0..sys.icnt_phase_count() {
                        let t0 = Instant::now();
                        sys.icnt_tick_phase(p);
                        t_phase[p.min(7)] += t0.elapsed().as_nanos();
                    }
                } else if domain == Domain::Core {
                    let t0 = Instant::now();
                    sys.tick_domain(domain);
                    t_core += t0.elapsed().as_nanos();
                    check += 1;
                    if check >= 512 {
                        check = 0;
                        if sys.all_done() || sys.core_cycles() > sys.max_core_cycles() {
                            break;
                        }
                    }
                } else {
                    let t0 = Instant::now();
                    sys.tick_domain(domain);
                    t_other += t0.elapsed().as_nanos();
                }
            }
            println!("=== engine {engine:?}: {icnt_edges} icnt edges");
            println!("  exchange {:>8.1} ms", t_exchange as f64 / 1e6);
            for (p, t) in t_phase.iter().enumerate() {
                if *t > 0 {
                    println!("  phase[{p}] {:>8.1} ms", *t as f64 / 1e6);
                }
            }
            println!("  core     {:>8.1} ms", t_core as f64 / 1e6);
            println!("  other    {:>8.1} ms", t_other as f64 / 1e6);
        }
    }

    #[test]
    fn lockstep_matches_solo_runs_per_cell() {
        use crate::system::EngineKind;
        let solo: Vec<RunMetrics> = (0..3).map(|s| sys(EngineKind::Arena, 100 + s).run()).collect();
        let mut batch: Vec<System> = (0..3).map(|s| sys(EngineKind::Arena, 100 + s)).collect();
        let got = run_lockstep(&mut batch);
        for (a, b) in solo.iter().zip(&got) {
            assert_eq!(a, b, "batched cell diverged from its solo run");
        }
    }

    #[test]
    fn arena_engine_matches_oracle_engine() {
        use crate::system::EngineKind;
        let a = sys(EngineKind::PerCell, 7).run();
        let b = sys(EngineKind::Arena, 7).run();
        assert_eq!(a, b, "arena engine must be bit-identical to the oracle");
    }

    #[test]
    fn arena_matches_oracle_on_paper_preset() {
        use crate::system::EngineKind;
        let mk = |engine| {
            let mut cfg = SystemConfig::with_icnt(Preset::ThroughputEffective.icnt(6));
            cfg.engine = engine;
            cfg.max_core_cycles = 400_000;
            System::new(cfg, &spec(0.3))
        };
        let a = mk(EngineKind::PerCell).run();
        let b = mk(EngineKind::Arena).run();
        assert_eq!(a, b, "arena engine must match the oracle on the double-network preset");
    }
}
