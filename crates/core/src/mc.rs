//! The memory-controller node: L2 cache bank + GDDR3 channel behind one
//! mesh router (paper Figure 5).
//!
//! Requests ejected from the network are serviced by the L2 bank (one per
//! L2 cycle): read hits produce a reply after the bank latency; read
//! misses allocate an L2 MSHR and queue a DRAM read; writes update the
//! bank or stream to DRAM (no reply — MC-to-core traffic is read replies
//! only, as in the paper). Replies wait in a queue for injection into the
//! reply network; when injection blocks, the MC is *stalled* — the signal
//! of the paper's Figure 11.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tenoc_cache::{Access, Cache, CacheConfig, LookupResult, MshrTable};
use tenoc_dram::{Completion, DramConfig, DramRequest, MemoryController, SchedulingPolicy};
use tenoc_noc::NodeId;

/// MC node configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct McConfig {
    /// L2 bank geometry (paper: 128 KB per MC).
    pub l2: CacheConfig,
    /// L2 hit latency in L2 cycles.
    pub l2_latency: u64,
    /// Incoming request queue capacity.
    pub in_queue_cap: usize,
    /// L2 miss-status registers.
    pub l2_mshrs: usize,
    /// Reply queue capacity (soft bound; merged fills may briefly exceed
    /// it).
    pub reply_queue_cap: usize,
    /// DRAM channel configuration.
    pub dram: DramConfig,
    /// DRAM scheduling policy.
    pub policy: SchedulingPolicy,
}

impl McConfig {
    /// The paper's MC node: 128 KB L2, 8-cycle bank latency, 32-entry
    /// queues, FR-FCFS GDDR3.
    pub fn gtx280_like() -> Self {
        McConfig {
            l2: CacheConfig::l2_128k(),
            l2_latency: 8,
            in_queue_cap: 32,
            l2_mshrs: 64,
            reply_queue_cap: 32,
            dram: DramConfig::gddr3(),
            policy: SchedulingPolicy::FrFcfs,
        }
    }
}

/// A read reply ready for injection into the reply network.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Reply {
    /// Destination compute node.
    pub dst: NodeId,
    /// Correlation tag (the line address the core is waiting on).
    pub tag: u64,
}

/// A request as received from the network.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct McRequest {
    /// Requesting compute node.
    pub src: NodeId,
    /// Line-aligned global address.
    pub line_addr: u64,
    /// `true` for writes.
    pub is_write: bool,
}

/// MC-side statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct McStats {
    /// Requests accepted from the network.
    pub requests: u64,
    /// Requests refused for a full input queue (back-pressure into the
    /// request network).
    pub input_blocked: u64,
    /// Interconnect cycles in which a ready reply could not be injected.
    pub inject_stall_cycles: u64,
    /// Interconnect cycles observed.
    pub icnt_cycles: u64,
}

/// One memory-controller node.
pub struct McNode {
    cfg: McConfig,
    l2: Cache,
    mshrs: MshrTable,
    dram: MemoryController,
    in_q: VecDeque<McRequest>,
    /// Hit replies waiting out the bank latency: `(ready_at, reply)`.
    hit_delay: VecDeque<(u64, Reply)>,
    reply_q: VecDeque<Reply>,
    /// Scratch for MSHR completions (reused across fills).
    fill_targets: Vec<u64>,
    /// Write-backs and write misses waiting for DRAM queue space.
    pending_writes: VecDeque<u64>,
    stats: McStats,
    /// Number of MCs (for address localization).
    n_mcs: usize,
    /// Interleave chunk in bytes (paper: 256).
    chunk: u64,
}

impl McNode {
    /// Builds an MC node. `n_mcs` and `chunk` define the global address
    /// interleaving used to localize addresses onto this channel.
    ///
    /// # Panics
    ///
    /// Panics if the cache or DRAM configuration is invalid.
    pub fn new(cfg: McConfig, n_mcs: usize, chunk: u64) -> Self {
        McNode {
            l2: Cache::new(cfg.l2),
            mshrs: MshrTable::new(cfg.l2_mshrs, 64),
            dram: MemoryController::with_policy(cfg.dram, cfg.policy),
            in_q: VecDeque::new(),
            hit_delay: VecDeque::new(),
            reply_q: VecDeque::new(),
            fill_targets: Vec::new(),
            pending_writes: VecDeque::new(),
            stats: McStats::default(),
            n_mcs,
            chunk,
            cfg,
        }
    }

    /// Squeezes the MC-interleaving bits out of a global address so this
    /// channel's DRAM sees a dense local address space.
    fn localize(&self, addr: u64) -> u64 {
        let span = self.chunk * self.n_mcs as u64;
        (addr / span) * self.chunk + (addr % self.chunk)
    }

    /// `true` if the input queue can take another request.
    pub fn can_accept(&self) -> bool {
        self.in_q.len() < self.cfg.in_queue_cap
    }

    /// Accepts a request from the network.
    ///
    /// # Errors
    ///
    /// Returns the request back if the input queue is full.
    pub fn enqueue(&mut self, req: McRequest) -> Result<(), McRequest> {
        if !self.can_accept() {
            self.stats.input_blocked += 1;
            return Err(req);
        }
        self.stats.requests += 1;
        self.in_q.push_back(req);
        Ok(())
    }

    /// Services the L2 bank for one interconnect/L2 cycle. `dram_now` is
    /// the current DRAM-domain cycle (for request arrival stamps).
    pub fn step_l2(&mut self, now: u64, dram_now: u64) {
        self.stats.icnt_cycles += 1;
        // Mature hit replies.
        while let Some(&(ready, reply)) = self.hit_delay.front() {
            if ready > now || self.reply_q.len() >= self.cfg.reply_queue_cap {
                break;
            }
            self.hit_delay.pop_front();
            self.reply_q.push_back(reply);
        }
        // Retry deferred writes.
        while let Some(&addr) = self.pending_writes.front() {
            let local = self.localize(addr);
            if self.dram.push(DramRequest::write(local, addr, dram_now)).is_err() {
                break;
            }
            self.pending_writes.pop_front();
        }
        // Service one request.
        let Some(&req) = self.in_q.front() else { return };
        if req.is_write {
            match self.l2.access(req.line_addr, Access::Write) {
                LookupResult::Hit => {}
                LookupResult::Miss => {
                    // Write-through to DRAM, no allocation, no reply.
                    self.pending_writes.push_back(req.line_addr);
                }
            }
            self.in_q.pop_front();
            return;
        }
        // Read.
        if self.mshrs.contains(req.line_addr) {
            self.l2.access(req.line_addr, Access::Read); // counts the miss
            self.mshrs.allocate(req.line_addr, req.src as u64);
            self.in_q.pop_front();
            return;
        }
        // Peek without committing: require resources before popping.
        if self.reply_q.len() >= self.cfg.reply_queue_cap {
            return; // back-pressure: hold the request
        }
        match self.l2.access(req.line_addr, Access::Read) {
            LookupResult::Hit => {
                self.hit_delay.push_back((
                    now + self.cfg.l2_latency,
                    Reply { dst: req.src, tag: req.line_addr },
                ));
                self.in_q.pop_front();
            }
            LookupResult::Miss => {
                if self.mshrs.is_full() || !self.dram.can_accept() {
                    return; // retry next cycle
                }
                self.mshrs.allocate(req.line_addr, req.src as u64);
                let local = self.localize(req.line_addr);
                self.dram
                    .push(DramRequest::read(local, req.line_addr, dram_now))
                    .expect("capacity checked");
                self.in_q.pop_front();
            }
        }
    }

    /// Advances the DRAM channel one DRAM cycle and folds completions back
    /// into the L2 / reply path.
    pub fn step_dram(&mut self, dram_now: u64) {
        self.dram.step(dram_now);
        while self.reply_q.len() < self.cfg.reply_queue_cap {
            let Some(Completion { request, .. }) = self.dram.pop_completed(dram_now) else {
                break;
            };
            if request.is_write {
                continue;
            }
            let line_addr = request.tag;
            let mut targets = std::mem::take(&mut self.fill_targets);
            self.mshrs.complete_into(line_addr, &mut targets);
            for &target in &targets {
                self.reply_q.push_back(Reply { dst: target as NodeId, tag: line_addr });
            }
            self.fill_targets = targets;
            if let Some(ev) = self.l2.fill(line_addr) {
                if ev.dirty {
                    self.pending_writes.push_back(ev.line_addr);
                }
            }
        }
    }

    /// Next reply awaiting injection, if any.
    pub fn peek_reply(&self) -> Option<Reply> {
        self.reply_q.front().copied()
    }

    /// Removes the front reply (after successful injection).
    pub fn pop_reply(&mut self) -> Option<Reply> {
        self.reply_q.pop_front()
    }

    /// Records one interconnect cycle in which the reply network refused
    /// an available reply.
    pub fn note_inject_stall(&mut self) {
        self.stats.inject_stall_cycles += 1;
    }

    /// `true` when no work is queued or in flight anywhere in the node.
    pub fn idle(&self) -> bool {
        self.in_q.is_empty()
            && self.hit_delay.is_empty()
            && self.reply_q.is_empty()
            && self.pending_writes.is_empty()
            && self.mshrs.is_empty()
            && self.dram.pending() == 0
    }

    /// MC statistics.
    pub fn stats(&self) -> &McStats {
        &self.stats
    }

    /// L2 bank statistics.
    pub fn l2_stats(&self) -> &tenoc_cache::CacheStats {
        self.l2.stats()
    }

    /// DRAM channel statistics.
    pub fn dram_stats(&self) -> &tenoc_dram::DramStats {
        self.dram.stats()
    }

    /// Fraction of observed cycles the reply injection was stalled.
    pub fn stall_fraction(&self) -> f64 {
        if self.stats.icnt_cycles == 0 {
            return 0.0;
        }
        self.stats.inject_stall_cycles as f64 / self.stats.icnt_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> McNode {
        McNode::new(McConfig::gtx280_like(), 8, 256)
    }

    /// Runs L2 and DRAM in a 1:2-ish ratio until the node idles.
    fn run_until_idle(mc: &mut McNode, max: u64) -> Vec<Reply> {
        let mut replies = Vec::new();
        let mut dram_now = 0;
        for now in 0..max {
            mc.step_l2(now, dram_now);
            for _ in 0..2 {
                mc.step_dram(dram_now);
                dram_now += 1;
            }
            while let Some(r) = mc.pop_reply() {
                replies.push(r);
            }
            if mc.idle() {
                break;
            }
        }
        replies
    }

    #[test]
    fn read_miss_goes_to_dram_and_replies() {
        let mut mc = node();
        mc.enqueue(McRequest { src: 3, line_addr: 0x4000, is_write: false }).unwrap();
        let replies = run_until_idle(&mut mc, 10_000);
        assert_eq!(replies, vec![Reply { dst: 3, tag: 0x4000 }]);
        assert_eq!(mc.dram_stats().reads_done, 1);
    }

    #[test]
    fn second_read_hits_l2() {
        let mut mc = node();
        mc.enqueue(McRequest { src: 3, line_addr: 0x4000, is_write: false }).unwrap();
        run_until_idle(&mut mc, 10_000);
        mc.enqueue(McRequest { src: 5, line_addr: 0x4000, is_write: false }).unwrap();
        let replies = run_until_idle(&mut mc, 10_000);
        assert_eq!(replies, vec![Reply { dst: 5, tag: 0x4000 }]);
        assert_eq!(mc.dram_stats().reads_done, 1, "L2 hit must not touch DRAM");
    }

    #[test]
    fn concurrent_misses_merge_in_l2_mshr() {
        let mut mc = node();
        mc.enqueue(McRequest { src: 1, line_addr: 0x8000, is_write: false }).unwrap();
        mc.enqueue(McRequest { src: 2, line_addr: 0x8000, is_write: false }).unwrap();
        let replies = run_until_idle(&mut mc, 10_000);
        assert_eq!(replies.len(), 2);
        assert_eq!(mc.dram_stats().reads_done, 1, "merged misses fetch once");
        let dsts: Vec<NodeId> = replies.iter().map(|r| r.dst).collect();
        assert_eq!(dsts, vec![1, 2]);
    }

    #[test]
    fn writes_generate_no_replies() {
        let mut mc = node();
        mc.enqueue(McRequest { src: 1, line_addr: 0xc000, is_write: true }).unwrap();
        let replies = run_until_idle(&mut mc, 10_000);
        assert!(replies.is_empty());
        assert_eq!(mc.dram_stats().writes_done, 1);
    }

    #[test]
    fn write_after_read_hits_l2_and_stays_dirty() {
        let mut mc = node();
        mc.enqueue(McRequest { src: 1, line_addr: 0x4000, is_write: false }).unwrap();
        run_until_idle(&mut mc, 10_000);
        mc.enqueue(McRequest { src: 1, line_addr: 0x4000, is_write: true }).unwrap();
        run_until_idle(&mut mc, 10_000);
        assert_eq!(mc.dram_stats().writes_done, 0, "write hit absorbed by L2");
        assert_eq!(mc.l2_stats().write_hits, 1);
    }

    #[test]
    fn input_queue_backpressure() {
        let mut mc = node();
        for i in 0..32 {
            mc.enqueue(McRequest { src: 1, line_addr: i * 64, is_write: false }).unwrap();
        }
        assert!(!mc.can_accept());
        let r = McRequest { src: 1, line_addr: 0x9999_0000, is_write: false };
        assert_eq!(mc.enqueue(r), Err(r));
        assert_eq!(mc.stats().input_blocked, 1);
    }

    #[test]
    fn localize_compresses_interleaved_addresses() {
        let mc = node();
        // Global addresses 0, 2048 (same MC, consecutive chunks of its
        // space: span = 256*8 = 2048).
        assert_eq!(mc.localize(0), 0);
        assert_eq!(mc.localize(100), 100);
        assert_eq!(mc.localize(2048), 256);
        assert_eq!(mc.localize(2048 + 100), 356);
    }

    #[test]
    fn reply_queue_backpressure_holds_requests() {
        let mut cfg = McConfig::gtx280_like();
        cfg.reply_queue_cap = 2;
        let mut mc = McNode::new(cfg, 8, 256);
        // Prime the L2 so follow-up reads are hits (hits produce replies
        // without DRAM round trips).
        for line in [0u64, 64, 128, 192] {
            mc.enqueue(McRequest { src: 1, line_addr: line, is_write: false }).unwrap();
        }
        run_until_idle(&mut mc, 10_000);
        // Re-request all four lines but never drain replies: the bank must
        // stop serving once the reply queue fills.
        for line in [0u64, 64, 128, 192] {
            mc.enqueue(McRequest { src: 1, line_addr: line, is_write: false }).unwrap();
        }
        let mut dram_now = 0;
        for now in 0..200 {
            mc.step_l2(now, dram_now);
            mc.step_dram(dram_now);
            dram_now += 2;
        }
        let mut drained = 0;
        while mc.pop_reply().is_some() {
            drained += 1;
        }
        assert_eq!(drained, 2, "reply queue capacity bounds ready replies");
        assert!(!mc.idle(), "remaining requests held behind back-pressure");
    }

    #[test]
    fn closed_page_policy_flows_through_config() {
        use tenoc_dram::PagePolicy;
        let cfg = McConfig::gtx280_like();
        // The policy enum is plumbed via SchedulingPolicy; closed-page is
        // exercised at the DRAM layer (see tenoc-dram tests). Here we just
        // ensure the MC still completes with FCFS scheduling.
        let mut fcfs = McConfig { policy: tenoc_dram::SchedulingPolicy::Fcfs, ..cfg };
        fcfs.l2 = tenoc_cache::CacheConfig::l2_128k();
        let mut mc = McNode::new(fcfs, 8, 256);
        mc.enqueue(McRequest { src: 2, line_addr: 0x7000, is_write: false }).unwrap();
        let replies = run_until_idle(&mut mc, 10_000);
        assert_eq!(replies.len(), 1);
        let _ = PagePolicy::Closed;
    }

    #[test]
    fn stall_fraction_accounts_noted_stalls() {
        let mut mc = node();
        mc.step_l2(0, 0);
        mc.step_l2(1, 0);
        mc.note_inject_stall();
        assert!((mc.stall_fraction() - 0.5).abs() < 1e-9);
    }
}
