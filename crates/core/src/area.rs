//! ORION-2.0-calibrated analytical area model (65 nm), reproducing the
//! paper's Table VI.
//!
//! The model follows ORION's structure — crossbar area quadratic in
//! channel width and proportional to crosspoint count, buffer area linear
//! in total storage, allocator area quadratic in (ports x VCs) — with
//! constants calibrated against the paper's published numbers:
//!
//! * full-router crossbar, 16 B channels: 1.73 mm²  (4x5 crossbar)
//! * half-router crossbar, 16 B: 0.83 mm²  (four 2x1 muxes + ejection mux)
//! * baseline buffers (5 ports x 2 VCs x 8 flits x 16 B): 0.17 mm²
//! * baseline allocator: 0.004 mm²; 4-VC full-router allocator: 0.015 mm²
//! * link (16 B): 0.175 mm²; a 6x6 mesh has 120 links (21.0 mm²)
//!
//! The GTX280 die is 576 mm²; subtracting the baseline NoC leaves
//! 486 mm² of compute area, held constant across design points.

use crate::system::IcntConfig;
use serde::{Deserialize, Serialize};
use tenoc_noc::{NetworkConfig, RouterKind};

/// mm² per crosspoint per byte² of channel width.
const XBAR_C: f64 = 1.73 / (20.0 * 256.0);
/// mm² per byte of buffer storage.
const BUF_C: f64 = 0.17 / (5.0 * 2.0 * 8.0 * 16.0);
/// mm² per (effective port x VC)² of allocation logic.
const ALLOC_C: f64 = 0.004 / (5.0f64 * 2.0 * 5.0 * 2.0);
/// mm² per 16-byte link.
const LINK_16B: f64 = 0.175;
/// Effective crosspoints of a 1-injection/1-ejection half-router
/// (calibrated to the paper's 0.83/1.73 area ratio).
const HALF_XP: f64 = 9.6;
/// Crosspoints added per extra local port on a half-router.
const HALF_XP_PER_PORT: f64 = 3.35;
/// Compute area of the accelerator (GTX280 die minus baseline NoC).
pub const COMPUTE_AREA_MM2: f64 = 486.0;
/// GTX280 total die area at 65 nm.
pub const GTX280_AREA_MM2: f64 = 576.0;

/// Per-router area breakdown in mm².
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RouterArea {
    /// Crossbar (or mux network for half-routers).
    pub crossbar: f64,
    /// Input buffers.
    pub buffer: f64,
    /// VC + switch allocators.
    pub allocator: f64,
}

impl RouterArea {
    /// Total router area.
    pub fn total(&self) -> f64 {
        self.crossbar + self.buffer + self.allocator
    }

    /// Area of one router with the given geometry.
    pub fn new(
        kind: RouterKind,
        channel_bytes: u32,
        vcs: u8,
        depth: usize,
        n_inj: usize,
        n_ej: usize,
    ) -> Self {
        let w = channel_bytes as f64;
        let crosspoints = match kind {
            RouterKind::Full => ((4 + n_inj) * (3 + n_ej)) as f64,
            RouterKind::Half => HALF_XP + HALF_XP_PER_PORT * ((n_inj - 1) + (n_ej - 1)) as f64,
        };
        let p_eff = match kind {
            RouterKind::Full => 4.0 + n_inj as f64,
            RouterKind::Half => 1.5 + n_inj as f64 + (n_ej - 1) as f64,
        };
        RouterArea {
            crossbar: XBAR_C * crosspoints * w * w,
            buffer: BUF_C * (4 + n_inj) as f64 * vcs as f64 * depth as f64 * w,
            allocator: ALLOC_C * (p_eff * vcs as f64).powi(2),
        }
    }
}

/// Chip-level area summary in mm².
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChipArea {
    /// Sum of all router areas (over all physical networks).
    pub routers: f64,
    /// Sum of all link areas.
    pub links: f64,
    /// Compute area (constant).
    pub compute: f64,
}

impl ChipArea {
    /// Total NoC area.
    pub fn noc(&self) -> f64 {
        self.routers + self.links
    }

    /// Total chip area.
    pub fn total(&self) -> f64 {
        self.compute + self.noc()
    }

    /// NoC overhead as a fraction of the GTX280 die.
    pub fn noc_overhead(&self) -> f64 {
        self.noc() / GTX280_AREA_MM2
    }
}

/// The area model over interconnect configurations.
///
/// ```
/// use tenoc_core::area::AreaModel;
/// use tenoc_core::presets::Preset;
///
/// let baseline = AreaModel::chip_area(&Preset::BaselineTbDor.icnt(6));
/// let te = AreaModel::chip_area(&Preset::ThroughputEffective.icnt(6));
/// assert!(te.noc() < baseline.noc() * 0.6, "the combined design shrinks the NoC");
/// ```
#[derive(Copy, Clone, Debug, Default)]
pub struct AreaModel;

impl AreaModel {
    /// Area of one physical network. `mc_extra_inject`/`mc_extra_eject`
    /// select whether this network's MC routers carry the configured
    /// extra ports (in a dedicated double network, extra injection ports
    /// matter on the reply slice and extra ejection ports on the request
    /// slice).
    pub fn network_area(
        cfg: &NetworkConfig,
        mc_extra_inject: bool,
        mc_extra_eject: bool,
    ) -> ChipArea {
        // Link count comes from the topology itself (4k(k-1) on the mesh,
        // 4k² on the torus). A folded torus keeps every physical hop
        // on-chip but doubles each link's wire length, hence the length
        // factor on its per-link area.
        let length_factor = if cfg.mesh.is_torus() { 2.0 } else { 1.0 };
        let links =
            cfg.mesh.links().count() as f64 * length_factor * LINK_16B * cfg.channel_bytes as f64
                / 16.0;
        let mut routers = 0.0;
        for node in cfg.mesh.nodes() {
            let is_mc = cfg.mc_nodes.contains(&node);
            // Core routers carry the configured terminal ports (1 on the
            // mesh, `conc` on a concentrated mesh — a 5-to-7-port radix
            // range); MC routers charge their extra ports only where the
            // network actually wires them.
            let n_inj = if is_mc {
                if mc_extra_inject {
                    cfg.mc_inject_ports
                } else {
                    1
                }
            } else {
                cfg.core_inject_ports
            };
            let n_ej = if is_mc {
                if mc_extra_eject {
                    cfg.mc_eject_ports
                } else {
                    1
                }
            } else {
                cfg.core_eject_ports
            };
            routers += RouterArea::new(
                cfg.mesh.kind(node),
                cfg.channel_bytes,
                cfg.vcs.total,
                cfg.vc_depth,
                n_inj,
                n_ej,
            )
            .total();
        }
        ChipArea { routers, links, compute: COMPUTE_AREA_MM2 }
    }

    /// Chip area for a system interconnect configuration. Ideal networks
    /// (perfect / bandwidth-limited) are modeled with zero NoC area, as in
    /// the paper's "Ideal NoC" design point.
    pub fn chip_area(icnt: &IcntConfig) -> ChipArea {
        match icnt {
            IcntConfig::Mesh(c) => Self::network_area(c, true, true),
            IcntConfig::Double(c) => {
                let sub = Self::slice(c);
                let request = Self::network_area(&sub, false, true);
                let reply = Self::network_area(&sub, true, false);
                ChipArea {
                    routers: request.routers + reply.routers,
                    links: request.links + reply.links,
                    compute: COMPUTE_AREA_MM2,
                }
            }
            IcntConfig::Perfect(_) | IcntConfig::BwLimited(_, _) => {
                ChipArea { routers: 0.0, links: 0.0, compute: COMPUTE_AREA_MM2 }
            }
        }
    }

    /// The per-slice configuration of a double network for *area*
    /// accounting. Unlike `DoubleNetwork::from_single`, the MC port counts
    /// are kept at their 16-byte-equivalent values: slicing preserves the
    /// terminal interface width, and the paper's Table VI charges extra
    /// ports only for the explicit 2P design.
    pub fn slice(cfg: &NetworkConfig) -> NetworkConfig {
        let mut sub = cfg.clone();
        sub.channel_bytes = cfg.channel_bytes / 2;
        let per_class =
            (cfg.vcs.total / cfg.vcs.classes).max(if cfg.vcs.split_phases { 2 } else { 1 });
        sub.vcs = tenoc_noc::VcLayout::new(per_class, 1, cfg.vcs.split_phases);
        sub
    }
}

/// Throughput-effectiveness: application throughput per unit chip area
/// (IPC/mm²), the paper's figure of merit.
pub fn throughput_effectiveness(ipc: f64, area: &ChipArea) -> f64 {
    ipc / area.total()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Preset;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn full_router_16b_matches_table_vi() {
        let r = RouterArea::new(RouterKind::Full, 16, 2, 8, 1, 1);
        assert!(close(r.crossbar, 1.73, 0.01), "{}", r.crossbar);
        assert!(close(r.buffer, 0.17, 0.005), "{}", r.buffer);
        assert!(close(r.allocator, 0.004, 0.001), "{}", r.allocator);
        assert!(close(r.total(), 1.916, 0.02), "{}", r.total());
    }

    #[test]
    fn doubling_width_quadruples_crossbar() {
        let r16 = RouterArea::new(RouterKind::Full, 16, 2, 8, 1, 1);
        let r32 = RouterArea::new(RouterKind::Full, 32, 2, 8, 1, 1);
        assert!(close(r32.crossbar / r16.crossbar, 4.0, 1e-9));
        assert!(close(r32.crossbar, 6.95, 0.05), "{}", r32.crossbar);
        assert!(close(r32.buffer, 0.34, 0.01));
    }

    #[test]
    fn half_router_is_roughly_half_a_full_router() {
        let full = RouterArea::new(RouterKind::Full, 16, 4, 8, 1, 1);
        let half = RouterArea::new(RouterKind::Half, 16, 4, 8, 1, 1);
        assert!(close(half.crossbar, 0.83, 0.01), "{}", half.crossbar);
        assert!(close(half.total(), 1.18, 0.02), "{}", half.total());
        assert!(close(full.total(), 2.10, 0.03), "{}", full.total());
        let ratio = half.total() / full.total();
        assert!(ratio < 0.6, "paper: half-router is ~56% of a full router, got {ratio}");
    }

    #[test]
    fn double_network_slice_routers_match_table_vi() {
        let full8 = RouterArea::new(RouterKind::Full, 8, 2, 8, 1, 1);
        let half8 = RouterArea::new(RouterKind::Half, 8, 2, 8, 1, 1);
        assert!(close(full8.total(), 0.522, 0.01), "{}", full8.total());
        assert!(close(half8.total(), 0.30, 0.01), "{}", half8.total());
        let half8_2p = RouterArea::new(RouterKind::Half, 8, 2, 8, 2, 1);
        assert!(close(half8_2p.total(), 0.38, 0.01), "{}", half8_2p.total());
    }

    #[test]
    fn baseline_chip_area_matches_gtx280() {
        let a = AreaModel::chip_area(&Preset::BaselineTbDor.icnt(6));
        assert!(close(a.links, 21.0, 0.1), "{}", a.links);
        assert!(close(a.routers, 69.0, 1.0), "{}", a.routers);
        assert!(close(a.total(), 576.0, 1.5), "{}", a.total());
    }

    #[test]
    fn two_x_bandwidth_area_matches_table_vi() {
        let a = AreaModel::chip_area(&Preset::TbDor2xBw.icnt(6));
        assert!(close(a.routers, 263.0, 3.0), "{}", a.routers);
        assert!(close(a.links, 42.0, 0.1));
        assert!(close(a.total(), 790.9, 4.0), "{}", a.total());
    }

    #[test]
    fn cp_cr_reduces_router_area_over_baseline() {
        let a = AreaModel::chip_area(&Preset::CpCr4vc.icnt(6));
        assert!(close(a.routers, 59.2, 1.0), "{}", a.routers);
        assert!(close(a.total(), 566.2, 2.0), "{}", a.total());
    }

    #[test]
    fn double_network_area_matches_table_vi() {
        let a = AreaModel::chip_area(&Preset::DoubleCpCr.icnt(6));
        assert!(close(a.routers, 29.74, 0.6), "{}", a.routers);
        assert!(close(a.links, 21.0, 0.1));
        assert!(close(a.total(), 536.74, 1.5), "{}", a.total());
    }

    #[test]
    fn multiport_adds_about_one_percent_router_area() {
        let base = AreaModel::chip_area(&Preset::DoubleCpCr.icnt(6));
        let mp = AreaModel::chip_area(&Preset::ThroughputEffective.icnt(6));
        let delta = mp.routers - base.routers;
        assert!(delta > 0.0 && delta < 1.0, "extra injection ports cost {delta} mm²");
        assert!(close(mp.total(), 537.44, 1.5), "{}", mp.total());
    }

    #[test]
    fn torus_pays_for_wrap_links() {
        let mesh = AreaModel::chip_area(&Preset::BaselineTbDor.icnt(6));
        let torus = AreaModel::chip_area(&Preset::TorusDor.icnt(6));
        // 4k² links at twice the folded wire length vs 4k(k-1) links:
        // 144 * 2 / 120 = 2.4x the link area.
        assert!(close(torus.links / mesh.links, 2.4, 1e-9), "{}", torus.links / mesh.links);
        // Router area grows only by the wider VC complement (4 vs 2).
        assert!(torus.routers > mesh.routers, "{} vs {}", torus.routers, mesh.routers);
    }

    #[test]
    fn cmesh_charges_concentrated_terminal_ports() {
        let mesh = AreaModel::chip_area(&Preset::BaselineTbDor.icnt(6));
        let cmesh = AreaModel::chip_area(&Preset::CMeshDor.icnt(6));
        // Same grid and links; compute routers grow to 7-port radix.
        assert!(close(cmesh.links, mesh.links, 1e-9));
        assert!(cmesh.routers > mesh.routers, "{} vs {}", cmesh.routers, mesh.routers);
        // Spot-check one concentrated router against the port model.
        let r1 = RouterArea::new(RouterKind::Full, 16, 2, 8, 1, 1);
        let r2 = RouterArea::new(RouterKind::Full, 16, 2, 8, 2, 2);
        assert!(r2.crossbar > r1.crossbar && r2.buffer > r1.buffer);
    }

    #[test]
    fn ideal_network_has_zero_noc_area() {
        let a = AreaModel::chip_area(&Preset::Perfect.icnt(6));
        assert_eq!(a.noc(), 0.0);
        assert!(close(a.total(), COMPUTE_AREA_MM2, 1e-9));
    }

    #[test]
    fn throughput_effectiveness_orders_designs() {
        let base = AreaModel::chip_area(&Preset::BaselineTbDor.icnt(6));
        let te = AreaModel::chip_area(&Preset::ThroughputEffective.icnt(6));
        // Same IPC at lower area => higher throughput-effectiveness.
        assert!(throughput_effectiveness(200.0, &te) > throughput_effectiveness(200.0, &base));
    }
}
