//! Named configurations for every design point the paper evaluates.

use crate::system::IcntConfig;
use tenoc_noc::{Mesh, NetworkConfig, Placement, VcLayout};

/// The design points of the paper's evaluation (Section V; abbreviations
/// from Table V).
#[derive(Copy, Clone, PartialEq, Debug)]
pub enum Preset {
    /// Balanced baseline: 6x6 full-router mesh, 16 B channels, 2 VCs,
    /// DOR, MCs top-bottom (TB-DOR).
    BaselineTbDor,
    /// Baseline with 32 B channels (the "2x BW" point).
    TbDor2xBw,
    /// Baseline with aggressive 1-cycle routers.
    TbDor1Cycle,
    /// Checkerboard *placement* only: staggered MCs, full routers, DOR,
    /// 2 VCs (CP-DOR).
    CpDor2vc,
    /// CP-DOR with 4 VCs (buffer-equalized comparison for Figure 17).
    CpDor4vc,
    /// Checkerboard mesh (half-routers) with checkerboard routing and
    /// 4 VCs (CP-CR).
    CpCr4vc,
    /// CP-CR sliced into two 8 B networks (request/reply).
    DoubleCpCr,
    /// Double CP-CR with 2 injection ports at MC routers.
    DoubleCpCr2InjPorts,
    /// Double CP-CR with 2 ejection ports at MC routers.
    DoubleCpCr2EjPorts,
    /// Double CP-CR with 2 injection and 2 ejection ports.
    DoubleCpCr2Both,
    /// The combined throughput-effective design the paper ships: CP + CR
    /// + double network + 2 injection ports (Figure 20).
    ThroughputEffective,
    /// CP + CR + 2 injection ports on the *single* 16 B network (no
    /// channel slicing). Not a paper design point: reported alongside the
    /// paper's combination because in this simulator's stricter bandwidth
    /// accounting the 50/50 slice caps reply throughput below the single
    /// network's for saturated benchmarks (see EXPERIMENTS.md).
    CpCr2pSingle,
    /// Torus fabric with DOR and dateline VCs: the baseline grid with
    /// every row and column wrapped (ROADMAP item 4's first non-mesh
    /// fabric; halves the network diameter for extra link area).
    TorusDor,
    /// Concentrated mesh: two cores share every compute router through
    /// dedicated terminal ports (7-port radix, same grid and links).
    CMeshDor,
    /// Zero-latency infinite-bandwidth network (perfect NoC).
    Perfect,
    /// Zero-latency network capped at `fraction` of peak off-chip DRAM
    /// bandwidth (the Figure 6 limit-study network).
    BwLimited(f64),
}

impl Preset {
    /// All closed-loop presets with fixed parameters (excludes
    /// `BwLimited`, which is swept).
    pub const NAMED: [Preset; 15] = [
        Preset::BaselineTbDor,
        Preset::TbDor2xBw,
        Preset::TbDor1Cycle,
        Preset::CpDor2vc,
        Preset::CpDor4vc,
        Preset::CpCr4vc,
        Preset::DoubleCpCr,
        Preset::DoubleCpCr2InjPorts,
        Preset::DoubleCpCr2EjPorts,
        Preset::DoubleCpCr2Both,
        Preset::ThroughputEffective,
        Preset::CpCr2pSingle,
        Preset::TorusDor,
        Preset::CMeshDor,
        Preset::Perfect,
    ];

    /// Resolves a CLI/service flag name (e.g. `baseline`, `thr-eff`,
    /// `cp-cr`) to a preset. Case-insensitive. The accepted names are the
    /// ones `tenoc sweep`, `tenoc serve` requests and the usage text all
    /// share.
    pub fn from_flag(s: &str) -> Option<Preset> {
        Some(match s.to_ascii_lowercase().as_str() {
            "baseline" | "tb-dor" => Preset::BaselineTbDor,
            "2x" | "2x-bw" => Preset::TbDor2xBw,
            "1cycle" | "1-cycle" => Preset::TbDor1Cycle,
            "cp-dor" => Preset::CpDor2vc,
            "cp-dor-4vc" => Preset::CpDor4vc,
            "cp-cr" => Preset::CpCr4vc,
            "double" => Preset::DoubleCpCr,
            "2p-inj" | "double-2p-inj" => Preset::DoubleCpCr2InjPorts,
            "2p-ej" | "double-2p-ej" => Preset::DoubleCpCr2EjPorts,
            "2p-both" | "double-2p-both" => Preset::DoubleCpCr2Both,
            "thr-eff" | "te" => Preset::ThroughputEffective,
            "cp-cr-2p" | "te-single" => Preset::CpCr2pSingle,
            "torus" | "torus-dor" => Preset::TorusDor,
            "cmesh" | "cmesh-dor" => Preset::CMeshDor,
            "perfect" | "ideal" => Preset::Perfect,
            _ => return None,
        })
    }

    /// Short label used in printed tables.
    pub fn label(&self) -> String {
        match self {
            Preset::BaselineTbDor => "TB-DOR".into(),
            Preset::TbDor2xBw => "2x-TB-DOR".into(),
            Preset::TbDor1Cycle => "TB-DOR-1cyc".into(),
            Preset::CpDor2vc => "CP-DOR-2VC".into(),
            Preset::CpDor4vc => "CP-DOR-4VC".into(),
            Preset::CpCr4vc => "CP-CR-4VC".into(),
            Preset::DoubleCpCr => "Double-CP-CR".into(),
            Preset::DoubleCpCr2InjPorts => "Double-CP-CR-2P(inj)".into(),
            Preset::DoubleCpCr2EjPorts => "Double-CP-CR-2P(ej)".into(),
            Preset::DoubleCpCr2Both => "Double-CP-CR-2P(both)".into(),
            Preset::ThroughputEffective => "Thr-Eff".into(),
            Preset::CpCr2pSingle => "CP-CR-2P(single)".into(),
            Preset::TorusDor => "Torus-DOR".into(),
            Preset::CMeshDor => "CMesh-DOR".into(),
            Preset::Perfect => "Perfect".into(),
            Preset::BwLimited(f) => format!("BW-{f:.2}"),
        }
    }

    /// Builds the interconnect configuration for a `k x k` mesh.
    pub fn icnt(&self, k: usize) -> IcntConfig {
        let base = NetworkConfig::baseline_mesh(k);
        match self {
            Preset::BaselineTbDor => IcntConfig::Mesh(base),
            Preset::TbDor2xBw => IcntConfig::Mesh(NetworkConfig { channel_bytes: 32, ..base }),
            Preset::TbDor1Cycle => IcntConfig::Mesh(NetworkConfig { router_stages: 1, ..base }),
            Preset::CpDor2vc => {
                // Staggered MC placement on a full-router mesh.
                let mesh = Mesh::all_full(k);
                let mc_nodes =
                    Mesh::checkerboard(k).mcs(Placement::Checkerboard, base.mc_nodes.len());
                IcntConfig::Mesh(NetworkConfig { mesh, mc_nodes, ..base })
            }
            Preset::CpDor4vc => {
                let IcntConfig::Mesh(cp) = Preset::CpDor2vc.icnt(k) else { unreachable!() };
                IcntConfig::Mesh(NetworkConfig { vcs: VcLayout::new(4, 2, false), ..cp })
            }
            Preset::CpCr4vc => IcntConfig::Mesh(NetworkConfig::checkerboard_mesh(k)),
            Preset::DoubleCpCr => IcntConfig::Double(NetworkConfig::checkerboard_mesh(k)),
            Preset::DoubleCpCr2InjPorts => {
                let mut c = NetworkConfig::checkerboard_mesh(k);
                c.mc_inject_ports = 2;
                IcntConfig::Double(c)
            }
            Preset::DoubleCpCr2EjPorts => {
                let mut c = NetworkConfig::checkerboard_mesh(k);
                c.mc_eject_ports = 2;
                IcntConfig::Double(c)
            }
            Preset::DoubleCpCr2Both => {
                let mut c = NetworkConfig::checkerboard_mesh(k);
                c.mc_inject_ports = 2;
                c.mc_eject_ports = 2;
                IcntConfig::Double(c)
            }
            Preset::ThroughputEffective => Preset::DoubleCpCr2InjPorts.icnt(k),
            Preset::CpCr2pSingle => {
                let mut c = NetworkConfig::checkerboard_mesh(k);
                c.mc_inject_ports = 2;
                IcntConfig::Mesh(c)
            }
            Preset::TorusDor => IcntConfig::Mesh(NetworkConfig::baseline_torus(k)),
            Preset::CMeshDor => IcntConfig::Mesh(NetworkConfig::concentrated_mesh(k, 2)),
            Preset::Perfect => IcntConfig::Perfect(base),
            Preset::BwLimited(fraction) => {
                let flits = bw_limit_flits_per_icnt_cycle(*fraction, base.mc_nodes.len());
                IcntConfig::BwLimited(base, flits)
            }
        }
    }

    /// Routing abbreviation used in open-loop figure labels.
    pub fn openloop_label(&self) -> &'static str {
        match self {
            Preset::BaselineTbDor => "TB-DOR",
            Preset::TbDor2xBw => "2x-TB-DOR",
            Preset::CpDor2vc | Preset::CpDor4vc => "CP-DOR",
            Preset::CpCr4vc => "CP-CR",
            Preset::DoubleCpCr2InjPorts | Preset::ThroughputEffective => "CP-CR-2P",
            Preset::TorusDor => "Torus-DOR",
            Preset::CMeshDor => "CMesh-DOR",
            _ => "other",
        }
    }
}

/// Converts a fraction of peak off-chip DRAM bandwidth into an aggregate
/// flit budget per interconnect cycle (the x-axis conversion under the
/// paper's Figure 6: `x = N * 16B * 602MHz / (1107MHz * n_mc * 16B)`).
pub fn bw_limit_flits_per_icnt_cycle(fraction: f64, n_mc: usize) -> f64 {
    fraction * 1107.0 * n_mc as f64 * 16.0 / (602.0 * 16.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenoc_noc::{RouterKind, RoutingKind};

    #[test]
    fn all_named_presets_build_valid_configs() {
        for p in Preset::NAMED {
            let icnt = p.icnt(6);
            icnt.net().validate().unwrap_or_else(|e| panic!("{}: {e}", p.label()));
        }
    }

    #[test]
    fn baseline_matches_table_iii() {
        let IcntConfig::Mesh(c) = Preset::BaselineTbDor.icnt(6) else { panic!() };
        assert_eq!(c.channel_bytes, 16);
        assert_eq!(c.vcs.total, 2);
        assert_eq!(c.vc_depth, 8);
        assert_eq!(c.router_stages, 4);
        assert_eq!(c.link_latency, 1);
        assert_eq!(c.routing, RoutingKind::DorXy);
        assert_eq!(c.mc_nodes.len(), 8);
    }

    #[test]
    fn cp_dor_staggers_mcs_on_full_mesh() {
        let IcntConfig::Mesh(c) = Preset::CpDor2vc.icnt(6) else { panic!() };
        assert!(c.mesh.nodes().all(|n| c.mesh.kind(n) == RouterKind::Full));
        // Not all MCs on the top/bottom rows.
        let interior = c
            .mc_nodes
            .iter()
            .filter(|&&n| {
                let y = c.mesh.coord(n).y;
                y != 0 && y != 5
            })
            .count();
        assert!(interior > 0, "staggered placement must use interior rows");
    }

    #[test]
    fn cp_cr_uses_half_routers_and_phase_vcs() {
        let IcntConfig::Mesh(c) = Preset::CpCr4vc.icnt(6) else { panic!() };
        assert_eq!(c.routing, RoutingKind::Checkerboard);
        assert!(c.vcs.split_phases);
        assert_eq!(c.vcs.total, 4);
        let halves = c.mesh.nodes().filter(|&n| c.mesh.is_half(n)).count();
        assert_eq!(halves, 18);
    }

    #[test]
    fn throughput_effective_is_double_with_two_inject_ports() {
        let IcntConfig::Double(c) = Preset::ThroughputEffective.icnt(6) else { panic!() };
        assert_eq!(c.mc_inject_ports, 2);
        assert_eq!(c.mc_eject_ports, 1);
        assert_eq!(c.routing, RoutingKind::Checkerboard);
    }

    #[test]
    fn torus_preset_wraps_and_splits_dateline_vcs() {
        let IcntConfig::Mesh(c) = Preset::TorusDor.icnt(6) else { panic!() };
        assert!(c.mesh.is_torus());
        assert!(c.vcs.split_dateline);
        assert_eq!(c.routing, RoutingKind::DorXy);
        c.validate().unwrap();
        // Every edge router wraps to the opposite side.
        assert_eq!(c.mesh.neighbor(5, tenoc_noc::Direction::East), Some(0));
    }

    #[test]
    fn cmesh_preset_concentrates_two_cores_per_router() {
        let IcntConfig::Mesh(c) = Preset::CMeshDor.icnt(6) else { panic!() };
        assert_eq!(c.mesh.concentration(), 2);
        assert_eq!(c.core_inject_ports, 2);
        assert_eq!(c.core_eject_ports, 2);
        assert_eq!(c.mesh.terminals(), 72);
        c.validate().unwrap();
    }

    #[test]
    fn new_fabric_flags_resolve() {
        assert_eq!(Preset::from_flag("torus"), Some(Preset::TorusDor));
        assert_eq!(Preset::from_flag("cmesh-dor"), Some(Preset::CMeshDor));
    }

    #[test]
    fn bw_limit_matches_paper_formula() {
        // The paper marks x = 0.816 at N = 12 flits/iclk for 8 MCs.
        let n = bw_limit_flits_per_icnt_cycle(0.816, 8);
        assert!((n - 12.0).abs() < 0.01, "N = {n}");
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<String> =
            Preset::NAMED.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), Preset::NAMED.len());
    }
}
