//! # tenoc-core — throughput-effective NoC design and closed-loop system
//!
//! The top of the stack: a closed-loop simulator of the paper's manycore
//! accelerator (28 SIMT cores, a 6x6 mesh NoC, 8 memory controllers with
//! 128 KB L2 banks and GDDR3 channels, three clock domains), plus the
//! throughput-effectiveness methodology:
//!
//! * [`system`] — the closed-loop [`System`] tying `tenoc-simt` cores to
//!   `tenoc-noc` interconnects and `tenoc-dram`/`tenoc-cache` MC nodes.
//! * [`presets`] — one named configuration per paper design point
//!   (baseline TB-DOR, 2x bandwidth, 1-cycle routers, checkerboard
//!   placement/routing, double network, multi-port MC routers, the
//!   combined throughput-effective design, and the ideal networks).
//! * [`area`] — an ORION-2.0-calibrated analytical area model reproducing
//!   the paper's Table VI.
//! * [`experiments`] — runners that regenerate each figure's data.
//!
//! # Example
//!
//! ```no_run
//! use tenoc_core::presets::Preset;
//! use tenoc_core::experiments::run_benchmark;
//! use tenoc_workloads::by_name;
//!
//! let spec = by_name("RD").unwrap();
//! let base = run_benchmark(Preset::BaselineTbDor, &spec, 0.2);
//! let te = run_benchmark(Preset::ThroughputEffective, &spec, 0.2);
//! println!("RD speedup: {:.1}%", (te.ipc / base.ipc - 1.0) * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod audit;
pub mod batch;
pub mod clock;
pub mod experiments;
pub mod mc;
pub mod metrics;
pub mod power;
pub mod presets;
pub mod report;
pub mod system;

pub use area::{AreaModel, ChipArea, RouterArea};
pub use audit::{audit_grid, audit_icnt, AuditEntry, AuditReport};
pub use batch::run_lockstep;
pub use clock::{ClockConfig, Clocks, Domain};
pub use mc::{McConfig, McNode, McRequest, McStats, Reply};
pub use metrics::{arithmetic_mean, harmonic_mean, RunMetrics};
pub use power::{HopEnergy, PowerModel};
pub use presets::Preset;
pub use report::SweepReport;
pub use system::{EngineKind, IcntConfig, System, SystemConfig};
pub use tenoc_noc::Tick;
pub use tenoc_noc::{ArmSpec, FlightEvent, LatencyHistogram, TelemetryConfig, TelemetryReport};
