//! ORION-class NoC energy model (65 nm) — an *extension* beyond the
//! paper, which optimizes area only. The same throughput-effective
//! methodology extends naturally to IPC/W; this module provides
//! order-of-magnitude dynamic and leakage estimates so the benches can
//! report energy-per-bit alongside area.
//!
//! Modeling choices (documented, deliberately simple):
//!
//! * **Buffer energy** — one write + one read per flit per hop, linear in
//!   flit bytes.
//! * **Crossbar energy** — per-flit traversal cost grows with flit width
//!   and with the crossbar's crosspoint count (longer internal wires), so
//!   half-routers and narrower slices pay less per flit.
//! * **Link energy** — linear in bytes, per traversed link (~1.9 mm tile
//!   pitch, paper Figure 14).
//! * **Allocator energy** — small per-flit constant.
//! * **Leakage** — proportional to NoC area.
//!
//! Constants are calibrated to ORION-2.0-era 65 nm reports (~0.5–1 pJ/bit
//! per hop overall); absolute watts are indicative, ratios between designs
//! are the point.

use crate::area::ChipArea;
use serde::{Deserialize, Serialize};
use tenoc_noc::{NetworkConfig, RouterKind};

/// pJ per byte for one buffer write + read.
const E_BUF_PJ_PER_B: f64 = 1.10;
/// pJ per byte per unit crosspoint-scale for one crossbar traversal of a
/// 16-byte-wide crossbar (wire length grows with datapath width, so the
/// per-byte cost scales with `w / 16` on top of this).
const E_XBAR_PJ_PER_B: f64 = 0.55;
/// pJ per byte for one ~1.9 mm link traversal.
const E_LINK_PJ_PER_B: f64 = 1.30;
/// pJ per flit for allocation logic.
const E_ALLOC_PJ: f64 = 0.35;
/// Leakage power density of NoC logic, W per mm² at 65 nm.
const LEAKAGE_W_PER_MM2: f64 = 0.012;
/// Crosspoint count the crossbar constant is normalized to (the baseline
/// 4x5 full-router crossbar).
const XP_NORM: f64 = 20.0;

/// Energy breakdown for one flit traversing one router + its outgoing
/// link, in pJ.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HopEnergy {
    /// Buffer write + read.
    pub buffer_pj: f64,
    /// Crossbar traversal.
    pub crossbar_pj: f64,
    /// Link traversal.
    pub link_pj: f64,
    /// VC + switch allocation.
    pub allocator_pj: f64,
}

impl HopEnergy {
    /// Total energy per flit-hop.
    pub fn total_pj(&self) -> f64 {
        self.buffer_pj + self.crossbar_pj + self.link_pj + self.allocator_pj
    }

    /// Energy per *bit* transported one hop.
    pub fn pj_per_bit(&self, channel_bytes: u32) -> f64 {
        self.total_pj() / (channel_bytes as f64 * 8.0)
    }
}

/// The NoC power model.
///
/// ```
/// use tenoc_core::PowerModel;
/// use tenoc_noc::RouterKind;
///
/// let hop = PowerModel::hop_energy(RouterKind::Full, 16);
/// assert!(hop.pj_per_bit(16) < 1.0, "sub-pJ/bit per hop at 65 nm");
/// ```
#[derive(Copy, Clone, Debug, Default)]
pub struct PowerModel;

impl PowerModel {
    /// Per-flit-hop energy for a router of `kind` in a network with the
    /// given channel width.
    pub fn hop_energy(kind: RouterKind, channel_bytes: u32) -> HopEnergy {
        let w = channel_bytes as f64;
        let crosspoints = match kind {
            RouterKind::Full => 20.0,
            RouterKind::Half => 9.6,
        };
        HopEnergy {
            buffer_pj: E_BUF_PJ_PER_B * w,
            // Quadratic in width: wider datapaths mean longer crossbar
            // wires per bit (the same scaling that makes crossbar *area*
            // quadratic in Table VI).
            crossbar_pj: E_XBAR_PJ_PER_B * w * (w / 16.0) * (crosspoints / XP_NORM),
            link_pj: E_LINK_PJ_PER_B * w,
            allocator_pj: E_ALLOC_PJ,
        }
    }

    /// Mean per-flit-hop energy over a network's router mix.
    pub fn mean_hop_energy(cfg: &NetworkConfig) -> HopEnergy {
        let mut full = 0usize;
        let mut half = 0usize;
        for n in cfg.mesh.nodes() {
            match cfg.mesh.kind(n) {
                RouterKind::Full => full += 1,
                RouterKind::Half => half += 1,
            }
        }
        let (ef, eh) = (
            Self::hop_energy(RouterKind::Full, cfg.channel_bytes),
            Self::hop_energy(RouterKind::Half, cfg.channel_bytes),
        );
        let t = (full + half) as f64;
        let mix = |a: f64, b: f64| (a * full as f64 + b * half as f64) / t;
        HopEnergy {
            buffer_pj: mix(ef.buffer_pj, eh.buffer_pj),
            crossbar_pj: mix(ef.crossbar_pj, eh.crossbar_pj),
            link_pj: mix(ef.link_pj, eh.link_pj),
            allocator_pj: mix(ef.allocator_pj, eh.allocator_pj),
        }
    }

    /// Dynamic power in watts given total flit-hops over an elapsed time.
    pub fn dynamic_power_w(cfg: &NetworkConfig, flit_hops: u64, elapsed_s: f64) -> f64 {
        assert!(elapsed_s > 0.0);
        Self::mean_hop_energy(cfg).total_pj() * flit_hops as f64 * 1e-12 / elapsed_s
    }

    /// Leakage power of the NoC portion of a chip, in watts.
    pub fn leakage_power_w(area: &ChipArea) -> f64 {
        area.noc() * LEAKAGE_W_PER_MM2
    }

    /// Energy to move one 64-byte line across `hops` hops, in pJ — the
    /// end-to-end number architects quote.
    pub fn line_transfer_pj(cfg: &NetworkConfig, hops: u32) -> f64 {
        let flits = 64u32.div_ceil(cfg.channel_bytes).max(1) as f64;
        Self::mean_hop_energy(cfg).total_pj() * flits * hops as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::Preset;
    use crate::system::IcntConfig;
    use tenoc_noc::NetworkConfig;

    #[test]
    fn hop_energy_in_orion_ballpark() {
        // ~0.3-0.8 pJ/bit/hop at 65 nm for a 16-byte datapath.
        let e = PowerModel::hop_energy(RouterKind::Full, 16);
        let per_bit = e.pj_per_bit(16);
        assert!((0.2..1.0).contains(&per_bit), "{per_bit} pJ/bit");
    }

    #[test]
    fn half_router_saves_crossbar_energy() {
        let f = PowerModel::hop_energy(RouterKind::Full, 16);
        let h = PowerModel::hop_energy(RouterKind::Half, 16);
        assert!(h.crossbar_pj < f.crossbar_pj * 0.6);
        assert_eq!(h.buffer_pj, f.buffer_pj);
        assert!(h.total_pj() < f.total_pj());
    }

    #[test]
    fn energy_scaling_with_width() {
        let e16 = PowerModel::hop_energy(RouterKind::Full, 16);
        let e32 = PowerModel::hop_energy(RouterKind::Full, 32);
        // Buffers and links are linear in width; the crossbar is
        // quadratic (like its area).
        assert!((e32.buffer_pj / e16.buffer_pj - 2.0).abs() < 1e-9);
        assert!((e32.link_pj / e16.link_pj - 2.0).abs() < 1e-9);
        assert!((e32.crossbar_pj / e16.crossbar_pj - 4.0).abs() < 1e-9);
    }

    #[test]
    fn line_transfer_energy_independent_of_slicing_to_first_order() {
        // Moving 64 bytes over the same hop count costs about the same in
        // a 16B network (4 flits) and an 8B slice (8 flits) — buffers and
        // links are linear in bytes; the slice saves a little crossbar.
        let single = NetworkConfig::checkerboard_mesh(6);
        let mut slice = single.clone();
        slice.channel_bytes = 8;
        slice.vcs = tenoc_noc::VcLayout::new(2, 1, true);
        let e_single = PowerModel::line_transfer_pj(&single, 5);
        let e_slice = PowerModel::line_transfer_pj(&slice, 5);
        assert!(e_slice < e_single, "narrower crossbars must save energy");
        assert!(e_slice > e_single * 0.8, "savings are second-order");
    }

    #[test]
    fn checkerboard_mesh_has_lower_mean_hop_energy() {
        let full = NetworkConfig::baseline_mesh(6);
        let cb = NetworkConfig::checkerboard_mesh(6);
        assert!(
            PowerModel::mean_hop_energy(&cb).total_pj()
                < PowerModel::mean_hop_energy(&full).total_pj()
        );
    }

    #[test]
    fn leakage_tracks_noc_area() {
        let base = crate::area::AreaModel::chip_area(&Preset::BaselineTbDor.icnt(6));
        let te = crate::area::AreaModel::chip_area(&Preset::ThroughputEffective.icnt(6));
        assert!(PowerModel::leakage_power_w(&te) < PowerModel::leakage_power_w(&base));
        let IcntConfig::Mesh(_) = Preset::BaselineTbDor.icnt(6) else { panic!() };
    }

    #[test]
    fn dynamic_power_sane_magnitude() {
        // A saturated baseline mesh: ~120 links x 0.5 flits/cycle at
        // 602 MHz — expect single-digit watts.
        let cfg = NetworkConfig::baseline_mesh(6);
        let flit_hops = (120.0 * 0.5 * 602e6) as u64; // one second's worth
        let p = PowerModel::dynamic_power_w(&cfg, flit_hops, 1.0);
        assert!((0.5..20.0).contains(&p), "{p} W");
    }
}
