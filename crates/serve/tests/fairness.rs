//! Tenant fairness: a small grid submitted while a large grid is queued
//! must finish near the head of the line, not behind the large grid's
//! tail. The assertion counts *services*, never wall-clock time, so the
//! test is deterministic on any machine.
//!
//! Setup forces the worst case for FIFO: one worker, per-cell batches,
//! pool paused until both tenants are fully queued (large tenant first).
//! Deadline-RR then interleaves them one cell at a time, so the small
//! tenant's done event must arrive after at most `2 x small + slack`
//! services — observed here as "few large-tenant records had been
//! delivered when the small tenant finished".

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tenoc_serve::{classify_line, client, server, SweepRequest};

fn tmp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tenoc-serve-fair-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..2000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn small_tenant_is_not_starved_by_a_large_grid() {
    let large = SweepRequest {
        tenant: "large".into(),
        presets: vec!["baseline".into(), "cp-cr".into()],
        benchmarks: vec!["HIS".into(), "MM".into(), "RD".into(), "TRA".into()],
        seed: 1001, // Distinct seeds: no cross-tenant dedup muddies the count.
        ..SweepRequest::default()
    };
    let small = SweepRequest {
        tenant: "small".into(),
        presets: vec!["thr-eff".into()],
        benchmarks: vec!["HIS".into(), "RD".into()],
        seed: 2002,
        ..SweepRequest::default()
    };
    let large_cells = 8u64;
    let small_cells = 2u64;

    let cache = tmp_cache("starve");
    let mut cfg = server::ServerConfig::new("127.0.0.1:0", &cache);
    cfg.workers = 1;
    cfg.batch = 1; // Per-cell service: the pure deadline-RR interleaving.
    cfg.start_paused = true;
    let handle = server::start(cfg).expect("server starts");
    let addr = handle.addr();

    // The large tenant submits first and counts each record as it lands.
    let large_received = Arc::new(AtomicUsize::new(0));
    let large_thread = {
        let counter = Arc::clone(&large_received);
        let req = large.clone();
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(req.to_line().as_bytes()).expect("send");
            stream.write_all(b"\n").expect("send");
            let reader = BufReader::new(stream);
            let mut records = 0usize;
            for line in reader.lines() {
                let line = line.expect("read");
                let (event, _) = classify_line(&line).expect("parseable");
                match event.as_deref() {
                    None => {
                        records += 1;
                        counter.store(records, Ordering::SeqCst);
                    }
                    Some("done") => return records,
                    Some("aborted") => panic!("large stream aborted"),
                    _ => {}
                }
            }
            panic!("large stream ended early");
        })
    };
    wait_for(|| handle.stats().queued == large_cells, "large grid queued");

    // The small tenant arrives second, behind 8 queued cells.
    let small_thread = std::thread::spawn(move || client::submit(addr, &small).expect("small"));
    wait_for(|| handle.stats().queued == large_cells + small_cells, "small grid queued");

    handle.resume();
    let small_outcome = small_thread.join().expect("small thread");
    let large_at_small_done = large_received.load(Ordering::SeqCst);
    let large_total = large_thread.join().expect("large thread");

    assert_eq!(small_outcome.lines.len() as u64, small_cells, "small stream complete");
    assert_eq!(small_outcome.simulated, small_cells);
    assert_eq!(large_total as u64, large_cells, "large stream complete");

    // Deadline-RR guarantee: the small tenant interleaves one-for-one, so
    // at most `small_cells` large cells (plus scheduling slack for the
    // tie-break round and TCP skew) precede its completion. FIFO would
    // make this 8.
    let slack = 2;
    assert!(
        (large_at_small_done as u64) <= small_cells + slack,
        "small tenant starved: {large_at_small_done} of {large_cells} large cells \
         were delivered before the small grid finished"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}
