//! In-flight dedup under concurrency: N clients racing the same grid
//! must trigger exactly one simulation per distinct cell, and every
//! client must still receive the complete, byte-correct stream.
//!
//! The server starts with its worker pool **paused** so all four
//! requests are planned against an empty cache before any cell runs —
//! the maximally contended case, deterministic on any machine.

use std::time::Duration;
use tenoc_harness::{run_sweep, tiny_grid, to_jsonl};
use tenoc_serve::{client, server, SweepRequest};

fn tmp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tenoc-serve-conc-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    for _ in 0..2000 {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("timed out waiting for {what}");
}

#[test]
fn racing_clients_simulate_each_cell_exactly_once() {
    const CLIENTS: u64 = 4;
    let grid = tiny_grid();
    let distinct = grid.len() as u64;
    let reference = to_jsonl(&run_sweep(&grid, tenoc_harness::jobs_from_env()));

    let cache = tmp_cache("race");
    let mut cfg = server::ServerConfig::new("127.0.0.1:0", &cache);
    cfg.workers = 2;
    cfg.start_paused = true;
    let handle = server::start(cfg).expect("server starts");
    let addr = handle.addr();

    let threads: Vec<_> = (0..CLIENTS)
        .map(|i| {
            std::thread::spawn(move || {
                client::submit(addr, &SweepRequest::tiny(&format!("client-{i}")))
                    .expect("submission succeeds")
            })
        })
        .collect();

    // All four requests planned, workers still paused: exactly one
    // in-flight entry per distinct cell, the rest registered as waiters.
    wait_for(|| handle.stats().requests == CLIENTS, "all requests planned");
    let staged = handle.stats();
    assert_eq!(staged.queued, distinct, "one scheduled job per distinct cell");
    assert_eq!(staged.inflight, distinct);
    assert_eq!(staged.dedup_hits, (CLIENTS - 1) * distinct, "every duplicate deduplicates");
    assert_eq!(staged.simulated, 0, "nothing ran while paused");

    handle.resume();
    let outcomes: Vec<_> = threads.into_iter().map(|t| t.join().expect("client thread")).collect();

    // Exactly one client paid for each cell; everyone got the same bytes.
    let simulated: u64 = outcomes.iter().map(|o| o.simulated).sum();
    let deduped: u64 = outcomes.iter().map(|o| o.dedup_hits).sum();
    assert_eq!(simulated, distinct, "each distinct cell simulated exactly once");
    assert_eq!(deduped, (CLIENTS - 1) * distinct);
    for (i, o) in outcomes.iter().enumerate() {
        assert!(!o.aborted, "client {i} aborted");
        assert_eq!(o.lines.len(), grid.len(), "client {i} stream incomplete");
        assert_eq!(o.jsonl(), reference, "client {i} stream diverged from batch sweep");
    }

    let stats = handle.stats();
    assert_eq!(stats.simulated, distinct);
    assert_eq!(stats.cache_entries, distinct);
    assert_eq!(stats.inflight, 0, "in-flight table drains");
    assert_eq!(stats.queued, 0);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}
