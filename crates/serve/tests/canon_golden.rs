//! Golden canonical content addresses for the tiny grid.
//!
//! The serve cache is content-addressed: any drift in these keys orphans
//! every previously journaled cell and silently re-simulates the world.
//! The 16-hex-digit keys below were recorded when the canonical scheme
//! was frozen; they must stay byte-identical for every existing mesh
//! configuration across refactors (topology abstraction included). A new
//! fabric may *add* keys, but these nine may never change.

use tenoc_harness::golden::tiny_grid;
use tenoc_serve::canon::cell_key;

const GOLDEN: [(&str, &str, &str); 9] = [
    ("TB-DOR", "HIS", "dd26ab2d3b1e70e0"),
    ("TB-DOR", "MM", "692552a4adc49e83"),
    ("TB-DOR", "RD", "10b124c6416d5c04"),
    ("CP-CR-4VC", "HIS", "fd864660951dc838"),
    ("CP-CR-4VC", "MM", "e373aa96f85c336b"),
    ("CP-CR-4VC", "RD", "0c5305f7e1d1b885"),
    ("Thr-Eff", "HIS", "a4b39351c0fecc7a"),
    ("Thr-Eff", "MM", "25669b3e1ee88363"),
    ("Thr-Eff", "RD", "31f9ea8b3f74d775"),
];

#[test]
fn tiny_grid_canonical_keys_are_byte_identical_to_seed() {
    let g = tiny_grid();
    assert_eq!(g.len(), GOLDEN.len());
    for (i, &(label, bench, key)) in GOLDEN.iter().enumerate() {
        let c = g.cell(i);
        assert_eq!(c.preset.label(), label, "cell {i} preset");
        assert_eq!(c.benchmark, bench, "cell {i} benchmark");
        assert_eq!(
            cell_key(&c),
            key,
            "cell {i} ({label}/{bench}): canonical content address drifted — existing \
             cache entries would be orphaned"
        );
    }
}
