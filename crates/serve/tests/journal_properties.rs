//! Property-based tests for the cache journal lifecycle.
//!
//! A sweep service may be killed at any byte of an append — the journal
//! is the only durable state, so the replay path has to make three
//! promises regardless of where the crash lands:
//!
//! 1. a cell whose journal line was fully written is never lost,
//! 2. replay never panics on a mangled tail, and
//! 3. `skipped_lines` counts exactly the corrupted records.
//!
//! The model below mirrors the journal as an ordered list of
//! `(key, line length)` entries, simulates crashes by truncating the
//! real file at an arbitrary byte, and checks the replayed cache against
//! the lines that survive the cut.

use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use tenoc_core::RunMetrics;
use tenoc_serve::{CachedCell, DiskCache};
use tenoc_simt::TrafficClass;

fn metrics_for(tag: u64) -> RunMetrics {
    RunMetrics {
        completed: true,
        core_cycles: 1000 + tag,
        icnt_cycles: 400 + tag,
        scalar_insts: 7 * tag + 13,
        ipc: 1.0 + (tag as f64) / 17.0,
        avg_net_latency: 20.5,
        mc_injection_rate: 0.25,
        core_injection_rate: 0.05,
        mc_stall_fraction: 0.4,
        dram_efficiency: 0.5,
        l2_read_hit_rate: 0.3,
        accepted_flits_per_node: 0.125,
        core_replays: tag % 5,
        flit_hops: 4096 + tag,
    }
}

fn fresh_dir() -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "tenoc-serve-journal-prop-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One journaled line in the model: its key and its on-disk byte length
/// (including the trailing newline).
struct ModelLine {
    key: String,
    len: usize,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random put / crash(truncate at an arbitrary byte) / reopen
    /// sequences never lose a fully-journaled cell, never panic, and
    /// count exactly the corrupted records in `skipped_lines`.
    #[test]
    fn journal_replay_survives_arbitrary_crashes(
        ops in prop::collection::vec((0u8..3, any::<u64>()), 1..24)
    ) {
        let dir = fresh_dir();
        let journal = DiskCache::journal_path(&dir);
        let mut cache = DiskCache::open(&dir).unwrap();
        // The model: journal lines in append order. Keys are unique here
        // because `put` dedups against the in-memory map, which always
        // holds exactly the modeled lines' keys.
        let mut lines: Vec<ModelLine> = Vec::new();

        for (code, param) in ops {
            match code {
                // Put a (possibly already-cached) cell.
                0 => {
                    let key = format!("k{:02}", param % 24);
                    let before = std::fs::metadata(&journal).unwrap().len() as usize;
                    let cell = CachedCell {
                        class: TrafficClass::HH,
                        metrics: metrics_for(param % 97),
                    };
                    cache.put(&key, cell).unwrap();
                    let after = std::fs::metadata(&journal).unwrap().len() as usize;
                    let already_cached = lines.iter().any(|l| l.key == key);
                    prop_assert_eq!(
                        after == before,
                        already_cached,
                        "journal grows exactly on first-time puts"
                    );
                    if after > before {
                        lines.push(ModelLine { key, len: after - before });
                    }
                }
                // Crash: drop the handle and truncate at an arbitrary byte.
                1 => {
                    drop(cache);
                    let total = std::fs::metadata(&journal).unwrap().len() as usize;
                    let cut = (param % (total as u64 + 1)) as usize;
                    let f = std::fs::OpenOptions::new().write(true).open(&journal).unwrap();
                    f.set_len(cut as u64).unwrap();
                    drop(f);
                    // Model the cut: complete lines inside the prefix
                    // survive; a partial tail is one corrupted record.
                    let mut survivors = Vec::new();
                    let mut offset = 0usize;
                    let mut partial = false;
                    for line in lines {
                        if offset + line.len <= cut {
                            offset += line.len;
                            survivors.push(line);
                        } else {
                            partial = offset < cut;
                            break;
                        }
                    }
                    lines = survivors;
                    cache = DiskCache::open(&dir).unwrap();
                    prop_assert_eq!(
                        cache.skipped_lines,
                        usize::from(partial),
                        "skipped_lines counts exactly the corrupted records"
                    );
                    prop_assert_eq!(cache.len(), lines.len());
                    for l in &lines {
                        prop_assert!(
                            cache.get(&l.key).is_some(),
                            "fully-journaled cell {} lost after crash at byte {cut}",
                            l.key
                        );
                    }
                    // `open` trims the partial tail, so the file is now
                    // exactly the surviving lines.
                    let total: usize = lines.iter().map(|l| l.len).sum();
                    prop_assert_eq!(std::fs::metadata(&journal).unwrap().len() as usize, total);
                }
                // Clean reopen: nothing is lost, nothing is skipped.
                _ => {
                    drop(cache);
                    cache = DiskCache::open(&dir).unwrap();
                    prop_assert_eq!(cache.skipped_lines, 0);
                    prop_assert_eq!(cache.len(), lines.len());
                    for l in &lines {
                        prop_assert!(cache.get(&l.key).is_some());
                    }
                }
            }
        }
        drop(cache);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
