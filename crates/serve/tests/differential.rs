//! The service's reason to exist, pinned as a differential test: for the
//! same grid, the service stream reassembles to **byte-identical** JSONL
//! as batch `tenoc sweep` — and resubmitting the grid serves every cell
//! from the persistent cache without simulating anything.

use std::path::PathBuf;
use tenoc_harness::{run_sweep, tiny_grid, to_jsonl};
use tenoc_serve::{client, server, SweepRequest};

fn tmp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tenoc-serve-diff-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn local_server(cache: &PathBuf) -> server::ServerHandle {
    let mut cfg = server::ServerConfig::new("127.0.0.1:0", cache);
    cfg.workers = 2;
    server::start(cfg).expect("server starts")
}

#[test]
fn service_stream_is_byte_identical_to_batch_sweep() {
    let grid = tiny_grid();
    let reference = to_jsonl(&run_sweep(&grid, tenoc_harness::jobs_from_env()));

    let cache = tmp_cache("bytes");
    let handle = local_server(&cache);
    let outcome =
        client::submit(handle.addr(), &SweepRequest::tiny("diff")).expect("submission succeeds");

    assert!(!outcome.aborted);
    assert_eq!(outcome.planned as usize, grid.len());
    assert_eq!(outcome.lines.len(), grid.len());
    assert_eq!(outcome.simulated as usize, grid.len(), "cold cache simulates everything");
    assert_eq!(outcome.cache_hits, 0);
    assert_eq!(outcome.jsonl(), reference, "service must reproduce `tenoc sweep` byte-for-byte");

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn service_stream_matches_the_checked_in_golden_snapshot() {
    // CARGO_MANIFEST_DIR is crates/serve; the golden file lives at the
    // workspace root.
    let golden_path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/tiny.jsonl");
    let golden = std::fs::read_to_string(&golden_path).expect("golden snapshot present");

    let cache = tmp_cache("golden");
    let handle = local_server(&cache);
    let outcome =
        client::submit(handle.addr(), &SweepRequest::tiny("golden")).expect("submission succeeds");
    assert_eq!(
        outcome.jsonl(),
        golden,
        "service drifted from the golden snapshot; see tests/harness_golden.rs for re-blessing"
    );

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn resubmission_is_all_cache_hits_and_zero_simulation() {
    let cache = tmp_cache("resubmit");
    let handle = local_server(&cache);

    let first =
        client::submit(handle.addr(), &SweepRequest::tiny("warm")).expect("first submission");
    let second =
        client::submit(handle.addr(), &SweepRequest::tiny("warm")).expect("second submission");

    assert_eq!(second.simulated, 0, "warm cache must not simulate");
    assert_eq!(second.cache_hits, first.planned, "every cell is a cache hit");
    assert_eq!(second.dedup_hits, 0);
    assert_eq!(second.jsonl(), first.jsonl(), "cached replay is byte-identical");

    // The stats endpoint agrees: 9 distinct cells simulated once, ever.
    let stats = client::fetch_stats(handle.addr()).expect("stats");
    let count = |name: &str| stats.field(name).and_then(|v| v.as_u64()).unwrap();
    assert_eq!(count("simulated"), first.planned);
    assert_eq!(count("cache_hits"), first.planned);
    assert_eq!(count("cache_entries"), first.planned);
    assert_eq!(count("queued"), 0);
    assert_eq!(count("inflight"), 0);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn aliased_presets_share_cache_entries_across_requests() {
    let cache = tmp_cache("alias");
    let handle = local_server(&cache);

    let te = SweepRequest {
        tenant: "alias".into(),
        presets: vec!["thr-eff".into()],
        benchmarks: vec!["HIS".into()],
        ..SweepRequest::default()
    };
    let first = client::submit(handle.addr(), &te).expect("thr-eff submission");
    assert_eq!(first.simulated, 1);

    // The same fabric under its compositional name: pure cache hit.
    let mut alias = te.clone();
    alias.presets = vec!["2p-inj".into()];
    let hit = client::submit(handle.addr(), &alias).expect("alias submission");
    assert_eq!(hit.simulated, 0, "aliased preset must hit the shared cache entry");
    assert_eq!(hit.cache_hits, 1);

    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}
