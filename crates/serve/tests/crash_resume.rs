//! Crash-resume: kill the server after K cells are journaled, restart it
//! on the same cache directory, and the sweep completes without
//! re-simulating anything the journal already holds.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use tenoc_harness::{run_sweep, tiny_grid, to_jsonl};
use tenoc_serve::{classify_line, client, server, DiskCache, SweepRequest};

fn tmp_cache(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "tenoc-serve-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn killed_server_resumes_without_resimulating_journaled_cells() {
    const K: usize = 3;
    let grid = tiny_grid();
    let total = grid.len();
    let reference = to_jsonl(&run_sweep(&grid, tenoc_harness::jobs_from_env()));
    let cache = tmp_cache("resume");

    // First life: single worker, per-cell batches, paused so the whole
    // grid is queued before anything runs.
    let mut cfg = server::ServerConfig::new("127.0.0.1:0", &cache);
    cfg.workers = 1;
    cfg.batch = 1;
    cfg.start_paused = true;
    let handle = server::start(cfg.clone()).expect("server starts");

    // Raw socket: we want to observe the stream mid-flight, not drain it.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(SweepRequest::tiny("victim").to_line().as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("planned event");
    let (event, v) = classify_line(line.trim_end()).expect("parseable");
    assert_eq!(event.as_deref(), Some("planned"));
    assert_eq!(v.field("cells").unwrap().as_u64().unwrap() as usize, total);

    // Let exactly-one-at-a-time simulation proceed until K records have
    // reached us, then kill the server.
    handle.resume();
    for i in 0..K {
        line.clear();
        reader.read_line(&mut line).unwrap_or_else(|e| panic!("record {i}: {e}"));
        let (event, _) = classify_line(line.trim_end()).expect("parseable");
        assert!(event.is_none(), "expected a record line, got event {event:?}");
    }
    handle.shutdown();

    // The durability contract: everything we saw was journaled first.
    let journal = std::fs::read_to_string(DiskCache::journal_path(&cache)).expect("journal exists");
    let journaled = journal.lines().filter(|l| !l.trim().is_empty()).count();
    assert!(journaled >= K, "saw {K} records but only {journaled} journal lines");
    assert!(journaled < total, "server died with work left undone");

    // Second life: same cache directory, workers running.
    let mut cfg2 = server::ServerConfig::new("127.0.0.1:0", &cache);
    cfg2.workers = 1;
    cfg2.batch = 1;
    cfg2.start_paused = false;
    let revived = server::start(cfg2).expect("server restarts");
    let outcome =
        client::submit(revived.addr(), &SweepRequest::tiny("survivor")).expect("resubmission");

    assert!(!outcome.aborted);
    assert_eq!(outcome.lines.len(), total, "resumed sweep completes the grid");
    assert_eq!(
        outcome.cache_hits as usize, journaled,
        "every journaled cell is served from cache, none re-simulated"
    );
    assert_eq!(outcome.simulated as usize, total - journaled, "only the remainder simulates");
    assert_eq!(outcome.jsonl(), reference, "resumed stream is byte-identical to batch sweep");

    revived.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}
