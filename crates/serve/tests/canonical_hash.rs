//! Property tests of the canonical content address: hashes must be
//! *insensitive* to representation (field order, serialization round
//! trips) and *sensitive* to meaning (any single identity field).

use proptest::prelude::*;
use serde::json::Value;
use tenoc_core::Preset;
use tenoc_harness::{SeedMode, SweepCell, SweepGrid};
use tenoc_serve::{cell_key, cell_value, hash_value};

const PRESETS: [Preset; 8] = [
    Preset::BaselineTbDor,
    Preset::TbDor2xBw,
    Preset::CpDor2vc,
    Preset::CpCr4vc,
    Preset::DoubleCpCr,
    Preset::DoubleCpCr2InjPorts,
    Preset::ThroughputEffective,
    Preset::Perfect,
];

const BENCHMARKS: [&str; 4] = ["HIS", "MM", "RD", "TRA"];

fn arb_cell() -> impl Strategy<Value = SweepCell> {
    (
        prop::sample::select(PRESETS.to_vec()),
        prop::sample::select(BENCHMARKS.to_vec()),
        1u64..=100,
        1u64..100_000,
        prop::sample::select(vec![4usize, 6, 8]),
    )
        .prop_map(|(preset, bench, scale_pct, seed, mesh_k)| {
            let mut grid =
                SweepGrid::new(vec![preset], vec![bench.to_string()], scale_pct as f64 / 100.0)
                    .with_seed_mode(SeedMode::Derived(seed));
            grid.mesh_k = mesh_k;
            grid.cell(0)
        })
}

/// Deterministically shuffles every object's field order at every depth
/// (Fisher–Yates driven by a SplitMix64 stream).
fn shuffle_fields(v: &Value, state: &mut u64) -> Value {
    fn next(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    match v {
        Value::Array(items) => {
            Value::Array(items.iter().map(|x| shuffle_fields(x, state)).collect())
        }
        Value::Object(pairs) => {
            let mut shuffled: Vec<(String, Value)> =
                pairs.iter().map(|(k, val)| (k.clone(), shuffle_fields(val, state))).collect();
            for i in (1..shuffled.len()).rev() {
                let j = (next(state) % (i as u64 + 1)) as usize;
                shuffled.swap(i, j);
            }
            Value::Object(shuffled)
        }
        other => other.clone(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reordering JSON object fields — at any depth — never changes the
    /// hash: the address depends on what a config *is*, not on how its
    /// serialization happened to be laid out.
    #[test]
    fn hash_ignores_field_order(cell in arb_cell(), shuffle_seed in 0u64..u64::MAX) {
        let v = cell_value(&cell);
        let mut state = shuffle_seed;
        let shuffled = shuffle_fields(&v, &mut state);
        prop_assert_eq!(hash_value(&v), hash_value(&shuffled));
    }

    /// Serializing to JSON text and parsing back never changes the hash:
    /// a client-marshalled config addresses the same cache entry as the
    /// server-built one.
    #[test]
    fn hash_survives_json_round_trip(cell in arb_cell()) {
        let v = cell_value(&cell);
        let text = v.to_json_compact();
        let reparsed = serde::json::parse(&text).unwrap();
        prop_assert_eq!(hash_value(&v), hash_value(&reparsed));
        // And the pretty form parses to the same address too.
        let repretty = serde::json::parse(&v.to_json_pretty()).unwrap();
        prop_assert_eq!(hash_value(&v), hash_value(&repretty));
    }

    /// Perturbing any single identity field changes the hash: no stale
    /// result can be served for a config that differs in benchmark,
    /// scale, seed or mesh radix.
    #[test]
    fn single_field_perturbations_change_the_hash(
        cell in arb_cell(),
        which in 0usize..4,
    ) {
        let base = cell_key(&cell);
        let mut other = cell.clone();
        match which {
            0 => {
                let next = BENCHMARKS
                    .iter()
                    .find(|b| **b != cell.benchmark)
                    .expect("more than one benchmark");
                other.benchmark = (*next).to_string();
            }
            1 => other.scale += 0.001,
            2 => other.seed ^= 1,
            _ => other.mesh_k = if cell.mesh_k == 6 { 8 } else { 6 },
        }
        prop_assert_ne!(base, cell_key(&other), "perturbation {} collided", which);
    }

    /// Changing the preset to one with a different fabric changes the
    /// hash (aliased presets are the deliberate exception, pinned by the
    /// unit tests in `canon`).
    #[test]
    fn distinct_fabrics_get_distinct_keys(cell in arb_cell()) {
        let alias_of = |p: Preset| match p {
            // Thr-Eff *is* Double-CP-CR-2P(inj); both map to one fabric.
            Preset::ThroughputEffective => Preset::DoubleCpCr2InjPorts,
            other => other,
        };
        let base = cell_key(&cell);
        for preset in PRESETS {
            if alias_of(preset) == alias_of(cell.preset) {
                continue;
            }
            let mut other = cell.clone();
            other.preset = preset;
            prop_assert_ne!(
                &base,
                &cell_key(&other),
                "{:?} vs {:?} collided",
                cell.preset,
                preset
            );
        }
    }
}
