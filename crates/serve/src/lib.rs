//! `tenoc-serve`: the long-running sweep service.
//!
//! `tenoc sweep` is a batch command: plan a grid, simulate every cell,
//! write a JSONL file. This crate turns that pipeline into a shared,
//! memoized service — JSON lines over TCP — built from four pieces:
//!
//! - [`canon`]: a canonical content address for each cell, stable across
//!   field order and serialization round-trips, computed over the
//!   *resolved* configuration so aliased presets share results;
//! - [`cache`]: a persistent result cache whose append-only journal
//!   doubles as the crash-resume log;
//! - [`sched`]: deadline-round-robin fair queuing across tenants, with
//!   shape-aware batch pops that feed the lockstep arena kernel;
//! - [`server`]/[`client`]: the TCP service and its blocking client,
//!   with an in-flight dedup table so concurrent requests for the same
//!   cell trigger exactly one simulation.
//!
//! The contract throughout: the service's reassembled stream is
//! **byte-identical** to `tenoc sweep` output for the same grid, whether
//! a cell was simulated, deduplicated, or served from cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canon;
pub mod client;
pub mod proto;
pub mod sched;
pub mod server;

pub use cache::{CachedCell, DiskCache};
pub use canon::{
    canonical_json, canonicalize, cell_key, cell_value, config_cell_key, config_cell_value,
    hash_value,
};
pub use client::{connect_with_retry, fetch_stats, submit, submit_on, SubmitOutcome};
pub use proto::{classify_line, event_line, SweepRequest, DEFAULT_SCALE, DEFAULT_SEED};
pub use sched::DeadlineRr;
pub use server::{start, ServerConfig, ServerHandle, StatsSnapshot};
