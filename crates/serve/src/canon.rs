//! Canonical content addressing for sweep cells.
//!
//! A cell is a pure function of `(config, benchmark, scale, seed)`, so a
//! stable hash of those inputs is a universal result address: any cell
//! ever simulated — by any tenant, in any sweep, on any server — can be
//! recognized and served from cache. Stability requires the hash to be
//! independent of JSON field *order* (two serializations of the same
//! configuration must collide) while remaining sensitive to every field
//! *value*; [`canonicalize`] provides the former by sorting object keys
//! recursively, and hashing the full serialized tree provides the latter.
//!
//! The hash is computed over the **resolved** interconnect configuration
//! (the concrete `NetworkConfig`, not the preset name), so two presets
//! that denote the same fabric — e.g. `thr-eff` and the
//! `Double-CP-CR-2P(inj)` point it aliases — share cache entries.

use serde::json::Value;
use serde::Serialize;
use tenoc_core::{IcntConfig, SystemConfig};
use tenoc_harness::{cell_system_config, SweepCell};

/// Recursively sorts every object's keys, making the tree independent of
/// the field order it was built or parsed with. Arrays keep their order
/// (JSON arrays are sequences; reordering them changes meaning).
pub fn canonicalize(v: &Value) -> Value {
    match v {
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        Value::Object(pairs) => {
            let mut sorted: Vec<(String, Value)> =
                pairs.iter().map(|(k, val)| (k.clone(), canonicalize(val))).collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            Value::Object(sorted)
        }
        other => other.clone(),
    }
}

/// The canonical compact-JSON form of a value: object keys sorted at
/// every depth, rendered with the same float/integer formatting the rest
/// of the workspace uses (shortest round-trip).
pub fn canonical_json(v: &Value) -> String {
    canonicalize(v).to_json_compact()
}

/// FNV-1a 64-bit over a byte string (the workspace's standard stable
/// hash, same constants as `RunRecord` fingerprints).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Lower-case-hex FNV-1a of a value's canonical JSON.
pub fn hash_value(v: &Value) -> String {
    format!("{:016x}", fnv1a64(canonical_json(v).as_bytes()))
}

/// The canonical identity of a cell as a value tree: the resolved
/// interconnect configuration plus workload name, kernel scale and seed.
///
/// Deliberately excluded:
/// - the preset *name* and the cell's grid *index* — presentation, not
///   physics; two grids can address the same cell;
/// - the execution engine and job/batch placement — proven
///   result-identical by the arena-equivalence tests;
/// - telemetry arming — observation only, never perturbs results;
/// - the safety cycle limit — can abort a run, never change its value.
///
/// The remaining `SystemConfig` parameters (core, MC, clocks, interleave
/// chunk, concentration) are fixed Table II constants under
/// [`cell_system_config`]; `chunk` and `cores_per_node` are included as
/// cheap insurance because they are plain scalars.
pub fn cell_value(cell: &SweepCell) -> Value {
    let cfg = cell_system_config(cell);
    config_cell_value(&cfg.icnt, &cell.benchmark, cell.scale, cell.seed)
}

/// The canonical identity of an explicit-config cell — the same value
/// tree [`cell_value`] builds for preset cells, so a tuner candidate
/// whose resolved interconnect equals a preset's shares its cache
/// entries (`chunk` and `cores_per_node` are re-derived from the
/// interconnect exactly as `SystemConfig::with_icnt` does for preset
/// cells).
pub fn config_cell_value(icnt: &IcntConfig, benchmark: &str, scale: f64, seed: u64) -> Value {
    let cfg = SystemConfig::with_icnt(icnt.clone());
    Value::Object(vec![
        ("benchmark".to_string(), benchmark.to_value()),
        ("icnt".to_string(), cfg.icnt.to_value()),
        ("scale".to_string(), scale.to_value()),
        ("seed".to_string(), seed.to_value()),
        ("chunk".to_string(), cfg.chunk.to_value()),
        ("cores_per_node".to_string(), cfg.cores_per_node.to_value()),
    ])
}

/// The content address of a cell: 16 lower-case hex digits.
pub fn cell_key(cell: &SweepCell) -> String {
    hash_value(&cell_value(cell))
}

/// The content address of an explicit-config cell (see
/// [`config_cell_value`]).
pub fn config_cell_key(icnt: &IcntConfig, benchmark: &str, scale: f64, seed: u64) -> String {
    hash_value(&config_cell_value(icnt, benchmark, scale, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenoc_core::Preset;
    use tenoc_harness::SweepGrid;

    fn cell(preset: Preset, bench: &str, scale: f64) -> SweepCell {
        SweepGrid::new(vec![preset], vec![bench.into()], scale).cell(0)
    }

    #[test]
    fn key_is_stable_across_calls() {
        let c = cell(Preset::BaselineTbDor, "HIS", 0.02);
        assert_eq!(cell_key(&c), cell_key(&c));
        assert_eq!(cell_key(&c).len(), 16);
    }

    #[test]
    fn key_ignores_field_order() {
        let v = cell_value(&cell(Preset::BaselineTbDor, "HIS", 0.02));
        let Value::Object(mut pairs) = v.clone() else { panic!("cell value is an object") };
        pairs.reverse();
        assert_eq!(hash_value(&v), hash_value(&Value::Object(pairs)));
    }

    #[test]
    fn key_survives_a_json_round_trip() {
        let v = cell_value(&cell(Preset::ThroughputEffective, "RD", 0.02));
        let reparsed = serde::json::parse(&v.to_json_compact()).unwrap();
        assert_eq!(hash_value(&v), hash_value(&reparsed));
    }

    #[test]
    fn aliased_presets_share_a_key() {
        // Thr-Eff is defined as Double-CP-CR-2P(inj): same fabric, same
        // physics, same content address.
        let a = cell_key(&cell(Preset::ThroughputEffective, "HIS", 0.02));
        let b = cell_key(&cell(Preset::DoubleCpCr2InjPorts, "HIS", 0.02));
        assert_eq!(a, b);
    }

    #[test]
    fn config_cell_key_matches_preset_cell_key() {
        // The tuner addresses cells by resolved config; a candidate that
        // happens to equal a preset must hit the preset's cache entries.
        let c = cell(Preset::ThroughputEffective, "RD", 0.02);
        let icnt = c.preset.icnt(c.mesh_k);
        assert_eq!(cell_key(&c), config_cell_key(&icnt, &c.benchmark, c.scale, c.seed));
    }

    #[test]
    fn distinct_inputs_get_distinct_keys() {
        let base = cell(Preset::BaselineTbDor, "HIS", 0.02);
        let mut keys = vec![cell_key(&base)];
        keys.push(cell_key(&cell(Preset::BaselineTbDor, "MM", 0.02)));
        keys.push(cell_key(&cell(Preset::BaselineTbDor, "HIS", 0.05)));
        keys.push(cell_key(&cell(Preset::CpCr4vc, "HIS", 0.02)));
        let mut seeded = base.clone();
        seeded.seed ^= 1;
        keys.push(cell_key(&seeded));
        let mut radix = base;
        radix.mesh_k = 8;
        keys.push(cell_key(&radix));
        let unique: std::collections::HashSet<&String> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "key collision in {keys:?}");
    }
}
