//! The sweep service: a JSON-lines-over-TCP server over a worker pool.
//!
//! Every sweep request is planned into content-addressed cells, and each
//! cell takes exactly one of three paths:
//!
//! 1. **cache hit** — the cell was simulated before (by anyone, ever,
//!    journaled in the [`DiskCache`]); its record is streamed back
//!    immediately;
//! 2. **in-flight dedup** — the same cell is simulating right now for
//!    another request; this request registers as a waiter and the one
//!    simulation fans out to all of them;
//! 3. **scheduled** — the cell enters the requesting tenant's
//!    deadline-RR queue and is simulated once by the worker pool, which
//!    groups same-shape cells into lockstep batches on the arena kernel.
//!
//! All three paths produce byte-identical record lines (the cache-hook
//! equivalence tested in `tenoc-harness`), so the service is provably
//! just a memoized, fairly-scheduled `tenoc sweep`.

use crate::cache::{CachedCell, DiskCache};
use crate::canon::cell_key;
use crate::proto::{event_line, SweepRequest};
use crate::sched::DeadlineRr;
use serde::json::Value;
use serde::Serialize;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use tenoc_harness::{annotate_cached, batch_shape_key, run_cell, run_cells_lockstep, SweepCell};

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (tests).
    pub addr: String,
    /// Cache directory holding the `cells.jsonl` journal.
    pub cache_dir: PathBuf,
    /// Simulation worker threads.
    pub workers: usize,
    /// Maximum same-shape cells per lockstep batch (1 = per-cell oracle
    /// only).
    pub batch: usize,
    /// Start with the worker pool paused (tests use this to stage
    /// deterministic queue contents before any cell runs).
    pub start_paused: bool,
}

impl ServerConfig {
    /// A config with the given bind address and cache directory, one
    /// worker per available core, batch 8, workers running.
    pub fn new(addr: &str, cache_dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            addr: addr.to_string(),
            cache_dir: cache_dir.into(),
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            batch: 8,
            start_paused: false,
        }
    }
}

/// A point-in-time view of the server's counters — the payload of the
/// `stats` endpoint.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Sweep requests accepted.
    pub requests: u64,
    /// Cells actually simulated (each distinct cell counts once, ever).
    pub simulated: u64,
    /// Cells served from the persistent cache.
    pub cache_hits: u64,
    /// Cells that attached to an in-flight simulation instead of
    /// starting their own.
    pub dedup_hits: u64,
    /// Distinct cells in the persistent cache.
    pub cache_entries: u64,
    /// Cells currently queued for the worker pool.
    pub queued: u64,
    /// Distinct cells currently simulating or queued (in-flight table
    /// size).
    pub inflight: u64,
}

impl StatsSnapshot {
    /// The stats event wire line.
    pub fn to_line(&self) -> String {
        event_line(
            "stats",
            &[
                ("requests", self.requests.to_value()),
                ("simulated", self.simulated.to_value()),
                ("cache_hits", self.cache_hits.to_value()),
                ("dedup_hits", self.dedup_hits.to_value()),
                ("cache_entries", self.cache_entries.to_value()),
                ("queued", self.queued.to_value()),
                ("inflight", self.inflight.to_value()),
            ],
        )
    }
}

/// One scheduled unit of simulation work.
struct Job {
    key: String,
    cell: SweepCell,
    shape: Option<String>,
}

/// A request waiting on a cell: where to send the record, and the cell
/// identity *as that request sees it* (its grid index and preset label
/// may differ from the job's even though the physics is shared).
struct Waiter {
    cell: SweepCell,
    tx: Sender<String>,
}

#[derive(Default)]
struct Counters {
    requests: u64,
    simulated: u64,
    cache_hits: u64,
    dedup_hits: u64,
}

struct State {
    cache: DiskCache,
    inflight: HashMap<String, Vec<Waiter>>,
    sched: DeadlineRr<Job>,
    stats: Counters,
}

struct Inner {
    state: Mutex<State>,
    work: Condvar,
    shutdown: AtomicBool,
    paused: AtomicBool,
    batch: usize,
}

/// A running server: join handles plus the shared state.
pub struct ServerHandle {
    inner: Arc<Inner>,
    addr: SocketAddr,
    listener: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

/// Serializes the record a cache entry implies for `cell` — exactly the
/// bytes `tenoc sweep` would emit for that cell.
fn record_line(cell: &SweepCell, hit: &CachedCell) -> String {
    let record = annotate_cached(cell, hit.class, hit.metrics);
    serde_json::to_string(&record).expect("record is plain data")
}

fn snapshot(st: &State) -> StatsSnapshot {
    StatsSnapshot {
        requests: st.stats.requests,
        simulated: st.stats.simulated,
        cache_hits: st.stats.cache_hits,
        dedup_hits: st.stats.dedup_hits,
        cache_entries: st.cache.len() as u64,
        queued: st.sched.len() as u64,
        inflight: st.inflight.len() as u64,
    }
}

/// Starts the service: binds, replays the journal, spawns the worker
/// pool and the accept loop.
///
/// # Errors
///
/// Returns the underlying I/O error if the bind or the cache open fails.
pub fn start(config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let cache = DiskCache::open(&config.cache_dir)?;
    if cache.skipped_lines > 0 {
        eprintln!(
            "serve: skipped {} unparseable journal line(s) in {}",
            cache.skipped_lines,
            cache.path().display()
        );
    }
    let inner = Arc::new(Inner {
        state: Mutex::new(State {
            cache,
            inflight: HashMap::new(),
            sched: DeadlineRr::new(),
            stats: Counters::default(),
        }),
        work: Condvar::new(),
        shutdown: AtomicBool::new(false),
        paused: AtomicBool::new(config.start_paused),
        batch: config.batch.max(1),
    });

    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|_| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        })
        .collect();

    let accept_inner = Arc::clone(&inner);
    let listener_thread = std::thread::spawn(move || {
        let conn_ids = AtomicU64::new(0);
        for stream in listener.incoming() {
            if accept_inner.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let inner = Arc::clone(&accept_inner);
            let id = conn_ids.fetch_add(1, Ordering::Relaxed);
            std::thread::spawn(move || {
                let _ = handle_conn(&inner, stream, id);
            });
        }
    });

    Ok(ServerHandle { inner, addr, listener: listener_thread, workers })
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Unpauses the worker pool.
    pub fn resume(&self) {
        self.inner.paused.store(false, Ordering::SeqCst);
        self.inner.work.notify_all();
    }

    /// Current counters.
    pub fn stats(&self) -> StatsSnapshot {
        snapshot(&self.inner.state.lock().expect("state lock poisoned"))
    }

    /// Stops the server: queued-but-unstarted cells are dropped, waiters
    /// are aborted, in-progress simulations finish and are journaled,
    /// every thread is joined. The cache directory remains valid for the
    /// next `start` — this is the "kill the server" half of crash-resume.
    pub fn shutdown(self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let mut st = self.inner.state.lock().expect("state lock poisoned");
            st.sched.clear();
            // Dropping the waiters drops their channel senders; blocked
            // request handlers see the hangup and abort their streams.
            st.inflight.clear();
        }
        self.inner.work.notify_all();
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        let _ = self.listener.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Claim work under the lock; simulate outside it.
        let jobs: Vec<Job> = {
            let mut st = inner.state.lock().expect("state lock poisoned");
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if !inner.paused.load(Ordering::SeqCst) {
                    if let Some(batch) = st.sched.pop_batch(inner.batch, |j| j.shape.clone()) {
                        break batch.into_iter().map(|(_, job)| job).collect();
                    }
                }
                st = inner.work.wait(st).expect("state lock poisoned");
            }
        };

        let results: Vec<(Job, CachedCell)> = if jobs.len() >= 2 {
            // Same-shape batch: lockstep on the arena kernel,
            // bit-identical to the per-cell oracle.
            let cells: Vec<SweepCell> = jobs.iter().map(|j| j.cell.clone()).collect();
            let outcomes = run_cells_lockstep(&cells);
            jobs.into_iter()
                .zip(outcomes)
                .map(|(job, r)| (job, CachedCell { class: r.class, metrics: r.metrics }))
                .collect()
        } else {
            jobs.into_iter()
                .map(|job| {
                    let r = run_cell(&job.cell);
                    (job, CachedCell { class: r.class, metrics: r.metrics })
                })
                .collect()
        };

        let mut st = inner.state.lock().expect("state lock poisoned");
        for (job, cached) in results {
            // Journal before fan-out: once any waiter has seen this
            // result, a restarted server will serve it from cache.
            if let Err(e) = st.cache.put(&job.key, cached) {
                eprintln!("serve: journal append failed for {}: {e}", job.key);
            }
            st.stats.simulated += 1;
            if let Some(waiters) = st.inflight.remove(&job.key) {
                for w in waiters {
                    // A hung-up waiter (disconnected client) is fine; the
                    // result is cached either way.
                    let _ = w.tx.send(record_line(&w.cell, &cached));
                }
            }
        }
    }
}

fn write_line(writer: &mut TcpStream, line: &str) -> std::io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

fn handle_conn(inner: &Arc<Inner>, stream: TcpStream, conn_id: u64) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let parsed = match serde::json::parse(&line) {
            Ok(v) => v,
            Err(e) => {
                write_line(
                    &mut writer,
                    &event_line(
                        "error",
                        &[("message", format!("malformed request: {e}").to_value())],
                    ),
                )?;
                continue;
            }
        };
        let op = parsed.field("op").ok().and_then(|o| o.as_str().ok().map(str::to_string));
        match op.as_deref() {
            Some("stats") => {
                let snap = snapshot(&inner.state.lock().expect("state lock poisoned"));
                write_line(&mut writer, &snap.to_line())?;
            }
            Some("sweep") => handle_sweep(inner, &mut writer, &parsed, conn_id)?,
            other => {
                let msg = format!("unknown op {other:?}");
                write_line(&mut writer, &event_line("error", &[("message", msg.to_value())]))?;
            }
        }
    }
    Ok(())
}

fn handle_sweep(
    inner: &Arc<Inner>,
    writer: &mut TcpStream,
    parsed: &Value,
    conn_id: u64,
) -> std::io::Result<()> {
    let reject = |writer: &mut TcpStream, msg: String| {
        write_line(writer, &event_line("error", &[("message", msg.to_value())]))
    };
    let req = match SweepRequest::from_value(parsed) {
        Ok(r) => r,
        Err(msg) => return reject(writer, msg),
    };
    let grid = match req.grid() {
        Ok(g) => g,
        Err(msg) => return reject(writer, msg),
    };
    let tenant = if req.tenant.is_empty() { format!("conn-{conn_id}") } else { req.tenant.clone() };
    let cells = grid.cells();

    let (tx, rx) = std::sync::mpsc::channel::<String>();
    let mut cache_hits = 0u64;
    let mut dedup_hits = 0u64;
    let mut scheduled = 0u64;
    {
        let mut st = inner.state.lock().expect("state lock poisoned");
        if inner.shutdown.load(Ordering::SeqCst) {
            drop(st);
            return reject(writer, "server is shutting down".to_string());
        }
        st.stats.requests += 1;
        for cell in &cells {
            let key = cell_key(cell);
            if let Some(&hit) = st.cache.get(&key) {
                // Send through the same channel as simulated cells so the
                // stream preserves one uniform accounting path.
                let _ = tx.send(record_line(cell, &hit));
                cache_hits += 1;
                st.stats.cache_hits += 1;
            } else if let Some(waiters) = st.inflight.get_mut(&key) {
                waiters.push(Waiter { cell: cell.clone(), tx: tx.clone() });
                dedup_hits += 1;
                st.stats.dedup_hits += 1;
            } else {
                st.inflight
                    .insert(key.clone(), vec![Waiter { cell: cell.clone(), tx: tx.clone() }]);
                let shape = batch_shape_key(cell);
                st.sched.push(&tenant, Job { key, cell: cell.clone(), shape });
                scheduled += 1;
            }
        }
    }
    inner.work.notify_all();
    drop(tx);

    write_line(writer, &event_line("planned", &[("cells", (cells.len() as u64).to_value())]))?;
    let mut received = 0usize;
    while received < cells.len() {
        match rx.recv() {
            Ok(line) => {
                write_line(writer, &line)?;
                received += 1;
            }
            Err(_) => {
                // Every sender hung up before the stream completed: the
                // server is shutting down.
                return write_line(
                    writer,
                    &event_line("aborted", &[("received", (received as u64).to_value())]),
                );
            }
        }
    }
    write_line(
        writer,
        &event_line(
            "done",
            &[
                ("cells", (cells.len() as u64).to_value()),
                ("simulated", scheduled.to_value()),
                ("cache_hits", cache_hits.to_value()),
                ("dedup_hits", dedup_hits.to_value()),
            ],
        ),
    )
}
