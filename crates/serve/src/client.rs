//! A blocking client for the sweep service.
//!
//! [`submit`] sends one request and drains its response stream. Record
//! lines arrive in **completion** order (cache hits first, then whatever
//! the worker pool finishes); [`SubmitOutcome::jsonl`] reorders them by
//! cell index, which makes the reassembled file byte-identical to what
//! `tenoc sweep` writes for the same grid.

use crate::proto::{classify_line, SweepRequest};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;
use tenoc_harness::{from_jsonl, RunRecord};

/// Everything one sweep submission produced.
#[derive(Clone, Debug, Default)]
pub struct SubmitOutcome {
    /// Cells the server planned for this request.
    pub planned: u64,
    /// `(cell index, raw record line)` in arrival (completion) order.
    pub lines: Vec<(u64, String)>,
    /// Cells this request caused to simulate.
    pub simulated: u64,
    /// Cells served from the persistent cache.
    pub cache_hits: u64,
    /// Cells that attached to another request's in-flight simulation.
    pub dedup_hits: u64,
    /// `true` if the server aborted the stream (shutdown mid-request).
    pub aborted: bool,
}

impl SubmitOutcome {
    /// The records reassembled in cell order as a JSONL file — the exact
    /// bytes `tenoc sweep` writes for the same grid.
    pub fn jsonl(&self) -> String {
        let mut ordered = self.lines.clone();
        ordered.sort_by_key(|&(cell, _)| cell);
        let mut out = String::new();
        for (_, line) in ordered {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parses the stream back into records (cell order).
    ///
    /// # Errors
    ///
    /// Returns a message if any line fails to parse as a record.
    pub fn records(&self) -> Result<Vec<RunRecord>, String> {
        from_jsonl(&self.jsonl())
    }
}

fn bad_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Submits one sweep over an existing connection and drains its stream.
/// The connection stays usable for further requests afterwards.
///
/// # Errors
///
/// Returns an I/O error for transport failures, a server-reported
/// `error` event, or a stream that ends without a terminal event.
pub fn submit_on(stream: &mut TcpStream, req: &SweepRequest) -> std::io::Result<SubmitOutcome> {
    stream.write_all(req.to_line().as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let reader = BufReader::new(stream.try_clone()?);
    let mut outcome = SubmitOutcome::default();
    for line in reader.lines() {
        let line = line?;
        let (event, v) = classify_line(&line).map_err(bad_data)?;
        match event.as_deref() {
            None => {
                let cell = v
                    .field("cell")
                    .and_then(|c| c.as_u64())
                    .map_err(|e| bad_data(format!("record line without cell index: {e}")))?;
                outcome.lines.push((cell, line));
            }
            Some("planned") => {
                outcome.planned = v
                    .field("cells")
                    .and_then(|c| c.as_u64())
                    .map_err(|e| bad_data(e.to_string()))?;
            }
            Some("done") => {
                let count = |name: &str| v.field(name).and_then(|c| c.as_u64()).unwrap_or(0);
                outcome.simulated = count("simulated");
                outcome.cache_hits = count("cache_hits");
                outcome.dedup_hits = count("dedup_hits");
                return Ok(outcome);
            }
            Some("aborted") => {
                outcome.aborted = true;
                return Ok(outcome);
            }
            Some("error") => {
                let msg = v
                    .field("message")
                    .ok()
                    .and_then(|m| m.as_str().ok().map(str::to_string))
                    .unwrap_or_else(|| "unspecified server error".to_string());
                return Err(bad_data(format!("server rejected request: {msg}")));
            }
            Some(_) => {} // Unknown events are forward-compatible noise.
        }
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "stream ended without a done/aborted event",
    ))
}

/// Connects, submits one sweep, and drains its stream.
///
/// # Errors
///
/// As [`submit_on`], plus connection failures.
pub fn submit(addr: impl ToSocketAddrs, req: &SweepRequest) -> std::io::Result<SubmitOutcome> {
    let mut stream = TcpStream::connect(addr)?;
    submit_on(&mut stream, req)
}

/// Fetches the server's stats counters as the parsed stats event object.
///
/// # Errors
///
/// Returns an I/O error for transport failures or a malformed reply.
pub fn fetch_stats(addr: impl ToSocketAddrs) -> std::io::Result<serde::json::Value> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(b"{\"op\":\"stats\"}\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let (event, v) = classify_line(line.trim_end()).map_err(bad_data)?;
    if event.as_deref() != Some("stats") {
        return Err(bad_data(format!("expected stats event, got: {line}")));
    }
    Ok(v)
}

/// Connects with retries — for CLI use where the server was just spawned
/// and may not be listening yet.
///
/// # Errors
///
/// Returns the final connection error once the attempts are exhausted.
pub fn connect_with_retry(
    addr: &str,
    attempts: u32,
    delay: Duration,
) -> std::io::Result<TcpStream> {
    let mut last = None;
    for i in 0..attempts.max(1) {
        if i > 0 {
            std::thread::sleep(delay);
        }
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt"))
}
