//! Deadline-round-robin scheduling over per-tenant queues.
//!
//! The service funnels many tenants into few simulation workers, so the
//! order in which queued cells reach a worker decides fairness: FIFO
//! would let one tenant's 10k-cell grid starve another's 10-cell probe
//! for its entire duration. [`DeadlineRr`] is a virtual-time fair queue
//! in the shape of the a653rs-router exemplar's `DeadlineRrScheduler`
//! (statically-known tenants, per-queue deadlines, earliest-deadline
//! pick): every tenant carries a *finish tag*; each pop serves the
//! non-empty tenant with the smallest tag and advances that tag by the
//! work taken. Active tenants therefore interleave one cell at a time
//! regardless of queue depth, which bounds any tenant's wait for its
//! `n`-th cell by `n x (active tenants)` service slots.

use std::collections::{HashMap, VecDeque};

/// One tenant's queue and scheduling state.
struct Tenant<T> {
    name: String,
    /// Virtual finish tag: the deadline of this tenant's next service.
    finish: u64,
    queue: VecDeque<T>,
}

/// A deadline-round-robin fair queue over named tenants.
pub struct DeadlineRr<T> {
    tenants: Vec<Tenant<T>>,
    by_name: HashMap<String, usize>,
    /// The deadline of the most recent service: new arrivals may not
    /// claim deadlines in the past (no credit for sleeping).
    virtual_time: u64,
}

impl<T> Default for DeadlineRr<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> DeadlineRr<T> {
    /// An empty scheduler.
    pub fn new() -> Self {
        DeadlineRr { tenants: Vec::new(), by_name: HashMap::new(), virtual_time: 0 }
    }

    /// Total queued items across all tenants.
    pub fn len(&self) -> usize {
        self.tenants.iter().map(|t| t.queue.len()).sum()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.tenants.iter().all(|t| t.queue.is_empty())
    }

    /// Drops every queued item (used on shutdown).
    pub fn clear(&mut self) {
        for t in &mut self.tenants {
            t.queue.clear();
        }
    }

    fn slot(&mut self, tenant: &str) -> usize {
        if let Some(&i) = self.by_name.get(tenant) {
            return i;
        }
        let i = self.tenants.len();
        self.tenants.push(Tenant {
            name: tenant.to_string(),
            finish: self.virtual_time,
            queue: VecDeque::new(),
        });
        self.by_name.insert(tenant.to_string(), i);
        i
    }

    /// Enqueues an item for a tenant. A tenant that went idle re-enters
    /// at the current virtual time: it is served promptly but earns no
    /// back-dated credit for the period it had nothing queued.
    pub fn push(&mut self, tenant: &str, item: T) {
        let vt = self.virtual_time;
        let i = self.slot(tenant);
        let t = &mut self.tenants[i];
        if t.queue.is_empty() {
            t.finish = t.finish.max(vt);
        }
        t.queue.push_back(item);
    }

    /// Index of the non-empty tenant with the earliest deadline (ties
    /// break by tenant arrival order, so the pick is deterministic).
    fn earliest(&self) -> Option<usize> {
        self.tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.queue.is_empty())
            .min_by_key(|(i, t)| (t.finish, *i))
            .map(|(i, _)| i)
    }

    /// Serves one item from the earliest-deadline tenant.
    pub fn pop(&mut self) -> Option<(String, T)> {
        let i = self.earliest()?;
        let t = &mut self.tenants[i];
        let item = t.queue.pop_front().expect("earliest tenant is non-empty");
        t.finish += 1;
        self.virtual_time = t.finish;
        Some((t.name.clone(), item))
    }

    /// Serves up to `max` items that share the head item's batch key,
    /// scanning tenants in deadline order so the batch fills with work
    /// that was due soonest. Items whose key is `None` never batch. Every
    /// tenant is charged one deadline step per item taken, so batching
    /// amortizes simulator state without distorting long-run fairness.
    ///
    /// **Intra-tenant reordering is intentional.** The scan drains
    /// matching items from *anywhere* in a tenant's queue, so a later
    /// same-key cell can overtake an earlier cell with a different key
    /// from the same tenant. Delivery order is not part of the service
    /// contract — every record carries its cell index and clients
    /// reassemble by index (see `SubmitOutcome::jsonl`), while
    /// shape-coherent batches are what let the lockstep kernel advance
    /// many cells per dispatch. Mismatched items keep their relative
    /// order and are never dropped. Pinned by the
    /// `same_tenant_batch_overtakes_earlier_mismatch` test; a refactor
    /// that silently changes this weakens batching, and one that drops
    /// the overtaken items corrupts sweeps.
    pub fn pop_batch(
        &mut self,
        max: usize,
        key: impl Fn(&T) -> Option<String>,
    ) -> Option<Vec<(String, T)>> {
        let (first_tenant, first) = self.pop()?;
        let Some(want) = key(&first) else { return Some(vec![(first_tenant, first)]) };
        let mut out = vec![(first_tenant, first)];
        if max <= 1 {
            return Some(out);
        }
        // Deadline-ordered tenant scan, deterministic like `earliest`.
        let mut order: Vec<usize> = (0..self.tenants.len()).collect();
        order.sort_by_key(|&i| (self.tenants[i].finish, i));
        for i in order {
            if out.len() >= max {
                break;
            }
            let t = &mut self.tenants[i];
            let mut kept = VecDeque::with_capacity(t.queue.len());
            while let Some(item) = t.queue.pop_front() {
                if out.len() < max && key(&item).as_deref() == Some(want.as_str()) {
                    t.finish += 1;
                    self.virtual_time = self.virtual_time.max(t.finish);
                    out.push((t.name.clone(), item));
                } else {
                    kept.push_back(item);
                }
            }
            t.queue = kept;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tenant_is_fifo() {
        let mut s = DeadlineRr::new();
        for i in 0..5 {
            s.push("a", i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, x)| x)).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn active_tenants_interleave_regardless_of_depth() {
        let mut s = DeadlineRr::new();
        for i in 0..100 {
            s.push("big", i);
        }
        for i in 0..10 {
            s.push("small", i);
        }
        // The deadline-RR guarantee: the small tenant's last item is
        // served within 2x its queue depth (+1 for the tie-break round),
        // not after the big tenant's 100-cell tail.
        let mut pops_until_small_done = 0;
        let mut small_served = 0;
        while small_served < 10 {
            let (who, _) = s.pop().expect("work remains");
            pops_until_small_done += 1;
            if who == "small" {
                small_served += 1;
            }
        }
        assert!(
            pops_until_small_done <= 2 * 10 + 1,
            "small tenant waited {pops_until_small_done} pops"
        );
    }

    #[test]
    fn late_joiner_gets_no_backdated_credit() {
        let mut s = DeadlineRr::new();
        for i in 0..50 {
            s.push("a", i);
        }
        // Serve a long prefix, then a second tenant joins.
        for _ in 0..40 {
            s.pop();
        }
        for i in 0..5 {
            s.push("b", i);
        }
        // b interleaves from now on but cannot claim the 40 slots it
        // slept through: a still gets every other slot.
        let mut a_served = 0;
        for _ in 0..10 {
            let (who, _) = s.pop().unwrap();
            if who == "a" {
                a_served += 1;
            }
        }
        assert_eq!(a_served, 5, "a must keep half the slots after b joins");
    }

    #[test]
    fn idle_tenant_reentry_is_prompt() {
        let mut s = DeadlineRr::new();
        for i in 0..100 {
            s.push("big", i);
        }
        for _ in 0..50 {
            s.pop();
        }
        s.push("probe", 0);
        // The probe is served within the next two pops (tie-break may
        // give the incumbent one more slot first).
        let first_two: Vec<String> = (0..2).map(|_| s.pop().unwrap().0).collect();
        assert!(first_two.iter().any(|w| w == "probe"), "{first_two:?}");
    }

    #[test]
    fn batch_grabs_matching_keys_across_tenants() {
        let mut s = DeadlineRr::new();
        s.push("a", ("x", 0));
        s.push("a", ("y", 1));
        s.push("a", ("x", 2));
        s.push("b", ("x", 3));
        let batch = s.pop_batch(8, |&(k, _)| Some(k.to_string())).unwrap();
        let mut vals: Vec<i32> = batch.iter().map(|&(_, (_, v))| v).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 2, 3], "all x-shaped cells batch together");
        // The mismatched item is still queued, in order.
        assert_eq!(s.pop().unwrap().1, ("y", 1));
        assert!(s.is_empty());
    }

    #[test]
    fn same_tenant_batch_overtakes_earlier_mismatch() {
        let mut s = DeadlineRr::new();
        s.push("a", ("x", 0));
        s.push("a", ("y", 1));
        s.push("a", ("x", 2));
        let batch = s.pop_batch(8, |&(k, _)| Some(k.to_string())).unwrap();
        let vals: Vec<i32> = batch.iter().map(|&(_, (_, v))| v).collect();
        // The later x-shaped cell jumps the earlier y-shaped one: batches
        // are shape-coherent, not FIFO within a tenant.
        assert_eq!(vals, vec![0, 2], "same-shape cell overtakes an earlier mismatch");
        // The overtaken cell is neither lost nor reordered among its peers.
        assert_eq!(s.pop().unwrap().1, ("y", 1));
        assert!(s.is_empty());
    }

    #[test]
    fn unbatchable_items_run_alone() {
        let mut s = DeadlineRr::new();
        s.push("a", 1);
        s.push("a", 2);
        let batch = s.pop_batch(8, |_| None).unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn batch_respects_max() {
        let mut s = DeadlineRr::new();
        for i in 0..10 {
            s.push("a", i);
        }
        let batch = s.pop_batch(4, |_| Some("same".to_string())).unwrap();
        assert_eq!(batch.len(), 4);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn batch_charges_fairness() {
        let mut s = DeadlineRr::new();
        for i in 0..8 {
            s.push("a", ("x", i));
        }
        for i in 0..2 {
            s.push("b", ("y", 100 + i));
        }
        // a's 4-cell batch advances its deadline by 4: b gets the next
        // two slots before a resumes.
        let batch = s.pop_batch(4, |&(k, _)| Some(k.to_string())).unwrap();
        assert!(batch.iter().all(|(who, _)| who == "a"));
        assert_eq!(s.pop().unwrap().0, "b");
        assert_eq!(s.pop().unwrap().0, "b");
        assert_eq!(s.pop().unwrap().0, "a");
    }
}
