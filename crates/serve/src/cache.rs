//! The persistent content-addressed result cache.
//!
//! One append-only JSON-lines journal (`cells.jsonl` in the cache
//! directory) is both the durable cache and the crash-resume log: every
//! completed cell is appended *before* its result is fanned out to
//! waiters, so a server killed mid-sweep loses at most the cell currently
//! simulating. On startup the journal is replayed into the in-memory map
//! and every journaled cell is served without re-simulation — across
//! restarts, across tenants, across sweeps.

use serde::json::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use tenoc_core::RunMetrics;
use tenoc_simt::TrafficClass;

/// One cached cell result: everything a record needs beyond the cell's
/// own identity.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct CachedCell {
    /// Traffic class of the cell's benchmark.
    pub class: TrafficClass,
    /// The measured closed-loop metrics.
    pub metrics: RunMetrics,
}

fn class_label(class: TrafficClass) -> &'static str {
    match class {
        TrafficClass::LL => "LL",
        TrafficClass::LH => "LH",
        TrafficClass::HH => "HH",
    }
}

fn class_from_label(s: &str) -> Option<TrafficClass> {
    match s {
        "LL" => Some(TrafficClass::LL),
        "LH" => Some(TrafficClass::LH),
        "HH" => Some(TrafficClass::HH),
        _ => None,
    }
}

/// The on-disk cache: an in-memory map over an append-only journal.
pub struct DiskCache {
    path: PathBuf,
    journal: File,
    map: HashMap<String, CachedCell>,
    /// Journal lines that failed to parse on load (a crash can truncate
    /// the final line; anything else indicates corruption worth seeing).
    pub skipped_lines: usize,
}

impl DiskCache {
    /// The journal file inside a cache directory.
    pub fn journal_path(dir: &Path) -> PathBuf {
        dir.join("cells.jsonl")
    }

    /// Opens (creating if needed) the cache rooted at `dir` and replays
    /// its journal.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the directory or journal
    /// cannot be created or read.
    pub fn open(dir: &Path) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = Self::journal_path(dir);
        let existing = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(e),
        };
        // Only '\n'-terminated lines are records: a crash mid-append
        // leaves a partial tail, and even a tail that happens to parse
        // (crash between the payload and its newline) is treated as the
        // one in-flight cell the durability contract allows losing.
        let boundary = existing.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let (complete, tail) = existing.split_at(boundary);
        let mut map = HashMap::new();
        let mut skipped_lines = 0;
        for line in complete.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match Self::parse_line(line) {
                Some((key, cell)) => {
                    map.insert(key, cell);
                }
                None => skipped_lines += 1,
            }
        }
        // Trim the partial tail before reopening for append: appending
        // after it would glue the next record onto the partial bytes and
        // silently lose that record on the *next* replay.
        if !tail.is_empty() {
            if !tail.trim().is_empty() {
                skipped_lines += 1;
            }
            let trim = OpenOptions::new().write(true).open(&path)?;
            trim.set_len(boundary as u64)?;
        }
        let journal = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(DiskCache { path, journal, map, skipped_lines })
    }

    fn parse_line(line: &str) -> Option<(String, CachedCell)> {
        let v = serde::json::parse(line).ok()?;
        let key = v.field("key").ok()?.as_str().ok()?.to_string();
        let class = class_from_label(v.field("class").ok()?.as_str().ok()?)?;
        let metrics = RunMetrics::from_value(v.field("metrics").ok()?).ok()?;
        Some((key, CachedCell { class, metrics }))
    }

    /// Looks up a cell by content address.
    pub fn get(&self, key: &str) -> Option<&CachedCell> {
        self.map.get(key)
    }

    /// Number of distinct cached cells.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Journals and caches a freshly-simulated cell. The journal line is
    /// flushed before this returns — once a waiter sees the result, a
    /// restart will too.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the append fails; the
    /// in-memory insert happens regardless so the running server stays
    /// correct even on a full disk.
    pub fn put(&mut self, key: &str, cell: CachedCell) -> std::io::Result<()> {
        if self.map.insert(key.to_string(), cell).is_some() {
            // Already journaled (e.g. two workers raced on a non-deduped
            // path); keep the journal free of duplicates.
            return Ok(());
        }
        let line = Value::Object(vec![
            ("key".to_string(), key.to_value()),
            ("class".to_string(), class_label(cell.class).to_value()),
            ("metrics".to_string(), cell.metrics.to_value()),
        ]);
        let mut text = line.to_json_compact();
        text.push('\n');
        self.journal.write_all(text.as_bytes())?;
        self.journal.flush()
    }

    /// The journal's path (for stats and diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics() -> RunMetrics {
        RunMetrics {
            completed: true,
            core_cycles: 1000,
            icnt_cycles: 464,
            scalar_insts: 12345,
            ipc: 12.345,
            avg_net_latency: 20.5,
            mc_injection_rate: 0.25,
            core_injection_rate: 0.05,
            mc_stall_fraction: 0.4,
            dram_efficiency: 0.5,
            l2_read_hit_rate: 0.3,
            accepted_flits_per_node: 0.125,
            core_replays: 7,
            flit_hops: 4096,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "tenoc-serve-cache-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_across_reopen() {
        let dir = tmp_dir("roundtrip");
        let cell = CachedCell { class: TrafficClass::HH, metrics: sample_metrics() };
        {
            let mut cache = DiskCache::open(&dir).unwrap();
            assert!(cache.is_empty());
            cache.put("00aa", cell).unwrap();
            cache.put("00bb", cell).unwrap();
            assert_eq!(cache.len(), 2);
        }
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("00aa"), Some(&cell));
        assert_eq!(cache.skipped_lines, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_puts_do_not_duplicate_journal_lines() {
        let dir = tmp_dir("dupes");
        let cell = CachedCell { class: TrafficClass::LL, metrics: sample_metrics() };
        let mut cache = DiskCache::open(&dir).unwrap();
        cache.put("k", cell).unwrap();
        cache.put("k", cell).unwrap();
        drop(cache);
        let text = std::fs::read_to_string(DiskCache::journal_path(&dir)).unwrap();
        assert_eq!(text.lines().count(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_final_line_is_skipped_not_fatal() {
        let dir = tmp_dir("truncated");
        let cell = CachedCell { class: TrafficClass::LH, metrics: sample_metrics() };
        {
            let mut cache = DiskCache::open(&dir).unwrap();
            cache.put("good", cell).unwrap();
        }
        // Simulate a crash mid-append: a half-written final line.
        {
            let mut f =
                OpenOptions::new().append(true).open(DiskCache::journal_path(&dir)).unwrap();
            f.write_all(b"{\"key\":\"bad\",\"cla").unwrap();
        }
        let cell2 = CachedCell { class: TrafficClass::HH, metrics: sample_metrics() };
        {
            let mut cache = DiskCache::open(&dir).unwrap();
            assert_eq!(cache.len(), 1);
            assert_eq!(cache.skipped_lines, 1);
            assert!(cache.get("good").is_some());
            // The partial line must have been trimmed: a put after reopen
            // starts on a fresh line instead of gluing onto the stub.
            cache.put("after-crash", cell2).unwrap();
        }
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 2, "both cells survive a second replay");
        assert!(cache.get("good").is_some());
        assert!(cache.get("after-crash").is_some());
        assert_eq!(cache.skipped_lines, 0, "the trimmed journal is fully parseable");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_with_no_complete_lines_truncates_to_empty() {
        let dir = tmp_dir("all-partial");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(DiskCache::journal_path(&dir), b"{\"key\":\"never-finis").unwrap();
        let cell = CachedCell { class: TrafficClass::LL, metrics: sample_metrics() };
        {
            let mut cache = DiskCache::open(&dir).unwrap();
            assert_eq!(cache.len(), 0);
            assert_eq!(cache.skipped_lines, 1);
            cache.put("fresh", cell).unwrap();
        }
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.len(), 1);
        assert!(cache.get("fresh").is_some());
        assert_eq!(cache.skipped_lines, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
