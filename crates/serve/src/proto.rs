//! The wire protocol: JSON lines over TCP.
//!
//! A client sends one request object per line; the server answers a
//! `sweep` request with a `planned` event, then one **raw record line per
//! cell** (exactly the bytes `tenoc sweep` would have written for that
//! cell, streamed in completion order), then a `done` event with the
//! request's cache accounting. Control events are objects carrying an
//! `"event"` key; record lines never have one, which is how a stream
//! consumer tells them apart without buffering.
//!
//! ```text
//! -> {"op":"sweep","tenant":"alice","presets":["baseline"],"benchmarks":["HIS"],"scale":0.02,"seed":32268}
//! <- {"event":"planned","cells":1}
//! <- {"cell":0,"preset":"TB-DOR","benchmark":"HIS",...,"fingerprint":"..."}
//! <- {"event":"done","cells":1,"simulated":1,"cache_hits":0,"dedup_hits":0}
//! ```

use serde::json::Value;
use serde::Serialize;
use tenoc_core::Preset;
use tenoc_harness::{tiny_grid, SeedMode, SweepGrid};

/// Default derived-seed base, matching `tenoc sweep`.
pub const DEFAULT_SEED: u64 = 0x7e0c;
/// Default kernel-length scale, matching the golden tiny grid.
pub const DEFAULT_SCALE: f64 = 0.02;

/// A parsed sweep submission.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRequest {
    /// Scheduling identity: requests sharing a tenant share one fair
    /// queue. Defaults to the connection's identity when empty.
    pub tenant: String,
    /// Preset flag names (e.g. `baseline`, `thr-eff`).
    pub presets: Vec<String>,
    /// Benchmark abbreviations (Table I).
    pub benchmarks: Vec<String>,
    /// Kernel-length scale factor.
    pub scale: f64,
    /// Grid seed (per-cell seeds derive from `(seed, index)`).
    pub seed: u64,
    /// Mesh radix.
    pub mesh_k: usize,
    /// Shorthand for the canonical golden tiny grid (overrides the axes).
    pub tiny: bool,
}

impl Default for SweepRequest {
    fn default() -> Self {
        SweepRequest {
            tenant: String::new(),
            presets: Vec::new(),
            benchmarks: Vec::new(),
            scale: DEFAULT_SCALE,
            seed: DEFAULT_SEED,
            mesh_k: 6,
            tiny: false,
        }
    }
}

impl SweepRequest {
    /// The golden tiny-grid request.
    pub fn tiny(tenant: &str) -> Self {
        SweepRequest { tenant: tenant.to_string(), tiny: true, ..Self::default() }
    }

    /// Serializes the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut fields = vec![
            ("op".to_string(), "sweep".to_value()),
            ("tenant".to_string(), self.tenant.to_value()),
        ];
        if self.tiny {
            fields.push(("tiny".to_string(), true.to_value()));
        } else {
            fields.push(("presets".to_string(), self.presets.to_value()));
            fields.push(("benchmarks".to_string(), self.benchmarks.to_value()));
            fields.push(("scale".to_string(), self.scale.to_value()));
            fields.push(("seed".to_string(), self.seed.to_value()));
            fields.push(("mesh_k".to_string(), self.mesh_k.to_value()));
        }
        Value::Object(fields).to_json_compact()
    }

    /// Parses a request from an already-parsed wire object (the caller
    /// has checked `op == "sweep"`). Absent fields take their defaults.
    ///
    /// # Errors
    ///
    /// Returns a message for type mismatches on present fields.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let mut req = SweepRequest::default();
        if let Ok(t) = v.field("tenant") {
            req.tenant = t.as_str().map_err(|e| e.to_string())?.to_string();
        }
        if let Ok(t) = v.field("tiny") {
            req.tiny = matches!(t, Value::Bool(true));
        }
        if let Ok(p) = v.field("presets") {
            req.presets = p
                .as_array()
                .map_err(|e| e.to_string())?
                .iter()
                .map(|x| x.as_str().map(str::to_string).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
        }
        if let Ok(b) = v.field("benchmarks") {
            req.benchmarks = b
                .as_array()
                .map_err(|e| e.to_string())?
                .iter()
                .map(|x| x.as_str().map(str::to_string).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?;
        }
        if let Ok(s) = v.field("scale") {
            req.scale = s.as_f64().map_err(|e| e.to_string())?;
        }
        if let Ok(s) = v.field("seed") {
            req.seed = s.as_u64().map_err(|e| e.to_string())?;
        }
        if let Ok(k) = v.field("mesh_k") {
            req.mesh_k = k.as_u64().map_err(|e| e.to_string())? as usize;
        }
        Ok(req)
    }

    /// Plans the request into the exact grid `tenoc sweep` would run for
    /// the same axes — the planning equivalence the differential test
    /// pins down.
    ///
    /// # Errors
    ///
    /// Returns a message naming any unknown preset or benchmark, or empty
    /// axes.
    pub fn grid(&self) -> Result<SweepGrid, String> {
        if self.tiny {
            return Ok(tiny_grid());
        }
        if self.presets.is_empty() || self.benchmarks.is_empty() {
            return Err("sweep needs at least one preset and one benchmark".into());
        }
        let mut presets = Vec::with_capacity(self.presets.len());
        for name in &self.presets {
            presets.push(Preset::from_flag(name).ok_or_else(|| format!("unknown preset {name}"))?);
        }
        for name in &self.benchmarks {
            if tenoc_workloads::by_name(name).is_none() {
                return Err(format!("unknown benchmark {name}"));
            }
        }
        if self.mesh_k < 2 {
            return Err("mesh_k must be at least 2".into());
        }
        let mut grid = SweepGrid::new(presets, self.benchmarks.clone(), self.scale)
            .with_seed_mode(SeedMode::Derived(self.seed));
        grid.mesh_k = self.mesh_k;
        Ok(grid)
    }
}

/// Builds a control-event line (no trailing newline).
pub fn event_line(event: &str, fields: &[(&str, Value)]) -> String {
    let mut obj = vec![("event".to_string(), event.to_value())];
    obj.extend(fields.iter().map(|(k, v)| (k.to_string(), v.clone())));
    Value::Object(obj).to_json_compact()
}

/// Classifies one received line: a control event (returning its name and
/// the parsed object) or a raw record line (returning the parsed object
/// for field access; the caller keeps the raw bytes).
///
/// # Errors
///
/// Returns a message for unparseable lines.
pub fn classify_line(line: &str) -> Result<(Option<String>, Value), String> {
    let v = serde::json::parse(line).map_err(|e| format!("malformed line: {e}"))?;
    let event = v.field("event").ok().and_then(|e| e.as_str().ok().map(str::to_string));
    Ok((event, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_via_wire_line() {
        let req = SweepRequest {
            tenant: "alice".into(),
            presets: vec!["baseline".into(), "thr-eff".into()],
            benchmarks: vec!["HIS".into(), "RD".into()],
            scale: 0.05,
            seed: 99,
            mesh_k: 6,
            tiny: false,
        };
        let v = serde::json::parse(&req.to_line()).unwrap();
        assert_eq!(v.field("op").unwrap().as_str().unwrap(), "sweep");
        assert_eq!(SweepRequest::from_value(&v).unwrap(), req);
    }

    #[test]
    fn tiny_request_plans_the_golden_grid() {
        let req = SweepRequest::tiny("ci");
        let v = serde::json::parse(&req.to_line()).unwrap();
        let back = SweepRequest::from_value(&v).unwrap();
        assert!(back.tiny);
        assert_eq!(back.grid().unwrap(), tiny_grid());
    }

    #[test]
    fn grid_matches_sweep_cli_construction() {
        let req = SweepRequest {
            tenant: "t".into(),
            presets: vec!["baseline".into(), "cp-cr".into()],
            benchmarks: vec!["HIS".into(), "MM".into()],
            scale: 0.03,
            seed: 7,
            mesh_k: 6,
            tiny: false,
        };
        let grid = req.grid().unwrap();
        let expected = SweepGrid::new(
            vec![Preset::BaselineTbDor, Preset::CpCr4vc],
            vec!["HIS".into(), "MM".into()],
            0.03,
        )
        .with_seed_mode(SeedMode::Derived(7));
        assert_eq!(grid, expected);
    }

    #[test]
    fn bad_requests_are_rejected_with_names() {
        let req = SweepRequest {
            presets: vec!["warp-drive".into()],
            benchmarks: vec!["HIS".into()],
            ..SweepRequest::default()
        };
        assert!(req.grid().unwrap_err().contains("warp-drive"));
        let req = SweepRequest {
            presets: vec!["baseline".into()],
            benchmarks: vec!["NOPE".into()],
            ..SweepRequest::default()
        };
        assert!(req.grid().unwrap_err().contains("NOPE"));
        assert!(SweepRequest::default().grid().is_err());
    }

    #[test]
    fn classify_distinguishes_events_from_records() {
        let (ev, _) = classify_line(r#"{"event":"done","cells":1}"#).unwrap();
        assert_eq!(ev.as_deref(), Some("done"));
        let (ev, v) = classify_line(r#"{"cell":3,"preset":"TB-DOR"}"#).unwrap();
        assert!(ev.is_none());
        assert_eq!(v.field("cell").unwrap().as_u64().unwrap(), 3);
        assert!(classify_line("{oops").is_err());
    }
}
