//! The active-set scheduler must be observationally identical to the
//! unconditional full sweep it replaced: same acceptance decisions, same
//! per-cycle ejection sequence, same statistics — it may only *skip*
//! provably idle routers, never reorder work.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tenoc_noc::{Interconnect, Network, NetworkConfig, Packet, PacketHeader, Tick};

/// One observed ejection: (cycle, node, packet id, tag, created stamp).
type Ejection = (u64, usize, u64, u64, u64);

/// Drives `cycles` cycles of seeded random traffic (plus a drain window)
/// and records every ejection in order, along with how many router steps
/// the run spent.
fn run_trace(
    cfg: NetworkConfig,
    seed: u64,
    cycles: u64,
    rate: f64,
    full_sweep: bool,
) -> (Vec<Ejection>, u64, u64) {
    let n = cfg.mesh.len();
    let mut net = Network::new(cfg);
    net.set_full_sweep(full_sweep);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pending: Vec<(usize, Packet)> = Vec::new();
    let mut trace = Vec::new();
    let mut tag = 0u64;
    loop {
        let now = net.cycle();
        if now < cycles {
            for _ in 0..2 {
                if rng.gen_bool(rate) {
                    let src = rng.gen_range(0..n);
                    let dst = (src + rng.gen_range(1..n)) % n;
                    let p = if rng.gen_bool(0.5) {
                        Packet::request(src, dst, 8, tag)
                    } else {
                        Packet::reply(src, dst, 64, tag)
                    };
                    tag += 1;
                    pending.push((src, p));
                }
            }
        }
        pending.retain(|&(src, p)| net.try_inject(src, p).is_err());
        net.tick();
        for node in 0..n {
            while let Some(e) = net.pop(node) {
                trace.push((net.cycle(), node, e.header.id, e.header.tag, e.header.created));
            }
        }
        if net.cycle() >= cycles && pending.is_empty() && net.in_flight() == 0 {
            break;
        }
        assert!(net.cycle() < cycles + 10_000, "network failed to drain");
    }
    (trace, net.stats().cycles, net.routers_stepped())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    // Random uniform traffic on a DOR mesh ejects the exact same packets
    // at the exact same cycles whether idle routers are skipped or not,
    // and the scheduler never steps more routers than the full sweep.
    #[test]
    fn active_set_matches_full_sweep(
        k in prop::sample::select(vec![4usize, 6]),
        seed in any::<u64>(),
        rate in 0.05f64..0.6,
    ) {
        let sched = run_trace(NetworkConfig::baseline_mesh(k), seed, 120, rate, false);
        let sweep = run_trace(NetworkConfig::baseline_mesh(k), seed, 120, rate, true);
        prop_assert_eq!(&sched.0, &sweep.0);
        prop_assert!(!sched.0.is_empty(), "trace should carry traffic");
        prop_assert_eq!(sched.1, sweep.1);
        prop_assert!(sched.2 <= sweep.2);
    }
}

// The paper's MC-bound traffic on the checkerboard network (half routers,
// class-split VCs) is also trace-identical across scheduling modes.
#[test]
fn checkerboard_mc_traffic_matches_full_sweep() {
    let run = |full_sweep: bool| {
        let cfg = NetworkConfig::checkerboard_mesh(6);
        let mcs = cfg.mc_nodes.clone();
        let n = cfg.mesh.len();
        let mut net = Network::new(cfg);
        net.set_full_sweep(full_sweep);
        let mut trace = Vec::new();
        let mut pending: Vec<(usize, Packet)> = Vec::new();
        for tag in 0..40u64 {
            let core = ((tag as usize) * 7 + 1) % n;
            if !mcs.contains(&core) {
                let mc = mcs[(tag as usize) % mcs.len()];
                pending.push((core, Packet::request(core, mc, 8, tag)));
                pending.push((mc, Packet::reply(mc, core, 64, tag)));
            }
        }
        loop {
            pending.retain(|&(src, p)| net.try_inject(src, p).is_err());
            net.tick();
            for node in 0..n {
                while let Some(e) = net.pop(node) {
                    trace.push((net.cycle(), node, e.header.id, e.header.tag));
                }
            }
            if pending.is_empty() && net.in_flight() == 0 {
                return (trace, net.routers_stepped());
            }
            assert!(net.cycle() < 10_000, "network failed to drain");
        }
    };
    let (sched, sched_steps) = run(false);
    let (sweep, sweep_steps) = run(true);
    assert_eq!(sched, sweep);
    assert!(!sched.is_empty());
    assert!(sched_steps <= sweep_steps);
}

// A drained network's tick touches zero routers: the first tick retires
// the initially-active set, and every tick after that steps nothing.
#[test]
fn drained_network_ticks_zero_routers() {
    let mut net = Network::new(NetworkConfig::baseline_mesh(6));
    net.tick();
    assert_eq!(net.active_routers(), 0);
    let stepped = net.routers_stepped();
    for _ in 0..100 {
        net.tick();
    }
    assert_eq!(net.routers_stepped(), stepped);
    assert_eq!(net.cycle(), 101);
}

// After real traffic fully drains, every router retires again.
#[test]
fn active_set_empties_once_traffic_drains() {
    let mut net = Network::new(NetworkConfig::baseline_mesh(4));
    net.try_inject(0, Packet::request(0, 15, 8, 1)).unwrap();
    net.try_inject(5, Packet::reply(5, 10, 64, 2)).unwrap();
    let mut got = 0;
    while got < 2 {
        net.tick();
        got += usize::from(net.pop(15).is_some()) + usize::from(net.pop(10).is_some());
        assert!(net.cycle() < 1_000);
    }
    while net.active_routers() > 0 {
        net.tick();
        assert!(net.cycle() < 1_100, "active set failed to drain");
    }
    let stepped = net.routers_stepped();
    net.tick_n(50);
    assert_eq!(net.routers_stepped(), stepped);
}

// Regression for the `created == 0` sentinel bug: a packet genuinely
// created at cycle 0 that waits in a source queue must keep its stamp, so
// total latency includes the queueing delay. Only `CREATED_UNSET` packets
// are stamped at injection time.
#[test]
fn packet_created_at_cycle_zero_is_not_restamped() {
    let mut net = Network::new(NetworkConfig::baseline_mesh(4));
    net.tick_n(5);

    let mut queued = Packet::request(0, 5, 8, 7);
    assert_eq!(queued.header.created, PacketHeader::CREATED_UNSET);
    queued.header.created = 0;
    net.try_inject(0, queued).unwrap();

    let fresh_at = net.cycle();
    let fresh = Packet::request(1, 5, 8, 8);
    net.try_inject(1, fresh).unwrap();

    let mut seen = Vec::new();
    while seen.len() < 2 {
        net.tick();
        while let Some(e) = net.pop(5) {
            seen.push(e);
        }
        assert!(net.cycle() < 1_000);
    }
    let queued_out = seen.iter().find(|e| e.header.tag == 7).unwrap();
    let fresh_out = seen.iter().find(|e| e.header.tag == 8).unwrap();
    assert_eq!(queued_out.header.created, 0);
    assert!(queued_out.total_latency() >= 5 + queued_out.network_latency());
    assert_eq!(fresh_out.header.created, fresh_at);
}
