//! Deadlock-freedom stress tests: saturate the network with adversarial
//! bidirectional traffic and tiny buffers, then require complete drainage.
//! A routing- or protocol-deadlock would leave flits stuck in flight.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tenoc_noc::{
    DoubleNetwork, Interconnect, Network, NetworkConfig, Packet, RoutingKind, VcLayout,
};

/// Drives `packets` random request/reply pairs through `net` and asserts
/// every packet drains.
fn stress(mut net: impl Interconnect, cfg: &NetworkConfig, packets: usize, seed: u64) {
    let mcs = cfg.mc_nodes.clone();
    let cores: Vec<usize> = (0..cfg.mesh.len()).filter(|n| !mcs.contains(n)).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pending: Vec<Packet> = (0..packets)
        .map(|i| {
            let core = cores[rng.gen_range(0..cores.len())];
            let mc = mcs[rng.gen_range(0..mcs.len())];
            if rng.gen_bool(0.4) {
                // Requests: mix of reads and large writes.
                let bytes = if rng.gen_bool(0.7) { 8 } else { 64 };
                Packet::request(core, mc, bytes, i as u64)
            } else {
                Packet::reply(mc, core, 64, i as u64)
            }
        })
        .collect();
    let mut delivered = 0usize;
    let mut last_progress = 0u64;
    let mut cycle = 0u64;
    while delivered < packets {
        pending.retain(|&p| net.try_inject(p.header.src, p).is_err());
        net.step();
        cycle += 1;
        for node in 0..cfg.mesh.len() {
            while net.pop(node).is_some() {
                delivered += 1;
                last_progress = cycle;
            }
        }
        assert!(
            cycle - last_progress < 50_000,
            "no progress for 50k cycles at {delivered}/{packets} delivered — deadlock"
        );
        assert!(cycle < 2_000_000, "runaway stress test");
    }
    assert_eq!(net.in_flight(), 0);
}

/// Checkerboard routing with minimal buffering must stay deadlock-free:
/// phase-disjoint VCs with the one-way YX -> XY order break all cycles.
#[test]
fn checkerboard_tiny_buffers_no_deadlock() {
    let mut cfg = NetworkConfig::checkerboard_mesh(6);
    cfg.vc_depth = 2; // minimal double-buffering
    stress(Network::new(cfg.clone()), &cfg, 800, 11);
}

#[test]
fn dor_tiny_buffers_no_deadlock() {
    let mut cfg = NetworkConfig::baseline_mesh(6);
    cfg.vc_depth = 2;
    stress(Network::new(cfg.clone()), &cfg, 800, 22);
}

#[test]
fn double_network_heavy_load_no_deadlock() {
    let cfg = NetworkConfig::checkerboard_mesh(6);
    let dn = DoubleNetwork::from_single(&cfg);
    stress(dn, &cfg, 1200, 33);
}

#[test]
fn o1turn_no_deadlock_on_full_mesh() {
    let mut cfg = NetworkConfig::baseline_mesh(6);
    cfg.routing = RoutingKind::O1Turn;
    cfg.vcs = VcLayout::new(4, 2, true);
    cfg.vc_depth = 2;
    stress(Network::new(cfg.clone()), &cfg, 800, 44);
}

#[test]
fn romm_no_deadlock_on_full_mesh() {
    let mut cfg = NetworkConfig::baseline_mesh(6);
    cfg.routing = RoutingKind::Romm;
    cfg.vcs = VcLayout::new(4, 2, true);
    stress(Network::new(cfg.clone()), &cfg, 800, 55);
}

/// Multi-port MC routers under the same stress.
#[test]
fn multiport_no_deadlock() {
    let mut cfg = NetworkConfig::checkerboard_mesh(6);
    cfg.mc_inject_ports = 2;
    cfg.mc_eject_ports = 2;
    stress(Network::new(cfg.clone()), &cfg, 1000, 66);
}

#[test]
fn output_first_allocator_no_deadlock() {
    let mut cfg = NetworkConfig::checkerboard_mesh(6);
    cfg.allocator = tenoc_noc::config::AllocatorKind::OutputFirst;
    cfg.vc_depth = 2;
    stress(Network::new(cfg.clone()), &cfg, 800, 88);
}

/// Aggressive single-cycle routers under stress.
#[test]
fn one_cycle_routers_no_deadlock() {
    let mut cfg = NetworkConfig::baseline_mesh(6);
    cfg.router_stages = 1;
    cfg.vc_depth = 2;
    stress(Network::new(cfg.clone()), &cfg, 800, 77);
}
