//! Property-based tests of the NoC: routing legality/minimality, and
//! end-to-end delivery with payload integrity under random traffic.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use tenoc_noc::routing::{plan_injection, plan_options, trace_path};
use tenoc_noc::{
    Coord, Interconnect, Mesh, Network, NetworkConfig, Packet, PacketClass, Phase, RoutingKind,
    VcLayout,
};

// Checkerboard routes between all legal endpoint pairs are minimal and
// never turn at a half-router, for several mesh sizes and RNG seeds.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn checkerboard_routes_minimal_and_legal(
        k in prop::sample::select(vec![4usize, 6, 8, 10]),
        seed in any::<u64>(),
        src_i in 0usize..100,
        dst_i in 0usize..100,
    ) {
        let mesh = Mesh::checkerboard(k);
        let layout = VcLayout::new(4, 2, true);
        let src = src_i % mesh.len();
        let dst = dst_i % mesh.len();
        prop_assume!(src != dst);
        let mut rng = SmallRng::seed_from_u64(seed);
        let plan = plan_injection(RoutingKind::Checkerboard, &mesh, src, dst, &mut rng);
        if plan.is_err() {
            // Only full-to-full odd-parity pairs may be unroutable.
            prop_assert!(!mesh.is_half(src) && !mesh.is_half(dst));
            let s = mesh.coord(src);
            let d = mesh.coord(dst);
            prop_assert_eq!((s.x + s.y) % 2, 0);
            prop_assert_eq!((d.x + d.y) % 2, 0);
            return Ok(());
        }
        let path = trace_path(
            RoutingKind::Checkerboard,
            &layout,
            &mesh,
            src,
            dst,
            PacketClass::Request,
            &mut rng,
        )
        .unwrap();
        // Reaches the destination with minimal hops.
        prop_assert_eq!(*path.last().unwrap(), dst);
        prop_assert_eq!(
            path.len() as u32 - 1,
            mesh.coord(src).manhattan(mesh.coord(dst))
        );
        // Never turns at a half-router.
        for w in path.windows(3) {
            let (a, b, c) = (mesh.coord(w[0]), mesh.coord(w[1]), mesh.coord(w[2]));
            let turns = (a.y == b.y) != (b.y == c.y);
            if turns {
                prop_assert!(!mesh.is_half(w[1]), "turn at half router {:?}", b);
            }
        }
    }
}

// DOR XY routes are minimal for any pair on any full mesh.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn dor_routes_are_minimal(
        k in prop::sample::select(vec![3usize, 5, 7]),
        src_i in 0usize..60,
        dst_i in 0usize..60,
    ) {
        let mesh = Mesh::all_full(k);
        let layout = VcLayout::new(2, 2, false);
        let src = src_i % mesh.len();
        let dst = dst_i % mesh.len();
        let mut rng = SmallRng::seed_from_u64(1);
        for kind in [RoutingKind::DorXy, RoutingKind::DorYx] {
            let path =
                trace_path(kind, &layout, &mesh, src, dst, PacketClass::Reply, &mut rng).unwrap();
            prop_assert_eq!(*path.last().unwrap(), dst);
            prop_assert_eq!(path.len() as u32 - 1, mesh.coord(src).manhattan(mesh.coord(dst)));
        }
    }
}

// Every packet injected into a real network is eventually delivered
// exactly once, with its tag intact, and the network drains completely.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn random_traffic_is_delivered_exactly_once(
        seed in any::<u64>(),
        n_packets in 1usize..40,
        checkerboard in any::<bool>(),
    ) {
        let cfg = if checkerboard {
            NetworkConfig::checkerboard_mesh(6)
        } else {
            NetworkConfig::baseline_mesh(6)
        };
        let mcs = cfg.mc_nodes.clone();
        let cores: Vec<usize> = (0..cfg.mesh.len()).filter(|n| !mcs.contains(n)).collect();
        let mut net = Network::new(cfg);
        let mut rng = SmallRng::seed_from_u64(seed);

        use rand::Rng;
        // Generate random core->MC requests and MC->core replies.
        let mut pending: Vec<Packet> = (0..n_packets)
            .map(|i| {
                if rng.gen_bool(0.5) {
                    let src = cores[rng.gen_range(0..cores.len())];
                    let dst = mcs[rng.gen_range(0..mcs.len())];
                    Packet::request(src, dst, if rng.gen_bool(0.8) { 8 } else { 64 }, i as u64)
                } else {
                    let src = mcs[rng.gen_range(0..mcs.len())];
                    let dst = cores[rng.gen_range(0..cores.len())];
                    Packet::reply(src, dst, 64, i as u64)
                }
            })
            .collect();

        let mut got = std::collections::HashMap::new();
        for _ in 0..20_000 {
            pending.retain(|&p| net.try_inject(p.header.src, p).is_err());
            net.step();
            for node in 0..36 {
                while let Some(out) = net.pop(node) {
                    prop_assert_eq!(out.header.dst, node);
                    *got.entry(out.header.tag).or_insert(0u32) += 1;
                }
            }
            if pending.is_empty() && net.in_flight() == 0 {
                break;
            }
        }
        prop_assert!(pending.is_empty(), "all packets must inject");
        prop_assert_eq!(net.in_flight(), 0, "network must drain");
        prop_assert_eq!(got.len(), n_packets, "each tag delivered");
        prop_assert!(got.values().all(|&c| c == 1), "no duplicates");
    }
}

// Flit conservation: flits injected equal flits ejected after draining.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn flit_conservation(seed in any::<u64>()) {
        let cfg = NetworkConfig::checkerboard_mesh(6);
        let mcs = cfg.mc_nodes.clone();
        let cores: Vec<usize> = (0..36).filter(|n| !mcs.contains(n)).collect();
        let mut net = Network::new(cfg);
        use rand::Rng;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut pending: Vec<Packet> = (0..30)
            .map(|i| {
                let src = cores[rng.gen_range(0..cores.len())];
                let dst = mcs[rng.gen_range(0..mcs.len())];
                Packet::request(src, dst, 64, i)
            })
            .collect();
        for _ in 0..20_000 {
            pending.retain(|&p| net.try_inject(p.header.src, p).is_err());
            net.step();
            for node in 0..36 {
                while net.pop(node).is_some() {}
            }
            if pending.is_empty() && net.in_flight() == 0 {
                break;
            }
        }
        let s = net.stats();
        let injected: u64 = s.injected_flits_by_node.iter().sum();
        let ejected: u64 = s.ejected_flits_by_node.iter().sum();
        prop_assert_eq!(injected, ejected);
        prop_assert_eq!(net.in_flight(), 0);
    }
}

// The case-2 intermediate of checkerboard routing is always a
// full-router inside the minimal quadrant, off the source row.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn case2_intermediate_invariants(seed in any::<u64>(), si in 0usize..36, di in 0usize..36) {
        let mesh = Mesh::checkerboard(6);
        prop_assume!(si != di);
        let mut rng = SmallRng::seed_from_u64(seed);
        if let Ok((_, Some(via))) =
            plan_injection(RoutingKind::Checkerboard, &mesh, si, di, &mut rng)
        {
            let s = mesh.coord(si);
            let d = mesh.coord(di);
            let v = mesh.coord(via);
            prop_assert!(!mesh.is_half(via));
            prop_assert!(v.x >= s.x.min(d.x) && v.x <= s.x.max(d.x));
            prop_assert!(v.y >= s.y.min(d.y) && v.y <= s.y.max(d.y));
            prop_assert_ne!(v.y, s.y);
        }
    }
}

// VC layouts partition without overlap for every (class, phase).
proptest! {
    #[test]
    fn vc_layout_partitions(total in prop::sample::select(vec![4u8, 8, 12]), split in any::<bool>()) {
        use tenoc_noc::{PacketClass, Phase};
        let layout = VcLayout::new(total, 2, split);
        let mut seen = vec![0u32; total as usize];
        for class in PacketClass::ALL {
            for phase in [Phase::Xy, Phase::Yx] {
                let set = layout.set_for(class, phase);
                for vc in set.iter() {
                    prop_assert!(vc < total);
                    seen[vc as usize] += 1;
                }
            }
        }
        // Every VC belongs to exactly one class (counted twice when phases
        // are not split because both phases map to the full class set).
        let expected = if split { 1 } else { 2 };
        prop_assert!(seen.iter().all(|&c| c == expected));
    }
}

// Checkerboard planning fails *exactly* for full-to-full pairs that share
// neither row nor column and whose XY turn node (d.x, s.y) has odd parity
// (for full endpoints the YX turn node's parity then matches, so every
// minimal turn would land on a half-router). Both directions of the iff,
// for random mesh sizes including odd radices.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn checkerboard_unroutable_iff_full_full_odd_parity(
        k in prop::sample::select(vec![4usize, 5, 6, 8, 9, 10]),
        seed in any::<u64>(),
        src_i in 0usize..100,
        dst_i in 0usize..100,
    ) {
        let mesh = Mesh::checkerboard(k);
        let src = src_i % mesh.len();
        let dst = dst_i % mesh.len();
        prop_assume!(src != dst);
        let s = mesh.coord(src);
        let d = mesh.coord(dst);
        let expect_unroutable = !mesh.is_half(src)
            && !mesh.is_half(dst)
            && s.y != d.y
            && s.x != d.x
            && (d.x + s.y) % 2 == 1;
        let mut rng = SmallRng::seed_from_u64(seed);
        let plan = plan_injection(RoutingKind::Checkerboard, &mesh, src, dst, &mut rng);
        prop_assert_eq!(
            plan.is_err(),
            expect_unroutable,
            "k={} {:?} -> {:?}: plan={:?}",
            k,
            s,
            d,
            plan
        );
    }
}

// Every case-2 plan (not just the sampled one) uses an intermediate that
// is a full-router outside the source row, inside the minimal quadrant,
// reached in the YX phase — for random mesh sizes.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn case2_intermediates_full_routers_off_source_row(
        k in prop::sample::select(vec![4usize, 6, 8, 10]),
        src_i in 0usize..100,
        dst_i in 0usize..100,
    ) {
        let mesh = Mesh::checkerboard(k);
        let src = src_i % mesh.len();
        let dst = dst_i % mesh.len();
        prop_assume!(src != dst);
        if let Ok(options) = plan_options(RoutingKind::Checkerboard, &mesh, src, dst) {
            let s = mesh.coord(src);
            let d = mesh.coord(dst);
            for (phase, via) in options {
                let Some(via) = via else { continue };
                prop_assert_eq!(phase, Phase::Yx, "case 2 starts in the YX phase");
                prop_assert!(!mesh.is_half(via), "intermediate must be a full-router");
                let v = mesh.coord(via);
                prop_assert_ne!(v.y, s.y, "intermediate off the source row");
                prop_assert!(v.x >= s.x.min(d.x) && v.x <= s.x.max(d.x), "minimal quadrant");
                prop_assert!(v.y >= s.y.min(d.y) && v.y <= s.y.max(d.y), "minimal quadrant");
            }
        }
    }
}

// Credit-based flow control over one InputVc: replaying a random
// send/drain schedule against the upstream credit counter, the credit
// count always mirrors free_slots, never exceeds capacity, and every
// flit sent is eventually received in order (no loss, no reorder).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn credits_conserved_and_no_flit_loss(
        capacity in 1usize..=16,
        ops in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        use tenoc_noc::buffer::InputVc;
        use tenoc_noc::{Flit, Packet, PacketClass};

        let mut vc = InputVc::new(capacity);
        // Upstream's view of downstream space: starts at full capacity and
        // moves only on send (-1) and credit return, i.e. pop (+1).
        let mut credits = capacity;
        let mut sent: u16 = 0;
        let mut received: u16 = 0;
        for (cycle, send) in ops.iter().enumerate() {
            if *send {
                // Upstream may only send while it holds a credit; this is
                // exactly the condition that makes `push` panic-free.
                if credits > 0 {
                    let mut p = Packet::new(PacketClass::Request, 0, 1, 64, u64::from(sent));
                    p.header.flits = 1;
                    vc.push(Flit { hdr: p.header, seq: sent }, cycle as u64);
                    credits -= 1;
                    sent += 1;
                }
            } else if let Some((flit, _)) = vc.pop() {
                prop_assert_eq!(flit.seq, received, "flits must leave in arrival order");
                received += 1;
                credits += 1;
            }
            prop_assert!(credits <= capacity, "credits may never exceed capacity");
            prop_assert_eq!(credits, vc.free_slots(), "credit count must track free slots");
            prop_assert_eq!(
                usize::from(sent - received),
                vc.len(),
                "every in-flight flit is buffered: no loss, no duplication"
            );
        }
        // Drain: everything sent is received, and all credits come home.
        while let Some((flit, _)) = vc.pop() {
            prop_assert_eq!(flit.seq, received);
            received += 1;
            credits += 1;
        }
        prop_assert_eq!(sent, received, "no flit may be lost");
        prop_assert_eq!(credits, capacity, "all credits return once the VC drains");
        prop_assert!(vc.is_empty());
    }
}

// Round-robin fairness: with any static set of persistent requesters,
// every requester is granted within `n` consecutive rounds, from any
// starting pointer position.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn round_robin_grants_everyone_within_n_rounds(
        mask in prop::collection::vec(any::<bool>(), 1..9),
        warmup in 0usize..20,
    ) {
        use tenoc_noc::arbiter::RoundRobin;

        prop_assume!(mask.iter().any(|&r| r));
        let n = mask.len();
        let mut arb = RoundRobin::new(n);
        // Put the priority pointer in an arbitrary state.
        for _ in 0..warmup {
            arb.pick(|_| true);
        }
        let req = |i: usize| mask[i];
        let winners: Vec<usize> = (0..n).map(|_| arb.pick(req).unwrap()).collect();
        for (i, &wants) in mask.iter().enumerate() {
            if wants {
                prop_assert!(
                    winners.contains(&i),
                    "requester {i} starved over {n} rounds (winners: {winners:?})"
                );
            } else {
                prop_assert!(!winners.contains(&i), "non-requester {i} must never be granted");
            }
        }
        // Strict rotation: between two grants to the same requester, every
        // other persistent requester is granted exactly once.
        let active = mask.iter().filter(|&&r| r).count();
        for w in winners.windows(active) {
            let mut sorted = w.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), active, "each cycle of grants covers all requesters");
        }
    }
}

// Torus neighbor symmetry: stepping in direction d and then back in
// d.opposite() returns to the start from *every* node — including across
// the wraparound links, where the mesh would have fallen off the edge.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn torus_neighbor_is_symmetric_across_wraparound(
        k in prop::sample::select(vec![2usize, 3, 4, 6, 8]),
        node_i in 0usize..100,
    ) {
        use tenoc_noc::Direction;
        let torus = Mesh::torus(k);
        let node = node_i % torus.len();
        for d in [Direction::North, Direction::East, Direction::South, Direction::West] {
            let n = torus.neighbor(node, d);
            prop_assert!(n.is_some(), "every torus node has all four neighbors");
            let back = torus.neighbor(n.unwrap(), d.opposite());
            prop_assert_eq!(back, Some(node), "step {d:?} then back must return home");
        }
    }
}

// coord/node round-trip on every fabric: node(coord(n)) == n and
// coord(node(c)) == c for all in-range values.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn coord_node_round_trip(
        k in prop::sample::select(vec![2usize, 3, 4, 6, 8]),
        node_i in 0usize..100,
    ) {
        for mesh in [Mesh::all_full(k), Mesh::torus(k), Mesh::cmesh(k, 2)] {
            let node = node_i % mesh.len();
            prop_assert_eq!(mesh.node(mesh.coord(node)), node);
            let c = Coord::new((node % k) as u16, (node / k) as u16);
            prop_assert_eq!(mesh.coord(mesh.node(c)), c);
        }
    }
}

// Torus DOR routes are minimal under the *wrap-aware* metric: hop count
// equals the per-dimension min(d, k - d) distance, which is at most the
// mesh's Manhattan distance and strictly smaller whenever a wrap helps.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn torus_routes_match_wrap_aware_distance(
        k in prop::sample::select(vec![3usize, 4, 5, 6, 8]),
        src_i in 0usize..100,
        dst_i in 0usize..100,
    ) {
        let torus = Mesh::torus(k);
        let layout = VcLayout::new(4, 2, false).with_dateline();
        let src = src_i % torus.len();
        let dst = dst_i % torus.len();
        let mut rng = SmallRng::seed_from_u64(7);
        let path =
            trace_path(RoutingKind::DorXy, &layout, &torus, src, dst, PacketClass::Request, &mut rng)
                .unwrap();
        prop_assert_eq!(*path.last().unwrap(), dst);
        prop_assert_eq!(path.len() as u32 - 1, torus.distance(src, dst));
        let s = torus.coord(src);
        let d = torus.coord(dst);
        let wrap_aware = |a: u16, b: u16| {
            let delta = a.abs_diff(b) as usize;
            delta.min(k - delta) as u32
        };
        prop_assert_eq!(torus.distance(src, dst), wrap_aware(s.x, d.x) + wrap_aware(s.y, d.y));
        prop_assert!(torus.distance(src, dst) <= s.manhattan(d));
    }
}

// C-mesh terminal mapping is a bijection: every terminal maps to exactly
// one (router, local port) slot and every slot hosts exactly one terminal.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn cmesh_terminal_router_mapping_is_a_bijection(
        k in prop::sample::select(vec![2usize, 3, 4, 6]),
        conc in prop::sample::select(vec![2u8, 3, 4]),
    ) {
        let cmesh = Mesh::cmesh(k, conc);
        prop_assert_eq!(cmesh.terminals(), cmesh.len() * conc as usize);
        let mut seen = std::collections::HashSet::new();
        for t in 0..cmesh.terminals() {
            let slot = (cmesh.terminal_router(t), cmesh.terminal_port(t));
            prop_assert!(slot.0 < cmesh.len());
            prop_assert!(slot.1 < conc as usize);
            prop_assert!(seen.insert(slot), "terminal {t} collides on slot {slot:?}");
        }
        prop_assert_eq!(seen.len(), cmesh.terminals(), "every slot hosts one terminal");
    }
}

// Hand-check a known unroutable pair to pin the error contract.
#[test]
fn known_unroutable_pair() {
    let mesh = Mesh::checkerboard(6);
    let src = mesh.node(Coord::new(0, 0));
    let dst = mesh.node(Coord::new(3, 0));
    // Same row: always routable even between full routers.
    let mut rng = SmallRng::seed_from_u64(0);
    assert!(plan_injection(RoutingKind::Checkerboard, &mesh, src, dst, &mut rng).is_ok());
}
