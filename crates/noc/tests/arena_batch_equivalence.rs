//! The batched arena engine must be observationally identical to the
//! per-cell oracle on *every* supported configuration, not just the
//! presets the experiments use: random legal configs, random seeds,
//! random batch widths. Each batch cell is compared against a solo
//! oracle [`Network`] fed the exact same traffic — same ejection
//! sequence, same cycle count, same [`NetStats`].

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tenoc_noc::{
    AllocatorKind, ArenaNetwork, Interconnect, NetBatch, NetStats, Network, NetworkConfig, Packet,
    Tick,
};

/// One observed ejection: (cycle, node, packet id, tag).
type Ejection = (u64, usize, u64, u64);

/// A random legal configuration the arena engine supports. Covers both
/// mesh families (full-router DOR and checkerboard half-router), both
/// allocator organizations, multi-port MC routers, and the depth /
/// pipeline ranges the paper's design space sweeps.
fn legal_cfg() -> impl Strategy<Value = NetworkConfig> {
    (
        prop::sample::select(vec![4usize, 6]),
        any::<bool>(),
        prop::sample::select(vec![2usize, 4, 8]),
        prop::sample::select(vec![1u32, 4]),
        prop::sample::select(vec![AllocatorKind::InputFirst, AllocatorKind::OutputFirst]),
        prop::sample::select(vec![1usize, 2]),
        prop::sample::select(vec![1usize, 2]),
        any::<u64>(),
    )
        .prop_map(|(k, checker, depth, stages, alloc, mc_inj, mc_ej, seed)| {
            let mut cfg = if checker {
                NetworkConfig::checkerboard_mesh(k)
            } else {
                NetworkConfig::baseline_mesh(k)
            };
            cfg.vc_depth = depth;
            cfg.router_stages = stages;
            cfg.allocator = alloc;
            cfg.mc_inject_ports = mc_inj;
            cfg.mc_eject_ports = mc_ej;
            cfg.seed = seed;
            cfg
        })
}

/// Deterministic many-to-few traffic for cell `cell`: core→MC requests
/// and MC→core replies (legal under every routing kind, including
/// checkerboard's placement restrictions). Returns this cycle's
/// injection attempts.
fn offered(
    cfg: &NetworkConfig,
    cell: usize,
    rng: &mut SmallRng,
    tag: &mut u64,
) -> Vec<(usize, Packet)> {
    let cores: Vec<usize> = (0..cfg.mesh.len()).filter(|n| !cfg.mc_nodes.contains(n)).collect();
    let mut out = Vec::new();
    for _ in 0..2 {
        if rng.gen_bool(0.4) {
            let t = *tag | ((cell as u64) << 32);
            *tag += 1;
            let core = cores[rng.gen_range(0..cores.len())];
            let mc = cfg.mc_nodes[rng.gen_range(0..cfg.mc_nodes.len())];
            let p = if rng.gen_bool(0.5) {
                Packet::request(core, mc, 8, t)
            } else {
                Packet::reply(mc, core, 64, t)
            };
            out.push((p.header.src, p));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    // Random legal configs, B ∈ {2, 4, 8}: every cell of the lockstep
    // batch ejects the same packets at the same cycles with the same
    // final statistics as a solo oracle run fed identical traffic.
    #[test]
    fn batched_cells_match_solo_oracles(
        cfg in legal_cfg(),
        b in prop::sample::select(vec![2usize, 4, 8]),
        traffic_seed in any::<u64>(),
    ) {
        prop_assert!(cfg.validate().is_ok() && ArenaNetwork::supports(&cfg));
        let cycles = 100u64;
        let n = cfg.mesh.len();
        // Seed-varied same-shape cells, like the harness batches them.
        let cell_cfg = |i: usize| {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(i as u64);
            c
        };

        let run_oracle = |i: usize| -> (Vec<Ejection>, NetStats) {
            let mut net = Network::new(cell_cfg(i));
            let mut rng = SmallRng::seed_from_u64(traffic_seed ^ i as u64);
            let mut tag = 0u64;
            let mut trace = Vec::new();
            for c in 0..cycles {
                for (src, p) in offered(&cfg, i, &mut rng, &mut tag) {
                    let _ = net.try_inject(src, p);
                }
                net.tick();
                for node in 0..n {
                    while let Some(e) = net.pop(node) {
                        trace.push((c, node, e.header.id, e.header.tag));
                    }
                }
            }
            (trace, net.stats())
        };

        let mut batch = NetBatch::new((0..b).map(|i| ArenaNetwork::new(cell_cfg(i))).collect());
        let mut rngs: Vec<SmallRng> =
            (0..b).map(|i| SmallRng::seed_from_u64(traffic_seed ^ i as u64)).collect();
        let mut tags = vec![0u64; b];
        let mut traces: Vec<Vec<Ejection>> = vec![Vec::new(); b];
        for c in 0..cycles {
            for i in 0..b {
                for (src, p) in offered(&cfg, i, &mut rngs[i], &mut tags[i]) {
                    let _ = batch.cell_mut(i).try_inject(src, p);
                }
            }
            batch.tick();
            for (i, trace) in traces.iter_mut().enumerate() {
                for node in 0..n {
                    while let Some(e) = batch.cell_mut(i).pop(node) {
                        trace.push((c, node, e.header.id, e.header.tag));
                    }
                }
            }
        }

        let mut saw_traffic = false;
        for (i, trace) in traces.iter().enumerate() {
            let (oracle_trace, oracle_stats) = run_oracle(i);
            saw_traffic |= !oracle_trace.is_empty();
            prop_assert_eq!(trace, &oracle_trace, "ejection trace diverged in cell {}", i);
            let cell_stats = batch.cell(i).stats();
            prop_assert_eq!(cell_stats.cycles, cycles, "cell {} cycle count", i);
            prop_assert_eq!(cell_stats, oracle_stats, "NetStats diverged in cell {}", i);
        }
        prop_assert!(saw_traffic, "the random traffic should actually exercise the fabric");
    }
}
