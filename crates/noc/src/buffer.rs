//! Input-side virtual-channel buffers and their allocation state machine.

use crate::packet::Flit;
use crate::routing::VcSet;
use std::collections::VecDeque;

/// Allocation state of one input virtual channel.
///
/// The state refers to the packet whose flit is at the front of the FIFO;
/// multiple packets may be queued back-to-back in one VC buffer, each
/// processed in order.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum VcState {
    /// No packet is currently being routed through this VC.
    Idle,
    /// A head flit is at the front; its route has been computed and it is
    /// waiting for a downstream VC.
    Waiting {
        /// Resolved output port index (0..4 = directions, 4.. = ejection).
        out_port: usize,
        /// Candidate downstream VCs.
        vcs: VcSet,
        /// First cycle at which VC allocation may be attempted (models the
        /// route-computation pipeline stages).
        va_eligible: u64,
    },
    /// Downstream VC allocated; flits may compete for the switch.
    Active {
        /// Resolved output port index.
        out_port: usize,
        /// Allocated VC at the downstream buffer.
        out_vc: u8,
        /// Cycle in which VC allocation was granted. Switch allocation is
        /// gated to strictly later cycles unless the router is
        /// single-cycle.
        va_cycle: u64,
    },
}

/// One input virtual channel: a FIFO of flits (with arrival cycles) plus
/// allocation state.
#[derive(Clone, Debug)]
pub struct InputVc {
    fifo: VecDeque<(Flit, u64)>,
    capacity: usize,
    /// Allocation state of the packet at the front of the FIFO.
    pub state: VcState,
    /// Round-robin cursor over candidate output VCs for VC allocation.
    pub vc_request_cursor: u8,
}

impl InputVc {
    /// Creates an empty VC with buffer space for `capacity` flits.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "VC buffers must hold at least one flit");
        InputVc {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            state: VcState::Idle,
            vc_request_cursor: 0,
        }
    }

    /// Buffered flit count.
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// `true` when no flit is buffered.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Remaining buffer slots.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.fifo.len()
    }

    /// Buffer capacity in flits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues an arriving flit.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full — credit-based flow control must make
    /// that impossible, so an overflow indicates a simulator bug.
    pub fn push(&mut self, flit: Flit, now: u64) {
        assert!(self.fifo.len() < self.capacity, "VC buffer overflow (credit protocol violated)");
        self.fifo.push_back((flit, now));
    }

    /// The flit at the front, with its arrival cycle.
    pub fn front(&self) -> Option<&(Flit, u64)> {
        self.fifo.front()
    }

    /// Mutable access to the front flit (route computation mutates head
    /// flit headers in place, e.g. clearing the checkerboard `via` node).
    pub fn front_mut(&mut self) -> Option<&mut (Flit, u64)> {
        self.fifo.front_mut()
    }

    /// Removes and returns the front flit.
    pub fn pop(&mut self) -> Option<(Flit, u64)> {
        self.fifo.pop_front()
    }
}

/// All virtual channels of one input port.
#[derive(Clone, Debug)]
pub struct InputUnit {
    vcs: Vec<InputVc>,
}

impl InputUnit {
    /// Creates `vcs` virtual channels of `depth` flits each.
    pub fn new(vcs: usize, depth: usize) -> Self {
        InputUnit { vcs: (0..vcs).map(|_| InputVc::new(depth)).collect() }
    }

    /// Number of VCs.
    pub fn num_vcs(&self) -> usize {
        self.vcs.len()
    }

    /// Immutable access to VC `vc`.
    pub fn vc(&self, vc: u8) -> &InputVc {
        &self.vcs[vc as usize]
    }

    /// Mutable access to VC `vc`.
    pub fn vc_mut(&mut self, vc: u8) -> &mut InputVc {
        &mut self.vcs[vc as usize]
    }

    /// Total buffered flits across VCs.
    pub fn occupancy(&self) -> usize {
        self.vcs.iter().map(InputVc::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketClass};

    fn flit(seq: u16) -> Flit {
        let mut p = Packet::new(PacketClass::Request, 0, 1, 64, 0);
        p.header.flits = 4;
        Flit { hdr: p.header, seq }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut vc = InputVc::new(4);
        for s in 0..4 {
            vc.push(flit(s), s as u64);
        }
        assert_eq!(vc.free_slots(), 0);
        for s in 0..4 {
            let (f, at) = vc.pop().unwrap();
            assert_eq!(f.seq, s);
            assert_eq!(at, s as u64);
        }
        assert!(vc.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut vc = InputVc::new(1);
        vc.push(flit(0), 0);
        vc.push(flit(1), 1);
    }

    #[test]
    fn input_unit_occupancy() {
        let mut u = InputUnit::new(2, 8);
        u.vc_mut(0).push(flit(0), 0);
        u.vc_mut(1).push(flit(0), 0);
        u.vc_mut(1).push(flit(1), 0);
        assert_eq!(u.occupancy(), 3);
        assert_eq!(u.vc(0).len(), 1);
        assert_eq!(u.vc(1).len(), 2);
    }

    #[test]
    fn fresh_vc_is_idle() {
        let vc = InputVc::new(8);
        assert_eq!(vc.state, VcState::Idle);
        assert_eq!(vc.free_slots(), 8);
    }
}
