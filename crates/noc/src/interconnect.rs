//! The interface between the compute/memory system and any interconnect
//! implementation (real mesh, double network, or idealized models).

use crate::packet::{EjectedPacket, Packet};
use crate::stats::NetStats;
use crate::telemetry::{TelemetryConfig, TelemetryReport};
use crate::tick::Tick;
use crate::types::NodeId;

/// A network as seen from its terminals.
///
/// Implementations: [`crate::Network`] (single physical mesh),
/// [`crate::DoubleNetwork`] (two channel-sliced meshes),
/// [`crate::PerfectInterconnect`] (zero latency, infinite bandwidth) and
/// [`crate::BandwidthLimitedInterconnect`] (zero latency, capped aggregate
/// bandwidth).
///
/// Cycle advancement comes from the [`Tick`] supertrait: every
/// implementation's clock edge is `Tick::tick`, and [`Interconnect::step`]
/// is a provided alias kept for terminal-side callers.
pub trait Interconnect: Tick {
    /// Offers a packet for injection at `node`.
    ///
    /// # Errors
    ///
    /// Returns the packet back if the node's network interface cannot
    /// accept it this cycle (all injection ports busy). Callers should
    /// retry on a later cycle; the refusal is recorded in the statistics
    /// (this is the MC-stall signal of the paper's Figure 11).
    fn try_inject(&mut self, node: NodeId, packet: Packet) -> Result<(), Packet>;

    /// Removes the next packet ejected at `node`, if any.
    fn pop(&mut self, node: NodeId) -> Option<EjectedPacket>;

    /// Advances the interconnect by one cycle (alias for [`Tick::tick`]).
    fn step(&mut self) {
        self.tick();
    }

    /// Current cycle (number of `step` calls so far).
    fn cycle(&self) -> u64;

    /// Snapshot of aggregate statistics.
    fn stats(&self) -> NetStats;

    /// Total flits currently buffered or in flight (zero when fully
    /// drained).
    fn in_flight(&self) -> usize;

    /// Total link traversals (flit-hops) since construction. Ideal
    /// networks report zero — they have no links.
    fn flit_hops(&self) -> u64 {
        0
    }

    /// Arms the observability layer (latency histograms, link/VC
    /// counters, occupancy sampling, flight recorder). The default is a
    /// no-op: ideal networks have no links or buffers to observe.
    /// Telemetry never changes simulated outcomes — with or without it,
    /// every packet takes the same path at the same cycle.
    fn enable_telemetry(&mut self, _cfg: TelemetryConfig) {}

    /// Appends snapshots of every physical network's telemetry into a
    /// caller-provided buffer: one report for a single mesh, two
    /// (request + reply) for a double network, none for ideal networks
    /// or when telemetry was never enabled. The buffer is *not* cleared,
    /// so callers can reuse one `Vec` across reads without reallocating.
    fn telemetry_reports_into(&self, _out: &mut Vec<TelemetryReport>) {}

    /// Convenience wrapper over [`Interconnect::telemetry_reports_into`]
    /// that allocates a fresh `Vec`. Hot paths should reuse a buffer via
    /// the `_into` form instead.
    fn telemetry_reports(&self) -> Vec<TelemetryReport> {
        let mut out = Vec::new();
        self.telemetry_reports_into(&mut out);
        out
    }

    /// Number of sub-phases one [`Tick::tick`] splits into. Engines that
    /// support phase-interleaved batching (the arena) report their phase
    /// count; monolithic engines report 1.
    fn phase_count(&self) -> usize {
        1
    }

    /// Runs one sub-phase of a cycle. Calling phases `0..phase_count()`
    /// in order is exactly one [`Tick::tick`]; a batch driver interleaves
    /// the same phase across cells (cell-major) for cache density. The
    /// default maps phase 0 to a whole tick so monolithic engines work
    /// under a phase-driving caller unchanged.
    fn tick_phase(&mut self, phase: usize) {
        if phase == 0 {
            self.tick();
        }
    }
}
