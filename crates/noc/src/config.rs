//! Network configuration: channel widths, virtual-channel layout, router
//! pipeline timing and routing selection.

use crate::packet::{PacketClass, Phase};
use crate::routing::VcSet;
use crate::topology::{Fabric, Mesh, Placement};
use crate::types::NodeId;
use serde::json;
use serde::{Deserialize, Serialize};

/// Switch-allocator organization.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// Separable input-first (iSLIP-style, Table III's allocator): each
    /// input port nominates one VC, then each output port picks one
    /// nominating input. Pointers advance on accepted grants.
    InputFirst,
    /// Separable output-first: each output port grants one requesting
    /// input VC, then each input accepts one of its grants.
    OutputFirst,
}

/// Routing algorithm selection.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RoutingKind {
    /// Dimension-ordered routing, X first.
    DorXy,
    /// Dimension-ordered routing, Y first.
    DorYx,
    /// Checkerboard routing (paper Section IV-B): per-packet XY or YX
    /// selection that respects half-router turn restrictions, with a
    /// random intermediate full-router for half-to-half case-2 routes.
    Checkerboard,
    /// O1Turn (Seo et al., ISCA 2005): each packet picks XY or YX
    /// uniformly at random, achieving near-optimal worst-case throughput
    /// on full-router meshes. Requires phase-split VCs.
    O1Turn,
    /// Two-phase ROMM (Nesson & Johnsson, SPAA 1995): route YX to a
    /// uniformly random intermediate node in the minimal quadrant, then
    /// XY to the destination. Full-router meshes only; requires
    /// phase-split VCs. Checkerboard routing is the half-router-aware
    /// restriction of this scheme.
    Romm,
}

impl RoutingKind {
    /// `true` if this algorithm requires the virtual channels of each
    /// protocol class to be split into XY/YX phase subsets (like O1Turn).
    pub fn needs_phase_split(self) -> bool {
        matches!(self, RoutingKind::Checkerboard | RoutingKind::O1Turn | RoutingKind::Romm)
    }
}

/// How the virtual channels of one physical network are partitioned among
/// protocol classes and routing phases.
///
/// With `classes == 2` the lower half of the VCs carries requests and the
/// upper half carries replies (two logical networks on one physical
/// network, avoiding protocol deadlock). With `split_phases` each class's
/// VCs are further split into an XY subset and a YX subset, which
/// checkerboard routing requires for routing-deadlock freedom.
///
/// With `split_dateline` (torus fabrics) each class/phase subset is
/// further halved into a *before-dateline* and an *after-dateline* set: a
/// packet starts in the lower half and moves to the upper half once its
/// route wraps around (or departs the wrap link of) a ring, which breaks
/// the cyclic channel dependency every torus ring otherwise carries.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct VcLayout {
    /// Total virtual channels per input port.
    pub total: u8,
    /// Number of protocol classes multiplexed onto this network (1 or 2).
    pub classes: u8,
    /// Whether each class's VCs are split into XY/YX phase subsets.
    pub split_phases: bool,
    /// Whether each class/phase subset is split into dateline halves
    /// (required for deadlock freedom on torus fabrics).
    pub split_dateline: bool,
}

impl Serialize for VcLayout {
    // Hand-written: `split_dateline` is emitted only when set, so every
    // pre-existing mesh layout serializes to the exact bytes the derive
    // produced (shape fingerprints and canonical hashes must not move).
    fn to_value(&self) -> json::Value {
        let mut pairs = vec![
            ("total".to_owned(), self.total.to_value()),
            ("classes".to_owned(), self.classes.to_value()),
            ("split_phases".to_owned(), self.split_phases.to_value()),
        ];
        if self.split_dateline {
            pairs.push(("split_dateline".to_owned(), self.split_dateline.to_value()));
        }
        json::Value::Object(pairs)
    }
}

impl Deserialize for VcLayout {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        Ok(VcLayout {
            total: u8::from_value(v.field("total")?)?,
            classes: u8::from_value(v.field("classes")?)?,
            split_phases: bool::from_value(v.field("split_phases")?)?,
            split_dateline: match v.field("split_dateline") {
                Err(_) => false,
                Ok(b) => bool::from_value(b)?,
            },
        })
    }
}

impl VcLayout {
    /// Creates a layout, validating the partition.
    ///
    /// # Panics
    ///
    /// Panics if the VCs cannot be evenly partitioned (`total` not
    /// divisible by `classes`, or fewer than 2 VCs per class when
    /// `split_phases` is set).
    pub fn new(total: u8, classes: u8, split_phases: bool) -> Self {
        assert!(classes == 1 || classes == 2, "classes must be 1 or 2");
        assert!(
            total >= classes && total.is_multiple_of(classes),
            "VCs must divide evenly by class"
        );
        if split_phases {
            let per_class = total / classes;
            assert!(
                per_class >= 2 && per_class.is_multiple_of(2),
                "phase splitting needs an even number (>= 2) of VCs per class"
            );
        }
        VcLayout { total, classes, split_phases, split_dateline: false }
    }

    /// Adds a dateline split to this layout (torus deadlock avoidance).
    ///
    /// # Panics
    ///
    /// Panics if any class/phase subset cannot be halved (fewer than 2 VCs
    /// or an odd count).
    pub fn with_dateline(mut self) -> Self {
        for class in [PacketClass::Request, PacketClass::Reply] {
            for phase in [Phase::Xy, Phase::Yx] {
                let s = self.set_for(class, phase);
                assert!(
                    s.count >= 2 && s.count.is_multiple_of(2),
                    "dateline splitting needs an even number (>= 2) of VCs per class/phase"
                );
            }
        }
        self.split_dateline = true;
        self
    }

    /// The VC subset available to a protocol class (ignoring phase).
    pub fn class_set(&self, class: PacketClass) -> VcSet {
        if self.classes == 1 {
            VcSet::new(0, self.total)
        } else {
            let per = self.total / 2;
            VcSet::new(class.index() as u8 * per, per)
        }
    }

    /// The VC subset available to a packet of the given class in the given
    /// routing phase.
    pub fn set_for(&self, class: PacketClass, phase: Phase) -> VcSet {
        let cs = self.class_set(class);
        if !self.split_phases {
            return cs;
        }
        let per = cs.count / 2;
        match phase {
            Phase::Xy => VcSet::new(cs.first, per),
            Phase::Yx => VcSet::new(cs.first + per, per),
        }
    }

    /// The VC subset for a packet of the given class and phase that has
    /// (`crossed == true`) or has not yet (`crossed == false`) crossed the
    /// dateline of the ring it is currently traversing. Without a dateline
    /// split this is just [`VcLayout::set_for`]; with one, the lower half
    /// of the class/phase subset carries not-yet-crossed packets and the
    /// upper half carries crossed packets.
    pub fn dateline_set(&self, class: PacketClass, phase: Phase, crossed: bool) -> VcSet {
        let s = self.set_for(class, phase);
        if !self.split_dateline {
            return s;
        }
        let per = s.count / 2;
        if crossed {
            VcSet::new(s.first + per, per)
        } else {
            VcSet::new(s.first, per)
        }
    }
}

/// Router pipeline timing, derived from a pipeline-stage count.
///
/// The baseline router is a 4-stage pipeline (route computation, VC
/// allocation, switch allocation, switch traversal) plus a 1-cycle channel:
/// 5 cycles per hop at zero load. Half-routers use 3 stages, and the
/// "aggressive" router of the latency study uses a single stage (2 cycles
/// per hop including the channel).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct RouterTiming {
    /// Cycles between head-flit arrival and VC-allocation eligibility
    /// (models route-computation stages).
    pub rc_delay: u64,
    /// If `true`, switch allocation may occur in the same cycle as VC
    /// allocation (single-cycle routers).
    pub same_cycle_sa: bool,
    /// Cycles of switch traversal between the switch-allocation grant and
    /// the flit entering the output channel.
    pub st_delay: u64,
}

impl RouterTiming {
    /// Timing for a router with `stages` pipeline stages.
    ///
    /// Zero-load per-hop latency is `stages + link_latency`.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0`.
    pub fn from_stages(stages: u32) -> Self {
        assert!(stages >= 1, "router needs at least one pipeline stage");
        match stages {
            1 => RouterTiming { rc_delay: 0, same_cycle_sa: true, st_delay: 0 },
            2 => RouterTiming { rc_delay: 0, same_cycle_sa: true, st_delay: 1 },
            3 => RouterTiming { rc_delay: 0, same_cycle_sa: false, st_delay: 1 },
            n => RouterTiming { rc_delay: (n - 3) as u64, same_cycle_sa: false, st_delay: 1 },
        }
    }
}

/// Full configuration of one physical network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Topology and router kinds.
    pub mesh: Mesh,
    /// Channel (and flit) width in bytes. The paper's balanced baseline
    /// uses 16 B; the double network slices this to 8 B per subnetwork.
    pub channel_bytes: u32,
    /// Virtual-channel layout.
    pub vcs: VcLayout,
    /// Buffer depth per virtual channel, in flits (baseline: 8).
    pub vc_depth: usize,
    /// Pipeline stages of full-routers (baseline: 4; aggressive: 1).
    pub router_stages: u32,
    /// Pipeline stages of half-routers (paper: 3).
    pub half_router_stages: u32,
    /// Channel traversal latency in cycles (baseline: 1).
    pub link_latency: u32,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Switch-allocator organization.
    pub allocator: AllocatorKind,
    /// Nodes hosting memory controllers (used for multi-port router
    /// placement and by the open-loop traffic patterns).
    pub mc_nodes: Vec<NodeId>,
    /// Injection ports at MC routers (baseline 1; the multi-port design
    /// uses 2). Terminal bandwidth only — channels are unchanged.
    pub mc_inject_ports: usize,
    /// Ejection ports at MC routers (baseline 1).
    pub mc_eject_ports: usize,
    /// Injection ports at compute-node routers (baseline 1; channel
    /// slicing scales this to preserve terminal interface width).
    pub core_inject_ports: usize,
    /// Ejection ports at compute-node routers (baseline 1).
    pub core_eject_ports: usize,
    /// RNG seed for oblivious routing decisions (checkerboard case-2
    /// intermediate selection).
    pub seed: u64,
}

impl NetworkConfig {
    /// The paper's balanced baseline: `k x k` full-router mesh, 16-byte
    /// channels, 2 VCs (one per protocol class) of depth 8, 4-stage
    /// routers, 1-cycle links, XY dimension-ordered routing, MCs placed
    /// top-bottom.
    pub fn baseline_mesh(k: usize) -> Self {
        let mesh = Mesh::all_full(k);
        let n_mc = if k == 6 { 8 } else { k.max(2) };
        let mc_nodes = mesh.top_bottom_mcs(n_mc);
        NetworkConfig {
            mesh,
            channel_bytes: 16,
            vcs: VcLayout::new(2, 2, false),
            vc_depth: 8,
            router_stages: 4,
            half_router_stages: 3,
            link_latency: 1,
            routing: RoutingKind::DorXy,
            allocator: AllocatorKind::InputFirst,
            mc_nodes,
            mc_inject_ports: 1,
            mc_eject_ports: 1,
            core_inject_ports: 1,
            core_eject_ports: 1,
            seed: 0x7e0c,
        }
    }

    /// Torus counterpart of the balanced baseline: the same `k x k` grid
    /// with every row and column wrapped, XY dimension-ordered routing,
    /// and 4 VCs — request/reply classes each split into dateline halves,
    /// which DOR on a torus requires for deadlock freedom.
    pub fn baseline_torus(k: usize) -> Self {
        let mesh = Mesh::torus(k);
        let n_mc = if k == 6 { 8 } else { k.max(2) };
        let mc_nodes = mesh.top_bottom_mcs(n_mc);
        NetworkConfig {
            mesh,
            vcs: VcLayout::new(4, 2, false).with_dateline(),
            mc_nodes,
            ..Self::baseline_mesh(k)
        }
    }

    /// Concentrated-mesh counterpart of the balanced baseline: `conc`
    /// cores share each compute router through `conc` dedicated
    /// injection/ejection ports (higher router radix, smaller grid per
    /// core). Channels, VCs and routing match the baseline mesh.
    pub fn concentrated_mesh(k: usize, conc: u8) -> Self {
        let mesh = Mesh::cmesh(k, conc);
        let n_mc = if k == 6 { 8 } else { k.max(2) };
        let mc_nodes = mesh.top_bottom_mcs(n_mc);
        NetworkConfig {
            mesh,
            mc_nodes,
            core_inject_ports: conc as usize,
            core_eject_ports: conc as usize,
            ..Self::baseline_mesh(k)
        }
    }

    /// Checkerboard network: half-routers on odd-parity nodes, staggered
    /// MC placement on half-routers, checkerboard routing with 4 VCs
    /// (request XY/YX + reply XY/YX).
    pub fn checkerboard_mesh(k: usize) -> Self {
        let mesh = Mesh::checkerboard(k);
        let n_mc = if k == 6 { 8 } else { k.max(2) };
        let mc_nodes = mesh.checkerboard_mcs(n_mc);
        NetworkConfig {
            mesh,
            vcs: VcLayout::new(4, 2, true),
            routing: RoutingKind::Checkerboard,
            mc_nodes,
            ..Self::baseline_mesh(k)
        }
    }

    /// Number of injection ports at `node`.
    pub fn inject_ports(&self, node: NodeId) -> usize {
        if self.mc_nodes.contains(&node) {
            self.mc_inject_ports
        } else {
            self.core_inject_ports
        }
    }

    /// Number of ejection ports at `node`.
    pub fn eject_ports(&self, node: NodeId) -> usize {
        if self.mc_nodes.contains(&node) {
            self.mc_eject_ports
        } else {
            self.core_eject_ports
        }
    }

    /// The compute (non-MC) nodes of the mesh, in node order — the "many"
    /// side of the paper's many-to-few traffic. The complement of
    /// `mc_nodes`.
    pub fn compute_nodes(&self) -> Vec<NodeId> {
        self.mesh.nodes().filter(|n| !self.mc_nodes.contains(n)).collect()
    }

    /// Router timing for `node` (half-routers may have a shorter pipeline).
    pub fn timing(&self, node: NodeId) -> RouterTiming {
        match self.mesh.kind(node) {
            crate::topology::RouterKind::Full => RouterTiming::from_stages(self.router_stages),
            crate::topology::RouterKind::Half => RouterTiming::from_stages(self.half_router_stages),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message if the routing algorithm, VC
    /// layout, router kinds and MC placement are inconsistent (e.g.
    /// checkerboard routing without phase-split VCs, or an MC on a node id
    /// outside the mesh).
    pub fn validate(&self) -> Result<(), String> {
        if self.channel_bytes == 0 {
            return Err("channel width must be positive".into());
        }
        if self.vc_depth == 0 {
            return Err("VC depth must be positive".into());
        }
        if self.routing.needs_phase_split() && !self.vcs.split_phases {
            return Err(format!("{:?} routing requires a phase-split VC layout", self.routing));
        }
        if matches!(self.routing, RoutingKind::O1Turn | RoutingKind::Romm)
            && self.mesh.nodes().any(|n| self.mesh.is_half(n))
        {
            return Err(format!("{:?} routing supports full-router meshes only", self.routing));
        }
        if self.mesh.is_torus() {
            if !matches!(self.routing, RoutingKind::DorXy | RoutingKind::DorYx) {
                return Err(format!("{:?} routing is not defined on the torus", self.routing));
            }
            if self.mesh.nodes().any(|n| self.mesh.is_half(n)) {
                return Err("half-routers are a mesh (checkerboard) organization".into());
            }
            if !self.vcs.split_dateline {
                return Err("torus routing requires dateline-split VCs for deadlock freedom".into());
            }
        }
        if self.vcs.split_dateline {
            if !self.mesh.is_torus() {
                return Err("dateline VC splitting is only meaningful on a torus".into());
            }
            for class in [PacketClass::Request, PacketClass::Reply] {
                for phase in [Phase::Xy, Phase::Yx] {
                    let s = self.vcs.set_for(class, phase);
                    if s.count < 2 || !s.count.is_multiple_of(2) {
                        return Err("dateline splitting needs an even number (>= 2) of VCs per \
                             class/phase"
                            .into());
                    }
                }
            }
        }
        if let Fabric::CMesh { conc } = self.mesh.fabric() {
            let conc = conc as usize;
            if !self.core_inject_ports.is_multiple_of(conc)
                || !self.core_eject_ports.is_multiple_of(conc)
            {
                return Err(format!(
                    "concentrated mesh needs a terminal port pair per core: core ports must \
                     be a multiple of the concentration factor {conc}"
                ));
            }
        }
        if self.mc_inject_ports == 0 || self.mc_eject_ports == 0 {
            return Err("MC routers need at least one injection and ejection port".into());
        }
        if self.core_inject_ports == 0 || self.core_eject_ports == 0 {
            return Err("core routers need at least one injection and ejection port".into());
        }
        for &mc in &self.mc_nodes {
            if mc >= self.mesh.len() {
                return Err(format!("MC node {mc} outside mesh"));
            }
        }
        Ok(())
    }

    /// The per-subnetwork configuration obtained by channel-slicing this
    /// network in two (paper Section IV-C): half the channel width, doubled
    /// terminal ports (preserving terminal interface bandwidth), and a
    /// single-class VC layout — each slice carries one protocol class, so
    /// request/reply separation comes from physical disjointness instead of
    /// VC partitioning.
    ///
    /// # Panics
    ///
    /// Panics if `channel_bytes` is odd.
    pub fn slice(&self) -> NetworkConfig {
        assert!(self.channel_bytes.is_multiple_of(2), "cannot slice an odd channel width");
        let mut sub = self.clone();
        sub.channel_bytes = self.channel_bytes / 2;
        let factor = (self.channel_bytes / sub.channel_bytes) as usize;
        sub.mc_inject_ports = self.mc_inject_ports * factor;
        sub.mc_eject_ports = self.mc_eject_ports * factor;
        sub.core_inject_ports = self.core_inject_ports * factor;
        sub.core_eject_ports = self.core_eject_ports * factor;
        // Each slice keeps the full VC complement of the single network it
        // replaces. Halving the per-slice VC count (the strictest reading
        // of the paper's constant-total-buffering description) costs
        // another ~8% of saturated reply throughput in this fabric; the
        // sensitivity is quantified by the `abl_design_choices` bench.
        let per_class = self.vcs.total.max(if self.vcs.split_phases { 2 } else { 1 });
        sub.vcs = VcLayout::new(per_class, 1, self.vcs.split_phases);
        if self.vcs.split_dateline {
            sub.vcs = sub.vcs.with_dateline();
        }
        sub
    }

    /// FNV-1a 64-bit hash (lower-case hex) of the configuration with the
    /// seed zeroed out — the *shape* of the network. Two configurations
    /// with equal shape fingerprints build identically-dimensioned
    /// simulator state (same topology, VC layout, buffer depths, port
    /// counts, timing) and may therefore run lockstep in one batch; the
    /// seed is excluded precisely because batched cells are expected to
    /// differ only in their RNG streams and traffic.
    pub fn shape_fingerprint(&self) -> String {
        let mut shape = self.clone();
        shape.seed = 0;
        let json = serde_json::to_string(&shape).expect("config serializes");
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in json.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        format!("{hash:016x}")
    }

    /// Convenience: the MC placement strategy corresponding to the current
    /// `mc_nodes`, if it matches a named one.
    pub fn placement(&self) -> Option<Placement> {
        let n = self.mc_nodes.len();
        if self.mc_nodes == self.mesh.top_bottom_mcs(n) {
            Some(Placement::TopBottom)
        } else if self.mc_nodes == self.mesh.checkerboard_mcs(n) {
            Some(Placement::Checkerboard)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_single_class() {
        let l = VcLayout::new(2, 1, false);
        let s = l.class_set(PacketClass::Request);
        assert_eq!((s.first, s.count), (0, 2));
        assert_eq!(l.set_for(PacketClass::Reply, Phase::Yx), s);
    }

    #[test]
    fn layout_two_classes() {
        let l = VcLayout::new(2, 2, false);
        assert_eq!(l.class_set(PacketClass::Request), VcSet::new(0, 1));
        assert_eq!(l.class_set(PacketClass::Reply), VcSet::new(1, 1));
    }

    #[test]
    fn layout_phase_split() {
        let l = VcLayout::new(4, 2, true);
        assert_eq!(l.set_for(PacketClass::Request, Phase::Xy), VcSet::new(0, 1));
        assert_eq!(l.set_for(PacketClass::Request, Phase::Yx), VcSet::new(1, 1));
        assert_eq!(l.set_for(PacketClass::Reply, Phase::Xy), VcSet::new(2, 1));
        assert_eq!(l.set_for(PacketClass::Reply, Phase::Yx), VcSet::new(3, 1));
    }

    #[test]
    #[should_panic(expected = "phase splitting")]
    fn layout_rejects_undersized_phase_split() {
        let _ = VcLayout::new(2, 2, true);
    }

    #[test]
    fn timing_from_stages() {
        let t4 = RouterTiming::from_stages(4);
        assert_eq!((t4.rc_delay, t4.same_cycle_sa, t4.st_delay), (1, false, 1));
        let t3 = RouterTiming::from_stages(3);
        assert_eq!((t3.rc_delay, t3.same_cycle_sa, t3.st_delay), (0, false, 1));
        let t1 = RouterTiming::from_stages(1);
        assert_eq!((t1.rc_delay, t1.same_cycle_sa, t1.st_delay), (0, true, 0));
    }

    #[test]
    fn baseline_config_is_valid() {
        let c = NetworkConfig::baseline_mesh(6);
        c.validate().unwrap();
        assert_eq!(c.mc_nodes.len(), 8);
        assert_eq!(c.placement(), Some(Placement::TopBottom));
    }

    #[test]
    fn checkerboard_config_is_valid() {
        let c = NetworkConfig::checkerboard_mesh(6);
        c.validate().unwrap();
        assert_eq!(c.placement(), Some(Placement::Checkerboard));
        for &mc in &c.mc_nodes {
            assert!(c.mesh.is_half(mc));
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = NetworkConfig::baseline_mesh(6);
        c.routing = RoutingKind::Checkerboard;
        assert!(c.validate().is_err(), "CR without phase split must be rejected");

        let mut c = NetworkConfig::baseline_mesh(6);
        c.mc_nodes.push(999);
        assert!(c.validate().is_err());
    }

    #[test]
    fn layout_dateline_split() {
        let l = VcLayout::new(4, 2, false).with_dateline();
        assert_eq!(l.set_for(PacketClass::Request, Phase::Xy), VcSet::new(0, 2));
        assert_eq!(l.dateline_set(PacketClass::Request, Phase::Xy, false), VcSet::new(0, 1));
        assert_eq!(l.dateline_set(PacketClass::Request, Phase::Xy, true), VcSet::new(1, 1));
        assert_eq!(l.dateline_set(PacketClass::Reply, Phase::Yx, false), VcSet::new(2, 1));
        assert_eq!(l.dateline_set(PacketClass::Reply, Phase::Yx, true), VcSet::new(3, 1));
        // Without the split, dateline_set degenerates to set_for.
        let plain = VcLayout::new(2, 2, false);
        assert_eq!(
            plain.dateline_set(PacketClass::Reply, Phase::Xy, true),
            plain.set_for(PacketClass::Reply, Phase::Xy)
        );
    }

    #[test]
    #[should_panic(expected = "dateline splitting")]
    fn layout_rejects_undersized_dateline_split() {
        let _ = VcLayout::new(2, 2, false).with_dateline();
    }

    #[test]
    fn torus_config_is_valid_and_dateline_is_required() {
        let c = NetworkConfig::baseline_torus(6);
        c.validate().unwrap();
        assert!(c.mesh.is_torus());
        assert!(c.vcs.split_dateline);
        assert_eq!(c.placement(), Some(Placement::TopBottom));

        let mut broken = c.clone();
        broken.vcs = VcLayout::new(4, 2, false);
        let err = broken.validate().unwrap_err();
        assert!(err.contains("dateline"), "{err}");

        let mut cb = c.clone();
        cb.routing = RoutingKind::Checkerboard;
        cb.vcs = VcLayout::new(4, 2, true);
        assert!(cb.validate().is_err(), "checkerboard routing undefined on torus");
    }

    #[test]
    fn dateline_without_torus_rejected() {
        let mut c = NetworkConfig::baseline_mesh(6);
        c.vcs = VcLayout::new(4, 2, false).with_dateline();
        let err = c.validate().unwrap_err();
        assert!(err.contains("torus"), "{err}");
    }

    #[test]
    fn cmesh_config_is_valid_and_ports_track_concentration() {
        let c = NetworkConfig::concentrated_mesh(6, 2);
        c.validate().unwrap();
        assert_eq!(c.mesh.concentration(), 2);
        assert_eq!(c.core_inject_ports, 2);
        assert_eq!(c.core_eject_ports, 2);

        let mut broken = c.clone();
        broken.core_inject_ports = 3;
        assert!(broken.validate().is_err());
    }

    #[test]
    fn sliced_torus_keeps_dateline_split() {
        let sub = NetworkConfig::baseline_torus(6).slice();
        assert!(sub.vcs.split_dateline);
        sub.validate().unwrap();
    }

    #[test]
    fn mesh_fingerprints_unmoved_by_topology_extension() {
        // The shape fingerprint feeds batch keys and canonical content
        // addresses; adding fabrics must not perturb mesh hashes. The new
        // fabrics must also all hash differently from the mesh.
        let mesh = NetworkConfig::baseline_mesh(6).shape_fingerprint();
        let fps = [
            mesh.clone(),
            NetworkConfig::checkerboard_mesh(6).shape_fingerprint(),
            NetworkConfig::baseline_torus(6).shape_fingerprint(),
            NetworkConfig::concentrated_mesh(6, 2).shape_fingerprint(),
        ];
        let unique: std::collections::HashSet<_> = fps.iter().collect();
        assert_eq!(unique.len(), fps.len());
    }

    #[test]
    fn multiport_only_at_mcs() {
        let mut c = NetworkConfig::baseline_mesh(6);
        c.mc_inject_ports = 2;
        let mc = c.mc_nodes[0];
        let core = (0..c.mesh.len()).find(|n| !c.mc_nodes.contains(n)).unwrap();
        assert_eq!(c.inject_ports(mc), 2);
        assert_eq!(c.inject_ports(core), 1);
    }
}
