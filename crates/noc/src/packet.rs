//! Packets and flits.
//!
//! Traffic in the accelerator is split into two protocol classes carried on
//! logically (or physically) separate networks: **requests** (core to memory
//! controller) and **replies** (memory controller to core). Read requests
//! are small (8 bytes — one flit at the baseline 16-byte channel width)
//! while write requests and read replies are large (64 bytes — four flits
//! at 16-byte channels), which is the root of the many-to-few-to-many
//! injection-rate imbalance the paper analyzes.

use crate::types::NodeId;
use serde::{Deserialize, Serialize};

/// Protocol class of a packet.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum PacketClass {
    /// Core-to-MC traffic: read requests (8 B) and write requests (64 B).
    Request = 0,
    /// MC-to-core traffic: read replies (64 B).
    Reply = 1,
}

impl PacketClass {
    /// Both classes, in index order.
    pub const ALL: [PacketClass; 2] = [PacketClass::Request, PacketClass::Reply];

    /// Index of this class (`0` or `1`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`PacketClass::index`]; `None` for indices other than 0
    /// and 1 (e.g. a corrupted serialized class byte).
    pub fn from_index(i: usize) -> Option<PacketClass> {
        match i {
            0 => Some(PacketClass::Request),
            1 => Some(PacketClass::Reply),
            _ => None,
        }
    }
}

/// Routing phase of a packet under dimension-ordered or checkerboard
/// routing.
///
/// Under checkerboard routing (CR) a packet is either XY-routed or
/// YX-routed; the phase selects which virtual-channel subset the packet may
/// use, exactly like O1Turn. A case-2 packet (half-router to half-router,
/// both XY and YX turn nodes being half-routers) travels YX to a random
/// intermediate full-router and then switches to the XY phase.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum Phase {
    /// Route X first, then Y. Uses the XY virtual-channel subset.
    Xy = 0,
    /// Route Y first, then X. Uses the YX virtual-channel subset.
    Yx = 1,
}

/// Routing and bookkeeping state carried by every flit of a packet.
///
/// Headers are small `Copy` values; carrying a copy in each flit keeps the
/// router and ejection logic simple without heap allocation.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Globally unique packet id (assigned by the creator).
    pub id: u64,
    /// Source terminal.
    pub src: NodeId,
    /// Final destination terminal.
    pub dst: NodeId,
    /// Protocol class.
    pub class: PacketClass,
    /// Payload size in bytes (determines the flit count for a given
    /// channel width).
    pub size_bytes: u32,
    /// Number of flits after flitization (set when a network accepts the
    /// packet; zero before).
    pub flits: u16,
    /// Current routing phase (see [`Phase`]).
    pub phase: Phase,
    /// Intermediate full-router for checkerboard case-2 routes. The packet
    /// is YX-routed to `via`, where the phase switches to XY and `via` is
    /// cleared.
    pub via: Option<NodeId>,
    /// Opaque correlation tag (e.g. an MSHR index or a request id) used by
    /// the memory system to match replies to requests, and by tests to
    /// check end-to-end payload integrity.
    pub tag: u64,
    /// Cycle at which the packet was handed to the interconnect
    /// (`try_inject` success), in interconnect cycles.
    /// [`PacketHeader::CREATED_UNSET`] until then; workloads that queue
    /// packets before injection may pre-stamp it to measure source-queue
    /// time.
    pub created: u64,
    /// Cycle at which the head flit entered the source router's injection
    /// buffer. Zero until then.
    pub injected: u64,
}

impl PacketHeader {
    /// Sentinel for a `created` stamp not yet assigned.
    ///
    /// A sentinel distinct from every real cycle: `0` is a legitimate
    /// creation cycle, and using it as "unset" made a packet created at
    /// cycle 0 get re-stamped when a blocked injection was retried.
    pub const CREATED_UNSET: u64 = u64::MAX;
}

/// A packet: the unit of end-to-end transfer. Payload is abstract — only
/// sizes (for timing) and the `tag` (for correlation) are modeled.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Header describing the packet.
    pub header: PacketHeader,
}

impl Packet {
    /// Creates a packet of the given class.
    pub fn new(class: PacketClass, src: NodeId, dst: NodeId, size_bytes: u32, tag: u64) -> Self {
        Packet {
            header: PacketHeader {
                id: 0,
                src,
                dst,
                class,
                size_bytes,
                flits: 0,
                phase: Phase::Xy,
                via: None,
                tag,
                created: PacketHeader::CREATED_UNSET,
                injected: 0,
            },
        }
    }

    /// Creates a request packet (core to MC).
    pub fn request(src: NodeId, dst: NodeId, size_bytes: u32, tag: u64) -> Self {
        Self::new(PacketClass::Request, src, dst, size_bytes, tag)
    }

    /// Creates a reply packet (MC to core).
    pub fn reply(src: NodeId, dst: NodeId, size_bytes: u32, tag: u64) -> Self {
        Self::new(PacketClass::Reply, src, dst, size_bytes, tag)
    }

    /// Number of flits this packet occupies at a given channel width.
    /// Always at least one.
    pub fn flits_at_width(&self, channel_bytes: u32) -> u16 {
        debug_assert!(channel_bytes > 0);
        (self.header.size_bytes.div_ceil(channel_bytes)).max(1) as u16
    }
}

/// A flow-control digit: the unit of channel transfer and buffering.
///
/// Every flit carries a copy of its packet header plus its sequence number,
/// which keeps reassembly at ejection trivial.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Flit {
    /// Header of the packet this flit belongs to.
    pub hdr: PacketHeader,
    /// Sequence number within the packet (`0` = head).
    pub seq: u16,
}

impl Flit {
    /// `true` for the first flit of a packet.
    pub fn is_head(&self) -> bool {
        self.seq == 0
    }

    /// `true` for the last flit of a packet (a single-flit packet is both
    /// head and tail).
    pub fn is_tail(&self) -> bool {
        self.seq + 1 == self.hdr.flits
    }
}

/// A packet as observed leaving the network at its destination terminal.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct EjectedPacket {
    /// The packet header, with `created`/`injected` stamps filled in.
    pub header: PacketHeader,
    /// Interconnect cycle at which the tail flit left the network.
    pub ejected: u64,
}

impl EjectedPacket {
    /// Total latency from injection-attempt success to tail ejection.
    pub fn total_latency(&self) -> u64 {
        self.ejected.saturating_sub(self.header.created)
    }

    /// Network latency from the head flit entering the source router to
    /// tail ejection (excludes source queueing at the network interface).
    pub fn network_latency(&self) -> u64 {
        self.ejected.saturating_sub(self.header.injected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_count_by_width() {
        let read_req = Packet::request(0, 1, 8, 0);
        assert_eq!(read_req.flits_at_width(16), 1);
        assert_eq!(read_req.flits_at_width(8), 1);

        let reply = Packet::reply(1, 0, 64, 0);
        assert_eq!(reply.flits_at_width(16), 4);
        assert_eq!(reply.flits_at_width(8), 8);
        assert_eq!(reply.flits_at_width(32), 2);
    }

    #[test]
    fn zero_size_packet_still_occupies_one_flit() {
        let p = Packet::request(0, 1, 0, 0);
        assert_eq!(p.flits_at_width(16), 1);
    }

    #[test]
    fn head_tail_flags() {
        let mut p = Packet::reply(0, 1, 64, 0);
        p.header.flits = 4;
        let head = Flit { hdr: p.header, seq: 0 };
        let mid = Flit { hdr: p.header, seq: 2 };
        let tail = Flit { hdr: p.header, seq: 3 };
        assert!(head.is_head() && !head.is_tail());
        assert!(!mid.is_head() && !mid.is_tail());
        assert!(!tail.is_head() && tail.is_tail());

        let mut single = Packet::request(0, 1, 8, 0);
        single.header.flits = 1;
        let f = Flit { hdr: single.header, seq: 0 };
        assert!(f.is_head() && f.is_tail());
    }

    #[test]
    fn latency_accessors() {
        let mut p = Packet::request(0, 1, 8, 0);
        p.header.created = 10;
        p.header.injected = 14;
        let e = EjectedPacket { header: p.header, ejected: 30 };
        assert_eq!(e.total_latency(), 20);
        assert_eq!(e.network_latency(), 16);
    }

    #[test]
    fn class_index() {
        assert_eq!(PacketClass::Request.index(), 0);
        assert_eq!(PacketClass::Reply.index(), 1);
        for c in PacketClass::ALL {
            assert_eq!(PacketClass::from_index(c.index()), Some(c));
        }
        assert_eq!(PacketClass::from_index(2), None);
    }
}
