//! # tenoc-noc — cycle-level on-chip network simulator
//!
//! A from-scratch, deterministic, cycle-level simulator for 2D-mesh
//! networks-on-chip with virtual-channel wormhole flow control, built to
//! reproduce the network microarchitecture evaluated in *Throughput-Effective
//! On-Chip Networks for Manycore Accelerators* (Bakhoda, Kim, Aamodt,
//! MICRO 2010).
//!
//! The crate provides:
//!
//! * A canonical input-queued virtual-channel router ([`router::Router`])
//!   with a configurable pipeline depth (4-stage baseline, 3-stage
//!   half-routers, aggressive 1-cycle routers), credit-based flow control
//!   and iSLIP-style separable switch allocation.
//! * The paper's **checkerboard** network organization: alternating
//!   full-routers and *half-routers* with restricted connectivity
//!   ([`topology::RouterKind`]), plus the **checkerboard routing** (CR)
//!   oblivious routing algorithm ([`routing`]).
//! * Multi-port (extra injection/ejection) routers for memory-controller
//!   nodes, and channel-sliced **double networks** ([`network::DoubleNetwork`]).
//! * Idealized interconnect models used in the paper's limit studies:
//!   a perfect network and a zero-latency, aggregate-bandwidth-limited
//!   network ([`ideal`]).
//! * An open-loop traffic harness for latency/throughput curves under
//!   many-to-few-to-many traffic ([`openloop`]), reproducing Figure 21.
//!
//! # Example
//!
//! Send a packet across a 6x6 baseline mesh and observe its latency:
//!
//! ```
//! use tenoc_noc::{Interconnect, Network, NetworkConfig, Packet};
//!
//! let cfg = NetworkConfig::baseline_mesh(6);
//! let mut net = Network::new(cfg);
//! let pkt = Packet::request(0, 35, 8, 42); // src, dst, bytes, tag
//! net.try_inject(0, pkt).expect("empty network accepts injection");
//! for _ in 0..200 {
//!     net.step();
//! }
//! let out = net.pop(35).expect("packet delivered");
//! assert_eq!(out.header.tag, 42);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activeset;
pub mod arbiter;
pub mod arena;
pub mod audit;
pub mod buffer;
pub mod channel;
pub mod config;
pub mod ideal;
pub mod interconnect;
pub mod network;
pub mod openloop;
pub mod packet;
pub mod router;
pub mod routing;
pub mod stats;
pub mod synthetic;
pub mod telemetry;
pub mod tick;
pub mod topology;
pub mod types;

pub use activeset::ActiveSet;
pub use arena::{ArenaDoubleNetwork, ArenaNetwork, NetBatch, ARENA_PHASES};
pub use config::{AllocatorKind, NetworkConfig, RouterTiming, RoutingKind, VcLayout};
pub use ideal::{BandwidthLimitedInterconnect, PerfectInterconnect};
pub use interconnect::Interconnect;
pub use network::{DoubleNetwork, Network};
pub use packet::{EjectedPacket, Flit, Packet, PacketClass, PacketHeader, Phase};
pub use routing::{OutPort, RouteDecision, VcSet};
pub use stats::NetStats;
pub use telemetry::{
    ArmSpec, FlightEvent, FlightRecorder, LatencyHistogram, LatencyHistograms, LinkRecord,
    TelemetryConfig, TelemetryReport,
};
pub use tick::Tick;
pub use topology::{Fabric, Mesh, Placement, RouterKind, Topology};
pub use types::{Coord, Direction, NodeId};
