//! Classic synthetic traffic patterns for open-loop network evaluation.
//!
//! These all-to-all-style patterns complement the many-to-few-to-many
//! harness of [`crate::openloop`] and are the standard way to stress a
//! routing algorithm's load balance (e.g. O1Turn and ROMM are motivated by
//! adversarial permutations such as transpose and tornado, on which
//! dimension-ordered routing performs poorly).

use crate::config::NetworkConfig;
use crate::interconnect::Interconnect;
use crate::network::Network;
use crate::packet::Packet;
use crate::types::{Coord, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A synthetic destination pattern over a `k x k` mesh.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SynthPattern {
    /// Uniformly random destination (excluding the source).
    Uniform,
    /// Matrix transpose: `(x, y) -> (y, x)`. Nodes on the diagonal stay
    /// silent.
    Transpose,
    /// Bit complement on coordinates: `(x, y) -> (k-1-x, k-1-y)`.
    BitComplement,
    /// Tornado: `(x, y) -> ((x + ceil(k/2) - 1) mod k, y)` — the classic
    /// adversarial pattern for rings/meshes.
    Tornado,
    /// Nearest neighbor: `(x, y) -> ((x + 1) mod k, y)`.
    Neighbor,
}

impl SynthPattern {
    /// All patterns, for sweeps.
    pub const ALL: [SynthPattern; 5] = [
        SynthPattern::Uniform,
        SynthPattern::Transpose,
        SynthPattern::BitComplement,
        SynthPattern::Tornado,
        SynthPattern::Neighbor,
    ];

    /// Destination for a source node, or `None` if the node does not send
    /// under this pattern.
    pub fn dest<R: Rng>(&self, k: usize, src: NodeId, rng: &mut R) -> Option<NodeId> {
        let n = k * k;
        let c = Coord::new((src % k) as u16, (src / k) as u16);
        let node = |x: u16, y: u16| y as usize * k + x as usize;
        match self {
            SynthPattern::Uniform => {
                let d = rng.gen_range(0..n - 1);
                Some(if d >= src { d + 1 } else { d })
            }
            SynthPattern::Transpose => {
                let d = node(c.y, c.x);
                (d != src).then_some(d)
            }
            SynthPattern::BitComplement => {
                let d = node((k as u16 - 1) - c.x, (k as u16 - 1) - c.y);
                (d != src).then_some(d)
            }
            SynthPattern::Tornado => {
                let shift = (k.div_ceil(2) - 1) as u16;
                let d = node((c.x + shift) % k as u16, c.y);
                (d != src).then_some(d)
            }
            SynthPattern::Neighbor => Some(node((c.x + 1) % k as u16, c.y)),
        }
    }
}

/// Configuration of a synthetic open-loop run.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Network under test (full-router meshes recommended; checkerboard
    /// meshes reject some node pairs).
    pub net: NetworkConfig,
    /// Offered load in packets/cycle/node.
    pub injection_rate: f64,
    /// Destination pattern.
    pub pattern: SynthPattern,
    /// Packet payload bytes.
    pub packet_bytes: u32,
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Drain cycles.
    pub drain: u64,
    /// RNG seed.
    pub seed: u64,
}

impl SynthConfig {
    /// Defaults: single-flit packets, short windows suitable for sweeps.
    pub fn new(net: NetworkConfig, injection_rate: f64, pattern: SynthPattern) -> Self {
        SynthConfig {
            net,
            injection_rate,
            pattern,
            packet_bytes: 16,
            warmup: 2_000,
            measure: 5_000,
            drain: 10_000,
            seed: 0x5e7,
        }
    }
}

/// Result of a synthetic run.
#[derive(Copy, Clone, Debug)]
pub struct SynthResult {
    /// Offered load (packets/cycle/node).
    pub offered: f64,
    /// Mean latency of measured packets (generation to ejection).
    pub avg_latency: f64,
    /// Fraction of measured packets delivered before the deadline.
    pub delivered_fraction: f64,
}

impl SynthResult {
    /// `true` when the run shows saturation.
    pub fn saturated(&self) -> bool {
        self.delivered_fraction < 0.99 || self.avg_latency > 400.0
    }
}

/// Runs one synthetic open-loop simulation.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_synthetic(cfg: &SynthConfig) -> SynthResult {
    let k = cfg.net.mesh.radix();
    let nodes = cfg.net.mesh.len();
    let mut net = Network::new(cfg.net.clone());
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut src_q: Vec<VecDeque<Packet>> = vec![VecDeque::new(); nodes];

    let total = cfg.warmup + cfg.measure + cfg.drain;
    let meas = cfg.warmup..cfg.warmup + cfg.measure;
    let (mut generated, mut delivered, mut lat_sum) = (0u64, 0u64, 0u64);

    for now in 0..total {
        if now < meas.end {
            #[allow(clippy::needless_range_loop)]
            for src in 0..nodes {
                if rng.gen_bool(cfg.injection_rate.min(1.0)) {
                    if let Some(dst) = cfg.pattern.dest(k, src, &mut rng) {
                        let mut p = Packet::request(src, dst, cfg.packet_bytes, 0);
                        p.header.created = now;
                        if meas.contains(&now) {
                            p.header.tag = 1;
                            generated += 1;
                        }
                        src_q[src].push_back(p);
                    }
                }
            }
        }
        for (src, q) in src_q.iter_mut().enumerate() {
            while let Some(&p) = q.front() {
                if net.try_inject(src, p).is_ok() {
                    q.pop_front();
                } else {
                    break;
                }
            }
        }
        net.step();
        for node in 0..nodes {
            while let Some(out) = net.pop(node) {
                if out.header.tag == 1 {
                    delivered += 1;
                    lat_sum += out.total_latency();
                }
            }
        }
    }
    SynthResult {
        offered: cfg.injection_rate,
        avg_latency: if delivered == 0 { f64::INFINITY } else { lat_sum as f64 / delivered as f64 },
        delivered_fraction: if generated == 0 { 1.0 } else { delivered as f64 / generated as f64 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{RoutingKind, VcLayout};

    fn full_mesh(routing: RoutingKind) -> NetworkConfig {
        let mut c = NetworkConfig::baseline_mesh(6);
        c.routing = routing;
        if routing.needs_phase_split() {
            c.vcs = VcLayout::new(4, 2, true);
        }
        c
    }

    #[test]
    fn patterns_produce_valid_destinations() {
        let mut rng = SmallRng::seed_from_u64(1);
        for pattern in SynthPattern::ALL {
            for src in 0..36 {
                if let Some(d) = pattern.dest(6, src, &mut rng) {
                    assert!(d < 36);
                    assert_ne!(d, src, "{pattern:?} self-send from {src}");
                }
            }
        }
    }

    #[test]
    fn transpose_is_an_involution() {
        let mut rng = SmallRng::seed_from_u64(1);
        for src in 0..36 {
            if let Some(d) = SynthPattern::Transpose.dest(6, src, &mut rng) {
                assert_eq!(SynthPattern::Transpose.dest(6, d, &mut rng), Some(src));
            }
        }
    }

    #[test]
    fn neighbor_traffic_has_low_latency_and_high_capacity() {
        let cfg = SynthConfig::new(full_mesh(RoutingKind::DorXy), 0.3, SynthPattern::Neighbor);
        let r = run_synthetic(&cfg);
        assert!(!r.saturated(), "single-hop neighbor traffic sustains high load");
        assert!(r.avg_latency < 30.0, "latency {}", r.avg_latency);
    }

    #[test]
    fn uniform_low_load_is_unsaturated() {
        let cfg = SynthConfig::new(full_mesh(RoutingKind::DorXy), 0.02, SynthPattern::Uniform);
        let r = run_synthetic(&cfg);
        assert!(!r.saturated());
    }

    /// O1Turn's motivation: it sustains more transpose traffic than DOR.
    #[test]
    fn o1turn_beats_dor_on_transpose() {
        let sat = |routing| {
            let mut last_ok = 0.0;
            for i in 1..=12 {
                let rate = i as f64 * 0.05;
                let cfg = SynthConfig::new(full_mesh(routing), rate, SynthPattern::Transpose);
                if run_synthetic(&cfg).saturated() {
                    break;
                }
                last_ok = rate;
            }
            last_ok
        };
        let dor = sat(RoutingKind::DorXy);
        let o1 = sat(RoutingKind::O1Turn);
        assert!(o1 >= dor, "O1Turn transpose saturation ({o1}) must be at least DOR's ({dor})");
    }

    #[test]
    fn romm_delivers_under_tornado() {
        let cfg = SynthConfig::new(full_mesh(RoutingKind::Romm), 0.05, SynthPattern::Tornado);
        let r = run_synthetic(&cfg);
        assert!(!r.saturated());
        assert!(r.delivered_fraction > 0.99);
    }
}
