//! Fundamental identifiers and geometry for 2D-mesh networks.

use serde::{Deserialize, Serialize};

/// Index of a network node (router/terminal) in row-major order:
/// `id = y * k + x` for a `k x k` mesh.
pub type NodeId = usize;

/// A position in the mesh. `x` is the column (grows eastward), `y` is the
/// row (grows southward; row 0 is the top of the chip as drawn in the
/// paper's Figure 3).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    /// Column index (0-based, grows eastward).
    pub x: u16,
    /// Row index (0-based, grows southward).
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate from column and row indices.
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance between two coordinates (the minimal hop count
    /// between the corresponding routers in a mesh).
    pub fn manhattan(self, other: Coord) -> u32 {
        let dx = (self.x as i32 - other.x as i32).unsigned_abs();
        let dy = (self.y as i32 - other.y as i32).unsigned_abs();
        dx + dy
    }

    /// `true` if the two coordinates share a row.
    pub fn same_row(self, other: Coord) -> bool {
        self.y == other.y
    }

    /// `true` if the two coordinates share a column.
    pub fn same_col(self, other: Coord) -> bool {
        self.x == other.x
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// One of the four mesh directions.
///
/// The numeric values double as port indices: direction ports of a router
/// are numbered `0..4` in the order north, east, south, west.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[repr(u8)]
pub enum Direction {
    /// Toward row 0 (up in the paper's figures).
    North = 0,
    /// Toward larger column indices.
    East = 1,
    /// Toward larger row indices.
    South = 2,
    /// Toward column 0.
    West = 3,
}

impl Direction {
    /// All four directions in port-index order.
    pub const ALL: [Direction; 4] =
        [Direction::North, Direction::East, Direction::South, Direction::West];

    /// The opposite direction (`North <-> South`, `East <-> West`).
    pub fn opposite(self) -> Direction {
        match self {
            Direction::North => Direction::South,
            Direction::East => Direction::West,
            Direction::South => Direction::North,
            Direction::West => Direction::East,
        }
    }

    /// Port index of this direction (`0..4`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Direction::index`].
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 4`.
    pub fn from_index(idx: usize) -> Direction {
        Self::ALL[idx]
    }

    /// `true` for `East`/`West` (movement in the X dimension).
    pub fn is_x(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }

    /// `true` for `North`/`South` (movement in the Y dimension).
    pub fn is_y(self) -> bool {
        !self.is_x()
    }
}

impl std::fmt::Display for Direction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Direction::North => "N",
            Direction::East => "E",
            Direction::South => "S",
            Direction::West => "W",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(0, 0);
        let b = Coord::new(3, 2);
        assert_eq!(a.manhattan(b), 5);
        assert_eq!(b.manhattan(a), 5);
        assert_eq!(a.manhattan(a), 0);
    }

    #[test]
    fn direction_opposites_are_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn direction_index_roundtrip() {
        for d in Direction::ALL {
            assert_eq!(Direction::from_index(d.index()), d);
        }
    }

    #[test]
    fn x_y_partition() {
        assert!(Direction::East.is_x());
        assert!(Direction::West.is_x());
        assert!(Direction::North.is_y());
        assert!(Direction::South.is_y());
    }

    #[test]
    fn same_row_col() {
        assert!(Coord::new(1, 2).same_row(Coord::new(4, 2)));
        assert!(!Coord::new(1, 2).same_row(Coord::new(1, 3)));
        assert!(Coord::new(1, 2).same_col(Coord::new(1, 5)));
    }
}
