//! Idealized interconnect models used in the paper's limit studies.
//!
//! * [`PerfectInterconnect`]: zero latency, infinite bandwidth — the
//!   "perfect network" of Figures 7/8 and the `Ideal NoC` point of
//!   Figure 2.
//! * [`BandwidthLimitedInterconnect`]: zero latency once a flit is
//!   accepted, but a cap on the total flits accepted per cycle across the
//!   whole network — the limit-study network of Figure 6. Multiple sources
//!   may transmit to a destination in one cycle and a source may send
//!   multiple flits in one cycle; a packet is accepted provided the
//!   bandwidth budget has not already been exhausted this cycle.

use crate::interconnect::Interconnect;
use crate::packet::{EjectedPacket, Packet, PacketHeader};
use crate::stats::NetStats;
use crate::tick::Tick;
use crate::types::NodeId;
use std::collections::VecDeque;

/// Zero-latency, infinite-bandwidth network.
pub struct PerfectInterconnect {
    queues: Vec<VecDeque<EjectedPacket>>,
    cycle: u64,
    stats: NetStats,
    next_id: u64,
    flit_bytes: u32,
}

impl PerfectInterconnect {
    /// Creates a perfect network over `nodes` terminals. `flit_bytes` is
    /// used only to account flit counts in the statistics.
    pub fn new(nodes: usize, flit_bytes: u32) -> Self {
        PerfectInterconnect {
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            cycle: 0,
            stats: NetStats::new(nodes),
            next_id: 1,
            flit_bytes,
        }
    }
}

impl Tick for PerfectInterconnect {
    fn tick(&mut self) {
        self.cycle += 1;
        self.stats.cycles += 1;
    }
}

impl Interconnect for PerfectInterconnect {
    fn try_inject(&mut self, node: NodeId, mut packet: Packet) -> Result<(), Packet> {
        self.stats.inject_attempts_by_node[node] += 1;
        let flits = packet.flits_at_width(self.flit_bytes);
        let hdr = &mut packet.header;
        hdr.src = node;
        hdr.id = self.next_id;
        self.next_id += 1;
        hdr.flits = flits;
        if hdr.created == PacketHeader::CREATED_UNSET {
            hdr.created = self.cycle;
        }
        hdr.injected = self.cycle;
        self.stats.injected_flits_by_node[node] += flits as u64;
        let out = EjectedPacket { header: packet.header, ejected: self.cycle };
        self.stats.record_ejection(&out);
        self.queues[packet.header.dst].push_back(out);
        Ok(())
    }

    fn pop(&mut self, node: NodeId) -> Option<EjectedPacket> {
        self.queues[node].pop_front()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn stats(&self) -> NetStats {
        self.stats.clone()
    }

    fn in_flight(&self) -> usize {
        0
    }
}

/// Zero-latency network with a global aggregate-bandwidth cap.
pub struct BandwidthLimitedInterconnect {
    queues: Vec<VecDeque<EjectedPacket>>,
    cycle: u64,
    stats: NetStats,
    next_id: u64,
    flit_bytes: u32,
    /// Flits the whole network may accept per cycle.
    flits_per_cycle: f64,
    /// Remaining budget this cycle (may go slightly negative: a packet is
    /// accepted whenever the budget is still positive, as in the paper).
    budget: f64,
}

impl BandwidthLimitedInterconnect {
    /// Creates a bandwidth-limited network accepting at most
    /// `flits_per_cycle` flits per cycle in aggregate.
    pub fn new(nodes: usize, flit_bytes: u32, flits_per_cycle: f64) -> Self {
        assert!(flits_per_cycle > 0.0, "bandwidth cap must be positive");
        BandwidthLimitedInterconnect {
            queues: (0..nodes).map(|_| VecDeque::new()).collect(),
            cycle: 0,
            stats: NetStats::new(nodes),
            next_id: 1,
            flit_bytes,
            flits_per_cycle,
            budget: flits_per_cycle,
        }
    }

    /// The configured aggregate cap, in flits per cycle.
    pub fn flits_per_cycle(&self) -> f64 {
        self.flits_per_cycle
    }
}

impl Tick for BandwidthLimitedInterconnect {
    fn tick(&mut self) {
        self.cycle += 1;
        self.stats.cycles += 1;
        // Unused budget does not accumulate beyond one cycle's worth, but a
        // deficit from an over-accepted packet carries over.
        self.budget = (self.budget + self.flits_per_cycle).min(self.flits_per_cycle);
    }
}

impl Interconnect for BandwidthLimitedInterconnect {
    fn try_inject(&mut self, node: NodeId, mut packet: Packet) -> Result<(), Packet> {
        self.stats.inject_attempts_by_node[node] += 1;
        if self.budget <= 0.0 {
            self.stats.inject_blocked_by_node[node] += 1;
            return Err(packet);
        }
        let flits = packet.flits_at_width(self.flit_bytes);
        let hdr = &mut packet.header;
        hdr.src = node;
        hdr.id = self.next_id;
        self.next_id += 1;
        hdr.flits = flits;
        if hdr.created == PacketHeader::CREATED_UNSET {
            hdr.created = self.cycle;
        }
        hdr.injected = self.cycle;
        self.budget -= flits as f64;
        self.stats.injected_flits_by_node[node] += hdr.flits as u64;
        let out = EjectedPacket { header: packet.header, ejected: self.cycle };
        self.stats.record_ejection(&out);
        self.queues[packet.header.dst].push_back(out);
        Ok(())
    }

    fn pop(&mut self, node: NodeId) -> Option<EjectedPacket> {
        self.queues[node].pop_front()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn stats(&self) -> NetStats {
        self.stats.clone()
    }

    fn in_flight(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_delivers_same_cycle() {
        let mut net = PerfectInterconnect::new(4, 16);
        net.try_inject(0, Packet::request(0, 3, 8, 42)).unwrap();
        let p = net.pop(3).expect("delivered instantly");
        assert_eq!(p.header.tag, 42);
        assert_eq!(p.total_latency(), 0);
    }

    #[test]
    fn perfect_never_blocks() {
        let mut net = PerfectInterconnect::new(2, 16);
        for i in 0..1000 {
            net.try_inject(0, Packet::reply(0, 1, 64, i)).unwrap();
        }
        assert_eq!(net.stats().packets[1], 1000);
    }

    #[test]
    fn bandwidth_cap_enforced_per_cycle() {
        // Cap of 2 flits/cycle; 1-flit packets.
        let mut net = BandwidthLimitedInterconnect::new(4, 16, 2.0);
        assert!(net.try_inject(0, Packet::request(0, 1, 8, 0)).is_ok());
        assert!(net.try_inject(0, Packet::request(0, 1, 8, 1)).is_ok());
        assert!(net.try_inject(0, Packet::request(0, 1, 8, 2)).is_err(), "budget exhausted");
        net.step();
        assert!(net.try_inject(0, Packet::request(0, 1, 8, 3)).is_ok(), "budget replenished");
    }

    #[test]
    fn oversized_packet_accepted_when_budget_positive() {
        // A 4-flit packet is accepted when any budget remains (paper
        // semantics) and the deficit carries over.
        let mut net = BandwidthLimitedInterconnect::new(4, 16, 1.0);
        assert!(net.try_inject(0, Packet::reply(0, 1, 64, 0)).is_ok());
        assert!(net.try_inject(0, Packet::request(0, 1, 8, 1)).is_err());
        net.step();
        // Deficit of 3 flits + 1 replenished = -2: still blocked.
        assert!(net.try_inject(0, Packet::request(0, 1, 8, 2)).is_err());
        net.step();
        net.step();
        net.step();
        assert!(net.try_inject(0, Packet::request(0, 1, 8, 3)).is_ok());
    }

    #[test]
    fn throughput_matches_cap_under_saturation() {
        let mut net = BandwidthLimitedInterconnect::new(8, 16, 3.5);
        let cycles = 1000;
        for _ in 0..cycles {
            // Offer far more than the cap.
            for _ in 0..16 {
                let _ = net.try_inject(0, Packet::request(0, 1, 8, 0));
            }
            net.step();
        }
        let accepted = net.stats().total_flits() as f64 / cycles as f64;
        assert!((accepted - 3.5).abs() < 0.1, "accepted {accepted} flits/cycle, cap 3.5");
    }
}
