//! The shared cycle-kernel trait.
//!
//! Everything that advances in lockstep with some clock — a single
//! [`Network`](crate::network::Network), the channel-sliced
//! [`DoubleNetwork`](crate::network::DoubleNetwork), the ideal
//! interconnect models, and the system's per-domain clock slices —
//! implements [`Tick`]. One `tick` is exactly one cycle of the
//! component's own clock; callers that multiplex several clock domains
//! (see `tenoc-core`'s `Clocks`) decide *when* to tick, the component
//! decides *what* a cycle means.

/// A component advanced one cycle at a time.
pub trait Tick {
    /// Advances the component by exactly one cycle of its own clock.
    fn tick(&mut self);

    /// Advances the component by `n` cycles.
    fn tick_n(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl Tick for Counter {
        fn tick(&mut self) {
            self.0 += 1;
        }
    }

    #[test]
    fn tick_n_ticks_n_times() {
        let mut c = Counter(0);
        c.tick_n(17);
        assert_eq!(c.0, 17);
        c.tick();
        assert_eq!(c.0, 18);
    }

    #[test]
    fn trait_objects_tick() {
        let mut c: Box<dyn Tick> = Box::new(Counter(3));
        c.tick_n(2);
    }
}
