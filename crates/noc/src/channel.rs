//! Inter-router channels: flit delay lines plus reverse credit delay lines.

use crate::packet::Flit;
use std::collections::VecDeque;

/// A unidirectional channel between two routers.
///
/// Flits travel forward with a configurable delay (switch traversal + link
/// latency); credits travel backward with a one-cycle delay. Entries are
/// stamped with the cycle at which they become visible to the receiver.
#[derive(Clone, Debug, Default)]
pub struct Channel {
    flits: VecDeque<(u64, u8, Flit)>,
    credits: VecDeque<(u64, u8)>,
    total_flits: u64,
}

impl Channel {
    /// Creates an empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules a flit (already assigned to downstream VC `vc`) to arrive
    /// at cycle `due`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `due` is not monotonically non-decreasing
    /// (channels are FIFO).
    pub fn push_flit(&mut self, due: u64, vc: u8, flit: Flit) {
        debug_assert!(self.flits.back().map(|&(d, _, _)| d <= due).unwrap_or(true));
        self.total_flits += 1;
        self.flits.push_back((due, vc, flit));
    }

    /// Schedules a credit for VC `vc` to arrive back upstream at `due`.
    pub fn push_credit(&mut self, due: u64, vc: u8) {
        self.credits.push_back((due, vc));
    }

    /// Removes and returns the next flit if it is due at or before `now`.
    pub fn pop_flit(&mut self, now: u64) -> Option<(u8, Flit)> {
        match self.flits.front() {
            Some(&(due, vc, flit)) if due <= now => {
                self.flits.pop_front();
                Some((vc, flit))
            }
            _ => None,
        }
    }

    /// Removes and returns the next credit if due at or before `now`.
    pub fn pop_credit(&mut self, now: u64) -> Option<u8> {
        match self.credits.front() {
            Some(&(due, vc)) if due <= now => {
                self.credits.pop_front();
                Some(vc)
            }
            _ => None,
        }
    }

    /// Flits currently in flight.
    pub fn flits_in_flight(&self) -> usize {
        self.flits.len()
    }

    /// Credits currently in flight.
    pub fn credits_in_flight(&self) -> usize {
        self.credits.len()
    }

    /// Total flits ever pushed onto this channel (for link-utilization
    /// reports).
    pub fn total_flits(&self) -> u64 {
        self.total_flits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketClass};

    fn flit() -> Flit {
        let mut p = Packet::new(PacketClass::Request, 0, 1, 8, 0);
        p.header.flits = 1;
        Flit { hdr: p.header, seq: 0 }
    }

    #[test]
    fn flits_delivered_at_due_cycle() {
        let mut ch = Channel::new();
        ch.push_flit(5, 0, flit());
        assert_eq!(ch.pop_flit(4), None);
        let (vc, _) = ch.pop_flit(5).unwrap();
        assert_eq!(vc, 0);
        assert_eq!(ch.pop_flit(6), None);
    }

    #[test]
    fn credits_delivered_at_due_cycle() {
        let mut ch = Channel::new();
        ch.push_credit(3, 1);
        assert_eq!(ch.pop_credit(2), None);
        assert_eq!(ch.pop_credit(3), Some(1));
        assert_eq!(ch.pop_credit(3), None);
    }

    #[test]
    fn fifo_order() {
        let mut ch = Channel::new();
        ch.push_flit(1, 0, flit());
        ch.push_flit(1, 1, flit());
        assert_eq!(ch.pop_flit(1).unwrap().0, 0);
        assert_eq!(ch.pop_flit(1).unwrap().0, 1);
    }

    #[test]
    fn in_flight_counters() {
        let mut ch = Channel::new();
        ch.push_flit(1, 0, flit());
        ch.push_credit(1, 0);
        assert_eq!(ch.flits_in_flight(), 1);
        assert_eq!(ch.credits_in_flight(), 1);
        ch.pop_flit(1);
        ch.pop_credit(1);
        assert_eq!(ch.flits_in_flight(), 0);
        assert_eq!(ch.credits_in_flight(), 0);
    }
}
