//! Network statistics: latency, throughput and injection-blocking
//! accounting used by the paper's figures.

use crate::packet::{EjectedPacket, PacketClass};
use serde::{Deserialize, Serialize};

/// Aggregated statistics of a network (or a pair of sliced networks).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Packets ejected, per class (`[request, reply]`).
    pub packets: [u64; 2],
    /// Flits ejected, per class.
    pub flits: [u64; 2],
    /// Sum of total latencies (creation to tail ejection), per class.
    pub total_latency_sum: [u64; 2],
    /// Sum of network latencies (head injection to tail ejection), per
    /// class.
    pub net_latency_sum: [u64; 2],
    /// Flits injected into the network per source node.
    pub injected_flits_by_node: Vec<u64>,
    /// Flits ejected from the network per destination node.
    pub ejected_flits_by_node: Vec<u64>,
    /// `try_inject` calls per node.
    pub inject_attempts_by_node: Vec<u64>,
    /// `try_inject` calls per node that were refused because all injection
    /// ports were busy (the paper's "MC stalled by reply network" signal
    /// when read at MC nodes).
    pub inject_blocked_by_node: Vec<u64>,
}

impl NetStats {
    /// Creates zeroed statistics for `nodes` network terminals.
    pub fn new(nodes: usize) -> Self {
        NetStats {
            cycles: 0,
            packets: [0; 2],
            flits: [0; 2],
            total_latency_sum: [0; 2],
            net_latency_sum: [0; 2],
            injected_flits_by_node: vec![0; nodes],
            ejected_flits_by_node: vec![0; nodes],
            inject_attempts_by_node: vec![0; nodes],
            inject_blocked_by_node: vec![0; nodes],
        }
    }

    /// Records an ejected packet.
    pub fn record_ejection(&mut self, pkt: &EjectedPacket) {
        let c = pkt.header.class.index();
        self.packets[c] += 1;
        self.flits[c] += pkt.header.flits as u64;
        self.total_latency_sum[c] += pkt.total_latency();
        self.net_latency_sum[c] += pkt.network_latency();
        if let Some(e) = self.ejected_flits_by_node.get_mut(pkt.header.dst) {
            *e += pkt.header.flits as u64;
        }
    }

    /// Total packets ejected across classes.
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Total flits ejected across classes.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// Mean packet latency from creation to ejection, across classes.
    /// Returns 0.0 when no packet has been ejected.
    pub fn avg_total_latency(&self) -> f64 {
        let n = self.total_packets();
        if n == 0 {
            return 0.0;
        }
        self.total_latency_sum.iter().sum::<u64>() as f64 / n as f64
    }

    /// Mean in-network latency (injection to ejection), across classes.
    pub fn avg_network_latency(&self) -> f64 {
        let n = self.total_packets();
        if n == 0 {
            return 0.0;
        }
        self.net_latency_sum.iter().sum::<u64>() as f64 / n as f64
    }

    /// Mean in-network latency for one class.
    pub fn avg_network_latency_class(&self, class: PacketClass) -> f64 {
        let c = class.index();
        if self.packets[c] == 0 {
            return 0.0;
        }
        self.net_latency_sum[c] as f64 / self.packets[c] as f64
    }

    /// Mean flits a node injected per cycle.
    pub fn injection_rate(&self, node: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.injected_flits_by_node[node] as f64 / self.cycles as f64
    }

    /// Fraction of `try_inject` calls at `node` that were refused.
    pub fn blocked_fraction(&self, node: usize) -> f64 {
        let a = self.inject_attempts_by_node[node];
        if a == 0 {
            return 0.0;
        }
        self.inject_blocked_by_node[node] as f64 / a as f64
    }

    /// Accepted traffic averaged over all nodes, in flits/cycle/node.
    pub fn accepted_flits_per_node_cycle(&self) -> f64 {
        let nodes = self.ejected_flits_by_node.len();
        if self.cycles == 0 || nodes == 0 {
            return 0.0;
        }
        self.total_flits() as f64 / self.cycles as f64 / nodes as f64
    }

    /// Merges statistics from another network (e.g. the second slice of a
    /// double network).
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &NetStats) {
        assert_eq!(
            self.injected_flits_by_node.len(),
            other.injected_flits_by_node.len(),
            "cannot merge stats over different node counts"
        );
        self.cycles = self.cycles.max(other.cycles);
        for c in 0..2 {
            self.packets[c] += other.packets[c];
            self.flits[c] += other.flits[c];
            self.total_latency_sum[c] += other.total_latency_sum[c];
            self.net_latency_sum[c] += other.net_latency_sum[c];
        }
        for i in 0..self.injected_flits_by_node.len() {
            self.injected_flits_by_node[i] += other.injected_flits_by_node[i];
            self.ejected_flits_by_node[i] += other.ejected_flits_by_node[i];
            self.inject_attempts_by_node[i] += other.inject_attempts_by_node[i];
            self.inject_blocked_by_node[i] += other.inject_blocked_by_node[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn ejected(
        class: PacketClass,
        flits: u16,
        created: u64,
        injected: u64,
        out: u64,
    ) -> EjectedPacket {
        let mut p = Packet::new(class, 0, 1, 64, 0);
        p.header.flits = flits;
        p.header.created = created;
        p.header.injected = injected;
        EjectedPacket { header: p.header, ejected: out }
    }

    #[test]
    fn records_latency_sums_per_class() {
        let mut s = NetStats::new(4);
        s.record_ejection(&ejected(PacketClass::Request, 1, 0, 2, 10));
        s.record_ejection(&ejected(PacketClass::Reply, 4, 5, 6, 25));
        assert_eq!(s.packets, [1, 1]);
        assert_eq!(s.flits, [1, 4]);
        assert_eq!(s.total_latency_sum, [10, 20]);
        assert_eq!(s.net_latency_sum, [8, 19]);
        assert!((s.avg_total_latency() - 15.0).abs() < 1e-9);
        assert!((s.avg_network_latency() - 13.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_averages() {
        let s = NetStats::new(2);
        assert_eq!(s.avg_total_latency(), 0.0);
        assert_eq!(s.avg_network_latency(), 0.0);
        assert_eq!(s.blocked_fraction(0), 0.0);
        assert_eq!(s.injection_rate(1), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NetStats::new(2);
        let mut b = NetStats::new(2);
        a.cycles = 100;
        b.cycles = 100;
        a.record_ejection(&ejected(PacketClass::Request, 1, 0, 0, 4));
        b.record_ejection(&ejected(PacketClass::Reply, 4, 0, 0, 8));
        b.inject_attempts_by_node[0] = 10;
        b.inject_blocked_by_node[0] = 5;
        a.merge(&b);
        assert_eq!(a.total_packets(), 2);
        assert_eq!(a.total_flits(), 5);
        assert_eq!(a.blocked_fraction(0), 0.5);
    }

    #[test]
    fn accepted_rate_normalizes_by_nodes_and_cycles() {
        let mut s = NetStats::new(2);
        s.cycles = 10;
        s.record_ejection(&ejected(PacketClass::Request, 1, 0, 0, 1));
        s.record_ejection(&ejected(PacketClass::Reply, 4, 0, 0, 2));
        // 5 flits / 10 cycles / 2 nodes
        assert!((s.accepted_flits_per_node_cycle() - 0.25).abs() < 1e-9);
    }
}
