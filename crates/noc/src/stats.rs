//! Network statistics: latency, throughput and injection-blocking
//! accounting used by the paper's figures.

use crate::packet::{EjectedPacket, PacketClass};
use crate::telemetry::LatencyHistograms;
use serde::{Deserialize, Serialize};

/// Aggregated statistics of a network (or a pair of sliced networks).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Packets ejected, per class (`[request, reply]`).
    pub packets: [u64; 2],
    /// Flits ejected, per class.
    pub flits: [u64; 2],
    /// Sum of total latencies (creation to tail ejection), per class.
    pub total_latency_sum: [u64; 2],
    /// Sum of network latencies (head injection to tail ejection), per
    /// class.
    pub net_latency_sum: [u64; 2],
    /// Flits injected into the network per source node.
    pub injected_flits_by_node: Vec<u64>,
    /// Flits ejected from the network per destination node.
    pub ejected_flits_by_node: Vec<u64>,
    /// `try_inject` calls per node.
    pub inject_attempts_by_node: Vec<u64>,
    /// `try_inject` calls per node that were refused because all injection
    /// ports were busy (the paper's "MC stalled by reply network" signal
    /// when read at MC nodes).
    pub inject_blocked_by_node: Vec<u64>,
    /// Optional log2-bucketed latency histograms (telemetry). `None` — the
    /// default — keeps [`NetStats::record_ejection`] free of histogram
    /// work, preserving the zero-cost-when-off telemetry contract.
    pub hist: Option<LatencyHistograms>,
}

impl NetStats {
    /// Creates zeroed statistics for `nodes` network terminals.
    pub fn new(nodes: usize) -> Self {
        NetStats {
            cycles: 0,
            packets: [0; 2],
            flits: [0; 2],
            total_latency_sum: [0; 2],
            net_latency_sum: [0; 2],
            injected_flits_by_node: vec![0; nodes],
            ejected_flits_by_node: vec![0; nodes],
            inject_attempts_by_node: vec![0; nodes],
            inject_blocked_by_node: vec![0; nodes],
            hist: None,
        }
    }

    /// Turns on latency-histogram collection. Ejections recorded before
    /// this call are not retroactively bucketed.
    pub fn enable_histograms(&mut self) {
        self.hist.get_or_insert_with(LatencyHistograms::default);
    }

    /// Records an ejected packet.
    pub fn record_ejection(&mut self, pkt: &EjectedPacket) {
        let c = pkt.header.class.index();
        self.packets[c] += 1;
        self.flits[c] += pkt.header.flits as u64;
        self.total_latency_sum[c] += pkt.total_latency();
        self.net_latency_sum[c] += pkt.network_latency();
        if let Some(e) = self.ejected_flits_by_node.get_mut(pkt.header.dst) {
            *e += pkt.header.flits as u64;
        }
        if let Some(h) = &mut self.hist {
            h.total[c].record(pkt.total_latency());
            h.network[c].record(pkt.network_latency());
        }
    }

    /// Total packets ejected across classes.
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Total flits ejected across classes.
    pub fn total_flits(&self) -> u64 {
        self.flits.iter().sum()
    }

    /// Mean packet latency from creation to ejection, across classes.
    /// Returns 0.0 when no packet has been ejected.
    pub fn avg_total_latency(&self) -> f64 {
        let n = self.total_packets();
        if n == 0 {
            return 0.0;
        }
        self.total_latency_sum.iter().sum::<u64>() as f64 / n as f64
    }

    /// Mean in-network latency (injection to ejection), across classes.
    pub fn avg_network_latency(&self) -> f64 {
        let n = self.total_packets();
        if n == 0 {
            return 0.0;
        }
        self.net_latency_sum.iter().sum::<u64>() as f64 / n as f64
    }

    /// Mean in-network latency for one class.
    pub fn avg_network_latency_class(&self, class: PacketClass) -> f64 {
        let c = class.index();
        if self.packets[c] == 0 {
            return 0.0;
        }
        self.net_latency_sum[c] as f64 / self.packets[c] as f64
    }

    /// Mean flits a node injected per cycle.
    ///
    /// Bounds-safe: an out-of-range `node` reads as zero traffic, matching
    /// how [`NetStats::record_ejection`] treats an unknown destination.
    pub fn injection_rate(&self, node: usize) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        match self.injected_flits_by_node.get(node) {
            Some(&f) => f as f64 / self.cycles as f64,
            None => 0.0,
        }
    }

    /// Fraction of `try_inject` calls at `node` that were refused.
    ///
    /// Bounds-safe: an out-of-range `node` has made no attempts, so its
    /// blocked fraction is zero.
    pub fn blocked_fraction(&self, node: usize) -> f64 {
        let a = self.inject_attempts_by_node.get(node).copied().unwrap_or(0);
        if a == 0 {
            return 0.0;
        }
        self.inject_blocked_by_node[node] as f64 / a as f64
    }

    /// Accepted traffic averaged over all nodes, in flits/cycle/node.
    pub fn accepted_flits_per_node_cycle(&self) -> f64 {
        let nodes = self.ejected_flits_by_node.len();
        if self.cycles == 0 || nodes == 0 {
            return 0.0;
        }
        self.total_flits() as f64 / self.cycles as f64 / nodes as f64
    }

    /// Merges statistics from another network that simulated the **same
    /// measurement window in parallel** — e.g. the second slice of a
    /// double network, which shares the clock with the first.
    ///
    /// The combined cycle count is `max(self.cycles, other.cycles)`, which
    /// is only correct under that parallel-slice contract (the slices ran
    /// *concurrently*, so wall cycles do not add). Merging *sequential*
    /// segments with this method would under-count cycles and inflate
    /// every per-cycle rate; a `debug_assert` rejects windows that differ.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ. In debug builds, panics if the
    /// cycle counts differ (the slices did not share a clock).
    pub fn merge_parallel(&mut self, other: &NetStats) {
        assert_eq!(
            self.injected_flits_by_node.len(),
            other.injected_flits_by_node.len(),
            "cannot merge stats over different node counts"
        );
        debug_assert_eq!(
            self.cycles, other.cycles,
            "merge_parallel requires slices of the same measurement window \
             (parallel-slice contract); sequential segments must not be \
             merged with max(cycles)"
        );
        self.cycles = self.cycles.max(other.cycles);
        match (&mut self.hist, &other.hist) {
            (Some(a), Some(b)) => a.merge(b),
            (None, Some(b)) => self.hist = Some(*b),
            _ => {}
        }
        for c in 0..2 {
            self.packets[c] += other.packets[c];
            self.flits[c] += other.flits[c];
            self.total_latency_sum[c] += other.total_latency_sum[c];
            self.net_latency_sum[c] += other.net_latency_sum[c];
        }
        for i in 0..self.injected_flits_by_node.len() {
            self.injected_flits_by_node[i] += other.injected_flits_by_node[i];
            self.ejected_flits_by_node[i] += other.ejected_flits_by_node[i];
            self.inject_attempts_by_node[i] += other.inject_attempts_by_node[i];
            self.inject_blocked_by_node[i] += other.inject_blocked_by_node[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn ejected(
        class: PacketClass,
        flits: u16,
        created: u64,
        injected: u64,
        out: u64,
    ) -> EjectedPacket {
        let mut p = Packet::new(class, 0, 1, 64, 0);
        p.header.flits = flits;
        p.header.created = created;
        p.header.injected = injected;
        EjectedPacket { header: p.header, ejected: out }
    }

    #[test]
    fn records_latency_sums_per_class() {
        let mut s = NetStats::new(4);
        s.record_ejection(&ejected(PacketClass::Request, 1, 0, 2, 10));
        s.record_ejection(&ejected(PacketClass::Reply, 4, 5, 6, 25));
        assert_eq!(s.packets, [1, 1]);
        assert_eq!(s.flits, [1, 4]);
        assert_eq!(s.total_latency_sum, [10, 20]);
        assert_eq!(s.net_latency_sum, [8, 19]);
        assert!((s.avg_total_latency() - 15.0).abs() < 1e-9);
        assert!((s.avg_network_latency() - 13.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_zero_averages() {
        let s = NetStats::new(2);
        assert_eq!(s.avg_total_latency(), 0.0);
        assert_eq!(s.avg_network_latency(), 0.0);
        assert_eq!(s.blocked_fraction(0), 0.0);
        assert_eq!(s.injection_rate(1), 0.0);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = NetStats::new(2);
        let mut b = NetStats::new(2);
        a.cycles = 100;
        b.cycles = 100;
        a.record_ejection(&ejected(PacketClass::Request, 1, 0, 0, 4));
        b.record_ejection(&ejected(PacketClass::Reply, 4, 0, 0, 8));
        b.inject_attempts_by_node[0] = 10;
        b.inject_blocked_by_node[0] = 5;
        a.merge_parallel(&b);
        assert_eq!(a.total_packets(), 2);
        assert_eq!(a.total_flits(), 5);
        assert_eq!(a.blocked_fraction(0), 0.5);
    }

    /// Satellite regression: `injection_rate`/`blocked_fraction` used to
    /// panic on an out-of-range node while `record_ejection` silently
    /// ignored a bad `dst`. All three are now bounds-safe and consistent.
    #[test]
    fn out_of_range_node_is_safe_and_consistent() {
        let mut s = NetStats::new(2);
        s.cycles = 10;
        s.injected_flits_by_node[0] = 5;
        // A packet whose dst is outside the node range: class counters
        // still advance, per-node ejection accounting is skipped.
        s.record_ejection(&ejected_to(PacketClass::Reply, 99));
        assert_eq!(s.total_packets(), 1);
        assert_eq!(s.ejected_flits_by_node, vec![0, 0]);
        // Rate accessors return 0.0 instead of panicking.
        assert_eq!(s.injection_rate(99), 0.0);
        assert_eq!(s.blocked_fraction(99), 0.0);
        // In-range behavior is unchanged.
        assert!((s.injection_rate(0) - 0.5).abs() < 1e-9);
    }

    fn ejected_to(class: PacketClass, dst: usize) -> EjectedPacket {
        let mut p = Packet::new(class, 0, dst, 64, 0);
        p.header.flits = 4;
        p.header.created = 0;
        p.header.injected = 0;
        EjectedPacket { header: p.header, ejected: 8 }
    }

    /// Satellite regression: the parallel-slice contract of
    /// [`NetStats::merge_parallel`]. Same-window merges keep the shared
    /// cycle count; mismatched windows are rejected in debug builds.
    #[test]
    fn merge_parallel_keeps_shared_clock() {
        let mut a = NetStats::new(2);
        let mut b = NetStats::new(2);
        a.cycles = 250;
        b.cycles = 250;
        a.merge_parallel(&b);
        assert_eq!(a.cycles, 250, "parallel slices share one clock");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "parallel-slice contract")]
    fn merge_parallel_rejects_mismatched_windows() {
        let mut a = NetStats::new(2);
        let mut b = NetStats::new(2);
        a.cycles = 100;
        b.cycles = 250;
        a.merge_parallel(&b);
    }

    #[test]
    fn merge_parallel_combines_histograms() {
        let mut a = NetStats::new(2);
        let mut b = NetStats::new(2);
        b.enable_histograms();
        b.record_ejection(&ejected(PacketClass::Request, 1, 0, 2, 10));
        // None + Some adopts the other side's histograms.
        a.merge_parallel(&b);
        let h = a.hist.expect("histograms adopted from merged slice");
        assert_eq!(h.total[0].count(), 1);
        // Some + Some adds counts.
        a.merge_parallel(&b);
        assert_eq!(a.hist.unwrap().total[0].count(), 2);
    }

    #[test]
    fn histograms_record_both_latencies_when_enabled() {
        let mut s = NetStats::new(4);
        s.record_ejection(&ejected(PacketClass::Request, 1, 0, 2, 10));
        assert!(s.hist.is_none(), "histograms are off by default");
        s.enable_histograms();
        s.record_ejection(&ejected(PacketClass::Reply, 4, 5, 6, 25));
        let h = s.hist.unwrap();
        assert_eq!(h.total[0].count(), 0, "pre-enable ejections not bucketed");
        assert_eq!(h.total[1].count(), 1);
        assert_eq!(h.network[1].count(), 1);
        // total latency 20 → bucket [16,32); network latency 19 → same.
        assert_eq!(h.total[1].buckets[5], 1);
        assert_eq!(h.network[1].buckets[5], 1);
    }

    #[test]
    fn accepted_rate_normalizes_by_nodes_and_cycles() {
        let mut s = NetStats::new(2);
        s.cycles = 10;
        s.record_ejection(&ejected(PacketClass::Request, 1, 0, 0, 1));
        s.record_ejection(&ejected(PacketClass::Reply, 4, 0, 0, 2));
        // 5 flits / 10 cycles / 2 nodes
        assert!((s.accepted_flits_per_node_cycle() - 0.25).abs() < 1e-9);
    }
}
