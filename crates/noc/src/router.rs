//! The input-queued virtual-channel router.
//!
//! Canonical wormhole VC router with credit-based flow control and
//! separable (iSLIP-style) allocation, configurable as the paper's 4-stage
//! baseline, the 3-stage half-router, or the aggressive 1-cycle router:
//!
//! 1. **RC** — on reaching the front of an idle VC, a head flit's route is
//!    computed (output port + candidate downstream VC set).
//! 2. **VA** — waiting VCs request a free downstream VC; requests are
//!    resolved input-first (a round-robin cursor per input VC picks one
//!    candidate) then output-arbitrated (a round-robin arbiter per output
//!    VC picks one winner).
//! 3. **SA** — active VCs with a buffered flit and a downstream credit
//!    compete for the crossbar: one VC per input port (round-robin), then
//!    one input port per output port (round-robin). Pointers advance only
//!    for accepted grants, as in iSLIP.
//! 4. **ST + link** — granted flits are handed to the output channel; they
//!    become visible downstream after the switch-traversal and link
//!    latency.
//!
//! Half-routers use the same pipeline but a restricted crossbar: the route
//! legality of every (input port, output port) pair is asserted against
//! [`connection_allowed`], so a routing bug cannot silently use a
//! connection the hardware would not have.

use crate::arbiter::RoundRobin;
use crate::buffer::{InputUnit, VcState};
use crate::config::{AllocatorKind, RouterTiming, RoutingKind, VcLayout};
use crate::packet::Flit;
use crate::routing::{self, OutPort, VcSet};
use crate::topology::{connection_allowed, InPort, Mesh, OutPortKind, RouterKind};
use crate::types::{Direction, NodeId};

/// Read-only routing context threaded through router steps.
#[derive(Copy, Clone, Debug)]
pub struct RouteCtx<'a> {
    /// Topology (router kinds, coordinates).
    pub mesh: &'a Mesh,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// VC partition.
    pub layout: VcLayout,
}

/// Flits and credits a router emits in one cycle.
#[derive(Clone, Debug, Default)]
pub struct RouterOutputs {
    /// `(output port, downstream VC, flit)` triples granted this cycle.
    pub flits: Vec<(usize, u8, Flit)>,
    /// Credits to return upstream: `(input direction, vc)` of consumed
    /// buffer slots on direction ports.
    pub credits: Vec<(Direction, u8)>,
}

impl RouterOutputs {
    /// Clears both lists, retaining capacity.
    pub fn clear(&mut self) {
        self.flits.clear();
        self.credits.clear();
    }
}

/// Reusable per-`step` scratch space.
///
/// The allocation stages need short-lived request/grant lists every cycle;
/// keeping them here (and moving them out with [`std::mem::take`] while a
/// stage runs) makes the steady-state router step allocation-free once the
/// lists have grown to their high-water capacity.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// VA requests: `(out_port, out_vc, in_port, in_vc)`.
    va_requests: Vec<(usize, u8, usize, u8)>,
    /// Contenders for one output VC during VA output arbitration.
    va_contenders: Vec<(usize, u8)>,
    /// Input-first SA nominees, one slot per input port.
    sa_nominee: Vec<Option<(u8, usize, u8)>>,
    /// Output-first SA grants offered to each input port.
    sa_grants: Vec<Vec<(u8, usize, u8)>>,
}

/// One mesh router.
#[derive(Clone, Debug)]
pub struct Router {
    node: NodeId,
    kind: RouterKind,
    timing: RouterTiming,
    allocator: AllocatorKind,
    num_vcs: usize,
    n_inject: usize,
    n_eject: usize,
    vc_depth: usize,
    /// Input units: ports `0..4` are directions, `4..4+n_inject` local.
    inputs: Vec<InputUnit>,
    /// Downstream credits per `[out_port][vc]`; out ports `0..4` are
    /// directions, `4..4+n_eject` ejection.
    credits: Vec<Vec<u16>>,
    /// Current holder of each downstream VC, if any.
    out_vc_owner: Vec<Vec<Option<(usize, u8)>>>,
    /// VA output arbiters, one per `(out_port, vc)`, over flattened input
    /// VC index `in_port * num_vcs + vc`.
    va_arb: Vec<Vec<RoundRobin>>,
    /// SA input-side arbiters: one per input port, over its VCs.
    sa_in_arb: Vec<RoundRobin>,
    /// SA output-side arbiters: one per output port, over input ports.
    sa_out_arb: Vec<RoundRobin>,
    /// Whether a neighbor exists per direction.
    dir_exists: [bool; 4],
    /// Reusable per-cycle temporaries for the allocation stages.
    scratch: Scratch,
}

impl Router {
    /// Builds a router for `node`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeId,
        kind: RouterKind,
        timing: RouterTiming,
        num_vcs: usize,
        vc_depth: usize,
        n_inject: usize,
        n_eject: usize,
        dir_exists: [bool; 4],
    ) -> Self {
        Self::with_allocator(
            node,
            kind,
            timing,
            AllocatorKind::InputFirst,
            num_vcs,
            vc_depth,
            n_inject,
            n_eject,
            dir_exists,
        )
    }

    /// Builds a router with an explicit switch-allocator organization.
    #[allow(clippy::too_many_arguments)]
    pub fn with_allocator(
        node: NodeId,
        kind: RouterKind,
        timing: RouterTiming,
        allocator: AllocatorKind,
        num_vcs: usize,
        vc_depth: usize,
        n_inject: usize,
        n_eject: usize,
        dir_exists: [bool; 4],
    ) -> Self {
        assert!(num_vcs > 0 && num_vcs <= u8::MAX as usize);
        assert!(n_inject >= 1 && n_eject >= 1);
        let n_in = 4 + n_inject;
        let n_out = 4 + n_eject;
        Router {
            node,
            kind,
            timing,
            allocator,
            num_vcs,
            n_inject,
            n_eject,
            vc_depth,
            inputs: (0..n_in).map(|_| InputUnit::new(num_vcs, vc_depth)).collect(),
            credits: (0..n_out)
                .map(|op| {
                    let present = op >= 4 || dir_exists[op];
                    vec![if present { vc_depth as u16 } else { 0 }; num_vcs]
                })
                .collect(),
            out_vc_owner: (0..n_out).map(|_| vec![None; num_vcs]).collect(),
            va_arb: (0..n_out)
                .map(|_| (0..num_vcs).map(|_| RoundRobin::new(n_in * num_vcs)).collect())
                .collect(),
            sa_in_arb: (0..n_in).map(|_| RoundRobin::new(num_vcs)).collect(),
            sa_out_arb: (0..n_out).map(|_| RoundRobin::new(n_in)).collect(),
            dir_exists,
            scratch: Scratch {
                va_requests: Vec::with_capacity(n_in * num_vcs),
                va_contenders: Vec::with_capacity(n_in * num_vcs),
                sa_nominee: vec![None; n_in],
                sa_grants: (0..n_in).map(|_| Vec::with_capacity(n_out)).collect(),
            },
        }
    }

    /// Node this router serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Router kind (full or half).
    pub fn kind(&self) -> RouterKind {
        self.kind
    }

    /// Pipeline timing.
    pub fn timing(&self) -> RouterTiming {
        self.timing
    }

    /// Number of local injection ports.
    pub fn inject_ports(&self) -> usize {
        self.n_inject
    }

    /// Number of local ejection ports.
    pub fn eject_ports(&self) -> usize {
        self.n_eject
    }

    /// Free buffer slots in injection port `port`, VC `vc`.
    pub fn inject_space(&self, port: usize, vc: u8) -> usize {
        self.inputs[4 + port].vc(vc).free_slots()
    }

    /// Total flits buffered in all input units (used by drain detection).
    pub fn occupancy(&self) -> usize {
        self.inputs.iter().map(InputUnit::occupancy).sum()
    }

    /// Flits buffered on one virtual channel, summed over all input
    /// ports (telemetry: per-VC buffer-occupancy breakdown).
    pub fn vc_occupancy(&self, vc: u8) -> usize {
        self.inputs.iter().map(|i| i.vc(vc).len()).sum()
    }

    /// `true` when a `step` would be a no-op: no input VC holds a flit.
    ///
    /// With empty FIFOs every pipeline stage bails out before touching an
    /// arbiter pointer or a VC state, so an idle router's step has no
    /// observable effect and the network may skip it outright. A VC may
    /// still be mid-packet (`Active` with its body flits in flight
    /// upstream), but such a VC does nothing until the next flit arrives —
    /// and that arrival re-wakes the router.
    pub fn is_idle(&self) -> bool {
        self.occupancy() == 0
    }

    /// Delivers a flit to input `in_port`, VC `vc`, arriving at `now`.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is full (credit protocol violation).
    pub fn accept_flit(&mut self, in_port: usize, vc: u8, flit: Flit, now: u64) {
        self.inputs[in_port].vc_mut(vc).push(flit, now);
    }

    /// Returns a credit for `(out_port, vc)`.
    ///
    /// # Panics
    ///
    /// Panics if credits would exceed the downstream buffer depth.
    pub fn accept_credit(&mut self, out_port: usize, vc: u8) {
        let c = &mut self.credits[out_port][vc as usize];
        *c += 1;
        assert!(
            *c as usize <= self.vc_depth,
            "credit overflow on router {} out port {out_port} vc {vc}",
            self.node
        );
    }

    /// Runs one cycle of the router pipeline, appending emitted flits and
    /// credits to `out`.
    pub fn step(&mut self, now: u64, ctx: &RouteCtx<'_>, out: &mut RouterOutputs) {
        self.route_compute(now, ctx);
        self.vc_allocate(now);
        self.switch_allocate(now, out);
    }

    /// RC stage: idle VCs with a head flit at the front get a route.
    fn route_compute(&mut self, _now: u64, ctx: &RouteCtx<'_>) {
        for in_port in 0..self.inputs.len() {
            for vc in 0..self.num_vcs {
                let unit = &mut self.inputs[in_port];
                let ivc = unit.vc_mut(vc as u8);
                if ivc.state != VcState::Idle {
                    continue;
                }
                let Some((flit, arrival)) = ivc.front_mut() else { continue };
                assert!(
                    flit.is_head(),
                    "body flit at front of idle VC (packet interleaving bug) at router {}",
                    self.node
                );
                let arrival = *arrival;
                let dec =
                    routing::next_hop(ctx.routing, &ctx.layout, ctx.mesh, self.node, &mut flit.hdr);
                let out_port = match dec.out {
                    OutPort::Dir(d) => {
                        assert!(
                            self.dir_exists[d.index()],
                            "route points off the mesh edge at router {}",
                            self.node
                        );
                        d.index()
                    }
                    OutPort::Eject => 4 + (flit.hdr.id as usize % self.n_eject),
                };
                let ik = if in_port < 4 {
                    InPort::Dir(Direction::from_index(in_port))
                } else {
                    InPort::Inject((in_port - 4) as u8)
                };
                let ok = if out_port < 4 {
                    OutPortKind::Dir(Direction::from_index(out_port))
                } else {
                    OutPortKind::Eject((out_port - 4) as u8)
                };
                assert!(
                    connection_allowed(self.kind, ik, ok),
                    "routing used an illegal {:?} -> {:?} connection at {:?} router {}",
                    ik,
                    ok,
                    self.kind,
                    self.node
                );
                ivc.state = VcState::Waiting {
                    out_port,
                    vcs: dec.vcs,
                    va_eligible: arrival + self.timing.rc_delay,
                };
            }
        }
    }

    /// VA stage: input-first separable allocation of downstream VCs.
    fn vc_allocate(&mut self, now: u64) {
        // Gather one (out_port, out_vc) request per eligible waiting VC.
        // requests[i] = (out_port, out_vc, in_port, vc)
        let mut requests = std::mem::take(&mut self.scratch.va_requests);
        let mut contenders = std::mem::take(&mut self.scratch.va_contenders);
        requests.clear();
        for in_port in 0..self.inputs.len() {
            for vc in 0..self.num_vcs {
                let ivc = self.inputs[in_port].vc(vc as u8);
                let VcState::Waiting { out_port, vcs, va_eligible } = ivc.state else {
                    continue;
                };
                if va_eligible > now {
                    continue;
                }
                if let Some(cand) = self.pick_candidate_vc(in_port, vc as u8, out_port, vcs) {
                    requests.push((out_port, cand, in_port, vc as u8));
                }
            }
        }
        // Output-side arbitration per (out_port, out_vc).
        let mut i = 0;
        while i < requests.len() {
            let (op, ovc, _, _) = requests[i];
            // Collect the contenders for this output VC.
            contenders.clear();
            contenders.extend(
                requests
                    .iter()
                    .filter(|&&(o, v, _, _)| o == op && v == ovc)
                    .map(|&(_, _, ip, iv)| (ip, iv)),
            );
            let arb = &mut self.va_arb[op][ovc as usize];
            let winner_flat = arb
                .pick(|flat| {
                    let ip = flat / self.num_vcs;
                    let iv = (flat % self.num_vcs) as u8;
                    contenders.contains(&(ip, iv))
                })
                .expect("at least one contender requested this output VC");
            let (wip, wiv) = (winner_flat / self.num_vcs, (winner_flat % self.num_vcs) as u8);
            // Grant.
            self.out_vc_owner[op][ovc as usize] = Some((wip, wiv));
            let ivc = self.inputs[wip].vc_mut(wiv);
            ivc.state = VcState::Active { out_port: op, out_vc: ovc, va_cycle: now };
            ivc.vc_request_cursor = ivc.vc_request_cursor.wrapping_add(1);
            // Remove all requests for this output VC and by this input VC.
            requests.retain(|&(o, v, ip, iv)| !((o == op && v == ovc) || (ip == wip && iv == wiv)));
            // Restart scanning (simplest; request lists are tiny).
            i = 0;
        }
        self.scratch.va_requests = requests;
        self.scratch.va_contenders = contenders;
    }

    /// Picks one candidate downstream VC for a waiting input VC, rotating
    /// through the allowed set with the VC's request cursor.
    fn pick_candidate_vc(
        &self,
        _in_port: usize,
        _vc: u8,
        out_port: usize,
        vcs: VcSet,
    ) -> Option<u8> {
        let cursor = self.inputs[_in_port].vc(_vc).vc_request_cursor;
        let n = vcs.count as usize;
        for off in 0..n {
            let ovc = vcs.first + ((cursor as usize + off) % n) as u8;
            if self.out_vc_owner[out_port][ovc as usize].is_none() {
                return Some(ovc);
            }
        }
        None
    }

    /// SA stage: one flit per input port, one flit per output port.
    fn switch_allocate(&mut self, now: u64, out: &mut RouterOutputs) {
        match self.allocator {
            AllocatorKind::InputFirst => self.switch_allocate_input_first(now, out),
            AllocatorKind::OutputFirst => self.switch_allocate_output_first(now, out),
        }
    }

    /// Commits one switch grant: moves the flit, returns credits, updates
    /// VC state.
    fn commit_grant(&mut self, ip: usize, vc: u8, op: usize, out_vc: u8, out: &mut RouterOutputs) {
        let ivc = self.inputs[ip].vc_mut(vc);
        let (flit, _) = ivc.pop().expect("granted VC has a flit");
        if flit.is_tail() {
            self.out_vc_owner[op][out_vc as usize] = None;
            ivc.state = VcState::Idle;
        }
        let c = &mut self.credits[op][out_vc as usize];
        assert!(*c > 0, "SA granted without a credit");
        *c -= 1;
        if ip < 4 {
            out.credits.push((Direction::from_index(ip), vc));
        }
        out.flits.push((op, out_vc, flit));
    }

    /// Separable output-first allocation: outputs grant, inputs accept.
    fn switch_allocate_output_first(&mut self, now: u64, out: &mut RouterOutputs) {
        let n_in = self.inputs.len();
        let n_out = self.credits.len();
        // Phase 1: each output grants one requesting (input, vc).
        let mut grant_to_input = std::mem::take(&mut self.scratch.sa_grants);
        for g in &mut grant_to_input {
            g.clear();
        }
        for op in 0..n_out {
            let winner = self.sa_out_arb[op].peek(|ip| {
                (0..self.num_vcs).any(|vc| {
                    matches!(
                        self.inputs[ip].vc(vc as u8).state,
                        VcState::Active { out_port, .. } if out_port == op
                    ) && self.sa_ready(ip, vc as u8, now)
                })
            });
            if let Some(ip) = winner {
                // Which VC of that input targets this output? Use the
                // input's RR pointer for fairness among its VCs.
                if let Some(vc) = self.sa_in_arb[ip].peek(|vc| {
                    matches!(
                        self.inputs[ip].vc(vc as u8).state,
                        VcState::Active { out_port, .. } if out_port == op
                    ) && self.sa_ready(ip, vc as u8, now)
                }) {
                    if let VcState::Active { out_vc, .. } = self.inputs[ip].vc(vc as u8).state {
                        grant_to_input[ip].push((vc as u8, op, out_vc));
                    }
                }
            }
        }
        // Phase 2: each input accepts one grant (RR over its VCs).
        #[allow(clippy::needless_range_loop)]
        for ip in 0..n_in {
            if grant_to_input[ip].is_empty() {
                continue;
            }
            let pick = self.sa_in_arb[ip]
                .peek(|vc| grant_to_input[ip].iter().any(|&(v, _, _)| v as usize == vc))
                .expect("at least one grant");
            let &(vc, op, out_vc) = grant_to_input[ip]
                .iter()
                .find(|&&(v, _, _)| v as usize == pick)
                .expect("picked grant present");
            self.sa_in_arb[ip].advance_past(vc as usize);
            self.sa_out_arb[op].advance_past(ip);
            self.commit_grant(ip, vc, op, out_vc, out);
        }
        self.scratch.sa_grants = grant_to_input;
    }

    /// Separable input-first (iSLIP) allocation.
    fn switch_allocate_input_first(&mut self, now: u64, out: &mut RouterOutputs) {
        let n_out = self.credits.len();
        // Phase 1: each input port nominates one VC (in_vc, out_port, out_vc).
        let mut nominee = std::mem::take(&mut self.scratch.sa_nominee);
        nominee.iter_mut().for_each(|slot| *slot = None);
        for (in_port, slot) in nominee.iter_mut().enumerate() {
            let pick = self.sa_in_arb[in_port].peek(|vc| self.sa_ready(in_port, vc as u8, now));
            if let Some(vc) = pick {
                if let VcState::Active { out_port, out_vc, .. } =
                    self.inputs[in_port].vc(vc as u8).state
                {
                    *slot = Some((vc as u8, out_port, out_vc));
                }
            }
        }
        // Phase 2: each output port picks one nominating input port.
        for op in 0..n_out {
            let winner =
                self.sa_out_arb[op].peek(|ip| matches!(nominee[ip], Some((_, p, _)) if p == op));
            let Some(ip) = winner else { continue };
            let (vc, _, out_vc) = nominee[ip].expect("winner nominated");
            // Accept: advance both pointers (iSLIP), move the flit.
            self.sa_out_arb[op].advance_past(ip);
            self.sa_in_arb[ip].advance_past(vc as usize);
            self.commit_grant(ip, vc, op, out_vc, out);
        }
        self.scratch.sa_nominee = nominee;
    }

    /// `true` if input VC `(in_port, vc)` may compete for the switch at
    /// `now`: active, flit buffered, downstream credit available, and (for
    /// freshly arrived head flits on multi-stage routers) VC allocation
    /// happened in an earlier cycle.
    ///
    /// Heads of packets that were already queued behind another packet get
    /// their switch grant in the VA cycle: a pipelined router overlaps
    /// their route computation and allocation with the previous packet's
    /// tail, so back-to-back packets on one VC lose only the allocation
    /// bubble, not the whole pipeline depth.
    fn sa_ready(&self, in_port: usize, vc: u8, now: u64) -> bool {
        let ivc = self.inputs[in_port].vc(vc);
        let VcState::Active { out_port, out_vc, va_cycle } = ivc.state else {
            return false;
        };
        let Some(&(flit, arrival)) = ivc.front() else { return false };
        if self.credits[out_port][out_vc as usize] == 0 {
            return false;
        }
        if flit.is_head()
            && !self.timing.same_cycle_sa
            && va_cycle >= now
            && va_cycle <= arrival + self.timing.rc_delay
        {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    fn ctx(mesh: &Mesh) -> RouteCtx<'_> {
        RouteCtx { mesh, routing: RoutingKind::DorXy, layout: VcLayout::new(2, 2, false) }
    }

    fn make_router(node: NodeId, mesh: &Mesh, stages: u32) -> Router {
        let dir_exists =
            std::array::from_fn(|i| mesh.neighbor(node, Direction::from_index(i)).is_some());
        Router::new(
            node,
            mesh.kind(node),
            RouterTiming::from_stages(stages),
            2,
            8,
            1,
            1,
            dir_exists,
        )
    }

    fn head_flit(src: NodeId, dst: NodeId) -> Flit {
        let mut p = Packet::request(src, dst, 8, 7);
        p.header.flits = 1;
        p.header.id = 1;
        Flit { hdr: p.header, seq: 0 }
    }

    /// A single flit crossing a 4-stage router departs exactly at
    /// arrival + 2 (RC in the arrival cycle, VA next, SA the cycle after).
    #[test]
    fn four_stage_pipeline_timing() {
        let mesh = Mesh::all_full(4);
        let node = mesh.node(crate::types::Coord::new(1, 1));
        let dst = mesh.node(crate::types::Coord::new(3, 1));
        let mut r = make_router(node, &mesh, 4);
        let c = ctx(&mesh);
        let mut out = RouterOutputs::default();
        r.accept_flit(4, 0, head_flit(node, dst), 10);
        for now in 10..=11 {
            r.step(now, &c, &mut out);
            assert!(out.flits.is_empty(), "flit must not depart at cycle {now}");
        }
        r.step(12, &c, &mut out);
        assert_eq!(out.flits.len(), 1);
        let (op, _, f) = out.flits[0];
        assert_eq!(op, Direction::East.index());
        assert_eq!(f.hdr.dst, dst);
    }

    /// A 1-cycle router forwards an injected flit in its arrival cycle.
    #[test]
    fn single_cycle_pipeline_timing() {
        let mesh = Mesh::all_full(4);
        let node = mesh.node(crate::types::Coord::new(1, 1));
        let dst = mesh.node(crate::types::Coord::new(1, 3));
        let mut r = make_router(node, &mesh, 1);
        let c = ctx(&mesh);
        let mut out = RouterOutputs::default();
        r.accept_flit(4, 0, head_flit(node, dst), 5);
        r.step(5, &c, &mut out);
        assert_eq!(out.flits.len(), 1);
        assert_eq!(out.flits[0].0, Direction::South.index());
    }

    /// Ejection at the destination goes to an eject output port.
    #[test]
    fn ejects_at_destination() {
        let mesh = Mesh::all_full(4);
        let node = mesh.node(crate::types::Coord::new(2, 2));
        let mut r = make_router(node, &mesh, 1);
        let c = ctx(&mesh);
        let mut out = RouterOutputs::default();
        r.accept_flit(0, 0, head_flit(5, node), 3);
        r.step(3, &c, &mut out);
        assert_eq!(out.flits.len(), 1);
        assert_eq!(out.flits[0].0, 4, "ejection port index");
        // A credit is returned upstream for the consumed direction-port slot.
        assert_eq!(out.credits, vec![(Direction::North, 0)]);
    }

    /// Without credits, flits stay buffered; returning a credit releases
    /// them.
    #[test]
    fn blocks_without_credits_and_resumes() {
        let mesh = Mesh::all_full(4);
        let node = mesh.node(crate::types::Coord::new(1, 1));
        let dst = mesh.node(crate::types::Coord::new(3, 1));
        let mut r = make_router(node, &mesh, 1);
        // Drain all credits for East VC0 and VC1 (request class VC is 0,
        // but exhaust both to be safe).
        for vc in 0..2u8 {
            for _ in 0..8 {
                r.credits[Direction::East.index()][vc as usize] -= 0; // keep clippy quiet
            }
        }
        r.credits[Direction::East.index()] = vec![0, 0];
        let c = ctx(&mesh);
        let mut out = RouterOutputs::default();
        r.accept_flit(4, 0, head_flit(node, dst), 1);
        for now in 1..5 {
            r.step(now, &c, &mut out);
            assert!(out.flits.is_empty());
        }
        r.accept_credit(Direction::East.index(), 0);
        r.step(5, &c, &mut out);
        assert_eq!(out.flits.len(), 1);
    }

    /// Two inputs contending for one output share it fairly over time.
    #[test]
    fn output_contention_is_fair() {
        let mesh = Mesh::all_full(4);
        let node = mesh.node(crate::types::Coord::new(1, 1));
        let dst = mesh.node(crate::types::Coord::new(3, 1)); // east of node
        let mut r = make_router(node, &mesh, 1);
        let c = ctx(&mesh);
        let mut out = RouterOutputs::default();
        // Multi-flit packets from the injection port and the west input,
        // both heading east. Give them distinct ids.
        let mk = |id: u64, flits: u16| {
            let mut p = Packet::request(0, dst, 16 * flits as u32, 0);
            p.header.flits = flits;
            p.header.id = id;
            p.header
        };
        let h1 = mk(1, 3);
        let h2 = mk(2, 3);
        for seq in 0..3u16 {
            r.accept_flit(4, 0, Flit { hdr: h1, seq }, 0);
            r.accept_flit(Direction::West.index(), 0, Flit { hdr: h2, seq }, 0);
        }
        let mut sent = Vec::new();
        for now in 0..20 {
            out.clear();
            r.step(now, &c, &mut out);
            for &(op, _, f) in &out.flits {
                assert_eq!(op, Direction::East.index());
                sent.push(f.hdr.id);
            }
        }
        assert_eq!(sent.len(), 6, "all six flits forwarded");
        // Each packet's flits stay in order.
        let p1: Vec<_> = sent.iter().filter(|&&i| i == 1).collect();
        let p2: Vec<_> = sent.iter().filter(|&&i| i == 2).collect();
        assert_eq!(p1.len(), 3);
        assert_eq!(p2.len(), 3);
    }

    /// The half-router rejects routes that would turn within it.
    #[test]
    #[should_panic(expected = "illegal")]
    fn half_router_asserts_on_illegal_turn() {
        let mesh = Mesh::checkerboard(4);
        // Node (1,0) is a half-router.
        let node = mesh.node(crate::types::Coord::new(1, 0));
        assert!(mesh.is_half(node));
        let mut r = make_router(node, &mesh, 3);
        let c = ctx(&mesh); // DOR XY — will try to turn at this half-router
        let mut out = RouterOutputs::default();
        // Flit entering from the west, destined below the router: XY says
        // turn south here, which a half-router cannot do.
        let dst = mesh.node(crate::types::Coord::new(1, 3));
        r.accept_flit(Direction::West.index(), 0, head_flit(0, dst), 0);
        r.step(0, &c, &mut out);
    }

    /// Credit accounting round-trips: after a flit departs, returning the
    /// credit restores full capacity.
    #[test]
    fn credit_roundtrip() {
        let mesh = Mesh::all_full(4);
        let node = mesh.node(crate::types::Coord::new(1, 1));
        let dst = mesh.node(crate::types::Coord::new(3, 1));
        let mut r = make_router(node, &mesh, 1);
        let c = ctx(&mesh);
        let mut out = RouterOutputs::default();
        r.accept_flit(4, 0, head_flit(node, dst), 0);
        r.step(0, &c, &mut out);
        assert_eq!(r.credits[Direction::East.index()][0], 7);
        r.accept_credit(Direction::East.index(), 0);
        assert_eq!(r.credits[Direction::East.index()][0], 8);
    }

    /// Packets with different ids spread across a router's two ejection
    /// ports round-robin (by id), doubling terminal ejection bandwidth.
    #[test]
    fn multiple_eject_ports_share_deliveries() {
        let mesh = Mesh::all_full(4);
        let node = mesh.node(crate::types::Coord::new(1, 1));
        let dir_exists =
            std::array::from_fn(|i| mesh.neighbor(node, Direction::from_index(i)).is_some());
        let mut r = Router::new(
            node,
            mesh.kind(node),
            RouterTiming::from_stages(1),
            2,
            8,
            1,
            2, // two ejection ports
            dir_exists,
        );
        let c = ctx(&mesh);
        let mut out = RouterOutputs::default();
        let mut ports_used = std::collections::HashSet::new();
        for id in 0..4u64 {
            let mut p = Packet::request(0, node, 8, 0);
            p.header.flits = 1;
            p.header.id = id;
            r.accept_flit(
                Direction::North.index(),
                (id % 2) as u8,
                Flit { hdr: p.header, seq: 0 },
                id,
            );
            out.clear();
            r.step(id, &c, &mut out);
            for &(op, _, _) in &out.flits {
                assert!(op == 4 || op == 5, "must leave via an eject port");
                ports_used.insert(op);
            }
        }
        // Drain remaining cycles.
        for now in 4..10 {
            out.clear();
            r.step(now, &c, &mut out);
            for &(op, _, _) in &out.flits {
                ports_used.insert(op);
            }
        }
        assert_eq!(ports_used.len(), 2, "both ejection ports used: {ports_used:?}");
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_asserts() {
        let mesh = Mesh::all_full(4);
        let node = mesh.node(crate::types::Coord::new(1, 1));
        let mut r = make_router(node, &mesh, 1);
        r.accept_credit(Direction::East.index(), 0);
    }
}
