//! A complete single physical network (routers + channels + network
//! interfaces), and the channel-sliced double network.

use crate::activeset::ActiveSet;
use crate::channel::Channel;
use crate::config::NetworkConfig;
use crate::interconnect::Interconnect;
use crate::packet::{EjectedPacket, Packet, PacketClass, PacketHeader};
use crate::router::{RouteCtx, Router, RouterOutputs};
use crate::routing::{self};
use crate::stats::NetStats;
use crate::telemetry::{
    dir_label, FlightEvent, LinkRecord, NetTelemetry, TelemetryConfig, TelemetryReport,
};
use crate::tick::Tick;
use crate::types::{Direction, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// A packet being streamed flit-by-flit into a router injection port.
#[derive(Copy, Clone, Debug)]
struct NiPacket {
    hdr: PacketHeader,
    next_seq: u16,
    vc: Option<u8>,
}

/// One physical mesh network.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Network {
    cfg: NetworkConfig,
    routers: Vec<Router>,
    /// Outgoing channel of `node` toward direction `d` at index
    /// `node * 4 + d.index()` (unused entries exist at mesh edges).
    channels: Vec<Channel>,
    /// Per node, per injection port: packet currently being streamed.
    ni: Vec<Vec<Option<NiPacket>>>,
    /// Round-robin cursor over injection ports per node.
    ni_cursor: Vec<usize>,
    /// Ejected packets per node.
    ejected: Vec<VecDeque<EjectedPacket>>,
    /// Ejection-buffer credits to return `(due, node, out_port, vc)`.
    eject_credits: VecDeque<(u64, NodeId, usize, u8)>,
    cycle: u64,
    stats: NetStats,
    rng: SmallRng,
    next_pkt_id: u64,
    scratch: RouterOutputs,
    /// Nodes with (possible) work this cycle. Nodes are woken by flit
    /// arrival, credit return, or NI injection, and retired when provably
    /// idle; see [`Network::node_idle`].
    active: ActiveSet,
    /// Compatibility mode: step every node every cycle (the pre-scheduler
    /// behavior) instead of only the active set.
    full_sweep: bool,
    /// Router `step` invocations since construction (scheduler telemetry).
    routers_stepped: u64,
    /// Observability instruments (link counters, occupancy integrals, the
    /// flight recorder). `None` — the default — keeps every hot path free
    /// of telemetry work: no allocations, no RNG draws, no branches beyond
    /// the `Option` check. See DESIGN.md §13.
    telemetry: Option<Box<NetTelemetry>>,
}

impl Network {
    /// Builds a network from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: NetworkConfig) -> Self {
        cfg.validate().expect("invalid network configuration");
        crate::audit::audit(&cfg);
        let n = cfg.mesh.len();
        let routers = (0..n)
            .map(|node| {
                let dir_exists = std::array::from_fn(|i| {
                    cfg.mesh.neighbor(node, Direction::from_index(i)).is_some()
                });
                Router::with_allocator(
                    node,
                    cfg.mesh.kind(node),
                    cfg.timing(node),
                    cfg.allocator,
                    cfg.vcs.total as usize,
                    cfg.vc_depth,
                    cfg.inject_ports(node),
                    cfg.eject_ports(node),
                    dir_exists,
                )
            })
            .collect();
        let ni = (0..n).map(|node| vec![None; cfg.inject_ports(node)]).collect();
        Network {
            routers,
            channels: (0..n * 4).map(|_| Channel::new()).collect(),
            ni,
            ni_cursor: vec![0; n],
            ejected: (0..n).map(|_| VecDeque::new()).collect(),
            eject_credits: VecDeque::new(),
            cycle: 0,
            stats: NetStats::new(n),
            rng: SmallRng::seed_from_u64(cfg.seed),
            next_pkt_id: 1,
            scratch: RouterOutputs::default(),
            active: ActiveSet::all(n),
            full_sweep: false,
            routers_stepped: 0,
            telemetry: None,
            cfg,
        }
    }

    /// Forces the pre-scheduler full sweep: every node is stepped every
    /// cycle regardless of the active set. Wake events are still recorded,
    /// so the mode can be toggled mid-run without losing nodes.
    pub fn set_full_sweep(&mut self, on: bool) {
        self.full_sweep = on;
    }

    /// Number of nodes currently in the active set.
    pub fn active_routers(&self) -> usize {
        self.active.count()
    }

    /// Total router `step` invocations since construction.
    pub fn routers_stepped(&self) -> u64 {
        self.routers_stepped
    }

    /// The network's configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// `true` if all injection ports at `node` are busy streaming a packet.
    pub fn inject_ports_busy(&self, node: NodeId) -> bool {
        self.ni[node].iter().all(Option::is_some)
    }

    /// Per-link traffic: `(source node, direction, flits carried)` for
    /// every physical channel, in node order. Divide by
    /// [`Interconnect::cycle`] for utilization (flits/cycle; 1.0 = fully
    /// utilized link).
    pub fn link_loads(&self) -> Vec<(NodeId, Direction, u64)> {
        let mut out = Vec::new();
        self.link_loads_into(&mut out);
        out
    }

    /// Writes per-link traffic into a caller-provided buffer (cleared
    /// first), so hot read paths can reuse one allocation across calls.
    pub fn link_loads_into(&self, out: &mut Vec<(NodeId, Direction, u64)>) {
        out.clear();
        for node in 0..self.cfg.mesh.len() {
            for dir in Direction::ALL {
                if self.cfg.mesh.neighbor(node, dir).is_some() {
                    out.push((node, dir, self.channels[node * 4 + dir.index()].total_flits()));
                }
            }
        }
    }

    /// Arms the observability layer: latency histograms in the stats,
    /// per-link/per-VC flit counters, buffer-occupancy sampling, and the
    /// flit flight recorder. All buffers are allocated here, once; the
    /// instrumented paths never allocate afterwards. Telemetry observes
    /// the simulation without influencing it — enabling it changes no
    /// simulated outcome.
    pub fn arm_telemetry(&mut self, tcfg: TelemetryConfig) {
        self.stats.enable_histograms();
        self.telemetry = Some(Box::new(NetTelemetry::new(
            self.cfg.mesh.len(),
            self.cfg.vcs.total as usize,
            tcfg,
        )));
    }

    /// `true` once [`Network::arm_telemetry`] has been called.
    pub fn telemetry_armed(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Builds a serializable snapshot of the armed telemetry, labeled
    /// `label` (e.g. `net`, `request`, `reply`). Returns `None` when
    /// telemetry was never armed.
    pub fn telemetry_report(&self, label: &str) -> Option<TelemetryReport> {
        let t = self.telemetry.as_deref()?;
        let radix = self.cfg.mesh.radix();
        let cycles = self.stats.cycles;
        let n = self.cfg.mesh.len();
        let mut links = Vec::new();
        let mut heatmap = vec![vec![0.0f64; radix]; radix];
        for node in 0..n {
            let coord = self.cfg.mesh.coord(node);
            let mut util_sum = 0.0;
            let mut degree = 0u32;
            for dir in Direction::ALL {
                if self.cfg.mesh.neighbor(node, dir).is_none() {
                    continue;
                }
                let flits = t.link_flits(node, dir.index());
                let utilization = if cycles == 0 { 0.0 } else { flits as f64 / cycles as f64 };
                util_sum += utilization;
                degree += 1;
                links.push(LinkRecord {
                    node: node as u64,
                    x: coord.x,
                    y: coord.y,
                    dir: dir_label(dir).to_string(),
                    flits,
                    vc_flits: (0..self.cfg.vcs.total)
                        .map(|vc| t.link_vc_flits(node, dir.index(), vc))
                        .collect(),
                    utilization,
                });
            }
            heatmap[coord.y as usize][coord.x as usize] =
                if degree == 0 { 0.0 } else { util_sum / degree as f64 };
        }
        Some(TelemetryReport {
            label: label.to_string(),
            radix: radix as u64,
            cycles,
            hist: self.stats.hist.unwrap_or_default(),
            links,
            heatmap,
            avg_occupancy: (0..n).map(|node| t.avg_occupancy(node)).collect(),
            flight: t.flight.events(),
            flight_dropped: t.flight.dropped(),
        })
    }

    /// NI phase for one node: streams one flit per busy injection port
    /// into the router, choosing each packet's VC at head injection.
    fn stream_ni_node(&mut self, node: NodeId, now: u64) {
        for port in 0..self.ni[node].len() {
            let Some(mut pkt) = self.ni[node][port] else { continue };
            let in_port = 4 + port;
            // Choose the VC once, at head injection.
            if pkt.vc.is_none() {
                let set = routing::vc_set_for(
                    self.cfg.routing,
                    &self.cfg.vcs,
                    pkt.hdr.class,
                    pkt.hdr.phase,
                );
                let router = &self.routers[node];
                let best = set
                    .iter()
                    .map(|vc| (router.inject_space(port, vc), vc))
                    .filter(|&(space, _)| space > 0)
                    .max_by_key(|&(space, vc)| (space, std::cmp::Reverse(vc)));
                match best {
                    Some((_, vc)) => {
                        pkt.vc = Some(vc);
                        pkt.hdr.injected = now;
                    }
                    None => {
                        self.ni[node][port] = Some(pkt);
                        continue;
                    }
                }
            }
            let vc = pkt.vc.expect("vc chosen above");
            // Stream one flit per cycle while space remains.
            if self.routers[node].inject_space(port, vc) > 0 {
                let flit = crate::packet::Flit { hdr: pkt.hdr, seq: pkt.next_seq };
                self.routers[node].accept_flit(in_port, vc, flit, now);
                pkt.next_seq += 1;
            }
            self.ni[node][port] = if pkt.next_seq >= pkt.hdr.flits { None } else { Some(pkt) };
        }
    }

    /// Delivery phase for one node, receiver-centric: pops this node's due
    /// incoming flits (from each neighbor's channel toward it) and due
    /// returning credits (from its own outgoing channels).
    ///
    /// Every channel FIFO is drained by exactly one receiver, so visiting
    /// receivers in any order yields the same post-phase state as the old
    /// sender-ordered collect-then-apply sweep.
    fn deliver_node(&mut self, node: NodeId, now: u64) {
        for dir in Direction::ALL {
            let Some(neighbor) = self.cfg.mesh.neighbor(node, dir) else { continue };
            // The neighbor toward `dir` sends to us on its outgoing
            // channel toward `dir.opposite()`.
            let inbound = neighbor * 4 + dir.opposite().index();
            while let Some((vc, flit)) = self.channels[inbound].pop_flit(now) {
                self.routers[node].accept_flit(dir.index(), vc, flit, now);
            }
            let outbound = node * 4 + dir.index();
            while let Some(vc) = self.channels[outbound].pop_credit(now) {
                self.routers[node].accept_credit(dir.index(), vc);
            }
        }
    }

    /// Returns due ejection-buffer credits to their routers. Global (not
    /// per-node): a retired router can safely absorb a credit — with no
    /// buffered flits the credit cannot enable work.
    fn return_eject_credits(&mut self, now: u64) {
        while let Some(&(due, node, out_port, vc)) = self.eject_credits.front() {
            if due > now {
                break;
            }
            self.eject_credits.pop_front();
            self.routers[node].accept_credit(out_port, vc);
        }
    }

    /// Router phase for one node: runs the pipeline and routes emitted
    /// flits/credits onto channels, waking the receiving nodes.
    fn step_router_node(&mut self, node: NodeId, now: u64) {
        self.routers_stepped += 1;
        let timing = self.routers[node].timing();
        let flit_delay = timing.st_delay + self.cfg.link_latency as u64 + 1;
        self.scratch.clear();
        {
            let ctx =
                RouteCtx { mesh: &self.cfg.mesh, routing: self.cfg.routing, layout: self.cfg.vcs };
            self.routers[node].step(now, &ctx, &mut self.scratch);
        }
        for i in 0..self.scratch.flits.len() {
            let (out_port, vc, flit) = self.scratch.flits[i];
            if let Some(t) = &mut self.telemetry {
                if out_port < 4 {
                    t.count_link_flit(node, out_port, vc);
                }
                if t.flight.armed_for(&flit.hdr) {
                    t.flight.record(FlightEvent {
                        packet: flit.hdr.id,
                        class: flit.hdr.class.index() as u8,
                        seq: flit.seq,
                        node: node as u64,
                        out_port: out_port as u8,
                        cycle: now,
                    });
                }
            }
            if out_port < 4 {
                self.channels[node * 4 + out_port].push_flit(now + flit_delay, vc, flit);
                let neighbor = self
                    .cfg
                    .mesh
                    .neighbor(node, Direction::from_index(out_port))
                    .expect("router checked the direction exists");
                self.active.insert(neighbor);
            } else {
                // Ejection: the sink consumes immediately and returns
                // the buffer credit next cycle.
                debug_assert!(
                    self.eject_credits.back().is_none_or(|&(due, ..)| due <= now + 1),
                    "eject credit queue must stay due-ordered"
                );
                self.eject_credits.push_back((now + 1, node, out_port, vc));
                if flit.is_tail() {
                    let pkt = EjectedPacket { header: flit.hdr, ejected: now };
                    self.stats.record_ejection(&pkt);
                    self.ejected[node].push_back(pkt);
                }
            }
        }
        for i in 0..self.scratch.credits.len() {
            let (in_dir, vc) = self.scratch.credits[i];
            let upstream = self
                .cfg
                .mesh
                .neighbor(node, in_dir)
                .expect("credit for a direction port implies a neighbor");
            self.channels[upstream * 4 + in_dir.opposite().index()].push_credit(now + 1, vc);
            self.active.insert(upstream);
        }
    }

    /// `true` when the node can do nothing this cycle or any future cycle
    /// without a new wake event: its router buffers are empty, no NI
    /// stream is in flight, no flit is inbound on any incoming channel,
    /// and no credit is returning on any outgoing channel.
    fn node_idle(&self, node: NodeId) -> bool {
        if !self.routers[node].is_idle() {
            return false;
        }
        if self.ni[node].iter().any(Option::is_some) {
            return false;
        }
        for dir in Direction::ALL {
            let Some(neighbor) = self.cfg.mesh.neighbor(node, dir) else { continue };
            if self.channels[neighbor * 4 + dir.opposite().index()].flits_in_flight() > 0 {
                return false;
            }
            if self.channels[node * 4 + dir.index()].credits_in_flight() > 0 {
                return false;
            }
        }
        true
    }
}

impl Tick for Network {
    fn tick(&mut self) {
        let now = self.cycle;
        if self.full_sweep {
            for node in 0..self.cfg.mesh.len() {
                self.deliver_node(node, now);
            }
            self.return_eject_credits(now);
            for node in 0..self.cfg.mesh.len() {
                self.stream_ni_node(node, now);
            }
            for node in 0..self.cfg.mesh.len() {
                self.step_router_node(node, now);
            }
        } else {
            // Ascending active-node order: identical visit order to the
            // full sweep, minus nodes whose visit would be a no-op.
            let mut i = 0;
            while let Some(node) = self.active.next_from(i) {
                self.deliver_node(node, now);
                i = node + 1;
            }
            self.return_eject_credits(now);
            let mut i = 0;
            while let Some(node) = self.active.next_from(i) {
                self.stream_ni_node(node, now);
                i = node + 1;
            }
            let mut i = 0;
            while let Some(node) = self.active.next_from(i) {
                self.step_router_node(node, now);
                i = node + 1;
            }
            let mut i = 0;
            while let Some(node) = self.active.next_from(i) {
                if self.node_idle(node) {
                    self.active.remove(node);
                }
                i = node + 1;
            }
        }
        if self.telemetry.is_some() {
            self.sample_occupancy();
        }
        self.stats.cycles += 1;
        self.cycle += 1;
    }
}

impl Network {
    /// Telemetry: accumulates this cycle's buffered-flit count per router.
    /// Nodes outside the active set are provably idle (empty buffers, see
    /// [`Network::node_idle`]), so sampling only active nodes is exact in
    /// scheduler mode; the full sweep samples everyone.
    fn sample_occupancy(&mut self) {
        let t = self.telemetry.as_mut().expect("caller checked");
        if self.full_sweep {
            for node in 0..self.routers.len() {
                t.add_occupancy_sample(node, self.routers[node].occupancy() as u64);
            }
        } else {
            let mut i = 0;
            while let Some(node) = self.active.next_from(i) {
                t.add_occupancy_sample(node, self.routers[node].occupancy() as u64);
                i = node + 1;
            }
        }
        t.tick_occupancy();
    }
}

impl Interconnect for Network {
    fn try_inject(&mut self, node: NodeId, mut packet: Packet) -> Result<(), Packet> {
        self.stats.inject_attempts_by_node[node] += 1;
        let ports = self.ni[node].len();
        let start = self.ni_cursor[node];
        let free = (0..ports).map(|i| (start + i) % ports).find(|&p| self.ni[node][p].is_none());
        let Some(port) = free else {
            self.stats.inject_blocked_by_node[node] += 1;
            return Err(packet);
        };
        self.ni_cursor[node] = (port + 1) % ports;

        let hdr = &mut packet.header;
        let (phase, via) =
            routing::plan_injection(self.cfg.routing, &self.cfg.mesh, node, hdr.dst, &mut self.rng)
                .expect("workload sent a packet between unroutable checkerboard endpoints");
        hdr.src = node;
        hdr.phase = phase;
        hdr.via = via;
        hdr.id = self.next_pkt_id;
        self.next_pkt_id += 1;
        hdr.flits = Packet { header: *hdr }.flits_at_width(self.cfg.channel_bytes);
        if hdr.created == PacketHeader::CREATED_UNSET {
            hdr.created = self.cycle;
        }
        self.stats.injected_flits_by_node[node] += hdr.flits as u64;
        self.ni[node][port] = Some(NiPacket { hdr: *hdr, next_seq: 0, vc: None });
        self.active.insert(node);
        Ok(())
    }

    fn pop(&mut self, node: NodeId) -> Option<EjectedPacket> {
        self.ejected[node].pop_front()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn stats(&self) -> NetStats {
        self.stats.clone()
    }

    fn in_flight(&self) -> usize {
        let buffered: usize = self.routers.iter().map(Router::occupancy).sum();
        let flying: usize = self.channels.iter().map(Channel::flits_in_flight).sum();
        let pending: usize = self
            .ni
            .iter()
            .flatten()
            .filter_map(|p| p.map(|p| (p.hdr.flits - p.next_seq) as usize))
            .sum();
        buffered + flying + pending
    }

    fn flit_hops(&self) -> u64 {
        self.channels.iter().map(Channel::total_flits).sum()
    }

    fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.arm_telemetry(cfg);
    }

    fn telemetry_reports_into(&self, out: &mut Vec<TelemetryReport>) {
        out.extend(self.telemetry_report("net"));
    }
}

/// Two parallel channel-sliced networks: one dedicated to requests, one to
/// replies (paper Section IV-C).
///
/// Each subnetwork runs at half the channel width of the single network it
/// replaces, keeping total bisection bandwidth constant while shrinking
/// crossbar area quadratically. Because classes are physically separated,
/// no virtual channels are needed for protocol deadlock avoidance.
pub struct DoubleNetwork {
    request: Network,
    reply: Network,
}

impl DoubleNetwork {
    /// Builds a double network from a per-subnetwork configuration.
    ///
    /// `sub_cfg.channel_bytes` is the width of *each* slice (e.g. 8 bytes
    /// to match a 16-byte single network), and its VC layout should carry
    /// a single class.
    ///
    /// # Panics
    ///
    /// Panics if the configuration declares more than one class per
    /// subnetwork or fails validation.
    pub fn new(sub_cfg: NetworkConfig) -> Self {
        assert_eq!(sub_cfg.vcs.classes, 1, "double network slices carry one class each");
        let mut reply_cfg = sub_cfg.clone();
        reply_cfg.seed = sub_cfg.seed.wrapping_add(0x9e37_79b9);
        DoubleNetwork { request: Network::new(sub_cfg), reply: Network::new(reply_cfg) }
    }

    /// Derives a double network from a single-network configuration by
    /// halving the channel width and splitting the VC layout.
    ///
    /// Channel slicing shrinks the *fabric* datapath, not the terminal
    /// interface: the MC network interfaces still move the original
    /// channel width per cycle, so each slice's MC routers carry
    /// `slice factor x` the configured local ports. (The paper's
    /// Figure 18 — double network ~= single network — requires terminal
    /// bandwidth to be preserved; Table VI's area accounting likewise
    /// charges extra *16-byte-equivalent* ports only for the explicit 2P
    /// design.)
    ///
    /// # Panics
    ///
    /// Panics if the single network's channel width is not even.
    pub fn from_single(cfg: &NetworkConfig) -> Self {
        DoubleNetwork::new(cfg.slice())
    }

    /// The request subnetwork.
    pub fn request_net(&self) -> &Network {
        &self.request
    }

    /// The reply subnetwork.
    pub fn reply_net(&self) -> &Network {
        &self.reply
    }

    fn net_mut(&mut self, class: PacketClass) -> &mut Network {
        match class {
            PacketClass::Request => &mut self.request,
            PacketClass::Reply => &mut self.reply,
        }
    }
}

impl Tick for DoubleNetwork {
    fn tick(&mut self) {
        for net in [&mut self.request, &mut self.reply] {
            net.tick();
        }
    }
}

impl Interconnect for DoubleNetwork {
    fn try_inject(&mut self, node: NodeId, packet: Packet) -> Result<(), Packet> {
        self.net_mut(packet.header.class).try_inject(node, packet)
    }

    fn pop(&mut self, node: NodeId) -> Option<EjectedPacket> {
        self.request.pop(node).or_else(|| self.reply.pop(node))
    }

    fn cycle(&self) -> u64 {
        self.request.cycle()
    }

    fn stats(&self) -> NetStats {
        // The slices tick in lockstep (see `Tick for DoubleNetwork`), so
        // they satisfy merge_parallel's same-window contract by
        // construction; the assert guards against a future skewed-clock
        // refactor silently inflating rates.
        debug_assert_eq!(
            self.request.stats.cycles, self.reply.stats.cycles,
            "double-network slices must share one clock"
        );
        let mut s = self.request.stats();
        s.merge_parallel(&self.reply.stats);
        s
    }

    fn in_flight(&self) -> usize {
        self.request.in_flight() + self.reply.in_flight()
    }

    fn flit_hops(&self) -> u64 {
        self.request.flit_hops() + self.reply.flit_hops()
    }

    fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.request.arm_telemetry(cfg);
        self.reply.arm_telemetry(cfg);
    }

    fn telemetry_reports_into(&self, out: &mut Vec<TelemetryReport>) {
        out.extend(self.request.telemetry_report("request"));
        out.extend(self.reply.telemetry_report("reply"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{NetworkConfig, RoutingKind, VcLayout};
    use crate::types::Coord;

    fn run_until_delivered(net: &mut Network, dst: NodeId, max: u64) -> EjectedPacket {
        for _ in 0..max {
            net.step();
            if let Some(p) = net.pop(dst) {
                return p;
            }
        }
        panic!("packet not delivered within {max} cycles");
    }

    #[test]
    fn single_packet_crosses_baseline_mesh() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mut net = Network::new(cfg);
        let src = 0;
        let dst = 35;
        net.try_inject(src, Packet::request(src, dst, 8, 99)).unwrap();
        let out = run_until_delivered(&mut net, dst, 500);
        assert_eq!(out.header.tag, 99);
        assert_eq!(out.header.src, src);
        assert_eq!(out.header.flits, 1);
        assert_eq!(net.in_flight(), 0, "network drains after delivery");
    }

    /// Zero-load latency of a 1-flit packet over h hops with 4-stage
    /// routers and 1-cycle links is h * 5 plus injection/ejection
    /// overheads, which are constant. Verify the per-hop increment is 5.
    #[test]
    fn zero_load_per_hop_latency_is_five() {
        let mut lat = Vec::new();
        for hops in [1usize, 2, 3, 4, 5] {
            let cfg = NetworkConfig::baseline_mesh(6);
            let mut net = Network::new(cfg);
            let src = 0;
            let dst = hops; // walk east along row 0
            net.try_inject(src, Packet::request(src, dst, 8, 0)).unwrap();
            let out = run_until_delivered(&mut net, dst, 500);
            lat.push(out.network_latency());
        }
        for w in lat.windows(2) {
            assert_eq!(w[1] - w[0], 5, "per-hop latency must be 5 cycles: {lat:?}");
        }
    }

    /// With 1-cycle routers the per-hop increment drops to 2.
    #[test]
    fn one_cycle_router_per_hop_latency_is_two() {
        let mut lat = Vec::new();
        for hops in [1usize, 3, 5] {
            let mut cfg = NetworkConfig::baseline_mesh(6);
            cfg.router_stages = 1;
            let mut net = Network::new(cfg);
            net.try_inject(0, Packet::request(0, hops, 8, 0)).unwrap();
            lat.push(run_until_delivered(&mut net, hops, 500).network_latency());
        }
        assert_eq!(lat[1] - lat[0], 4);
        assert_eq!(lat[2] - lat[1], 4);
    }

    /// A 4-flit packet takes 3 extra serialization cycles end to end.
    #[test]
    fn serialization_latency() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mut net = Network::new(cfg);
        net.try_inject(0, Packet::request(0, 3, 8, 0)).unwrap();
        let small = run_until_delivered(&mut net, 3, 500).network_latency();

        let cfg = NetworkConfig::baseline_mesh(6);
        let mut net = Network::new(cfg);
        net.try_inject(0, Packet::reply(0, 3, 64, 0)).unwrap();
        let large = run_until_delivered(&mut net, 3, 500).network_latency();
        assert_eq!(large - small, 3, "3 extra flits serialize at 1 flit/cycle");
    }

    /// Packets of both classes traverse the checkerboard mesh between all
    /// core-MC pairs.
    #[test]
    fn checkerboard_core_to_mc_traffic() {
        let cfg = NetworkConfig::checkerboard_mesh(6);
        let mcs = cfg.mc_nodes.clone();
        let cores: Vec<NodeId> = (0..cfg.mesh.len()).filter(|n| !mcs.contains(n)).collect();
        let mut net = Network::new(cfg);
        let mut expected = 0u64;
        for (i, &core) in cores.iter().enumerate() {
            let mc = mcs[i % mcs.len()];
            net.try_inject(core, Packet::request(core, mc, 8, core as u64)).unwrap();
            expected += 1;
        }
        let mut got = 0u64;
        for _ in 0..2000 {
            net.step();
            for &mc in &mcs {
                while let Some(p) = net.pop(mc) {
                    assert_eq!(p.header.tag, p.header.src as u64);
                    got += 1;
                }
            }
        }
        assert_eq!(got, expected);
        assert_eq!(net.in_flight(), 0);
    }

    /// MC-to-core replies on the checkerboard (half-router sources).
    #[test]
    fn checkerboard_mc_to_core_replies() {
        let cfg = NetworkConfig::checkerboard_mesh(6);
        let mcs = cfg.mc_nodes.clone();
        let cores: Vec<NodeId> = (0..cfg.mesh.len()).filter(|n| !mcs.contains(n)).collect();
        let mut net = Network::new(cfg);
        for (i, &core) in cores.iter().enumerate() {
            let mc = mcs[i % mcs.len()];
            net.try_inject(mc, Packet::reply(mc, core, 64, 7)).ok();
        }
        let mut got = 0;
        for _ in 0..3000 {
            net.step();
            for &core in &cores {
                while net.pop(core).is_some() {
                    got += 1;
                }
            }
        }
        assert!(got >= mcs.len(), "at least one reply per MC delivered, got {got}");
        assert_eq!(net.in_flight(), 0);
    }

    /// Multi-port MC injection accepts two packets in the same cycle.
    #[test]
    fn multiport_injection_doubles_acceptance() {
        let mut cfg = NetworkConfig::baseline_mesh(6);
        cfg.mc_inject_ports = 2;
        let mc = cfg.mc_nodes[0];
        let mut net = Network::new(cfg);
        assert!(net.try_inject(mc, Packet::reply(mc, 14, 64, 0)).is_ok());
        assert!(net.try_inject(mc, Packet::reply(mc, 15, 64, 1)).is_ok());
        // Third must be refused: both ports busy.
        assert!(net.try_inject(mc, Packet::reply(mc, 16, 64, 2)).is_err());
        let s = net.stats();
        assert_eq!(s.inject_attempts_by_node[mc], 3);
        assert_eq!(s.inject_blocked_by_node[mc], 1);
    }

    /// The double network segregates classes onto separate slices.
    #[test]
    fn double_network_separates_classes() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mut dn = DoubleNetwork::from_single(&cfg);
        dn.try_inject(0, Packet::request(0, 10, 8, 1)).unwrap();
        dn.try_inject(10, Packet::reply(10, 0, 64, 2)).unwrap();
        for _ in 0..300 {
            dn.step();
        }
        let req = dn.pop(10).expect("request delivered");
        assert_eq!(req.header.class, PacketClass::Request);
        // 8-byte slices: a 64-byte reply is 8 flits.
        let rep = dn.pop(0).expect("reply delivered");
        assert_eq!(rep.header.flits, 8);
        assert_eq!(dn.request_net().stats().packets[0], 1);
        assert_eq!(dn.reply_net().stats().packets[1], 1);
    }

    /// Saturating one VC must not corrupt packet ordering or contents.
    #[test]
    fn heavy_contention_preserves_integrity() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mesh = cfg.mesh.clone();
        let dst = mesh.node(Coord::new(3, 0)); // an MC-ish node on row 0
        let mut net = Network::new(cfg);
        let sources: Vec<NodeId> = (6..30).collect();
        let mut pending: Vec<Packet> =
            sources.iter().map(|&s| Packet::request(s, dst, 64, s as u64)).collect();
        let mut delivered = 0;
        for _ in 0..5000 {
            pending.retain(|&p| net.try_inject(p.header.src, p).is_err());
            net.step();
            while let Some(p) = net.pop(dst) {
                assert_eq!(p.header.tag, p.header.src as u64);
                delivered += 1;
            }
            if delivered == sources.len() && pending.is_empty() {
                break;
            }
        }
        assert_eq!(delivered, sources.len());
        assert_eq!(net.in_flight(), 0);
    }

    /// DOR on the baseline mesh with routing kind DorYx works symmetrically.
    #[test]
    fn dor_yx_network_delivers() {
        let mut cfg = NetworkConfig::baseline_mesh(6);
        cfg.routing = RoutingKind::DorYx;
        let mut net = Network::new(cfg);
        net.try_inject(2, Packet::request(2, 33, 8, 5)).unwrap();
        let p = run_until_delivered(&mut net, 33, 500);
        assert_eq!(p.header.tag, 5);
    }

    /// Link-load telemetry matches the path a lone packet takes.
    #[test]
    fn link_loads_track_a_single_packet() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mut net = Network::new(cfg);
        // 0 -> 3: three eastward hops along row 0, one flit.
        net.try_inject(0, Packet::request(0, 3, 8, 0)).unwrap();
        for _ in 0..100 {
            net.step();
        }
        net.pop(3).expect("delivered");
        let loads = net.link_loads();
        let total: u64 = loads.iter().map(|&(_, _, f)| f).sum();
        assert_eq!(total, 3, "one flit crosses exactly three links");
        for &(node, dir, f) in &loads {
            if f > 0 {
                assert_eq!(dir, Direction::East);
                assert!(node < 3, "only row-0 eastward links used, saw node {node}");
            }
        }
    }

    /// Request and reply latencies are tracked per class.
    #[test]
    fn stats_separate_classes() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mut net = Network::new(cfg);
        net.try_inject(0, Packet::request(0, 2, 8, 0)).unwrap();
        net.try_inject(14, Packet::reply(14, 20, 64, 0)).unwrap();
        for _ in 0..200 {
            net.step();
        }
        net.pop(2).unwrap();
        net.pop(20).unwrap();
        let s = net.stats();
        assert_eq!(s.packets, [1, 1]);
        assert_eq!(s.flits, [1, 4]);
        assert!(s.avg_network_latency_class(PacketClass::Reply) > 0.0);
        assert!(s.avg_network_latency_class(PacketClass::Request) > 0.0);
    }

    /// Two packets queued on the same VC keep their order (wormhole FIFO).
    #[test]
    fn same_vc_packets_stay_ordered() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mut net = Network::new(cfg);
        let mut delivered = Vec::new();
        let mut pending = vec![
            Packet::request(0, 4, 64, 1),
            Packet::request(0, 4, 64, 2),
            Packet::request(0, 4, 64, 3),
        ];
        for _ in 0..1000 {
            pending.retain(|&p| net.try_inject(0, p).is_err());
            net.step();
            while let Some(p) = net.pop(4) {
                delivered.push(p.header.tag);
            }
        }
        assert_eq!(delivered, vec![1, 2, 3], "same source/dest/class traffic is FIFO");
    }

    /// The output-first allocator delivers the same traffic as iSLIP.
    #[test]
    fn output_first_allocator_delivers() {
        let mut cfg = NetworkConfig::baseline_mesh(6);
        cfg.allocator = crate::config::AllocatorKind::OutputFirst;
        let mcs = cfg.mc_nodes.clone();
        let mut net = Network::new(cfg);
        let mut pending: Vec<Packet> =
            (6..30).map(|s| Packet::request(s, mcs[s % 8], 64, s as u64)).collect();
        let mut delivered = 0;
        for _ in 0..5000 {
            pending.retain(|&p| net.try_inject(p.header.src, p).is_err());
            net.step();
            for &mc in &mcs {
                while let Some(p) = net.pop(mc) {
                    assert_eq!(p.header.tag, p.header.src as u64);
                    delivered += 1;
                }
            }
        }
        assert_eq!(delivered, 24);
        assert_eq!(net.in_flight(), 0);
    }

    /// Telemetry reproduces the lone packet's path: link counters match
    /// `link_loads`, the flight recorder holds one event per hop plus the
    /// ejection, and the heatmap has mesh dimensions.
    #[test]
    fn telemetry_traces_a_single_packet() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mut net = Network::new(cfg);
        net.arm_telemetry(crate::telemetry::TelemetryConfig::default());
        // 0 -> 3: three eastward hops along row 0, one flit.
        net.try_inject(0, Packet::request(0, 3, 8, 0)).unwrap();
        for _ in 0..100 {
            net.step();
        }
        net.pop(3).expect("delivered");
        let report = net.telemetry_report("net").expect("telemetry armed");
        assert_eq!(report.label, "net");
        assert_eq!(report.radix, 6);
        assert_eq!(report.heatmap.len(), 6);
        assert!(report.heatmap.iter().all(|row| row.len() == 6));
        // Link records agree with the channel counters.
        let recorded: u64 = report.links.iter().map(|l| l.flits).sum();
        let channel_total: u64 = net.link_loads().iter().map(|&(_, _, f)| f).sum();
        assert_eq!(recorded, channel_total);
        assert_eq!(recorded, 3, "one flit crosses exactly three links");
        for l in &report.links {
            assert_eq!(l.vc_flits.iter().sum::<u64>(), l.flits, "per-VC counts sum to total");
            if l.flits > 0 {
                assert_eq!(l.dir, "E");
                assert!(l.utilization > 0.0);
            }
        }
        // Only row-0 nodes show heat.
        assert!(report.heatmap[0][0] > 0.0);
        assert_eq!(report.heatmap[5][5], 0.0);
        // Flight recorder: 3 link hops + 1 ejection, in time order.
        assert_eq!(report.flight.len(), 4);
        assert_eq!(report.flight_dropped, 0);
        let nodes: Vec<u64> = report.flight.iter().map(|e| e.node).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3]);
        assert!(report.flight.windows(2).all(|w| w[0].cycle < w[1].cycle));
        assert!(report.flight.last().unwrap().out_port >= 4, "last event is the ejection");
        // Histograms saw the packet in both latency views, request class.
        assert_eq!(report.hist.total[0].count(), 1);
        assert_eq!(report.hist.network[0].count(), 1);
        assert_eq!(report.hist.total[1].count(), 0);
        // Occupancy integral is positive somewhere along the path.
        assert!(report.avg_occupancy.iter().any(|&o| o > 0.0));
    }

    /// Arming telemetry changes no simulated outcome: same stats, same
    /// cycle count, same flit-hops as an unarmed twin.
    #[test]
    fn telemetry_does_not_perturb_the_simulation() {
        let run = |armed: bool| {
            let cfg = NetworkConfig::checkerboard_mesh(6);
            let mcs = cfg.mc_nodes.clone();
            let mut net = Network::new(cfg);
            if armed {
                net.arm_telemetry(crate::telemetry::TelemetryConfig::default());
            }
            for (i, node) in (0..36).filter(|n| !mcs.contains(n)).enumerate() {
                net.try_inject(node, Packet::request(node, mcs[i % mcs.len()], 64, i as u64))
                    .unwrap();
            }
            for _ in 0..500 {
                net.step();
            }
            let mut s = net.stats();
            s.hist = None; // the only intended divergence
            (s, net.cycle(), net.flit_hops())
        };
        assert_eq!(run(false), run(true));
    }

    /// A node-armed flight recorder only captures that node's traffic.
    #[test]
    fn flight_recorder_arms_per_node() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mut net = Network::new(cfg);
        net.arm_telemetry(crate::telemetry::TelemetryConfig {
            flight_capacity: 64,
            arm: crate::telemetry::ArmSpec { node: Some(3), class: None },
        });
        net.try_inject(0, Packet::request(0, 3, 8, 7)).unwrap(); // matches (dst 3)
        net.try_inject(30, Packet::request(30, 35, 8, 8)).unwrap(); // unrelated
        for _ in 0..100 {
            net.step();
        }
        let report = net.telemetry_report("net").unwrap();
        assert!(!report.flight.is_empty());
        assert!(report.flight.iter().all(|e| e.packet == report.flight[0].packet));
    }

    /// The double network yields one labeled report per slice.
    #[test]
    fn double_network_reports_both_slices() {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mut dn = DoubleNetwork::from_single(&cfg);
        dn.enable_telemetry(crate::telemetry::TelemetryConfig::default());
        dn.try_inject(0, Packet::request(0, 10, 8, 1)).unwrap();
        dn.try_inject(10, Packet::reply(10, 0, 64, 2)).unwrap();
        for _ in 0..300 {
            dn.step();
        }
        let reports = dn.telemetry_reports();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].label, "request");
        assert_eq!(reports[1].label, "reply");
        assert_eq!(reports[0].hist.total[0].count(), 1, "request slice saw the request");
        assert_eq!(reports[1].hist.total[1].count(), 1, "reply slice saw the reply");
        assert!(reports.iter().all(|r| !r.flight.is_empty()));
    }

    /// Wider channels shrink packet flit counts.
    #[test]
    fn channel_width_affects_flitization() {
        let mut cfg = NetworkConfig::baseline_mesh(6);
        cfg.channel_bytes = 32;
        cfg.vcs = VcLayout::new(2, 2, false);
        let mut net = Network::new(cfg);
        net.try_inject(0, Packet::reply(0, 5, 64, 0)).unwrap();
        let p = run_until_delivered(&mut net, 5, 500);
        assert_eq!(p.header.flits, 2);
    }
}
