//! Routing algorithms: dimension-ordered (XY/YX) and the paper's
//! **checkerboard routing** (CR).
//!
//! Checkerboard routing (paper Section IV-B) is an oblivious, minimal
//! routing algorithm for checkerboard meshes in which half of the routers
//! (odd-parity nodes) cannot turn packets. Routes are planned once at
//! injection:
//!
//! * If the XY turn node is a full-router (or no turn is needed), route XY.
//! * **Case 1** — otherwise, if the YX turn node is a full-router, route
//!   YX (the packet carries a phase bit, exactly "a single extra bit in the
//!   header" as in the paper).
//! * **Case 2** — if both turn nodes are half-routers (possible only for
//!   half-to-half pairs an even number of columns apart and not in the same
//!   row), pick a random intermediate *full*-router inside the minimal
//!   quadrant that is not in the source row and an even number of columns
//!   from the source; route YX to it, then XY to the destination. Hop
//!   count stays minimal.
//!
//! Deadlock freedom follows from phase-disjoint virtual channels with the
//! one-way phase order YX -> XY (as in O1Turn/ROMM-style two-phase
//! schemes).

use crate::config::{RoutingKind, VcLayout};
use crate::packet::{PacketClass, PacketHeader, Phase};
use crate::topology::Mesh;
use crate::types::{Coord, Direction, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A contiguous set of virtual channels `[first, first + count)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct VcSet {
    /// First VC index in the set.
    pub first: u8,
    /// Number of VCs in the set.
    pub count: u8,
}

impl VcSet {
    /// Creates a set covering `[first, first + count)`.
    pub fn new(first: u8, count: u8) -> Self {
        VcSet { first, count }
    }

    /// `true` if `vc` belongs to the set.
    pub fn contains(&self, vc: u8) -> bool {
        vc >= self.first && vc < self.first + self.count
    }

    /// Iterates over the VCs in the set.
    pub fn iter(&self) -> impl Iterator<Item = u8> {
        self.first..self.first + self.count
    }
}

/// Where a packet leaves the current router.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OutPort {
    /// Continue toward a neighboring router.
    Dir(Direction),
    /// The packet has reached its destination and should be ejected.
    Eject,
}

/// Route computation result for the packet at the head of an input VC.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct RouteDecision {
    /// Output direction or ejection.
    pub out: OutPort,
    /// Virtual channels the packet may be allocated at the next hop.
    pub vcs: VcSet,
}

/// Error returned when no legal route exists.
///
/// In a checkerboard mesh a packet between two *full*-routers an odd number
/// of columns (equivalently rows) apart cannot be routed, because every
/// minimal-or-not path would have to turn at a half-router (paper
/// Figure 12(a)). The paper's architecture avoids such pairs by placing
/// MCs and L2 banks at half-routers.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct UnroutableError {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

impl std::fmt::Display for UnroutableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "no checkerboard route between full-routers {} and {} (odd-parity pair)",
            self.src, self.dst
        )
    }
}

impl std::error::Error for UnroutableError {}

/// Plans the routing phase (and, for checkerboard case 2, the intermediate
/// node) for a packet about to be injected.
///
/// Runs on every injection, so it must not heap-allocate: instead of
/// materializing the [`plan_options`] list it computes the list's length
/// arithmetically, draws the same single `gen_range(0..len)` index the
/// list-based draw would (so simulation outcomes are bit-identical), and
/// reconstructs the indexed entry directly. Deterministic routes (DOR,
/// straight lines, checkerboard cases 0/1) consume no randomness.
///
/// # Errors
///
/// Returns [`UnroutableError`] for full-to-full checkerboard pairs with
/// odd coordinate parity (see the type's documentation).
pub fn plan_injection<R: Rng + ?Sized>(
    kind: RoutingKind,
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
    rng: &mut R,
) -> Result<(Phase, Option<NodeId>), UnroutableError> {
    match kind {
        RoutingKind::DorXy => Ok((Phase::Xy, None)),
        RoutingKind::DorYx => Ok((Phase::Yx, None)),
        RoutingKind::O1Turn => Ok([(Phase::Xy, None), (Phase::Yx, None)][rng.gen_range(0..2usize)]),
        RoutingKind::Romm => Ok(romm_pick(mesh, src, dst, rng)),
        RoutingKind::Checkerboard => checkerboard_pick(mesh, src, dst, rng),
    }
}

/// Allocation-free equivalent of drawing uniformly from
/// [`romm_options`]: the option list is the x-major grid of the minimal
/// quadrant, so the drawn index maps back to a coordinate directly.
fn romm_pick<R: Rng + ?Sized>(
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
    rng: &mut R,
) -> (Phase, Option<NodeId>) {
    let s = mesh.coord(src);
    let d = mesh.coord(dst);
    if s.same_row(d) || s.same_col(d) {
        return (Phase::Xy, None);
    }
    let (x_lo, x_hi) = (s.x.min(d.x), s.x.max(d.x));
    let (y_lo, y_hi) = (s.y.min(d.y), s.y.max(d.y));
    let ny = usize::from(y_hi - y_lo) + 1;
    let len = (usize::from(x_hi - x_lo) + 1) * ny;
    let idx = rng.gen_range(0..len);
    let x = x_lo + (idx / ny) as u16;
    let y = y_lo + (idx % ny) as u16;
    let via = mesh.node(Coord::new(x, y));
    if via == src {
        (Phase::Xy, None)
    } else if via == dst {
        (Phase::Yx, None)
    } else {
        (Phase::Yx, Some(via))
    }
}

/// Allocation-free equivalent of drawing uniformly from
/// [`checkerboard_options`].
fn checkerboard_pick<R: Rng + ?Sized>(
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
    rng: &mut R,
) -> Result<(Phase, Option<NodeId>), UnroutableError> {
    let s = mesh.coord(src);
    let d = mesh.coord(dst);
    if s.same_row(d) || s.same_col(d) {
        return Ok((Phase::Xy, None));
    }
    if !mesh.is_half(mesh.node(Coord::new(d.x, s.y))) {
        return Ok((Phase::Xy, None));
    }
    if !mesh.is_half(mesh.node(Coord::new(s.x, d.y))) {
        return Ok((Phase::Yx, None));
    }
    if !mesh.is_half(src) && !mesh.is_half(dst) {
        return Err(UnroutableError { src, dst });
    }
    let (xs, ys) = case2_ranges(s, d);
    let (nx, ny) = (xs.clone().count(), ys.clone().count());
    assert!(nx > 0 && ny > 0, "case-2 intermediate must exist for half-to-half pairs ({s} -> {d})");
    let idx = if nx * ny > 1 { rng.gen_range(0..nx * ny) } else { 0 };
    let x = xs.clone().nth(idx / ny).expect("index is within the candidate grid");
    let y = ys.clone().nth(idx % ny).expect("index is within the candidate grid");
    let via = mesh.node(Coord::new(x, y));
    debug_assert!(!mesh.is_half(via), "intermediate must be a full-router");
    Ok((Phase::Yx, Some(via)))
}

/// Case-2 intermediate candidate coordinates, as lazy iterators shared by
/// [`checkerboard_pick`] and [`case2_options`]: full-routers inside the
/// minimal quadrant, not in the source row, an even number of columns from
/// the source (which together guarantee that both the YX turn toward the
/// intermediate and the XY turn after it land on full-routers).
fn case2_ranges(
    s: Coord,
    d: Coord,
) -> (impl Iterator<Item = u16> + Clone, impl Iterator<Item = u16> + Clone) {
    let (x_lo, x_hi) = (s.x.min(d.x), s.x.max(d.x));
    let (y_lo, y_hi) = (s.y.min(d.y), s.y.max(d.y));
    let xs = (x_lo..=x_hi).filter(move |x| (x % 2) == (s.x % 2));
    let ys = (y_lo..=y_hi).filter(move |&y| y != s.y && (s.x + y).is_multiple_of(2));
    (xs, ys)
}

/// Enumerates every `(phase, via)` plan [`plan_injection`] can produce for
/// this pair, in a deterministic order. `plan_injection` draws uniformly
/// from this list, so static analyses that check each entry (e.g. the
/// channel-dependency-graph verifier) cover the simulator's routing
/// function exhaustively *by construction*.
///
/// The list may contain repeated entries: repetitions carry the
/// probability weight of the original per-dimension draws (ROMM picks its
/// intermediate per coordinate, and several coordinates can degenerate to
/// the same single-phase plan).
///
/// # Errors
///
/// Returns [`UnroutableError`] for full-to-full checkerboard pairs with
/// odd coordinate parity (see the type's documentation).
pub fn plan_options(
    kind: RoutingKind,
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
) -> Result<Vec<(Phase, Option<NodeId>)>, UnroutableError> {
    match kind {
        RoutingKind::DorXy => Ok(vec![(Phase::Xy, None)]),
        RoutingKind::DorYx => Ok(vec![(Phase::Yx, None)]),
        RoutingKind::O1Turn => Ok(vec![(Phase::Xy, None), (Phase::Yx, None)]),
        RoutingKind::Romm => Ok(romm_options(mesh, src, dst)),
        RoutingKind::Checkerboard => checkerboard_options(mesh, src, dst),
    }
}

/// Two-phase ROMM: a uniformly random intermediate inside the minimal
/// quadrant; YX to it, XY from it. Degenerates to plain XY when source and
/// destination share a row or column.
fn romm_options(mesh: &Mesh, src: NodeId, dst: NodeId) -> Vec<(Phase, Option<NodeId>)> {
    let s = mesh.coord(src);
    let d = mesh.coord(dst);
    if s.same_row(d) || s.same_col(d) {
        return vec![(Phase::Xy, None)];
    }
    let mut options = Vec::new();
    for x in s.x.min(d.x)..=s.x.max(d.x) {
        for y in s.y.min(d.y)..=s.y.max(d.y) {
            let via = mesh.node(Coord::new(x, y));
            options.push(if via == src {
                // Degenerate intermediates: a single phase suffices.
                (Phase::Xy, None)
            } else if via == dst {
                (Phase::Yx, None)
            } else {
                (Phase::Yx, Some(via))
            });
        }
    }
    options
}

fn checkerboard_options(
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
) -> Result<Vec<(Phase, Option<NodeId>)>, UnroutableError> {
    let s = mesh.coord(src);
    let d = mesh.coord(dst);
    if s.same_row(d) || s.same_col(d) {
        // Straight line: no turn, either phase legal; XY covers both.
        return Ok(vec![(Phase::Xy, None)]);
    }
    let xy_turn = mesh.node(Coord::new(d.x, s.y));
    let yx_turn = mesh.node(Coord::new(s.x, d.y));
    if !mesh.is_half(xy_turn) {
        return Ok(vec![(Phase::Xy, None)]);
    }
    if !mesh.is_half(yx_turn) {
        // Case 1: turn at the (full) YX turn node instead.
        return Ok(vec![(Phase::Yx, None)]);
    }
    // Both turn nodes are half-routers. For full-to-full pairs this is the
    // unroutable situation of Figure 12(a); for half-to-half pairs it is
    // routing case 2 and an intermediate full-router always exists.
    if !mesh.is_half(src) && !mesh.is_half(dst) {
        return Err(UnroutableError { src, dst });
    }
    Ok(case2_options(mesh, s, d))
}

/// Case-2 intermediates, enumerated x-major over [`case2_ranges`] (the
/// same order [`checkerboard_pick`] indexes into).
fn case2_options(mesh: &Mesh, s: Coord, d: Coord) -> Vec<(Phase, Option<NodeId>)> {
    let (xs, ys) = case2_ranges(s, d);
    assert!(
        xs.clone().next().is_some() && ys.clone().next().is_some(),
        "case-2 intermediate must exist for half-to-half pairs ({s} -> {d})"
    );
    let mut options = Vec::new();
    for x in xs {
        for y in ys.clone() {
            let via = mesh.node(Coord::new(x, y));
            debug_assert!(!mesh.is_half(via), "intermediate must be a full-router");
            options.push((Phase::Yx, Some(via)));
        }
    }
    options
}

/// Computes the next hop for the packet whose head flit carries `hdr`,
/// positioned at router `node`. May mutate the header: arriving at the
/// case-2 intermediate clears `via` and switches the phase to XY.
///
/// The returned [`VcSet`] is the set of VCs the packet may use at the
/// *next* buffer (downstream router input or ejection buffer).
pub fn next_hop(
    kind: RoutingKind,
    layout: &VcLayout,
    mesh: &Mesh,
    node: NodeId,
    hdr: &mut PacketHeader,
) -> RouteDecision {
    if hdr.via == Some(node) {
        hdr.via = None;
        hdr.phase = Phase::Xy;
    }
    let cur = mesh.coord(node);
    let target = mesh.coord(hdr.via.unwrap_or(hdr.dst));
    let out = direction_toward(mesh, cur, target, hdr.phase);
    let vcs = match out {
        // Dateline rule (torus): the packet's VC half on each inter-router
        // channel is derived from whether its route has crossed (or is
        // crossing, on this very hop) the wraparound edge of the ring it
        // is traversing — a pure function of the current and source
        // coordinates, so the header needs no extra state.
        OutPort::Dir(d) if layout.split_dateline => {
            let crossed = dateline_crossed(mesh, cur, mesh.coord(hdr.src), d);
            layout.dateline_set(hdr.class, hdr.phase, crossed)
        }
        _ => vc_set_for(kind, layout, hdr.class, hdr.phase),
    };
    RouteDecision { out, vcs }
}

/// `true` if a packet injected at `src`, currently at `cur` and leaving in
/// direction `d`, has already wrapped around the ring it is traversing in
/// `d`'s dimension — or wraps on this very hop. Sound because minimal
/// torus routes cover at most `k / 2 < k` hops per dimension, so "the
/// coordinate moved against the direction of travel" can only mean a wrap.
/// The source coordinate of the *dimension* equals the packet's source
/// coordinate: under dimension-ordered routing the other dimension is
/// untouched until this one completes.
fn dateline_crossed(mesh: &Mesh, cur: Coord, src: Coord, d: Direction) -> bool {
    let last = (mesh.radix() - 1) as u16;
    match d {
        Direction::East => cur.x < src.x || cur.x == last,
        Direction::West => cur.x > src.x || cur.x == 0,
        Direction::South => cur.y < src.y || cur.y == last,
        Direction::North => cur.y > src.y || cur.y == 0,
    }
}

fn direction_toward(mesh: &Mesh, cur: Coord, target: Coord, phase: Phase) -> OutPort {
    let x_step = || {
        if mesh.is_torus() {
            // Shortest way around the row ring; ties break East so the
            // choice stays consistent along the route.
            let k = mesh.radix() as u16;
            let delta_e = (target.x + k - cur.x) % k;
            if delta_e <= k / 2 {
                OutPort::Dir(Direction::East)
            } else {
                OutPort::Dir(Direction::West)
            }
        } else if target.x > cur.x {
            OutPort::Dir(Direction::East)
        } else {
            OutPort::Dir(Direction::West)
        }
    };
    let y_step = || {
        if mesh.is_torus() {
            let k = mesh.radix() as u16;
            let delta_s = (target.y + k - cur.y) % k;
            if delta_s <= k / 2 {
                OutPort::Dir(Direction::South)
            } else {
                OutPort::Dir(Direction::North)
            }
        } else if target.y > cur.y {
            OutPort::Dir(Direction::South)
        } else {
            OutPort::Dir(Direction::North)
        }
    };
    match phase {
        Phase::Xy => {
            if cur.x != target.x {
                x_step()
            } else if cur.y != target.y {
                y_step()
            } else {
                OutPort::Eject
            }
        }
        Phase::Yx => {
            if cur.y != target.y {
                y_step()
            } else if cur.x != target.x {
                x_step()
            } else {
                OutPort::Eject
            }
        }
    }
}

/// VC subset for a class/phase pair under the given routing algorithm.
/// Dimension-ordered routing ignores the phase split (a DOR network does
/// not need one); checkerboard routing uses it.
pub fn vc_set_for(kind: RoutingKind, layout: &VcLayout, class: PacketClass, phase: Phase) -> VcSet {
    if kind.needs_phase_split() {
        layout.set_for(class, phase)
    } else {
        layout.class_set(class)
    }
}

/// Walks a packet's full path through `mesh` without simulating the
/// network, returning the sequence of nodes visited (including source and
/// destination). Used by tests and by analytical tools.
///
/// ```
/// use rand::SeedableRng;
/// use tenoc_noc::routing::trace_path;
/// use tenoc_noc::{Mesh, PacketClass, RoutingKind, VcLayout};
///
/// let mesh = Mesh::checkerboard(6);
/// let layout = VcLayout::new(4, 2, true);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// // Route from the full-router at (0, 0) to the half-router at (4, 5),
/// // e.g. a memory controller.
/// let path = trace_path(
///     RoutingKind::Checkerboard, &layout, &mesh, 0, 34, PacketClass::Request, &mut rng,
/// )?;
/// assert_eq!(path.len(), 10, "minimal: 9 hops");
/// # Ok::<(), tenoc_noc::routing::UnroutableError>(())
/// ```
///
/// # Errors
///
/// Propagates [`UnroutableError`] from injection planning.
pub fn trace_path<R: Rng + ?Sized>(
    kind: RoutingKind,
    layout: &VcLayout,
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
    class: PacketClass,
    rng: &mut R,
) -> Result<Vec<NodeId>, UnroutableError> {
    let (phase, via) = plan_injection(kind, mesh, src, dst, rng)?;
    let mut hdr = crate::packet::Packet::new(class, src, dst, 8, 0).header;
    hdr.phase = phase;
    hdr.via = via;
    let mut path = vec![src];
    let mut node = src;
    let max_hops = 4 * mesh.len();
    for _ in 0..max_hops {
        let dec = next_hop(kind, layout, mesh, node, &mut hdr);
        match dec.out {
            OutPort::Eject => return Ok(path),
            OutPort::Dir(d) => {
                node = mesh.neighbor(node, d).expect("routing must never point off the mesh edge");
                path.push(node);
            }
        }
    }
    panic!("routing loop detected between {src} and {dst}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn layout() -> VcLayout {
        VcLayout::new(4, 2, true)
    }

    #[test]
    fn dor_xy_routes_x_first() {
        let mesh = Mesh::all_full(6);
        let l = VcLayout::new(2, 2, false);
        let path = trace_path(
            RoutingKind::DorXy,
            &l,
            &mesh,
            mesh.node(Coord::new(0, 0)),
            mesh.node(Coord::new(3, 2)),
            PacketClass::Request,
            &mut rng(),
        )
        .unwrap();
        let coords: Vec<Coord> = path.iter().map(|&n| mesh.coord(n)).collect();
        // X moves first: rows stay 0 until column 3 is reached.
        assert_eq!(coords[1], Coord::new(1, 0));
        assert_eq!(coords[2], Coord::new(2, 0));
        assert_eq!(coords[3], Coord::new(3, 0));
        assert_eq!(coords[4], Coord::new(3, 1));
        assert_eq!(coords[5], Coord::new(3, 2));
        assert_eq!(path.len(), 6);
    }

    #[test]
    fn dor_yx_routes_y_first() {
        let mesh = Mesh::all_full(6);
        let l = VcLayout::new(2, 2, false);
        let path = trace_path(
            RoutingKind::DorYx,
            &l,
            &mesh,
            mesh.node(Coord::new(0, 0)),
            mesh.node(Coord::new(3, 2)),
            PacketClass::Request,
            &mut rng(),
        )
        .unwrap();
        assert_eq!(mesh.coord(path[1]), Coord::new(0, 1));
        assert_eq!(mesh.coord(path[2]), Coord::new(0, 2));
    }

    #[test]
    fn paths_are_minimal_dor() {
        let mesh = Mesh::all_full(6);
        let l = VcLayout::new(2, 2, false);
        let mut r = rng();
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                if src == dst {
                    continue;
                }
                let p = trace_path(
                    RoutingKind::DorXy,
                    &l,
                    &mesh,
                    src,
                    dst,
                    PacketClass::Request,
                    &mut r,
                )
                .unwrap();
                assert_eq!(p.len() as u32 - 1, mesh.coord(src).manhattan(mesh.coord(dst)));
            }
        }
    }

    /// Checkerboard routes never turn at a half-router and are minimal.
    #[test]
    fn checkerboard_routes_legal_and_minimal() {
        let mesh = Mesh::checkerboard(6);
        let l = layout();
        let mut r = rng();
        let mut case2_seen = 0u32;
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                if src == dst {
                    continue;
                }
                // Skip the documented unroutable full-to-full odd pairs.
                let plan = plan_injection(RoutingKind::Checkerboard, &mesh, src, dst, &mut r);
                let (_, via) = match plan {
                    Ok(p) => p,
                    Err(_) => {
                        assert!(!mesh.is_half(src) && !mesh.is_half(dst));
                        continue;
                    }
                };
                if via.is_some() {
                    case2_seen += 1;
                }
                let p = trace_path(
                    RoutingKind::Checkerboard,
                    &l,
                    &mesh,
                    src,
                    dst,
                    PacketClass::Request,
                    &mut r,
                )
                .unwrap();
                // Minimal hop count.
                assert_eq!(
                    p.len() as u32 - 1,
                    mesh.coord(src).manhattan(mesh.coord(dst)),
                    "{src}->{dst}"
                );
                // No turn at a half-router.
                for w in p.windows(3) {
                    let a = mesh.coord(w[0]);
                    let b = mesh.coord(w[1]);
                    let c = mesh.coord(w[2]);
                    let in_x = a.y == b.y;
                    let out_x = b.y == c.y;
                    if in_x != out_x {
                        assert!(
                            !mesh.is_half(w[1]),
                            "illegal turn at half-router {} on path {src}->{dst}",
                            b
                        );
                    }
                }
            }
        }
        assert!(case2_seen > 0, "the 6x6 checkerboard must exercise case 2");
    }

    #[test]
    fn full_to_full_odd_pairs_unroutable() {
        let mesh = Mesh::checkerboard(6);
        // (0,0) and (1,2): both full? (0,0) parity 0 full; (1,2) parity 1 -> half.
        // Pick (0,0) -> (3,0)? same row, routable. Use (0,0) -> (1,2)?? half.
        // Full nodes have even parity; an odd-parity *pair* means odd
        // manhattan offsets in both dimensions, e.g. (0,0) -> (3,2)... x+y=5
        // odd -> half. Actually for both-full, parities are even; "odd
        // columns away and not same row" with both turn nodes half:
        // (0,0) full -> (2,2)? turn nodes (2,0) even=full: routable.
        // (0,0) -> (1,1): both ends... (1,1) parity even -> full. Turn
        // nodes (1,0) and (0,1): both odd -> half. Unroutable.
        let src = mesh.node(Coord::new(0, 0));
        let dst = mesh.node(Coord::new(1, 1));
        assert!(!mesh.is_half(src) && !mesh.is_half(dst));
        let err = plan_injection(RoutingKind::Checkerboard, &mesh, src, dst, &mut rng());
        assert_eq!(err, Err(UnroutableError { src, dst }));
    }

    #[test]
    fn case2_intermediate_is_full_and_in_quadrant() {
        let mesh = Mesh::checkerboard(6);
        let mut r = rng();
        // Half-to-half, even columns apart, not same row, both turn nodes
        // half: src (1,0) half; dst (1,4)? same col -> no. dst (3,2):
        // parity 5 -> half. turn nodes: (3,0) half, (1,2) half. Case 2.
        let src = mesh.node(Coord::new(1, 0));
        let dst = mesh.node(Coord::new(3, 2));
        for _ in 0..50 {
            let (phase, via) =
                plan_injection(RoutingKind::Checkerboard, &mesh, src, dst, &mut r).unwrap();
            assert_eq!(phase, Phase::Yx);
            let via = via.expect("case 2 must use an intermediate");
            let v = mesh.coord(via);
            assert!(!mesh.is_half(via));
            assert!(v.x >= 1 && v.x <= 3 && v.y <= 2, "inside minimal quadrant");
            assert_ne!(v.y, 0, "not in the source row");
            assert_eq!(v.x % 2, 1, "even columns from source column 1");
        }
    }

    #[test]
    fn phase_vc_sets_disjoint() {
        let l = layout();
        let rq_xy = vc_set_for(RoutingKind::Checkerboard, &l, PacketClass::Request, Phase::Xy);
        let rq_yx = vc_set_for(RoutingKind::Checkerboard, &l, PacketClass::Request, Phase::Yx);
        let rp_xy = vc_set_for(RoutingKind::Checkerboard, &l, PacketClass::Reply, Phase::Xy);
        for vc in rq_xy.iter() {
            assert!(!rq_yx.contains(vc));
            assert!(!rp_xy.contains(vc));
        }
    }

    #[test]
    fn dor_ignores_phase_split() {
        let l = VcLayout::new(2, 2, false);
        let s1 = vc_set_for(RoutingKind::DorXy, &l, PacketClass::Request, Phase::Xy);
        let s2 = vc_set_for(RoutingKind::DorXy, &l, PacketClass::Request, Phase::Yx);
        assert_eq!(s1, s2);
    }

    #[test]
    fn o1turn_picks_both_phases_and_stays_minimal() {
        let mesh = Mesh::all_full(6);
        let l = VcLayout::new(4, 2, true);
        let mut r = rng();
        let mut saw = [false; 2];
        for _ in 0..64 {
            let (phase, via) = plan_injection(RoutingKind::O1Turn, &mesh, 0, 35, &mut r).unwrap();
            assert_eq!(via, None);
            saw[phase as usize] = true;
        }
        assert!(saw[0] && saw[1], "O1Turn must use both orientations");
        for src in [0usize, 7, 13] {
            for dst in [35usize, 20, 5] {
                if src == dst {
                    continue;
                }
                let p = trace_path(
                    RoutingKind::O1Turn,
                    &l,
                    &mesh,
                    src,
                    dst,
                    PacketClass::Reply,
                    &mut r,
                )
                .unwrap();
                assert_eq!(p.len() as u32 - 1, mesh.coord(src).manhattan(mesh.coord(dst)));
            }
        }
    }

    #[test]
    fn romm_routes_via_minimal_quadrant() {
        let mesh = Mesh::all_full(6);
        let l = VcLayout::new(4, 2, true);
        let mut r = rng();
        let src = mesh.node(Coord::new(0, 0));
        let dst = mesh.node(Coord::new(4, 3));
        let mut vias = std::collections::HashSet::new();
        for _ in 0..100 {
            if let (_, Some(via)) =
                plan_injection(RoutingKind::Romm, &mesh, src, dst, &mut r).unwrap()
            {
                let v = mesh.coord(via);
                assert!(v.x <= 4 && v.y <= 3, "inside minimal quadrant");
                vias.insert(via);
            }
            let p =
                trace_path(RoutingKind::Romm, &l, &mesh, src, dst, PacketClass::Request, &mut r)
                    .unwrap();
            assert_eq!(p.len() as u32 - 1, mesh.coord(src).manhattan(mesh.coord(dst)));
        }
        assert!(vias.len() > 3, "ROMM must spread over many intermediates: {}", vias.len());
    }

    /// The allocation-free `plan_injection` must draw exactly the entry
    /// that indexing the materialized `plan_options` list with the same
    /// RNG would, consuming the same amount of randomness — that is what
    /// keeps simulation outcomes bit-identical with the old list-based
    /// implementation.
    #[test]
    fn plan_injection_matches_indexed_plan_options() {
        use rand::RngCore;
        for (kind, mesh) in [
            (RoutingKind::DorXy, Mesh::all_full(6)),
            (RoutingKind::DorYx, Mesh::all_full(6)),
            (RoutingKind::O1Turn, Mesh::all_full(6)),
            (RoutingKind::Romm, Mesh::all_full(6)),
            (RoutingKind::Checkerboard, Mesh::checkerboard(6)),
            (RoutingKind::Checkerboard, Mesh::checkerboard(8)),
        ] {
            for src in mesh.nodes() {
                for dst in mesh.nodes() {
                    if src == dst {
                        continue;
                    }
                    for seed in 0..4u64 {
                        let mut fast = SmallRng::seed_from_u64(seed);
                        let mut list = SmallRng::seed_from_u64(seed);
                        let picked = plan_injection(kind, &mesh, src, dst, &mut fast);
                        let options = plan_options(kind, &mesh, src, dst);
                        match (picked, options) {
                            (Err(a), Err(b)) => assert_eq!(a, b),
                            (Ok(p), Ok(opts)) => {
                                let want = if opts.len() == 1 {
                                    opts[0]
                                } else {
                                    opts[list.gen_range(0..opts.len())]
                                };
                                assert_eq!(p, want, "{kind:?} {src}->{dst} seed {seed}");
                                // Same randomness consumed.
                                assert_eq!(fast.next_u64(), list.next_u64());
                            }
                            (p, o) => panic!("routability disagrees: {p:?} vs {o:?}"),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn torus_dor_routes_are_wrap_minimal() {
        let mesh = Mesh::torus(6);
        let l = VcLayout::new(4, 2, false).with_dateline();
        let mut r = rng();
        for src in mesh.nodes() {
            for dst in mesh.nodes() {
                if src == dst {
                    continue;
                }
                let p = trace_path(
                    RoutingKind::DorXy,
                    &l,
                    &mesh,
                    src,
                    dst,
                    PacketClass::Request,
                    &mut r,
                )
                .unwrap();
                assert_eq!(p.len() as u32 - 1, mesh.distance(src, dst), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn torus_wrap_route_goes_the_short_way() {
        let mesh = Mesh::torus(6);
        let l = VcLayout::new(4, 2, false).with_dateline();
        let p = trace_path(
            RoutingKind::DorXy,
            &l,
            &mesh,
            mesh.node(Coord::new(5, 0)),
            mesh.node(Coord::new(1, 0)),
            PacketClass::Request,
            &mut rng(),
        )
        .unwrap();
        let xs: Vec<u16> = p.iter().map(|&n| mesh.coord(n).x).collect();
        assert_eq!(xs, vec![5, 0, 1], "two wrap-east hops beat four mesh-west hops");
    }

    #[test]
    fn torus_dateline_vcs_switch_at_the_wrap_edge() {
        let mesh = Mesh::torus(6);
        let l = VcLayout::new(4, 2, false).with_dateline();
        let src = mesh.node(Coord::new(4, 0));
        let dst = mesh.node(Coord::new(1, 0));
        let mut hdr = crate::packet::Packet::new(PacketClass::Request, src, dst, 8, 0).header;
        let mut node = src;
        let mut sets = Vec::new();
        loop {
            let dec = next_hop(RoutingKind::DorXy, &l, &mesh, node, &mut hdr);
            match dec.out {
                OutPort::Eject => break,
                OutPort::Dir(d) => {
                    sets.push(dec.vcs);
                    node = mesh.neighbor(node, d).unwrap();
                }
            }
        }
        // x = 4 (before the dateline), 5 (the wrap hop), 0 (after): the
        // request class holds VCs 0..2, split 0 = not-crossed / 1 = crossed.
        assert_eq!(sets, vec![VcSet::new(0, 1), VcSet::new(1, 1), VcSet::new(1, 1)]);

        // A route that never wraps stays in the lower half throughout.
        let mut hdr = crate::packet::Packet::new(PacketClass::Request, 0, 3, 8, 0).header;
        let dec = next_hop(RoutingKind::DorXy, &l, &mesh, 0, &mut hdr);
        assert_eq!(dec.vcs, VcSet::new(0, 1));
    }

    #[test]
    fn vcset_contains_and_iter() {
        let s = VcSet::new(2, 2);
        assert!(!s.contains(1));
        assert!(s.contains(2));
        assert!(s.contains(3));
        assert!(!s.contains(4));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 3]);
    }
}
