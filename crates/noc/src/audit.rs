//! Debug-build configuration auditing hook.
//!
//! `tenoc-noc` deliberately has no dependency on the static verifier
//! (`tenoc-verify` depends on this crate), so the network cannot call the
//! verifier directly. Instead, [`Network::new`](crate::network::Network::new)
//! invokes a process-global auditor callback — if one has been installed —
//! on every configuration it is asked to build, and panics if the auditor
//! rejects it. `tenoc_verify::install_debug_auditor` installs the
//! channel-dependency-graph analyzer here, so any debug-build simulation
//! run (tests included) statically proves its own configuration
//! deadlock-free before the first cycle. Release builds skip the check.

use crate::config::NetworkConfig;
use std::sync::OnceLock;

/// A configuration auditor: returns `Err` with a human-readable report if
/// the configuration is unsafe to simulate.
pub type ConfigAuditor = fn(&NetworkConfig) -> Result<(), String>;

static AUDITOR: OnceLock<ConfigAuditor> = OnceLock::new();

/// Installs the process-global auditor. The first installation wins;
/// returns `false` (harmlessly) if an auditor was already installed.
pub fn install_auditor(auditor: ConfigAuditor) -> bool {
    AUDITOR.set(auditor).is_ok()
}

/// Runs the installed auditor against `cfg` (debug builds only).
///
/// # Panics
///
/// Panics with the auditor's report if the configuration is rejected.
pub(crate) fn audit(cfg: &NetworkConfig) {
    #[cfg(debug_assertions)]
    if let Some(auditor) = AUDITOR.get() {
        if let Err(report) = auditor(cfg) {
            panic!("network configuration failed static verification:\n{report}");
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = cfg;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    #[test]
    fn audit_without_auditor_is_a_no_op() {
        // Must not panic (no auditor installed in this crate's own tests).
        audit(&NetworkConfig::baseline_mesh(4));
    }
}
