//! Topology (mesh, torus, concentrated mesh), router kinds (full vs.
//! half) and memory-controller placements.
//!
//! The checkerboard organization (paper Section IV-A) alternates
//! conventional five-port **full-routers** with **half-routers** whose
//! crossbar cannot change a packet's dimension: the east port connects only
//! to the west port and vice versa, the north port only to the south port
//! and vice versa, while the injection port reaches every output and every
//! input reaches the ejection port.
//!
//! All fabrics share the `k x k` router grid and the four-direction
//! channel naming; they differ only in [`Topology::neighbor`] (the torus
//! wraps every row and column into a ring) and in how many terminals share
//! a router (the concentrated mesh attaches `conc >= 2` cores per router
//! through extra injection/ejection ports). Everything downstream — the
//! event-driven network, the SoA arena, the CDG deadlock prover, the
//! Dally–Towles load bounds — consumes the topology through this one type.

use crate::types::{Coord, Direction, NodeId};
use serde::json;
use serde::{Deserialize, Serialize};

/// Microarchitectural kind of a router.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RouterKind {
    /// Conventional 2D-mesh router: any input may reach any output (other
    /// than its own port).
    Full,
    /// Reduced-connectivity router: packets may not change dimension.
    /// Crossbar degenerates to four 2x1 muxes plus an ejection mux,
    /// roughly halving router area (paper Section V-F).
    Half,
}

/// Memory-controller placement strategy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Placement {
    /// Baseline: MCs on the top and bottom rows (paper Figure 3), like
    /// Intel's 80-core design and Tilera TILE64.
    TopBottom,
    /// Staggered placement on half-router nodes (paper Figure 12),
    /// exploiting the checkerboard organization to spread MC hot-spots.
    Checkerboard,
}

/// Fabric family of a [`Topology`]: how the `k x k` router grid is wired
/// and how many terminals share each router.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Fabric {
    /// Plain 2D mesh: rows and columns terminate at the edges.
    Mesh,
    /// 2D torus: every row and column wraps into a ring, halving the
    /// network diameter. Requires dateline virtual channels for deadlock
    /// freedom (see `VcLayout::split_dateline`).
    Torus,
    /// Concentrated mesh: `conc` terminals (cores) share each router
    /// through dedicated injection/ejection ports, shrinking the grid for
    /// the same core count at the cost of higher router radix.
    CMesh {
        /// Concentration factor — terminals per router, at least 2.
        conc: u8,
    },
}

/// A `k x k` router grid with a fabric family and a router-kind map.
///
/// Historically this type modeled only the plain mesh and was named
/// `Mesh`; the alias is kept because the identifier appears throughout
/// the workspace and reads naturally wherever the fabric happens to be a
/// mesh.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    k: usize,
    kinds: Vec<RouterKind>,
    fabric: Fabric,
}

/// Backward-compatible name for [`Topology`].
pub type Mesh = Topology;

impl Serialize for Topology {
    // Hand-written so that plain meshes keep the exact `{"k":..,"kinds":
    // [..]}` shape the derive used to emit: topology serialization feeds
    // `shape_fingerprint`, the harness batch keys and the serve canonical
    // content addresses, all of which must stay byte-identical for every
    // pre-existing mesh configuration. Non-mesh fabrics append extra keys.
    fn to_value(&self) -> json::Value {
        let mut pairs =
            vec![("k".to_owned(), self.k.to_value()), ("kinds".to_owned(), self.kinds.to_value())];
        match self.fabric {
            Fabric::Mesh => {}
            Fabric::Torus => {
                pairs.push(("fabric".to_owned(), json::Value::String("torus".to_owned())));
            }
            Fabric::CMesh { conc } => {
                pairs.push(("fabric".to_owned(), json::Value::String("cmesh".to_owned())));
                pairs.push(("conc".to_owned(), conc.to_value()));
            }
        }
        json::Value::Object(pairs)
    }
}

impl Deserialize for Topology {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let k = usize::from_value(v.field("k")?)?;
        let kinds = Vec::<RouterKind>::from_value(v.field("kinds")?)?;
        let fabric = match v.field("fabric") {
            Err(_) => Fabric::Mesh,
            Ok(f) => match f.as_str()? {
                "mesh" => Fabric::Mesh,
                "torus" => Fabric::Torus,
                "cmesh" => Fabric::CMesh { conc: u8::from_value(v.field("conc")?)? },
                other => {
                    return Err(json::Error::msg(format!("unknown fabric {other:?}")));
                }
            },
        };
        if kinds.len() != k * k {
            return Err(json::Error::msg(format!(
                "kind map has {} entries for a {k}x{k} grid",
                kinds.len()
            )));
        }
        Ok(Topology { k, kinds, fabric })
    }
}

impl Topology {
    /// A mesh in which every router is a full-router.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > u16::MAX as usize`.
    pub fn all_full(k: usize) -> Self {
        assert!(k > 0 && k <= u16::MAX as usize, "mesh radix out of range");
        Topology { k, kinds: vec![RouterKind::Full; k * k], fabric: Fabric::Mesh }
    }

    /// A `k x k` torus in which every router is a full-router. Every row
    /// and column wraps around, so every node has all four neighbors.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` (a 1-ring's wrap link is a self-loop) or
    /// `k > u16::MAX as usize`.
    pub fn torus(k: usize) -> Self {
        assert!(k >= 2 && k <= u16::MAX as usize, "torus radix out of range");
        Topology { k, kinds: vec![RouterKind::Full; k * k], fabric: Fabric::Torus }
    }

    /// A `k x k` concentrated mesh: plain-mesh wiring, `conc` terminals
    /// per router on dedicated injection/ejection ports.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range or `conc < 2` (a 1-concentrated mesh
    /// is just a mesh — construct that directly).
    pub fn cmesh(k: usize, conc: u8) -> Self {
        assert!(k > 0 && k <= u16::MAX as usize, "mesh radix out of range");
        assert!(conc >= 2, "concentration below 2 is a plain mesh");
        Topology { k, kinds: vec![RouterKind::Full; k * k], fabric: Fabric::CMesh { conc } }
    }

    /// A checkerboard mesh: node `(x, y)` is a half-router iff `x + y` is
    /// odd (the hatched routers of paper Figure 12).
    ///
    /// ```
    /// use tenoc_noc::{Coord, Mesh};
    ///
    /// let mesh = Mesh::checkerboard(6);
    /// assert!(!mesh.is_half(mesh.node(Coord::new(0, 0))));
    /// assert!(mesh.is_half(mesh.node(Coord::new(1, 0))));
    /// ```
    pub fn checkerboard(k: usize) -> Self {
        let mut mesh = Self::all_full(k);
        for id in 0..k * k {
            let c = mesh.coord(id);
            if (c.x + c.y) % 2 == 1 {
                mesh.kinds[id] = RouterKind::Half;
            }
        }
        mesh
    }

    /// Mesh radix `k` (the mesh has `k * k` nodes).
    pub fn radix(&self) -> usize {
        self.k
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.k * self.k
    }

    /// `true` if the mesh has no nodes (never true for constructed meshes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node id at a coordinate.
    pub fn node(&self, c: Coord) -> NodeId {
        debug_assert!((c.x as usize) < self.k && (c.y as usize) < self.k);
        c.y as usize * self.k + c.x as usize
    }

    /// Coordinate of a node id.
    pub fn coord(&self, id: NodeId) -> Coord {
        debug_assert!(id < self.len());
        Coord::new((id % self.k) as u16, (id / self.k) as u16)
    }

    /// Kind of the router at `id`.
    pub fn kind(&self, id: NodeId) -> RouterKind {
        self.kinds[id]
    }

    /// `true` if the router at `id` is a half-router.
    pub fn is_half(&self, id: NodeId) -> bool {
        self.kinds[id] == RouterKind::Half
    }

    /// Fabric family of this topology.
    pub fn fabric(&self) -> Fabric {
        self.fabric
    }

    /// `true` if rows and columns wrap around (torus fabric).
    pub fn is_torus(&self) -> bool {
        self.fabric == Fabric::Torus
    }

    /// Terminals (cores) per router: 1 except for the concentrated mesh.
    pub fn concentration(&self) -> usize {
        match self.fabric {
            Fabric::CMesh { conc } => conc as usize,
            _ => 1,
        }
    }

    /// Total terminal count, `len() * concentration()`.
    pub fn terminals(&self) -> usize {
        self.len() * self.concentration()
    }

    /// Router that terminal `t` attaches to. Terminals map onto routers in
    /// blocks: terminal `t` sits on router `t / conc` at local port
    /// `t % conc`, a bijection between `0..terminals()` and
    /// `(router, port)` pairs.
    pub fn terminal_router(&self, t: usize) -> NodeId {
        debug_assert!(t < self.terminals());
        t / self.concentration()
    }

    /// Local injection/ejection port index of terminal `t` on its router.
    pub fn terminal_port(&self, t: usize) -> usize {
        debug_assert!(t < self.terminals());
        t % self.concentration()
    }

    /// Neighbor of `id` in direction `dir`. `None` at a mesh edge; on the
    /// torus every node has all four neighbors (rows and columns wrap).
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(id);
        let (x, y) = (c.x as isize, c.y as isize);
        let (nx, ny) = match dir {
            Direction::North => (x, y - 1),
            Direction::South => (x, y + 1),
            Direction::East => (x + 1, y),
            Direction::West => (x - 1, y),
        };
        let k = self.k as isize;
        if self.is_torus() {
            return Some(
                self.node(Coord::new((nx.rem_euclid(k)) as u16, (ny.rem_euclid(k)) as u16)),
            );
        }
        if nx < 0 || ny < 0 || nx >= k || ny >= k {
            None
        } else {
            Some(self.node(Coord::new(nx as u16, ny as u16)))
        }
    }

    /// Minimal hop distance between two routers under the fabric's
    /// wiring: the Manhattan distance on the mesh, the wrap-aware
    /// per-dimension `min(d, k - d)` sum on the torus.
    pub fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (ca, cb) = (self.coord(a), self.coord(b));
        let per_dim = |p: u16, q: u16| -> u32 {
            let d = (p as i32 - q as i32).unsigned_abs();
            if self.is_torus() {
                d.min(self.k as u32 - d)
            } else {
                d
            }
        };
        per_dim(ca.x, cb.x) + per_dim(ca.y, cb.y)
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.len()
    }

    /// Iterator over every directed physical channel `(source node,
    /// direction)`, in node-major order — the same order
    /// [`crate::Network::link_loads`] and the telemetry link records use,
    /// so static analyses and dynamic observations index links
    /// identically.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, Direction)> + '_ {
        self.nodes().flat_map(move |node| {
            Direction::ALL
                .into_iter()
                .filter(move |&dir| self.neighbor(node, dir).is_some())
                .map(move |dir| (node, dir))
        })
    }

    /// Baseline top-bottom MC placement (paper Figure 3): `n_mc / 2` MCs
    /// centered on the top row and the rest centered on the bottom row.
    ///
    /// # Panics
    ///
    /// Panics if more MCs per row are requested than the row can hold.
    pub fn top_bottom_mcs(&self, n_mc: usize) -> Vec<NodeId> {
        let top = n_mc / 2;
        let bottom = n_mc - top;
        assert!(top <= self.k && bottom <= self.k, "too many MCs per row");
        let mut out = Vec::with_capacity(n_mc);
        let start_top = (self.k - top) / 2;
        for i in 0..top {
            out.push(self.node(Coord::new((start_top + i) as u16, 0)));
        }
        let start_bot = (self.k - bottom) / 2;
        for i in 0..bottom {
            out.push(self.node(Coord::new((start_bot + i) as u16, (self.k - 1) as u16)));
        }
        out
    }

    /// Staggered checkerboard MC placement (paper Figure 12). All returned
    /// nodes satisfy `x + y` odd, i.e. they are half-routers in a
    /// checkerboard mesh, so MC/L2 traffic never needs full-to-full routes.
    ///
    /// For the paper's 6x6/8-MC configuration this returns a hand-tuned
    /// staggered set (the paper likewise picked the best of several valid
    /// placements); for other sizes MCs are spread round-robin over rows at
    /// alternating column offsets.
    ///
    /// # Panics
    ///
    /// Panics if `n_mc` exceeds the number of half-router positions.
    pub fn checkerboard_mcs(&self, n_mc: usize) -> Vec<NodeId> {
        if self.k == 6 && n_mc == 8 {
            // Hand-tuned staggered placement: two MCs on the top and bottom
            // rows, one on each interior row, spread across columns.
            return [(1, 0), (5, 0), (4, 1), (3, 2), (0, 3), (5, 4), (0, 5), (2, 5)]
                .into_iter()
                .map(|(x, y)| self.node(Coord::new(x, y)))
                .collect();
        }
        let half_positions: Vec<NodeId> = self
            .nodes()
            .filter(|&id| {
                let c = self.coord(id);
                (c.x + c.y) % 2 == 1
            })
            .collect();
        assert!(n_mc <= half_positions.len(), "not enough half-router positions");
        // Spread by striding through the list of half positions.
        let stride = half_positions.len() / n_mc.max(1);
        (0..n_mc).map(|i| half_positions[i * stride.max(1)]).collect()
    }

    /// MC placement for a strategy.
    pub fn mcs(&self, placement: Placement, n_mc: usize) -> Vec<NodeId> {
        match placement {
            Placement::TopBottom => self.top_bottom_mcs(n_mc),
            Placement::Checkerboard => self.checkerboard_mcs(n_mc),
        }
    }
}

/// Input side of a router port.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum InPort {
    /// Flits arriving from a neighboring router in the given direction.
    Dir(Direction),
    /// Flits arriving from a local injection port (index within the
    /// router's injection ports).
    Inject(u8),
}

/// Output side of a router port.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OutPortKind {
    /// Channel toward the neighboring router in the given direction.
    Dir(Direction),
    /// Local ejection port (index within the router's ejection ports).
    Eject(u8),
}

/// `true` if the router kind permits a flit arriving on `inp` to leave via
/// `out`.
///
/// Port-direction convention: `InPort::Dir(d)` is the input port on the
/// router's `d` side — its flits arrived *from* the neighbor in direction
/// `d` and are traveling `d.opposite()`. So continuing straight through
/// leaves via `OutPortKind::Dir(d.opposite())`, and a U-turn (reflecting
/// back out the side the flit came in on) is `out == d`. U-turns are never
/// allowed on any router kind; full-routers permit every other
/// direction-to-direction connection, while half-routers permit only
/// straight-through (their crossbar cannot change a packet's dimension).
/// Injection reaches every output and every input reaches ejection, on
/// both kinds.
pub fn connection_allowed(kind: RouterKind, inp: InPort, out: OutPortKind) -> bool {
    match (inp, out) {
        (InPort::Inject(_), _) | (InPort::Dir(_), OutPortKind::Eject(_)) => true,
        (InPort::Dir(d), OutPortKind::Dir(o)) if o == d => false, // U-turn
        (InPort::Dir(d), OutPortKind::Dir(o)) => match kind {
            RouterKind::Full => true,
            RouterKind::Half => o == d.opposite(), // straight-through only
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkerboard_parity() {
        let m = Mesh::checkerboard(6);
        assert_eq!(m.len(), 36);
        let mut halves = 0;
        for id in m.nodes() {
            let c = m.coord(id);
            let expect_half = (c.x + c.y) % 2 == 1;
            assert_eq!(m.is_half(id), expect_half, "node {c}");
            if m.is_half(id) {
                halves += 1;
            }
        }
        assert_eq!(halves, 18);
    }

    #[test]
    fn coord_node_roundtrip() {
        let m = Mesh::all_full(6);
        for id in m.nodes() {
            assert_eq!(m.node(m.coord(id)), id);
        }
    }

    #[test]
    fn neighbors_at_edges() {
        let m = Mesh::all_full(4);
        let nw = m.node(Coord::new(0, 0));
        assert_eq!(m.neighbor(nw, Direction::North), None);
        assert_eq!(m.neighbor(nw, Direction::West), None);
        assert_eq!(m.neighbor(nw, Direction::East), Some(m.node(Coord::new(1, 0))));
        assert_eq!(m.neighbor(nw, Direction::South), Some(m.node(Coord::new(0, 1))));

        let se = m.node(Coord::new(3, 3));
        assert_eq!(m.neighbor(se, Direction::South), None);
        assert_eq!(m.neighbor(se, Direction::East), None);
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = Mesh::all_full(5);
        for id in m.nodes() {
            for d in Direction::ALL {
                if let Some(n) = m.neighbor(id, d) {
                    assert_eq!(m.neighbor(n, d.opposite()), Some(id));
                }
            }
        }
    }

    #[test]
    fn top_bottom_placement() {
        let m = Mesh::all_full(6);
        let mcs = m.top_bottom_mcs(8);
        assert_eq!(mcs.len(), 8);
        for (i, &mc) in mcs.iter().enumerate() {
            let c = m.coord(mc);
            if i < 4 {
                assert_eq!(c.y, 0);
            } else {
                assert_eq!(c.y, 5);
            }
        }
        // Centered: columns 1..=4 on both rows.
        let cols: Vec<u16> = mcs.iter().map(|&n| m.coord(n).x).collect();
        assert_eq!(cols, vec![1, 2, 3, 4, 1, 2, 3, 4]);
    }

    #[test]
    fn checkerboard_placement_on_half_routers() {
        let m = Mesh::checkerboard(6);
        let mcs = m.checkerboard_mcs(8);
        assert_eq!(mcs.len(), 8);
        let unique: std::collections::HashSet<_> = mcs.iter().collect();
        assert_eq!(unique.len(), 8, "MC positions must be distinct");
        for &mc in &mcs {
            assert!(m.is_half(mc), "MC at {} must sit on a half-router", m.coord(mc));
        }
    }

    #[test]
    fn checkerboard_placement_generic_sizes() {
        for k in [4usize, 8, 10] {
            let m = Mesh::checkerboard(k);
            let n_mc = k; // e.g. 8 MCs on an 8x8
            let mcs = m.checkerboard_mcs(n_mc);
            assert_eq!(mcs.len(), n_mc);
            let unique: std::collections::HashSet<_> = mcs.iter().collect();
            assert_eq!(unique.len(), n_mc);
            for &mc in &mcs {
                assert!(m.is_half(mc));
            }
        }
    }

    #[test]
    fn full_router_connectivity() {
        use Direction::*;
        let k = RouterKind::Full;
        // Straight-through: entered from the North input (moving south),
        // leaves via South.
        assert!(connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(South)));
        // Turns allowed.
        assert!(connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(East)));
        // Reflection back out of the same port is not.
        assert!(!connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(North)));
        assert!(connection_allowed(k, InPort::Dir(North), OutPortKind::Eject(0)));
        assert!(connection_allowed(k, InPort::Inject(0), OutPortKind::Dir(West)));
    }

    #[test]
    fn half_router_connectivity() {
        use Direction::*;
        let k = RouterKind::Half;
        // Straight-through still fine.
        assert!(connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(South)));
        assert!(connection_allowed(k, InPort::Dir(East), OutPortKind::Dir(West)));
        // Dimension changes forbidden.
        assert!(!connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(East)));
        assert!(!connection_allowed(k, InPort::Dir(East), OutPortKind::Dir(South)));
        // Injection and ejection fully connected.
        for d in Direction::ALL {
            assert!(connection_allowed(k, InPort::Inject(0), OutPortKind::Dir(d)));
            assert!(connection_allowed(k, InPort::Dir(d), OutPortKind::Eject(0)));
        }
    }

    /// Exhaustive (kind x inport x outport) legality table, spelled out
    /// independently of the implementation so a refactor of
    /// `connection_allowed` cannot silently change legality.
    #[test]
    fn connection_allowed_exhaustive_table() {
        use Direction::*;
        let dirs = [North, East, South, West];
        let inports: Vec<InPort> = dirs
            .iter()
            .map(|&d| InPort::Dir(d))
            .chain([InPort::Inject(0), InPort::Inject(1)])
            .collect();
        let outports: Vec<OutPortKind> = dirs
            .iter()
            .map(|&d| OutPortKind::Dir(d))
            .chain([OutPortKind::Eject(0), OutPortKind::Eject(1)])
            .collect();
        for kind in [RouterKind::Full, RouterKind::Half] {
            for &inp in &inports {
                for &out in &outports {
                    let expect = match (inp, out) {
                        // Injection reaches everything.
                        (InPort::Inject(_), _) => true,
                        // Everything reaches ejection.
                        (_, OutPortKind::Eject(_)) => true,
                        (InPort::Dir(d), OutPortKind::Dir(o)) => {
                            if o == d {
                                false // U-turn, both kinds
                            } else if o == d.opposite() {
                                true // straight-through, both kinds
                            } else {
                                kind == RouterKind::Full // turns: full only
                            }
                        }
                    };
                    assert_eq!(
                        connection_allowed(kind, inp, out),
                        expect,
                        "{kind:?} {inp:?} -> {out:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_wraps_every_edge() {
        let t = Topology::torus(4);
        assert!(t.is_torus());
        assert_eq!(t.fabric(), Fabric::Torus);
        let nw = t.node(Coord::new(0, 0));
        assert_eq!(t.neighbor(nw, Direction::North), Some(t.node(Coord::new(0, 3))));
        assert_eq!(t.neighbor(nw, Direction::West), Some(t.node(Coord::new(3, 0))));
        // Every node has all four neighbors: 4k^2 directed links.
        assert_eq!(t.links().count(), 4 * 16);
        // The mesh has only 4k(k-1).
        assert_eq!(Topology::all_full(4).links().count(), 4 * 4 * 3);
    }

    #[test]
    fn torus_distance_is_wrap_aware() {
        let t = Topology::torus(6);
        let m = Topology::all_full(6);
        let a = t.node(Coord::new(0, 0));
        let b = t.node(Coord::new(5, 5));
        assert_eq!(m.distance(a, b), 10);
        assert_eq!(t.distance(a, b), 2); // one wrap hop per dimension
        let c = t.node(Coord::new(3, 0));
        assert_eq!(t.distance(a, c), 3); // tie: d == k - d
    }

    #[test]
    fn cmesh_terminal_mapping_is_blockwise() {
        let t = Topology::cmesh(4, 2);
        assert_eq!(t.concentration(), 2);
        assert_eq!(t.terminals(), 32);
        assert_eq!(t.terminal_router(0), 0);
        assert_eq!(t.terminal_port(0), 0);
        assert_eq!(t.terminal_router(1), 0);
        assert_eq!(t.terminal_port(1), 1);
        assert_eq!(t.terminal_router(31), 15);
        // Mesh wiring is untouched by concentration.
        assert_eq!(t.neighbor(0, Direction::North), None);
        assert!(!t.is_torus());
    }

    #[test]
    fn serialization_is_backward_compatible() {
        // Plain meshes keep the historical two-key shape (fingerprint and
        // canonical-hash stability); other fabrics append keys.
        let m = Topology::checkerboard(2);
        assert_eq!(
            serde_json::to_string(&m).unwrap(),
            r#"{"k":2,"kinds":["Full","Half","Half","Full"]}"#
        );
        let fabrics = [
            Topology::all_full(3),
            Topology::checkerboard(4),
            Topology::torus(3),
            Topology::cmesh(3, 2),
        ];
        for t in fabrics {
            let back = Topology::from_value(&t.to_value()).unwrap();
            assert_eq!(back, t);
        }
        let torus = serde_json::to_string(&Topology::torus(2)).unwrap();
        assert!(torus.contains(r#""fabric":"torus""#), "{torus}");
        let cm = serde_json::to_string(&Topology::cmesh(2, 3)).unwrap();
        assert!(cm.contains(r#""fabric":"cmesh""#) && cm.contains(r#""conc":3"#), "{cm}");
    }
}
