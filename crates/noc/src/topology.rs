//! Mesh topology, router kinds (full vs. half) and memory-controller
//! placements.
//!
//! The checkerboard organization (paper Section IV-A) alternates
//! conventional five-port **full-routers** with **half-routers** whose
//! crossbar cannot change a packet's dimension: the east port connects only
//! to the west port and vice versa, the north port only to the south port
//! and vice versa, while the injection port reaches every output and every
//! input reaches the ejection port.

use crate::types::{Coord, Direction, NodeId};
use serde::{Deserialize, Serialize};

/// Microarchitectural kind of a router.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RouterKind {
    /// Conventional 2D-mesh router: any input may reach any output (other
    /// than its own port).
    Full,
    /// Reduced-connectivity router: packets may not change dimension.
    /// Crossbar degenerates to four 2x1 muxes plus an ejection mux,
    /// roughly halving router area (paper Section V-F).
    Half,
}

/// Memory-controller placement strategy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Placement {
    /// Baseline: MCs on the top and bottom rows (paper Figure 3), like
    /// Intel's 80-core design and Tilera TILE64.
    TopBottom,
    /// Staggered placement on half-router nodes (paper Figure 12),
    /// exploiting the checkerboard organization to spread MC hot-spots.
    Checkerboard,
}

/// A `k x k` 2D mesh with a router-kind map.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mesh {
    k: usize,
    kinds: Vec<RouterKind>,
}

impl Mesh {
    /// A mesh in which every router is a full-router.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > u16::MAX as usize`.
    pub fn all_full(k: usize) -> Self {
        assert!(k > 0 && k <= u16::MAX as usize, "mesh radix out of range");
        Mesh { k, kinds: vec![RouterKind::Full; k * k] }
    }

    /// A checkerboard mesh: node `(x, y)` is a half-router iff `x + y` is
    /// odd (the hatched routers of paper Figure 12).
    ///
    /// ```
    /// use tenoc_noc::{Coord, Mesh};
    ///
    /// let mesh = Mesh::checkerboard(6);
    /// assert!(!mesh.is_half(mesh.node(Coord::new(0, 0))));
    /// assert!(mesh.is_half(mesh.node(Coord::new(1, 0))));
    /// ```
    pub fn checkerboard(k: usize) -> Self {
        let mut mesh = Self::all_full(k);
        for id in 0..k * k {
            let c = mesh.coord(id);
            if (c.x + c.y) % 2 == 1 {
                mesh.kinds[id] = RouterKind::Half;
            }
        }
        mesh
    }

    /// Mesh radix `k` (the mesh has `k * k` nodes).
    pub fn radix(&self) -> usize {
        self.k
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.k * self.k
    }

    /// `true` if the mesh has no nodes (never true for constructed meshes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Node id at a coordinate.
    pub fn node(&self, c: Coord) -> NodeId {
        debug_assert!((c.x as usize) < self.k && (c.y as usize) < self.k);
        c.y as usize * self.k + c.x as usize
    }

    /// Coordinate of a node id.
    pub fn coord(&self, id: NodeId) -> Coord {
        debug_assert!(id < self.len());
        Coord::new((id % self.k) as u16, (id / self.k) as u16)
    }

    /// Kind of the router at `id`.
    pub fn kind(&self, id: NodeId) -> RouterKind {
        self.kinds[id]
    }

    /// `true` if the router at `id` is a half-router.
    pub fn is_half(&self, id: NodeId) -> bool {
        self.kinds[id] == RouterKind::Half
    }

    /// Neighbor of `id` in direction `dir`, or `None` at the mesh edge.
    pub fn neighbor(&self, id: NodeId, dir: Direction) -> Option<NodeId> {
        let c = self.coord(id);
        let (x, y) = (c.x as isize, c.y as isize);
        let (nx, ny) = match dir {
            Direction::North => (x, y - 1),
            Direction::South => (x, y + 1),
            Direction::East => (x + 1, y),
            Direction::West => (x - 1, y),
        };
        if nx < 0 || ny < 0 || nx >= self.k as isize || ny >= self.k as isize {
            None
        } else {
            Some(self.node(Coord::new(nx as u16, ny as u16)))
        }
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.len()
    }

    /// Iterator over every directed physical channel `(source node,
    /// direction)`, in node-major order — the same order
    /// [`crate::Network::link_loads`] and the telemetry link records use,
    /// so static analyses and dynamic observations index links
    /// identically.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, Direction)> + '_ {
        self.nodes().flat_map(move |node| {
            Direction::ALL
                .into_iter()
                .filter(move |&dir| self.neighbor(node, dir).is_some())
                .map(move |dir| (node, dir))
        })
    }

    /// Baseline top-bottom MC placement (paper Figure 3): `n_mc / 2` MCs
    /// centered on the top row and the rest centered on the bottom row.
    ///
    /// # Panics
    ///
    /// Panics if more MCs per row are requested than the row can hold.
    pub fn top_bottom_mcs(&self, n_mc: usize) -> Vec<NodeId> {
        let top = n_mc / 2;
        let bottom = n_mc - top;
        assert!(top <= self.k && bottom <= self.k, "too many MCs per row");
        let mut out = Vec::with_capacity(n_mc);
        let start_top = (self.k - top) / 2;
        for i in 0..top {
            out.push(self.node(Coord::new((start_top + i) as u16, 0)));
        }
        let start_bot = (self.k - bottom) / 2;
        for i in 0..bottom {
            out.push(self.node(Coord::new((start_bot + i) as u16, (self.k - 1) as u16)));
        }
        out
    }

    /// Staggered checkerboard MC placement (paper Figure 12). All returned
    /// nodes satisfy `x + y` odd, i.e. they are half-routers in a
    /// checkerboard mesh, so MC/L2 traffic never needs full-to-full routes.
    ///
    /// For the paper's 6x6/8-MC configuration this returns a hand-tuned
    /// staggered set (the paper likewise picked the best of several valid
    /// placements); for other sizes MCs are spread round-robin over rows at
    /// alternating column offsets.
    ///
    /// # Panics
    ///
    /// Panics if `n_mc` exceeds the number of half-router positions.
    pub fn checkerboard_mcs(&self, n_mc: usize) -> Vec<NodeId> {
        if self.k == 6 && n_mc == 8 {
            // Hand-tuned staggered placement: two MCs on the top and bottom
            // rows, one on each interior row, spread across columns.
            return [(1, 0), (5, 0), (4, 1), (3, 2), (0, 3), (5, 4), (0, 5), (2, 5)]
                .into_iter()
                .map(|(x, y)| self.node(Coord::new(x, y)))
                .collect();
        }
        let half_positions: Vec<NodeId> = self
            .nodes()
            .filter(|&id| {
                let c = self.coord(id);
                (c.x + c.y) % 2 == 1
            })
            .collect();
        assert!(n_mc <= half_positions.len(), "not enough half-router positions");
        // Spread by striding through the list of half positions.
        let stride = half_positions.len() / n_mc.max(1);
        (0..n_mc).map(|i| half_positions[i * stride.max(1)]).collect()
    }

    /// MC placement for a strategy.
    pub fn mcs(&self, placement: Placement, n_mc: usize) -> Vec<NodeId> {
        match placement {
            Placement::TopBottom => self.top_bottom_mcs(n_mc),
            Placement::Checkerboard => self.checkerboard_mcs(n_mc),
        }
    }
}

/// Input side of a router port.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum InPort {
    /// Flits arriving from a neighboring router in the given direction.
    Dir(Direction),
    /// Flits arriving from a local injection port (index within the
    /// router's injection ports).
    Inject(u8),
}

/// Output side of a router port.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum OutPortKind {
    /// Channel toward the neighboring router in the given direction.
    Dir(Direction),
    /// Local ejection port (index within the router's ejection ports).
    Eject(u8),
}

/// `true` if the router kind permits a flit arriving on `inp` to leave via
/// `out`.
///
/// Full-routers permit everything except U-turns on direction ports.
/// Half-routers additionally forbid dimension changes: a flit arriving from
/// the east may only continue west (or eject), etc. Injection and ejection
/// are always fully connected.
pub fn connection_allowed(kind: RouterKind, inp: InPort, out: OutPortKind) -> bool {
    match (inp, out) {
        // U-turns never allowed on direction ports.
        (InPort::Dir(d), OutPortKind::Dir(o)) if o == d.opposite() => match kind {
            // A flit arriving *from* direction d entered via the channel
            // pointing d.opposite() -> continuing in the same travel
            // direction means leaving via d.opposite()... see note below.
            RouterKind::Full | RouterKind::Half => true,
        },
        (InPort::Dir(d), OutPortKind::Dir(o)) if o == d => false, // reflect back
        (InPort::Dir(d), OutPortKind::Dir(o)) => match kind {
            RouterKind::Full => true,
            // Dimension change (e.g. entered moving south, leaves east) is
            // exactly the non-opposite, non-reflecting case.
            RouterKind::Half => {
                let _ = (d, o);
                false
            }
        },
        (InPort::Dir(_), OutPortKind::Eject(_)) => true,
        (InPort::Inject(_), _) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkerboard_parity() {
        let m = Mesh::checkerboard(6);
        assert_eq!(m.len(), 36);
        let mut halves = 0;
        for id in m.nodes() {
            let c = m.coord(id);
            let expect_half = (c.x + c.y) % 2 == 1;
            assert_eq!(m.is_half(id), expect_half, "node {c}");
            if m.is_half(id) {
                halves += 1;
            }
        }
        assert_eq!(halves, 18);
    }

    #[test]
    fn coord_node_roundtrip() {
        let m = Mesh::all_full(6);
        for id in m.nodes() {
            assert_eq!(m.node(m.coord(id)), id);
        }
    }

    #[test]
    fn neighbors_at_edges() {
        let m = Mesh::all_full(4);
        let nw = m.node(Coord::new(0, 0));
        assert_eq!(m.neighbor(nw, Direction::North), None);
        assert_eq!(m.neighbor(nw, Direction::West), None);
        assert_eq!(m.neighbor(nw, Direction::East), Some(m.node(Coord::new(1, 0))));
        assert_eq!(m.neighbor(nw, Direction::South), Some(m.node(Coord::new(0, 1))));

        let se = m.node(Coord::new(3, 3));
        assert_eq!(m.neighbor(se, Direction::South), None);
        assert_eq!(m.neighbor(se, Direction::East), None);
    }

    #[test]
    fn neighbor_is_symmetric() {
        let m = Mesh::all_full(5);
        for id in m.nodes() {
            for d in Direction::ALL {
                if let Some(n) = m.neighbor(id, d) {
                    assert_eq!(m.neighbor(n, d.opposite()), Some(id));
                }
            }
        }
    }

    #[test]
    fn top_bottom_placement() {
        let m = Mesh::all_full(6);
        let mcs = m.top_bottom_mcs(8);
        assert_eq!(mcs.len(), 8);
        for (i, &mc) in mcs.iter().enumerate() {
            let c = m.coord(mc);
            if i < 4 {
                assert_eq!(c.y, 0);
            } else {
                assert_eq!(c.y, 5);
            }
        }
        // Centered: columns 1..=4 on both rows.
        let cols: Vec<u16> = mcs.iter().map(|&n| m.coord(n).x).collect();
        assert_eq!(cols, vec![1, 2, 3, 4, 1, 2, 3, 4]);
    }

    #[test]
    fn checkerboard_placement_on_half_routers() {
        let m = Mesh::checkerboard(6);
        let mcs = m.checkerboard_mcs(8);
        assert_eq!(mcs.len(), 8);
        let unique: std::collections::HashSet<_> = mcs.iter().collect();
        assert_eq!(unique.len(), 8, "MC positions must be distinct");
        for &mc in &mcs {
            assert!(m.is_half(mc), "MC at {} must sit on a half-router", m.coord(mc));
        }
    }

    #[test]
    fn checkerboard_placement_generic_sizes() {
        for k in [4usize, 8, 10] {
            let m = Mesh::checkerboard(k);
            let n_mc = k; // e.g. 8 MCs on an 8x8
            let mcs = m.checkerboard_mcs(n_mc);
            assert_eq!(mcs.len(), n_mc);
            let unique: std::collections::HashSet<_> = mcs.iter().collect();
            assert_eq!(unique.len(), n_mc);
            for &mc in &mcs {
                assert!(m.is_half(mc));
            }
        }
    }

    #[test]
    fn full_router_connectivity() {
        use Direction::*;
        let k = RouterKind::Full;
        // Straight-through: entered from the North input (moving south),
        // leaves via South.
        assert!(connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(South)));
        // Turns allowed.
        assert!(connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(East)));
        // Reflection back out of the same port is not.
        assert!(!connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(North)));
        assert!(connection_allowed(k, InPort::Dir(North), OutPortKind::Eject(0)));
        assert!(connection_allowed(k, InPort::Inject(0), OutPortKind::Dir(West)));
    }

    #[test]
    fn half_router_connectivity() {
        use Direction::*;
        let k = RouterKind::Half;
        // Straight-through still fine.
        assert!(connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(South)));
        assert!(connection_allowed(k, InPort::Dir(East), OutPortKind::Dir(West)));
        // Dimension changes forbidden.
        assert!(!connection_allowed(k, InPort::Dir(North), OutPortKind::Dir(East)));
        assert!(!connection_allowed(k, InPort::Dir(East), OutPortKind::Dir(South)));
        // Injection and ejection fully connected.
        for d in Direction::ALL {
            assert!(connection_allowed(k, InPort::Inject(0), OutPortKind::Dir(d)));
            assert!(connection_allowed(k, InPort::Dir(d), OutPortKind::Eject(0)));
        }
    }
}
