//! Round-robin arbiters used by the VC and switch allocators.
//!
//! iSLIP-style allocation updates an arbiter's priority pointer only when a
//! grant is *accepted*, so the arbiter exposes both a non-destructive
//! [`RoundRobin::peek`] and an explicit [`RoundRobin::advance_past`].

use serde::{Deserialize, Serialize};

/// A round-robin arbiter over `n` requesters.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobin {
    n: usize,
    ptr: usize,
}

impl RoundRobin {
    /// Creates an arbiter over `n` requesters with priority starting at 0.
    pub fn new(n: usize) -> Self {
        RoundRobin { n, ptr: 0 }
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the arbiter has no requesters.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Returns the highest-priority requester `i` for which `req(i)` is
    /// true, without updating the priority pointer.
    pub fn peek(&self, mut req: impl FnMut(usize) -> bool) -> Option<usize> {
        for off in 0..self.n {
            let i = (self.ptr + off) % self.n;
            if req(i) {
                return Some(i);
            }
        }
        None
    }

    /// Grants to the highest-priority requester and advances the pointer
    /// past the winner (combined [`peek`](Self::peek) +
    /// [`advance_past`](Self::advance_past)).
    pub fn pick(&mut self, req: impl FnMut(usize) -> bool) -> Option<usize> {
        let winner = self.peek(req)?;
        self.advance_past(winner);
        Some(winner)
    }

    /// Moves the priority pointer one past `winner`, making it the
    /// lowest-priority requester next time.
    pub fn advance_past(&mut self, winner: usize) {
        debug_assert!(winner < self.n);
        self.ptr = (winner + 1) % self.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_rotate_fairly() {
        let mut a = RoundRobin::new(4);
        let all = |_: usize| true;
        let order: Vec<usize> = (0..8).map(|_| a.pick(all).unwrap()).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_non_requesters() {
        let mut a = RoundRobin::new(4);
        let odd = |i: usize| i % 2 == 1;
        assert_eq!(a.pick(odd), Some(1));
        assert_eq!(a.pick(odd), Some(3));
        assert_eq!(a.pick(odd), Some(1));
    }

    #[test]
    fn no_requesters_yields_none() {
        let mut a = RoundRobin::new(3);
        assert_eq!(a.pick(|_| false), None);
        // Pointer unchanged: next grant still starts at 0.
        assert_eq!(a.pick(|_| true), Some(0));
    }

    #[test]
    fn peek_does_not_advance() {
        let a = RoundRobin::new(3);
        assert_eq!(a.peek(|_| true), Some(0));
        assert_eq!(a.peek(|_| true), Some(0));
    }

    #[test]
    fn fairness_under_contention() {
        // Two always-requesting inputs must alternate.
        let mut a = RoundRobin::new(2);
        let seq: Vec<usize> = (0..6).map(|_| a.pick(|_| true).unwrap()).collect();
        assert_eq!(seq, vec![0, 1, 0, 1, 0, 1]);
    }
}
