//! Batched structure-of-arrays execution engine.
//!
//! [`ArenaNetwork`] is an alternative execution engine for the exact
//! simulation that [`Network`](crate::network::Network) defines: instead of
//! per-router `Vec<Router>` / `Vec<Vec<…>>` nesting, every piece of router
//! state — input-VC FIFOs, per-VC credit counters, `out_vc_owner`, the
//! round-robin arbiter pointers, NI slots, channel delay lines — lives in
//! one contiguous index-addressed slab per kind of state. The pipeline
//! stages then iterate over dense arrays with a per-node occupancy bitmask
//! selecting the (input port, VC) lanes that hold flits, which is what
//! makes the inner loops cache-dense and branch-uniform.
//!
//! The arena is an *engine*, not a model: it executes the oracle's event
//! schedule bit-exactly. Every arbiter pointer is sized by the router's
//! actual port counts (not the slab stride), every phase visits nodes in
//! the same ascending active-set order, and the RNG is consumed by the
//! same calls in the same order — so statistics, ejection traces, cycle
//! counts and therefore `RunRecord` fingerprints are identical to the
//! per-cell kernel. `tests/arena_batch_equivalence.rs` pins this with
//! proptests over random legal configurations and batch widths.
//!
//! [`NetBatch`] stacks B same-shape cells (same topology/VC/buffer shape;
//! differing seeds and traffic) and advances them in lockstep, cell-major
//! per phase: deliver over all cells, then NI, then routers, then retire.
//! Per-cell state never interleaves — each cell owns its slabs, RNG and
//! `ActiveSet` — so batching is a pure scheduling transform and cannot
//! change any cell's outcome. See DESIGN.md §15.

use crate::activeset::ActiveSet;
use crate::buffer::VcState;
use crate::config::{NetworkConfig, RouterTiming};
use crate::interconnect::Interconnect;
use crate::packet::{EjectedPacket, Packet, PacketClass, PacketHeader, Phase};
use crate::routing::{self, OutPort};
use crate::stats::NetStats;
use crate::telemetry::TelemetryConfig;
use crate::tick::Tick;
use crate::topology::RouterKind;
use crate::types::{Direction, NodeId};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Opposite-direction port index: `North <-> South`, `East <-> West`.
const OPP: [usize; 4] = [2, 3, 0, 1];

/// First set bit of `mask` at or cyclically after `ptr`, over an `n`-bit
/// ring (`n < 32`, `mask` nonzero within the low `n` bits). This is the
/// round-robin arbiter pick: rotate the ring so `ptr` is bit 0, take the
/// lowest set bit, rotate back.
#[inline(always)]
fn circ_first(mask: u32, ptr: usize, n: usize) -> usize {
    debug_assert!(mask != 0 && ptr < n && n < 32);
    let rot = (mask >> ptr) | (mask << (n - ptr));
    let win = ptr + rot.trailing_zeros() as usize;
    if win >= n {
        win - n
    } else {
        win
    }
}

/// [`circ_first`] over a 128-bit ring (`n <= 128`). The `ptr == 0` case is
/// split out because `mask << n` would overflow the shift when `n == 128`.
#[inline(always)]
fn circ_first128(mask: u128, ptr: usize, n: usize) -> usize {
    debug_assert!(mask != 0 && ptr < n && n <= 128);
    if ptr == 0 {
        return mask.trailing_zeros() as usize;
    }
    let rot = (mask >> ptr) | (mask << (n - ptr));
    let win = ptr + rot.trailing_zeros() as usize;
    if win >= n {
        win - n
    } else {
        win
    }
}

/// A packet being streamed flit-by-flit into a router injection port.
#[derive(Copy, Clone, Debug)]
struct NiPacket {
    /// Packet-table row.
    pkt: u32,
    next_seq: u16,
    /// Total flit count, copied here so streaming a body flit does not
    /// touch the packet-table row.
    flits: u16,
    vc: Option<u8>,
}

/// A flit in flight: a reference into the packet table plus its sequence
/// number. 6 bytes instead of a ~90-byte header copy — the single biggest
/// lever on the engine's memory traffic, since every hop moves each flit
/// through a buffer pop, a channel ring, and a buffer push.
#[derive(Copy, Clone, Debug)]
struct LaneFlit {
    pkt: u32,
    /// Sequence within the packet (`0` = head).
    seq: u16,
}

/// A buffered flit: 12 bytes per FIFO slot. Cycle stamps are stored as
/// `u32` — simulations are bounded by `max_core_cycles`, far below 2^32.
#[derive(Copy, Clone, Debug)]
struct FifoEntry {
    pkt: u32,
    arrival: u32,
    seq: u16,
}

/// A flit on a channel ring: 12 bytes per slot.
#[derive(Copy, Clone, Debug)]
struct ChFlit {
    pkt: u32,
    due: u32,
    seq: u16,
    vc: u8,
}

/// The number of phases one [`ArenaNetwork`] cycle splits into; see
/// [`Interconnect::tick_phase`]. The arena fuses its whole cycle into a
/// single per-node sweep (see [`ArenaNetwork::run_phase`]), so one phase
/// is the cycle.
pub const ARENA_PHASES: usize = 1;

/// One physical mesh network, stored as flat structure-of-arrays slabs.
///
/// Drop-in replacement for [`Network`](crate::network::Network) behind the
/// [`Interconnect`] trait with bit-identical observable behavior (same
/// stats, same ejection order, same RNG stream). Telemetry is the one
/// unsupported feature — armed cells must run on the oracle engine.
pub struct ArenaNetwork {
    cfg: NetworkConfig,
    // --- shape (immutable after construction) ---
    n: usize,
    /// VCs per input port.
    nv: usize,
    /// Buffer depth per VC, in flits.
    depth: usize,
    /// Slab stride: max input ports over all nodes (4 + max inject ports).
    in_max: usize,
    /// Slab stride: max output ports over all nodes (4 + max eject ports).
    out_max: usize,
    /// Input-VC slots per node (`in_max * nv`).
    ivc_stride: usize,
    /// Output-VC slots per node (`out_max * nv`).
    ovc_stride: usize,
    /// Actual input-port count per node — arbiter modulo arithmetic uses
    /// this, never the slab stride, to match the oracle's pointer orbits.
    node_n_in: Vec<u8>,
    /// Actual output-port count per node.
    node_n_out: Vec<u8>,
    node_n_eject: Vec<u8>,
    node_kind: Vec<RouterKind>,
    node_timing: Vec<RouterTiming>,
    /// Per-node `st_delay + link_latency + 1` (half-routers differ).
    node_flit_delay: Vec<u64>,
    /// Neighbor per `[node][dir]`; `-1` at mesh edges.
    nbr: Vec<[i32; 4]>,
    // --- packet table ---
    /// One header per in-flight packet, indexed by [`LaneFlit::pkt`]. RC
    /// mutates a packet's routing fields here in place — bit-identical to
    /// the oracle mutating its head flit's copy, because a wormhole head
    /// visits routers strictly in sequence. Rows recycle via `pkt_free`
    /// when the tail flit ejects.
    pkts: Vec<PacketHeader>,
    /// Injection-time `(phase, via)` per row, restored into the header at
    /// ejection so the ejected packet is byte-identical to the oracle's
    /// (whose tail flit still carries the injection-time copy).
    pkt_init: Vec<(Phase, Option<NodeId>)>,
    /// Dense mirror of each row's flit count — tail detection per grant
    /// reads 2 bytes here instead of pulling the 80-byte header row.
    pkt_flits: Vec<u16>,
    /// Free packet-table rows.
    pkt_free: Vec<u32>,
    // --- input-VC slabs, indexed `node * ivc_stride + in_port * nv + vc` ---
    /// FIFO storage: slot `i` owns `fifo[i*depth .. (i+1)*depth]` as a
    /// ring of flits stamped with their arrival cycle.
    fifo: Vec<FifoEntry>,
    fifo_head: Vec<u8>,
    fifo_len: Vec<u8>,
    vc_state: Vec<VcState>,
    /// Round-robin cursor over candidate output VCs (VA request rotation).
    vc_cursor: Vec<u8>,
    /// Per-node occupancy bitmask: bit `in_port * nv + vc` set iff that
    /// VC buffers at least one flit. Drives RC/VA/SA lane selection.
    occ: Vec<u128>,
    /// Per-node mask of lanes in `VcState::Waiting` (routed, awaiting VA).
    /// Always a subset of `occ`: the routed head stays buffered until SA.
    waiting: Vec<u128>,
    /// Per-node mask of lanes in `VcState::Active` (own a downstream VC).
    /// Not a subset of `occ` — an active lane may have drained its buffer
    /// while body flits are still in flight upstream.
    active_vcs: Vec<u128>,
    /// Per-node mask of active lanes whose downstream VC has a credit.
    /// Maintained incrementally at every credit arrival/consumption and VA
    /// grant; only meaningful under `active_vcs`. Readiness for the switch
    /// is then `active & occ & credit_ok & !gate` with no table probes.
    credit_ok: Vec<u128>,
    /// Per-node mask of lanes whose head won VA this cycle and is gated
    /// out of same-cycle switch traversal (multi-cycle routers only).
    /// Rebuilt by VA each cycle before SA reads it.
    sa_gate: Vec<u128>,
    /// Buffered flits per node (drain detection).
    node_occ: Vec<u32>,
    // --- output-VC slabs, indexed `node * ovc_stride + out_port * nv + vc` ---
    credits: Vec<u16>,
    /// Holder of each downstream VC as flat `in_port * nv + vc`, `-1` free.
    owner: Vec<i16>,
    /// VA output-arbiter pointer per (out_port, vc).
    va_ptr: Vec<u16>,
    /// SA input-arbiter pointer per `[node * in_max + in_port]`, over VCs.
    sa_in_ptr: Vec<u8>,
    /// SA output-arbiter pointer per `[node * out_max + out_port]`, over
    /// the node's actual input ports.
    sa_out_ptr: Vec<u8>,
    // --- channel slabs, indexed `node * 4 + dir` ---
    /// Flit delay-line rings: channel `c` owns
    /// `ch_flit[c*ch_cap .. (c+1)*ch_cap]`, entries `(due, vc, flit)`.
    ch_flit: Vec<ChFlit>,
    ch_flit_head: Vec<u16>,
    ch_flit_len: Vec<u16>,
    /// Ring capacity per channel (max flit delay + 2, one slot per cycle
    /// in flight plus slack).
    ch_cap: usize,
    /// Credit return rings: channel `c` owns `ch_credit[c*4 .. c*4+4]`,
    /// entries `(due, vc)`; at most one credit per channel per cycle with
    /// a one-cycle delay, so 4 slots cannot overflow.
    ch_credit: Vec<(u64, u8)>,
    ch_credit_head: Vec<u8>,
    ch_credit_len: Vec<u8>,
    ch_total: Vec<u64>,
    /// Per-node direction masks of non-empty inbound flit rings /
    /// outbound credit rings — set at the push, cleared when delivery
    /// drains the ring, so delivery and idle checks skip empty rings.
    flit_pending: Vec<u8>,
    credit_pending: Vec<u8>,
    // --- network interfaces, indexed `node * (in_max - 4) + port` ---
    ni: Vec<Option<NiPacket>>,
    node_n_inject: Vec<u8>,
    /// Busy NI slots per node.
    ni_busy: Vec<u8>,
    ni_cursor: Vec<u32>,
    // --- cold state ---
    ejected: Vec<VecDeque<EjectedPacket>>,
    eject_credits: VecDeque<(u64, NodeId, usize, u8)>,
    cycle: u64,
    stats: NetStats,
    rng: SmallRng,
    next_pkt_id: u64,
    active: ActiveSet,
    // --- O(1) in-flight accounting ---
    buffered: usize,
    flying: usize,
    ni_pending: usize,
    // --- per-cycle scratch (steady-state allocation-free) ---
    /// VA per-(out_port, out_vc) requester masks (bit `in_port * nv + vc`).
    va_req: Vec<u128>,
    /// SA output-first grants offered to each input port.
    sa_grants: Vec<Vec<(u8, u8, u8)>>,
    /// SA output-first per-output request masks (bit `in_port * nv + vc`).
    sa_op_req: Vec<u128>,
}

impl ArenaNetwork {
    /// `true` if this configuration's shape fits the arena's packed
    /// representation (occupancy masks are 128-bit, ring indices 8-bit).
    /// Unsupported shapes must run on the oracle engine.
    pub fn supports(cfg: &NetworkConfig) -> bool {
        let nv = cfg.vcs.total as usize;
        let max_inject = cfg.mc_inject_ports.max(cfg.core_inject_ports);
        (4 + max_inject) * nv <= 128 && cfg.vc_depth <= 255 && !cfg.mesh.is_empty()
    }

    /// Builds an arena engine from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails or [`ArenaNetwork::supports`] is
    /// false for `cfg`.
    pub fn new(cfg: NetworkConfig) -> Self {
        cfg.validate().expect("invalid network configuration");
        assert!(Self::supports(&cfg), "config shape exceeds arena limits; use Network");
        crate::audit::audit(&cfg);
        let n = cfg.mesh.len();
        let nv = cfg.vcs.total as usize;
        let depth = cfg.vc_depth;
        let max_inject = cfg.mc_inject_ports.max(cfg.core_inject_ports);
        let max_eject = cfg.mc_eject_ports.max(cfg.core_eject_ports);
        let in_max = 4 + max_inject;
        let out_max = 4 + max_eject;
        let ivc_stride = in_max * nv;
        let ovc_stride = out_max * nv;

        let mut node_n_in = Vec::with_capacity(n);
        let mut node_n_out = Vec::with_capacity(n);
        let mut node_n_eject = Vec::with_capacity(n);
        let mut node_n_inject = Vec::with_capacity(n);
        let mut node_kind = Vec::with_capacity(n);
        let mut node_timing = Vec::with_capacity(n);
        let mut node_flit_delay = Vec::with_capacity(n);
        let mut nbr = Vec::with_capacity(n);
        let mut max_delay = 0u64;
        for node in 0..n {
            let inj = cfg.inject_ports(node);
            let ej = cfg.eject_ports(node);
            node_n_in.push((4 + inj) as u8);
            node_n_out.push((4 + ej) as u8);
            node_n_eject.push(ej as u8);
            node_n_inject.push(inj as u8);
            node_kind.push(cfg.mesh.kind(node));
            let t = cfg.timing(node);
            node_timing.push(t);
            let fd = t.st_delay + cfg.link_latency as u64 + 1;
            max_delay = max_delay.max(fd);
            node_flit_delay.push(fd);
            nbr.push(std::array::from_fn(|d| {
                cfg.mesh.neighbor(node, Direction::from_index(d)).map_or(-1, |x| x as i32)
            }));
        }
        let ch_cap = (max_delay as usize + 2).next_power_of_two();

        // Downstream credits start at the buffer depth for present ports
        // (all local ports; direction ports only where a neighbor exists).
        let mut credits = vec![0u16; n * ovc_stride];
        for node in 0..n {
            for op in 0..node_n_out[node] as usize {
                if op >= 4 || nbr[node][op] >= 0 {
                    for vc in 0..nv {
                        credits[node * ovc_stride + op * nv + vc] = depth as u16;
                    }
                }
            }
        }

        let dummy = FifoEntry { pkt: 0, arrival: 0, seq: 0 };
        ArenaNetwork {
            n,
            nv,
            depth,
            in_max,
            out_max,
            ivc_stride,
            ovc_stride,
            node_n_in,
            node_n_out,
            node_n_eject,
            node_kind,
            node_timing,
            node_flit_delay,
            nbr,
            pkts: Vec::with_capacity(64),
            pkt_init: Vec::with_capacity(64),
            pkt_flits: Vec::with_capacity(64),
            pkt_free: Vec::with_capacity(64),
            fifo: vec![dummy; n * ivc_stride * depth],
            fifo_head: vec![0; n * ivc_stride],
            fifo_len: vec![0; n * ivc_stride],
            vc_state: vec![VcState::Idle; n * ivc_stride],
            vc_cursor: vec![0; n * ivc_stride],
            occ: vec![0; n],
            waiting: vec![0; n],
            active_vcs: vec![0; n],
            credit_ok: vec![0; n],
            sa_gate: vec![0; n],
            node_occ: vec![0; n],
            credits,
            owner: vec![-1; n * ovc_stride],
            va_ptr: vec![0; n * ovc_stride],
            sa_in_ptr: vec![0; n * in_max],
            sa_out_ptr: vec![0; n * out_max],
            ch_flit: vec![ChFlit { pkt: 0, due: 0, seq: 0, vc: 0 }; n * 4 * ch_cap],
            ch_flit_head: vec![0; n * 4],
            ch_flit_len: vec![0; n * 4],
            ch_cap,
            ch_credit: vec![(0, 0); n * 4 * 4],
            ch_credit_head: vec![0; n * 4],
            ch_credit_len: vec![0; n * 4],
            ch_total: vec![0; n * 4],
            flit_pending: vec![0; n],
            credit_pending: vec![0; n],
            ni: vec![None; n * max_inject],
            node_n_inject,
            ni_busy: vec![0; n],
            ni_cursor: vec![0; n],
            ejected: (0..n).map(|_| VecDeque::new()).collect(),
            eject_credits: VecDeque::new(),
            cycle: 0,
            stats: NetStats::new(n),
            rng: SmallRng::seed_from_u64(cfg.seed),
            next_pkt_id: 1,
            active: ActiveSet::all(n),
            buffered: 0,
            flying: 0,
            ni_pending: 0,
            va_req: vec![0; out_max * nv],
            sa_grants: (0..in_max).map(|_| Vec::with_capacity(out_max)).collect(),
            sa_op_req: vec![0; out_max],
            cfg,
        }
    }

    /// The network's configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Per-link traffic, identical to
    /// [`Network::link_loads`](crate::network::Network::link_loads).
    pub fn link_loads(&self) -> Vec<(NodeId, Direction, u64)> {
        let mut out = Vec::new();
        self.link_loads_into(&mut out);
        out
    }

    /// Appends per-link traffic into a caller-provided buffer (cleared
    /// first), avoiding a fresh allocation per read on hot paths.
    pub fn link_loads_into(&self, out: &mut Vec<(NodeId, Direction, u64)>) {
        out.clear();
        for node in 0..self.n {
            for dir in Direction::ALL {
                if self.nbr[node][dir.index()] >= 0 {
                    out.push((node, dir, self.ch_total[node * 4 + dir.index()]));
                }
            }
        }
    }

    // --- slab index helpers ---

    #[inline(always)]
    fn ivc(&self, node: usize, ip: usize, vc: usize) -> usize {
        node * self.ivc_stride + ip * self.nv + vc
    }

    #[inline(always)]
    fn ovc(&self, node: usize, op: usize, vc: usize) -> usize {
        node * self.ovc_stride + op * self.nv + vc
    }

    /// Pushes a flit into input-VC slot `idx` (ring append).
    #[inline(always)]
    fn fifo_push(&mut self, node: usize, idx: usize, flit: LaneFlit, now: u64) {
        let len = self.fifo_len[idx] as usize;
        debug_assert!(len < self.depth, "VC buffer overflow (credit protocol violated)");
        let mut pos = self.fifo_head[idx] as usize + len;
        if pos >= self.depth {
            pos -= self.depth;
        }
        debug_assert!(now <= u32::MAX as u64, "cycle stamp overflows the packed u32");
        self.fifo[idx * self.depth + pos] =
            FifoEntry { pkt: flit.pkt, arrival: now as u32, seq: flit.seq };
        self.fifo_len[idx] = (len + 1) as u8;
        self.occ[node] |= 1u128 << (idx - node * self.ivc_stride);
        self.node_occ[node] += 1;
        self.buffered += 1;
    }

    /// Pops the front flit from input-VC slot `idx`.
    #[inline(always)]
    fn fifo_pop(&mut self, node: usize, idx: usize) -> (LaneFlit, u64) {
        let len = self.fifo_len[idx] as usize;
        debug_assert!(len > 0, "granted VC has a flit");
        let head = self.fifo_head[idx] as usize;
        let e = self.fifo[idx * self.depth + head];
        let out = (LaneFlit { pkt: e.pkt, seq: e.seq }, e.arrival as u64);
        let mut nh = head + 1;
        if nh >= self.depth {
            nh = 0;
        }
        self.fifo_head[idx] = nh as u8;
        self.fifo_len[idx] = (len - 1) as u8;
        if len == 1 {
            self.occ[node] &= !(1u128 << (idx - node * self.ivc_stride));
        }
        self.node_occ[node] -= 1;
        self.buffered -= 1;
        out
    }

    /// Delivery phase for one node: pops this node's due incoming flits
    /// (from each neighbor's channel toward it) and due returning credits
    /// (from its own outgoing channels). Mirrors `Network::deliver_node`.
    fn deliver_node(&mut self, node: NodeId, now: u64) {
        // Pending-direction masks stand in for probing all eight rings:
        // a bit is set exactly while its ring is non-empty (set at the
        // push in `commit_grant`, cleared here on drain-to-empty), and
        // flit and credit deliveries touch disjoint state, so draining
        // all flit rings before all credit rings matches the oracle's
        // per-direction interleaving.
        let mut fp = self.flit_pending[node];
        while fp != 0 {
            let d = fp.trailing_zeros() as usize;
            fp &= fp - 1;
            let nb = self.nbr[node][d];
            debug_assert!(nb >= 0, "pending bit for a direction off the mesh edge");
            let inbound = nb as usize * 4 + OPP[d];
            loop {
                let len = self.ch_flit_len[inbound] as usize;
                if len == 0 {
                    self.flit_pending[node] &= !(1 << d);
                    break;
                }
                let head = self.ch_flit_head[inbound] as usize;
                let e = self.ch_flit[inbound * self.ch_cap + head];
                if e.due as u64 > now {
                    break;
                }
                self.ch_flit_head[inbound] = ((head + 1) & (self.ch_cap - 1)) as u16;
                self.ch_flit_len[inbound] = (len - 1) as u16;
                self.flying -= 1;
                let idx = self.ivc(node, d, e.vc as usize);
                self.fifo_push(node, idx, LaneFlit { pkt: e.pkt, seq: e.seq }, now);
            }
        }
        let mut cp = self.credit_pending[node];
        while cp != 0 {
            let d = cp.trailing_zeros() as usize;
            cp &= cp - 1;
            let outbound = node * 4 + d;
            loop {
                let len = self.ch_credit_len[outbound] as usize;
                if len == 0 {
                    self.credit_pending[node] &= !(1 << d);
                    break;
                }
                let head = self.ch_credit_head[outbound] as usize;
                let (due, vc) = self.ch_credit[outbound * 4 + head];
                if due > now {
                    break;
                }
                self.ch_credit_head[outbound] = ((head + 1) & 3) as u8;
                self.ch_credit_len[outbound] = (len - 1) as u8;
                let o = node * self.ovc_stride + d * self.nv + vc as usize;
                self.credits[o] += 1;
                debug_assert!(
                    self.credits[o] as usize <= self.depth,
                    "credit overflow on router {node} out port {d} vc {vc}"
                );
                let holder = self.owner[o];
                if holder >= 0 {
                    self.credit_ok[node] |= 1u128 << holder;
                }
            }
        }
    }

    /// Returns due ejection-buffer credits to their routers (global, like
    /// `Network::return_eject_credits`).
    fn return_eject_credits(&mut self, now: u64) {
        while let Some(&(due, node, out_port, vc)) = self.eject_credits.front() {
            if due > now {
                break;
            }
            self.eject_credits.pop_front();
            let o = self.ovc(node, out_port, vc as usize);
            self.credits[o] += 1;
            debug_assert!(
                self.credits[o] as usize <= self.depth,
                "eject credit overflow at router {node}"
            );
            let holder = self.owner[o];
            if holder >= 0 {
                self.credit_ok[node] |= 1u128 << holder;
            }
        }
    }

    /// NI phase for one node: streams one flit per busy injection port,
    /// choosing each packet's VC at head injection. Mirrors
    /// `Network::stream_ni_node` (including the max-free-space VC pick).
    fn stream_ni_node(&mut self, node: NodeId, now: u64) {
        if self.ni_busy[node] == 0 {
            return;
        }
        let base = node * (self.in_max - 4);
        for port in 0..self.node_n_inject[node] as usize {
            let Some(mut pkt) = self.ni[base + port] else { continue };
            let row = pkt.pkt as usize;
            let in_port = 4 + port;
            if pkt.vc.is_none() {
                let set = routing::vc_set_for(
                    self.cfg.routing,
                    &self.cfg.vcs,
                    self.pkts[row].class,
                    self.pkts[row].phase,
                );
                // Most free space wins; ties go to the lowest VC (the
                // oracle's `max_by_key((space, Reverse(vc)))` over an
                // ascending iterator).
                let mut best: Option<(usize, u8)> = None;
                for vc in set.iter() {
                    let space =
                        self.depth - self.fifo_len[self.ivc(node, in_port, vc as usize)] as usize;
                    if space > 0 && best.is_none_or(|(bs, _)| space > bs) {
                        best = Some((space, vc));
                    }
                }
                match best {
                    Some((_, vc)) => {
                        pkt.vc = Some(vc);
                        self.pkts[row].injected = now;
                    }
                    None => {
                        self.ni[base + port] = Some(pkt);
                        continue;
                    }
                }
            }
            let vc = pkt.vc.expect("vc chosen above");
            let idx = self.ivc(node, in_port, vc as usize);
            if (self.fifo_len[idx] as usize) < self.depth {
                let flit = LaneFlit { pkt: pkt.pkt, seq: pkt.next_seq };
                self.fifo_push(node, idx, flit, now);
                pkt.next_seq += 1;
                self.ni_pending -= 1;
            }
            if pkt.next_seq >= pkt.flits {
                self.ni[base + port] = None;
                self.ni_busy[node] -= 1;
            } else {
                self.ni[base + port] = Some(pkt);
            }
        }
    }

    /// RC stage: idle VCs with a head flit at the front get a route.
    /// Iterates candidate lanes in ascending `(in_port, vc)` order — the
    /// same order the oracle's dense double loop visits non-empty VCs.
    /// Occupied-but-not-idle lanes are masked out rather than re-checked.
    fn route_compute(&mut self, node: NodeId) {
        let mut mask = self.occ[node] & !self.waiting[node] & !self.active_vcs[node];
        let base = node * self.ivc_stride;
        while mask != 0 {
            let bit = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let idx = base + bit;
            debug_assert!(
                self.vc_state[idx] == VcState::Idle,
                "state masks out of sync with vc_state at router {node}"
            );
            let e = self.fifo[idx * self.depth + self.fifo_head[idx] as usize];
            let (flit, arrival) = (LaneFlit { pkt: e.pkt, seq: e.seq }, e.arrival as u64);
            debug_assert!(
                flit.seq == 0,
                "body flit at front of idle VC (packet interleaving bug) at router {node}"
            );
            let row = flit.pkt as usize;
            let dec = routing::next_hop(
                self.cfg.routing,
                &self.cfg.vcs,
                &self.cfg.mesh,
                node,
                &mut self.pkts[row],
            );
            let out_port = match dec.out {
                OutPort::Dir(d) => {
                    debug_assert!(
                        self.nbr[node][d.index()] >= 0,
                        "route points off the mesh edge at router {node}"
                    );
                    d.index()
                }
                OutPort::Eject => {
                    4 + (self.pkts[row].id as usize % self.node_n_eject[node] as usize)
                }
            };
            debug_assert!(
                {
                    let in_port = bit / self.nv;
                    let ik = if in_port < 4 {
                        crate::topology::InPort::Dir(Direction::from_index(in_port))
                    } else {
                        crate::topology::InPort::Inject((in_port - 4) as u8)
                    };
                    let ok = if out_port < 4 {
                        crate::topology::OutPortKind::Dir(Direction::from_index(out_port))
                    } else {
                        crate::topology::OutPortKind::Eject((out_port - 4) as u8)
                    };
                    crate::topology::connection_allowed(self.node_kind[node], ik, ok)
                },
                "routing used an illegal connection at router {node}"
            );
            self.vc_state[idx] = VcState::Waiting {
                out_port,
                vcs: dec.vcs,
                va_eligible: arrival + self.node_timing[node].rc_delay,
            };
            self.waiting[node] |= 1u128 << bit;
        }
    }

    /// VA stage: input-first separable allocation of downstream VCs.
    /// Ports the oracle's gather / arbitrate / retain / restart loop with
    /// a bitmask contender scan in place of the closure-driven arbiter.
    fn vc_allocate(&mut self, node: NodeId, now: u64) {
        let mut mask = self.waiting[node];
        if mask == 0 {
            // No Waiting lane means no request, and the oracle's arbiters
            // move no pointer on a requestless pass.
            return;
        }
        let base = node * self.ivc_stride;
        // Requests bucketed by flat (out_port, out_vc). Each Waiting lane
        // makes at most one request, so the buckets are disjoint lane
        // sets with independent arbiters (each output VC owns its own RR
        // pointer) — the oracle's grant / retain / restart loop resolves
        // every bucket exactly once, in any order, with the same winners.
        let mut used: u128 = 0;
        while mask != 0 {
            let bit = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let idx = base + bit;
            let VcState::Waiting { out_port, vcs, va_eligible } = self.vc_state[idx] else {
                unreachable!("waiting mask tracks Waiting lanes")
            };
            if va_eligible > now {
                continue;
            }
            // Rotate through the candidate set with the VC's request
            // cursor; first unowned downstream VC wins.
            let cursor = self.vc_cursor[idx];
            let count = vcs.count as usize;
            for off in 0..count {
                let ovc = vcs.first + ((cursor as usize + off) % count) as u8;
                if self.owner[self.ovc(node, out_port, ovc as usize)] < 0 {
                    let f = out_port * self.nv + ovc as usize;
                    self.va_req[f] |= 1u128 << bit;
                    used |= 1u128 << f;
                    break;
                }
            }
        }
        let range = self.node_n_in[node] as usize * self.nv;
        while used != 0 {
            let f = used.trailing_zeros() as usize;
            used &= used - 1;
            let contenders = self.va_req[f];
            self.va_req[f] = 0;
            let (op, ovc) = (f / self.nv, (f % self.nv) as u8);
            let o = self.ovc(node, op, ovc as usize);
            let ptr = self.va_ptr[o] as usize;
            let winner_flat = circ_first128(contenders, ptr, range);
            self.va_ptr[o] = ((winner_flat + 1) % range) as u16;
            self.owner[o] = winner_flat as i16;
            let widx = base + winner_flat;
            let VcState::Waiting { va_eligible, .. } = self.vc_state[widx] else {
                unreachable!("VA winners come from Waiting lanes")
            };
            self.vc_state[widx] = VcState::Active { out_port: op, out_vc: ovc, va_cycle: now };
            self.waiting[node] &= !(1u128 << winner_flat);
            self.active_vcs[node] |= 1u128 << winner_flat;
            if self.credits[o] > 0 {
                self.credit_ok[node] |= 1u128 << winner_flat;
            } else {
                self.credit_ok[node] &= !(1u128 << winner_flat);
            }
            // Fresh-head gate, resolved here instead of per SA probe: the
            // routed head is still at the front (`va_eligible` was
            // `arrival + rc_delay` for exactly that flit), VA implies
            // `now >= va_eligible`, so the oracle's
            // `va_cycle <= arrival + rc_delay` test reduces to equality.
            if !self.node_timing[node].same_cycle_sa && now == va_eligible {
                self.sa_gate[node] |= 1u128 << winner_flat;
            }
            self.vc_cursor[widx] = self.vc_cursor[widx].wrapping_add(1);
        }
    }

    /// Mask of input-VC lanes that may compete for the switch this cycle:
    /// `Active`, non-empty, downstream credit available, and past the
    /// fresh-head gate. Pure mask arithmetic — every term is maintained
    /// incrementally at the state transition that changes it, replacing
    /// the oracle's per-(port, VC) `sa_ready` probes. Readiness is fixed
    /// for the whole allocation because neither SA phase mutates state
    /// before its grants are decided.
    #[inline(always)]
    fn sa_ready_mask(&self, node: usize) -> u128 {
        self.active_vcs[node] & self.occ[node] & self.credit_ok[node] & !self.sa_gate[node]
    }

    /// Commits one switch grant: pops the flit, charges the downstream
    /// credit, returns the upstream credit, and emits the flit directly
    /// onto its output channel (or the ejection path). Direct emission is
    /// state-identical to the oracle's collect-then-route scratch pass:
    /// flits and credits land on disjoint FIFOs whose per-queue order
    /// equals commit order either way, and active-set wakes are idempotent.
    fn commit_grant(&mut self, node: usize, ip: usize, vc: u8, op: usize, out_vc: u8, now: u64) {
        let idx = self.ivc(node, ip, vc as usize);
        let (flit, _) = self.fifo_pop(node, idx);
        let is_tail = flit.seq + 1 == self.pkt_flits[flit.pkt as usize];
        if is_tail {
            let o = self.ovc(node, op, out_vc as usize);
            self.owner[o] = -1;
            self.vc_state[idx] = VcState::Idle;
            self.active_vcs[node] &= !(1u128 << (ip * self.nv + vc as usize));
        }
        let o = node * self.ovc_stride + op * self.nv + out_vc as usize;
        debug_assert!(self.credits[o] > 0, "SA granted without a credit");
        self.credits[o] -= 1;
        if self.credits[o] == 0 {
            self.credit_ok[node] &= !(1u128 << (ip * self.nv + vc as usize));
        }
        if ip < 4 {
            let upstream = self.nbr[node][ip];
            debug_assert!(upstream >= 0, "credit for a direction port implies a neighbor");
            let ch = upstream as usize * 4 + OPP[ip];
            let len = self.ch_credit_len[ch] as usize;
            debug_assert!(len < 4, "credit ring overflow");
            let pos = (self.ch_credit_head[ch] as usize + len) & 3;
            self.ch_credit[ch * 4 + pos] = (now + 1, vc);
            self.ch_credit_len[ch] = (len + 1) as u8;
            self.credit_pending[upstream as usize] |= 1 << OPP[ip];
            self.active.insert(upstream as usize);
        }
        if op < 4 {
            let ch = node * 4 + op;
            let len = self.ch_flit_len[ch] as usize;
            debug_assert!(len < self.ch_cap, "channel ring overflow");
            let pos = (self.ch_flit_head[ch] as usize + len) & (self.ch_cap - 1);
            let due = now + self.node_flit_delay[node];
            debug_assert!(due <= u32::MAX as u64, "cycle stamp overflows the packed u32");
            self.ch_flit[ch * self.ch_cap + pos] =
                ChFlit { pkt: flit.pkt, due: due as u32, seq: flit.seq, vc: out_vc };
            self.ch_flit_len[ch] = (len + 1) as u16;
            self.ch_total[ch] += 1;
            self.flying += 1;
            let neighbor = self.nbr[node][op];
            debug_assert!(neighbor >= 0, "router checked the direction exists");
            self.flit_pending[neighbor as usize] |= 1 << OPP[op];
            self.active.insert(neighbor as usize);
        } else {
            debug_assert!(
                self.eject_credits.back().is_none_or(|&(due, ..)| due <= now + 1),
                "eject credit queue must stay due-ordered"
            );
            self.eject_credits.push_back((now + 1, node, op, out_vc));
            if is_tail {
                let row = flit.pkt as usize;
                let mut header = self.pkts[row];
                // The oracle's ejected header is the tail flit's copy: for
                // multi-flit packets that copy still carries the
                // injection-time routing fields (RC mutates only the head
                // flit's copy), but a single-flit packet's tail IS its
                // head, so the mutated fields are the right ones there.
                if header.flits > 1 {
                    (header.phase, header.via) = self.pkt_init[row];
                }
                let pkt = EjectedPacket { header, ejected: now };
                self.stats.record_ejection(&pkt);
                self.ejected[node].push_back(pkt);
                self.pkt_free.push(flit.pkt);
            }
        }
    }

    /// Separable input-first (iSLIP) switch allocation for one node.
    ///
    /// Both separable stages are round-robin "first requester at or after
    /// the pointer" picks, so each resolves with one rotate-and-scan over a
    /// request bitmask ([`circ_first`]) instead of a pointer-offset loop.
    fn switch_allocate_input_first(&mut self, node: NodeId, now: u64) {
        let ready = self.sa_ready_mask(node);
        if ready == 0 {
            return;
        }
        let n_in = self.node_n_in[node] as usize;
        let nv = self.nv;
        let port_mask = (1u128 << nv) - 1;
        // Phase 1: each input port nominates one ready VC (RR over VCs).
        // `nom[ip]` holds the nominee, `op_in[op]` the inputs courting
        // each output, `ops` which outputs saw any nomination at all.
        let mut nom = [(0u8, 0u8); 32];
        let mut op_in = [0u32; 32];
        let mut ops: u32 = 0;
        for (ip, nom_slot) in nom.iter_mut().enumerate().take(n_in) {
            let port_ready = (ready >> (ip * nv) & port_mask) as u32;
            if port_ready == 0 {
                continue;
            }
            let ptr = self.sa_in_ptr[node * self.in_max + ip] as usize;
            let vc = circ_first(port_ready, ptr, nv);
            let idx = self.ivc(node, ip, vc);
            let VcState::Active { out_port, out_vc, .. } = self.vc_state[idx] else {
                unreachable!("ready lanes are Active");
            };
            *nom_slot = (vc as u8, out_vc);
            op_in[out_port] |= 1 << ip;
            ops |= 1 << out_port;
        }
        // Phase 2: each nominated output picks one courting input (RR over
        // input ports); accepted grants advance both pointers. Ascending
        // bit order equals the oracle's ascending output-port loop, and
        // un-nominated outputs never advanced a pointer there either.
        while ops != 0 {
            let op = ops.trailing_zeros() as usize;
            ops &= ops - 1;
            let ptr = self.sa_out_ptr[node * self.out_max + op] as usize;
            let winner = circ_first(op_in[op], ptr, n_in);
            let (vc, out_vc) = nom[winner];
            self.sa_out_arb_advance(node, op, winner, n_in);
            self.sa_in_arb_advance(node, winner, vc as usize);
            self.commit_grant(node, winner, vc, op, out_vc, now);
        }
    }

    /// Separable output-first switch allocation for one node.
    fn switch_allocate_output_first(&mut self, node: NodeId, now: u64) {
        let n_in = self.node_n_in[node] as usize;
        let n_out = self.node_n_out[node] as usize;
        let ready = self.sa_ready_mask(node);
        let mut grants = std::mem::take(&mut self.sa_grants);
        for g in &mut grants {
            g.clear();
        }
        if ready == 0 {
            self.sa_grants = grants;
            return;
        }
        // Ready lanes bucketed by requested output port, so each output's
        // arbitration is a bit scan instead of a state-table sweep.
        let base = node * self.ivc_stride;
        let mut op_req = std::mem::take(&mut self.sa_op_req);
        op_req[..n_out].fill(0);
        let mut mask = ready;
        while mask != 0 {
            let bit = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let VcState::Active { out_port, .. } = self.vc_state[base + bit] else {
                unreachable!("ready lanes are Active")
            };
            op_req[out_port] |= 1u128 << bit;
        }
        let port_mask = (1u128 << self.nv) - 1;
        // Phase 1: each output grants one requesting (input, vc).
        for (op, &req) in op_req.iter().enumerate().take(n_out) {
            if req == 0 {
                continue;
            }
            let ptr = self.sa_out_ptr[node * self.out_max + op] as usize;
            let mut winner = usize::MAX;
            for off in 0..n_in {
                let ip = ptr + off;
                let ip = if ip >= n_in { ip - n_in } else { ip };
                if req >> (ip * self.nv) & port_mask != 0 {
                    winner = ip;
                    break;
                }
            }
            debug_assert!(winner != usize::MAX, "a ready lane requested this output");
            // Which VC of that input targets this output? The input's RR
            // pointer decides, as in the oracle.
            let ptr = self.sa_in_ptr[node * self.in_max + winner] as usize;
            for off in 0..self.nv {
                let vc = ptr + off;
                let vc = if vc >= self.nv { vc - self.nv } else { vc };
                if req & (1u128 << (winner * self.nv + vc)) != 0 {
                    let VcState::Active { out_vc, .. } = self.vc_state[self.ivc(node, winner, vc)]
                    else {
                        unreachable!("ready lanes are Active")
                    };
                    grants[winner].push((vc as u8, op as u8, out_vc));
                    break;
                }
            }
        }
        self.sa_op_req = op_req;
        // Phase 2: each input accepts one grant (RR over its VCs).
        for (ip, offers) in grants.iter().enumerate().take(n_in) {
            if offers.is_empty() {
                continue;
            }
            let ptr = self.sa_in_ptr[node * self.in_max + ip] as usize;
            let mut pick = usize::MAX;
            for off in 0..self.nv {
                let vc = ptr + off;
                let vc = if vc >= self.nv { vc - self.nv } else { vc };
                if offers.iter().any(|&(v, _, _)| v as usize == vc) {
                    pick = vc;
                    break;
                }
            }
            debug_assert!(pick != usize::MAX, "at least one grant");
            let &(vc, op, out_vc) =
                offers.iter().find(|&&(v, _, _)| v as usize == pick).expect("picked grant present");
            self.sa_in_arb_advance(node, ip, vc as usize);
            self.sa_out_arb_advance(node, op as usize, ip, n_in);
            self.commit_grant(node, ip, vc, op as usize, out_vc, now);
        }
        self.sa_grants = grants;
    }

    #[inline(always)]
    fn sa_in_arb_advance(&mut self, node: usize, ip: usize, winner_vc: usize) {
        self.sa_in_ptr[node * self.in_max + ip] = ((winner_vc + 1) % self.nv) as u8;
    }

    #[inline(always)]
    fn sa_out_arb_advance(&mut self, node: usize, op: usize, winner_ip: usize, n_in: usize) {
        self.sa_out_ptr[node * self.out_max + op] = ((winner_ip + 1) % n_in) as u8;
    }

    /// Router phase for one node: RC, VA, SA with direct flit/credit
    /// emission. Mirrors `Network::step_router_node` + `Router::step`.
    fn step_router_node(&mut self, node: NodeId, now: u64) {
        // Nothing buffered means no stage can progress or move a pointer:
        // RC/VA candidates are buffered lanes, and SA readiness requires
        // occupancy even for lanes still owning a downstream VC.
        if self.node_occ[node] == 0 {
            return;
        }
        self.sa_gate[node] = 0;
        self.route_compute(node);
        self.vc_allocate(node, now);
        match self.cfg.allocator {
            crate::config::AllocatorKind::InputFirst => self.switch_allocate_input_first(node, now),
            crate::config::AllocatorKind::OutputFirst => {
                self.switch_allocate_output_first(node, now)
            }
        }
    }

    /// `true` when the node can do nothing this cycle or any future cycle
    /// without a new wake event. Mirrors `Network::node_idle`.
    fn node_idle(&self, node: NodeId) -> bool {
        // The pending masks are exact mirrors of ring non-emptiness, so
        // this equals the oracle's eight-ring probe.
        self.node_occ[node] == 0
            && self.ni_busy[node] == 0
            && self.flit_pending[node] == 0
            && self.credit_pending[node] == 0
    }

    /// Runs one of the [`ARENA_PHASES`] sub-phases of a cycle. Calling
    /// phases `0..ARENA_PHASES` in order is exactly one [`Tick::tick`].
    ///
    /// The whole cycle is one fused sweep — each active node runs
    /// deliver, NI, router and retire back to back, so its masks, FIFO
    /// lanes and ring heads are touched once per cycle instead of once
    /// per stage. Fusing is bit-identical to the oracle's four global
    /// stage sweeps because every cross-node effect a router step emits
    /// travels through a ring stamped `due >= now + 1` (invisible to any
    /// same-cycle pop), a pending/active-set insert (idempotent, and a
    /// freshly woken node's deliver/NI/router are all no-ops this cycle),
    /// or the due-ordered eject-credit queue (drained once up front, and
    /// appended to in the same ascending node order the phased router
    /// sweep used). A node retired before an upstream neighbor's router
    /// step wakes it is re-inserted by that step's push, leaving the
    /// same active set at cycle end.
    pub fn run_phase(&mut self, phase: usize) {
        let now = self.cycle;
        match phase {
            0 => {
                self.return_eject_credits(now);
                let mut i = 0;
                while let Some(node) = self.active.next_from(i) {
                    self.deliver_node(node, now);
                    self.stream_ni_node(node, now);
                    self.step_router_node(node, now);
                    if self.node_idle(node) {
                        self.active.remove(node);
                    }
                    i = node + 1;
                }
                self.stats.cycles += 1;
                self.cycle += 1;
            }
            _ => panic!("arena cycle has {ARENA_PHASES} phases, got {phase}"),
        }
    }
}

impl Tick for ArenaNetwork {
    fn tick(&mut self) {
        for p in 0..ARENA_PHASES {
            self.run_phase(p);
        }
    }
}

impl Interconnect for ArenaNetwork {
    fn try_inject(&mut self, node: NodeId, mut packet: Packet) -> Result<(), Packet> {
        self.stats.inject_attempts_by_node[node] += 1;
        let ports = self.node_n_inject[node] as usize;
        let base = node * (self.in_max - 4);
        let start = self.ni_cursor[node] as usize;
        let free = (0..ports).map(|i| (start + i) % ports).find(|&p| self.ni[base + p].is_none());
        let Some(port) = free else {
            self.stats.inject_blocked_by_node[node] += 1;
            return Err(packet);
        };
        self.ni_cursor[node] = ((port + 1) % ports) as u32;

        let hdr = &mut packet.header;
        let (phase, via) =
            routing::plan_injection(self.cfg.routing, &self.cfg.mesh, node, hdr.dst, &mut self.rng)
                .expect("workload sent a packet between unroutable checkerboard endpoints");
        hdr.src = node;
        hdr.phase = phase;
        hdr.via = via;
        hdr.id = self.next_pkt_id;
        self.next_pkt_id += 1;
        hdr.flits = Packet { header: *hdr }.flits_at_width(self.cfg.channel_bytes);
        if hdr.created == PacketHeader::CREATED_UNSET {
            hdr.created = self.cycle;
        }
        self.stats.injected_flits_by_node[node] += hdr.flits as u64;
        let row = match self.pkt_free.pop() {
            Some(r) => {
                self.pkts[r as usize] = *hdr;
                self.pkt_init[r as usize] = (hdr.phase, hdr.via);
                self.pkt_flits[r as usize] = hdr.flits;
                r
            }
            None => {
                self.pkts.push(*hdr);
                self.pkt_init.push((hdr.phase, hdr.via));
                self.pkt_flits.push(hdr.flits);
                (self.pkts.len() - 1) as u32
            }
        };
        self.ni[base + port] = Some(NiPacket { pkt: row, next_seq: 0, flits: hdr.flits, vc: None });
        self.ni_busy[node] += 1;
        self.ni_pending += hdr.flits as usize;
        self.active.insert(node);
        Ok(())
    }

    fn pop(&mut self, node: NodeId) -> Option<EjectedPacket> {
        self.ejected[node].pop_front()
    }

    fn cycle(&self) -> u64 {
        self.cycle
    }

    fn stats(&self) -> NetStats {
        self.stats.clone()
    }

    fn in_flight(&self) -> usize {
        self.buffered + self.flying + self.ni_pending
    }

    fn flit_hops(&self) -> u64 {
        self.ch_total.iter().sum()
    }

    fn enable_telemetry(&mut self, _cfg: TelemetryConfig) {
        panic!(
            "telemetry requires the per-cell oracle engine (Network); \
             the harness routes telemetry cells there automatically"
        );
    }

    fn phase_count(&self) -> usize {
        ARENA_PHASES
    }

    fn tick_phase(&mut self, phase: usize) {
        self.run_phase(phase);
    }
}

/// Two parallel channel-sliced arena networks (request + reply), the
/// engine-level twin of [`DoubleNetwork`](crate::network::DoubleNetwork).
pub struct ArenaDoubleNetwork {
    request: ArenaNetwork,
    reply: ArenaNetwork,
}

impl ArenaDoubleNetwork {
    /// Builds a double network from a per-subnetwork configuration; the
    /// reply slice derives its seed exactly like `DoubleNetwork::new`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration declares more than one class per
    /// subnetwork or fails validation.
    pub fn new(sub_cfg: NetworkConfig) -> Self {
        assert_eq!(sub_cfg.vcs.classes, 1, "double network slices carry one class each");
        let mut reply_cfg = sub_cfg.clone();
        reply_cfg.seed = sub_cfg.seed.wrapping_add(0x9e37_79b9);
        ArenaDoubleNetwork {
            request: ArenaNetwork::new(sub_cfg),
            reply: ArenaNetwork::new(reply_cfg),
        }
    }

    /// Derives a double network from a single-network configuration
    /// (see `DoubleNetwork::from_single`).
    pub fn from_single(cfg: &NetworkConfig) -> Self {
        ArenaDoubleNetwork::new(cfg.slice())
    }

    /// The request subnetwork.
    pub fn request_net(&self) -> &ArenaNetwork {
        &self.request
    }

    /// The reply subnetwork.
    pub fn reply_net(&self) -> &ArenaNetwork {
        &self.reply
    }
}

impl Tick for ArenaDoubleNetwork {
    fn tick(&mut self) {
        self.request.tick();
        self.reply.tick();
    }
}

impl Interconnect for ArenaDoubleNetwork {
    fn try_inject(&mut self, node: NodeId, packet: Packet) -> Result<(), Packet> {
        match packet.header.class {
            PacketClass::Request => self.request.try_inject(node, packet),
            PacketClass::Reply => self.reply.try_inject(node, packet),
        }
    }

    fn pop(&mut self, node: NodeId) -> Option<EjectedPacket> {
        self.request.pop(node).or_else(|| self.reply.pop(node))
    }

    fn cycle(&self) -> u64 {
        self.request.cycle
    }

    fn stats(&self) -> NetStats {
        debug_assert_eq!(
            self.request.stats.cycles, self.reply.stats.cycles,
            "double-network slices must share one clock"
        );
        let mut s = self.request.stats();
        s.merge_parallel(&self.reply.stats);
        s
    }

    fn in_flight(&self) -> usize {
        self.request.in_flight() + self.reply.in_flight()
    }

    fn flit_hops(&self) -> u64 {
        self.request.flit_hops() + self.reply.flit_hops()
    }

    fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.request.enable_telemetry(cfg);
    }

    fn phase_count(&self) -> usize {
        2 * ARENA_PHASES
    }

    /// Phases `0..ARENA_PHASES` advance the request slice, the rest the
    /// reply slice — the same slice order as `DoubleNetwork::tick`.
    fn tick_phase(&mut self, phase: usize) {
        if phase < ARENA_PHASES {
            self.request.run_phase(phase);
        } else {
            self.reply.run_phase(phase - ARENA_PHASES);
        }
    }
}

/// B same-shape cells advanced in lockstep, cell-major per phase: phase 0
/// of every cell, then phase 1 of every cell, and so on. Since cells share
/// no state, this is observationally identical to ticking each cell alone —
/// it only improves locality by keeping one phase's code hot across cells.
pub struct NetBatch<N: Interconnect> {
    cells: Vec<N>,
}

impl<N: Interconnect> NetBatch<N> {
    /// Stacks `cells` into a lockstep batch.
    ///
    /// # Panics
    ///
    /// Panics if `cells` is empty.
    pub fn new(cells: Vec<N>) -> Self {
        assert!(!cells.is_empty(), "a batch needs at least one cell");
        NetBatch { cells }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the batch holds no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Immutable access to cell `i`.
    pub fn cell(&self, i: usize) -> &N {
        &self.cells[i]
    }

    /// Mutable access to cell `i` (for injection and pops).
    pub fn cell_mut(&mut self, i: usize) -> &mut N {
        &mut self.cells[i]
    }

    /// Consumes the batch, returning the cells.
    pub fn into_cells(self) -> Vec<N> {
        self.cells
    }
}

impl<N: Interconnect> Tick for NetBatch<N> {
    /// Advances every cell by one cycle, interleaved cell-major per phase.
    fn tick(&mut self) {
        let phases = self.cells.iter().map(|c| c.phase_count()).max().unwrap_or(1);
        for p in 0..phases {
            for cell in &mut self.cells {
                if p < cell.phase_count() {
                    cell.tick_phase(p);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    /// Drives the same deterministic traffic into two engines and asserts
    /// identical per-cycle observables.
    fn assert_twin(cfg: NetworkConfig, cycles: u64) {
        let n = cfg.mesh.len();
        let mut oracle = Network::new(cfg.clone());
        let mut arena = ArenaNetwork::new(cfg);
        for i in 0..cycles {
            for lane in 0..2u64 {
                let t = i * 2 + lane;
                let src = (t as usize * 7 + 1) % n;
                let dst = (t as usize * 13 + 5) % n;
                if src != dst {
                    let p = if t % 3 == 0 {
                        Packet::reply(src, dst, 64, t)
                    } else {
                        Packet::request(src, dst, 8, t)
                    };
                    let a = oracle.try_inject(src, p);
                    let b = arena.try_inject(src, p);
                    assert_eq!(a.is_ok(), b.is_ok(), "inject diverged at cycle {i}");
                }
            }
            oracle.tick();
            arena.tick();
            assert_eq!(oracle.in_flight(), arena.in_flight(), "in_flight diverged at cycle {i}");
            for node in 0..n {
                loop {
                    let a = oracle.pop(node);
                    let b = arena.pop(node);
                    assert_eq!(a, b, "ejection diverged at node {node} cycle {i}");
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
        assert_eq!(oracle.stats(), arena.stats());
        assert_eq!(oracle.flit_hops(), arena.flit_hops());
        assert_eq!(oracle.link_loads(), arena.link_loads());
    }

    #[test]
    fn arena_matches_oracle_on_baseline_mesh() {
        assert_twin(NetworkConfig::baseline_mesh(4), 300);
    }

    #[test]
    fn arena_matches_oracle_on_checkerboard() {
        assert_twin(NetworkConfig::checkerboard_mesh(6), 300);
    }

    #[test]
    fn arena_matches_oracle_output_first() {
        let mut cfg = NetworkConfig::baseline_mesh(4);
        cfg.allocator = crate::config::AllocatorKind::OutputFirst;
        assert_twin(cfg, 300);
    }

    #[test]
    fn arena_matches_oracle_multiport_sliced() {
        let cfg = NetworkConfig::checkerboard_mesh(6);
        let mut sliced = cfg.slice();
        sliced.mc_inject_ports = 4;
        assert_twin(sliced, 200);
    }

    #[test]
    fn phase_ticking_equals_whole_ticking() {
        let cfg = NetworkConfig::baseline_mesh(4);
        let mut whole = ArenaNetwork::new(cfg.clone());
        let mut phased = ArenaNetwork::new(cfg);
        for i in 0..200u64 {
            let src = (i as usize * 5) % 16;
            let dst = (src + 3) % 16;
            let p = Packet::request(src, dst, 64, i);
            let _ = whole.try_inject(src, p);
            let _ = phased.try_inject(src, p);
            whole.tick();
            for ph in 0..phased.phase_count() {
                phased.tick_phase(ph);
            }
            assert_eq!(whole.in_flight(), phased.in_flight());
            for node in 0..16 {
                loop {
                    let a = whole.pop(node);
                    assert_eq!(a, phased.pop(node));
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
        assert_eq!(whole.stats(), phased.stats());
    }

    #[test]
    fn batch_cells_match_solo_runs() {
        let mk = |seed: u64| {
            let mut cfg = NetworkConfig::baseline_mesh(4);
            cfg.seed = seed;
            ArenaDoubleNetwork::from_single(&cfg)
        };
        let drive = |net: &mut ArenaDoubleNetwork, salt: u64, i: u64| {
            let t = i + salt;
            let src = (t as usize * 7) % 16;
            let dst = (t as usize * 11 + 1) % 16;
            if src != dst {
                let _ = net.try_inject(src, Packet::request(src, dst, 8, t));
                let _ = net.try_inject(dst, Packet::reply(dst, src, 64, t));
            }
        };
        // Solo runs.
        let solo: Vec<NetStats> = (0..3u64)
            .map(|c| {
                let mut net = mk(c);
                for i in 0..250 {
                    drive(&mut net, c * 1000, i);
                    net.tick();
                    for node in 0..16 {
                        while net.pop(node).is_some() {}
                    }
                }
                net.stats()
            })
            .collect();
        // Batched lockstep.
        let mut batch = NetBatch::new((0..3u64).map(mk).collect());
        for i in 0..250 {
            for c in 0..3u64 {
                drive(batch.cell_mut(c as usize), c * 1000, i);
            }
            batch.tick();
            for c in 0..3 {
                for node in 0..16 {
                    while batch.cell_mut(c).pop(node).is_some() {}
                }
            }
        }
        for (c, want) in solo.iter().enumerate() {
            assert_eq!(&batch.cell(c).stats(), want, "cell {c} diverged in batch");
        }
    }
}
