//! Dense bitset over node indices: the network's active-router worklist.
//!
//! The scheduler wakes a node on any event that could give it work (flit
//! or credit pushed toward it, NI injection) and retires it once provably
//! idle, so the per-cycle sweep only visits nodes that can make progress.
//! Iteration is in ascending node order — the same order as the full
//! `0..n` sweep it replaces — which keeps the event schedule bit-identical
//! to the unconditional loop.

/// A fixed-capacity set of node indices, stored one bit per node.
#[derive(Clone, Debug)]
pub struct ActiveSet {
    words: Vec<u64>,
    n: usize,
}

impl ActiveSet {
    /// An empty set with capacity for nodes `0..n`.
    pub fn empty(n: usize) -> Self {
        ActiveSet { words: vec![0; n.div_ceil(64)], n }
    }

    /// A full set: every node in `0..n` is active.
    ///
    /// This is the safe initial state — nodes that are in fact idle retire
    /// at the end of their first sweep.
    pub fn all(n: usize) -> Self {
        let mut s = Self::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Marks node `i` active. Idempotent.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.n);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Marks node `i` inactive. Idempotent.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.n);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// `true` if node `i` is active.
    pub fn contains(&self, i: usize) -> bool {
        i < self.n && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of active nodes.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The smallest active node index `>= from`, if any.
    ///
    /// The sweep loop is `while let Some(i) = set.next_from(cursor)`, which
    /// tolerates insertions behind or ahead of the cursor mid-sweep (wakes
    /// triggered by the nodes being visited).
    pub fn next_from(&self, from: usize) -> Option<usize> {
        if from >= self.n {
            return None;
        }
        let mut w = from / 64;
        let mut word = self.words[w] & (!0u64 << (from % 64));
        loop {
            if word != 0 {
                let i = w * 64 + word.trailing_zeros() as usize;
                return (i < self.n).then_some(i);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(s: &ActiveSet) -> Vec<usize> {
        let mut out = Vec::new();
        let mut i = 0;
        while let Some(node) = s.next_from(i) {
            out.push(node);
            i = node + 1;
        }
        out
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveSet::empty(100);
        assert_eq!(s.count(), 0);
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(99);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1) && !s.contains(65));
        assert_eq!(s.count(), 4);
        s.remove(63);
        assert!(!s.contains(63));
        s.remove(63); // idempotent
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn iteration_is_ascending_and_complete() {
        let mut s = ActiveSet::empty(200);
        for &i in &[5usize, 0, 199, 64, 128, 63] {
            s.insert(i);
        }
        assert_eq!(collect(&s), vec![0, 5, 63, 64, 128, 199]);
    }

    #[test]
    fn all_covers_every_node() {
        let s = ActiveSet::all(70);
        assert_eq!(s.count(), 70);
        assert_eq!(collect(&s), (0..70).collect::<Vec<_>>());
        assert!(!s.contains(70));
    }

    #[test]
    fn next_from_past_the_end() {
        let s = ActiveSet::all(36);
        assert_eq!(s.next_from(35), Some(35));
        assert_eq!(s.next_from(36), None);
        assert_eq!(s.next_from(1000), None);
    }
}
