//! tenoc-telemetry: the zero-cost-when-off observability layer.
//!
//! The paper's evidence is *distributional* — injection-blocking at the MC
//! routers (Fig. 11), latency–throughput saturation (Fig. 21), many-to-few
//! hotspot structure (Fig. 1/8) — but aggregate sums cannot show any of
//! those shapes. This module adds three always-available instruments:
//!
//! 1. **Latency histograms** ([`LatencyHistogram`]): log2-bucketed counts
//!    of total and in-network packet latency, kept per protocol class
//!    inside [`crate::NetStats`] when enabled.
//! 2. **Link heatmaps**: per-link, per-VC flit counters and per-router
//!    buffer-occupancy integrals sampled by [`crate::Network`], exported
//!    as a mesh-shaped utilization grid.
//! 3. **Flight recorder** ([`FlightRecorder`]): a bounded ring buffer of
//!    per-hop flit events (packet id, node, output port, cycle), armable
//!    per node or per class via [`ArmSpec`].
//!
//! ## The zero-cost-when-off contract
//!
//! Telemetry is `Option`-gated everywhere it touches a hot path: with
//! telemetry disabled (the default) the simulator performs **no extra heap
//! allocations and no extra RNG draws**, and every simulated outcome —
//! golden sweep fingerprints, figure outputs, scheduler behavior — is
//! byte-identical to a build without this module. Enabling telemetry
//! allocates all buffers up front ([`NetTelemetry::new`]) and never
//! reallocates afterwards, so the allocation-free steady state of the
//! cycle kernel (DESIGN.md §12) also holds with telemetry *on*. Telemetry
//! observes the simulation; it never influences it.

use crate::packet::{PacketClass, PacketHeader};
use crate::types::{Direction, NodeId};
use serde::{Deserialize, Serialize};

/// Number of log2 latency buckets. Bucket 0 counts zero-cycle latencies,
/// bucket `i` (for `1 <= i < 31`) counts latencies in `[2^(i-1), 2^i)`,
/// and the last bucket absorbs everything at or above `2^30` cycles.
pub const HIST_BUCKETS: usize = 32;

/// A log2-bucketed latency histogram with a fixed, allocation-free
/// footprint.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket counts; see [`HIST_BUCKETS`] for the bucket boundaries.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; HIST_BUCKETS] }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index a latency value falls into.
    pub fn bucket_of(latency: u64) -> usize {
        if latency == 0 {
            0
        } else {
            ((64 - latency.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Inclusive lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1 << (i - 1),
        }
    }

    /// Exclusive upper bound of bucket `i` (`u64::MAX` for the last,
    /// open-ended bucket).
    pub fn bucket_hi(i: usize) -> u64 {
        if i + 1 >= HIST_BUCKETS {
            u64::MAX
        } else {
            1 << i
        }
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: u64) {
        self.buckets[Self::bucket_of(latency)] += 1;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Adds another histogram's counts into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Upper bound (exclusive) of the bucket containing the `p`-th
    /// percentile observation, `p` in `[0, 1]`. Returns 0 for an empty
    /// histogram. Because buckets are logarithmic this is an upper
    /// estimate, never an underestimate.
    pub fn percentile_upper_bound(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (p.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_hi(i);
            }
        }
        u64::MAX
    }
}

/// Latency histograms kept inside [`crate::NetStats`]: total (creation to
/// tail ejection) and network (head injection to tail ejection) latency,
/// per protocol class (`[request, reply]`).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistograms {
    /// Total-latency histograms per class.
    pub total: [LatencyHistogram; 2],
    /// Network-latency histograms per class.
    pub network: [LatencyHistogram; 2],
}

impl LatencyHistograms {
    /// Adds another set of histograms into this one.
    pub fn merge(&mut self, other: &LatencyHistograms) {
        for c in 0..2 {
            self.total[c].merge(&other.total[c]);
            self.network[c].merge(&other.network[c]);
        }
    }
}

/// Which packets the flight recorder captures. `None` fields are
/// wildcards; a packet must match every set field.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct ArmSpec {
    /// Record only packets whose source *or* destination is this node.
    pub node: Option<NodeId>,
    /// Record only packets of this class.
    pub class: Option<PacketClass>,
}

impl ArmSpec {
    /// `true` if a packet with this header should be recorded.
    pub fn matches(&self, hdr: &PacketHeader) -> bool {
        if let Some(n) = self.node {
            if hdr.src != n && hdr.dst != n {
                return false;
            }
        }
        if let Some(c) = self.class {
            if hdr.class != c {
                return false;
            }
        }
        true
    }
}

/// Telemetry configuration handed to [`crate::Network::enable_telemetry`].
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct TelemetryConfig {
    /// Capacity of the flight-recorder ring buffer (events kept; older
    /// events are overwritten once full). Zero disables the recorder.
    pub flight_capacity: usize,
    /// Which packets the flight recorder captures.
    pub arm: ArmSpec,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { flight_capacity: 4096, arm: ArmSpec::default() }
    }
}

/// One per-hop flit event captured by the flight recorder.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Packet id ([`PacketHeader::id`]).
    pub packet: u64,
    /// Class index (`0` request, `1` reply).
    pub class: u8,
    /// Flit sequence number within the packet (`0` = head).
    pub seq: u16,
    /// Router the flit departed from.
    pub node: u64,
    /// Output port taken: `0..4` are N/E/S/W links, `4+` ejection ports.
    pub out_port: u8,
    /// Cycle of the switch grant.
    pub cycle: u64,
}

/// A bounded ring buffer of [`FlightEvent`]s. The buffer is allocated
/// once at arm time; recording never allocates.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    events: Vec<FlightEvent>,
    cap: usize,
    /// Overwrite position once the ring is full.
    next: usize,
    /// Events ever offered and accepted (including overwritten ones).
    total: u64,
    arm: ArmSpec,
}

impl FlightRecorder {
    /// A recorder keeping at most `cap` events matching `arm`.
    pub fn new(cap: usize, arm: ArmSpec) -> Self {
        FlightRecorder { events: Vec::with_capacity(cap), cap, next: 0, total: 0, arm }
    }

    /// `true` if a packet with this header should be recorded.
    pub fn armed_for(&self, hdr: &PacketHeader) -> bool {
        self.cap > 0 && self.arm.matches(hdr)
    }

    /// Records an event (caller has already checked [`Self::armed_for`]).
    pub fn record(&mut self, ev: FlightEvent) {
        self.total += 1;
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.next..]);
        out.extend_from_slice(&self.events[..self.next]);
        out
    }

    /// Events ever recorded (≥ the number currently held).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events that were overwritten by newer ones.
    pub fn dropped(&self) -> u64 {
        self.total - self.events.len() as u64
    }
}

/// Live telemetry state owned by a [`crate::Network`] when enabled: all
/// buffers are sized at construction and never grow.
#[derive(Clone, Debug)]
pub struct NetTelemetry {
    num_vcs: usize,
    /// Flits carried per `[(node * 4 + dir) * num_vcs + vc]`.
    link_vc_flits: Vec<u64>,
    /// Per-node integral of buffered flits over sampled cycles.
    occupancy_sum: Vec<u64>,
    /// Cycles sampled (denominator for mean occupancy).
    occupancy_cycles: u64,
    /// The per-hop flit ring buffer.
    pub flight: FlightRecorder,
}

impl NetTelemetry {
    /// Allocates telemetry state for `nodes` routers with `num_vcs` VCs.
    pub fn new(nodes: usize, num_vcs: usize, cfg: TelemetryConfig) -> Self {
        NetTelemetry {
            num_vcs,
            link_vc_flits: vec![0; nodes * 4 * num_vcs],
            occupancy_sum: vec![0; nodes],
            occupancy_cycles: 0,
            flight: FlightRecorder::new(cfg.flight_capacity, cfg.arm),
        }
    }

    /// Counts one flit leaving `node` toward `dir` on downstream VC `vc`.
    pub fn count_link_flit(&mut self, node: NodeId, dir: usize, vc: u8) {
        self.link_vc_flits[(node * 4 + dir) * self.num_vcs + vc as usize] += 1;
    }

    /// Accumulates one occupancy sample for `node`.
    pub fn add_occupancy_sample(&mut self, node: NodeId, buffered: u64) {
        self.occupancy_sum[node] += buffered;
    }

    /// Advances the occupancy sampling clock by one cycle.
    pub fn tick_occupancy(&mut self) {
        self.occupancy_cycles += 1;
    }

    /// Flits carried by the `(node, dir)` link, summed over VCs.
    pub fn link_flits(&self, node: NodeId, dir: usize) -> u64 {
        let base = (node * 4 + dir) * self.num_vcs;
        self.link_vc_flits[base..base + self.num_vcs].iter().sum()
    }

    /// Flits carried by the `(node, dir)` link on one VC.
    pub fn link_vc_flits(&self, node: NodeId, dir: usize, vc: u8) -> u64 {
        self.link_vc_flits[(node * 4 + dir) * self.num_vcs + vc as usize]
    }

    /// Mean buffered flits at `node` per sampled cycle.
    pub fn avg_occupancy(&self, node: NodeId) -> f64 {
        if self.occupancy_cycles == 0 {
            return 0.0;
        }
        self.occupancy_sum[node] as f64 / self.occupancy_cycles as f64
    }
}

/// One physical link's traffic in a [`TelemetryReport`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkRecord {
    /// Source node of the link.
    pub node: u64,
    /// Source column.
    pub x: u16,
    /// Source row.
    pub y: u16,
    /// Link direction (`N`/`E`/`S`/`W`).
    pub dir: String,
    /// Total flits carried.
    pub flits: u64,
    /// Flits carried per VC.
    pub vc_flits: Vec<u64>,
    /// Flits per cycle (1.0 = fully utilized).
    pub utilization: f64,
}

/// A serializable snapshot of one network's telemetry, built by
/// [`crate::Network::telemetry_report`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Which network this report describes (`net`, `request`, `reply`).
    pub label: String,
    /// Mesh radix `k`; the mesh has `k * k` nodes.
    pub radix: u64,
    /// Cycles the network simulated.
    pub cycles: u64,
    /// Latency histograms per class (total + network latency).
    pub hist: LatencyHistograms,
    /// Every physical link's traffic, in node-major order.
    pub links: Vec<LinkRecord>,
    /// Mesh-shaped utilization grid: `heatmap[y][x]` is the mean
    /// utilization of node `(x, y)`'s outgoing links.
    pub heatmap: Vec<Vec<f64>>,
    /// Mean buffered flits per node per cycle, in node order.
    pub avg_occupancy: Vec<f64>,
    /// Flight-recorder sample, oldest first.
    pub flight: Vec<FlightEvent>,
    /// Flight events overwritten because the ring filled up.
    pub flight_dropped: u64,
}

impl TelemetryReport {
    /// Serializes the report to pretty JSON.
    ///
    /// # Panics
    ///
    /// Never panics: the report is plain data.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is plain data")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying error on malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde::json::Error> {
        serde_json::from_str(s)
    }

    /// The busiest physical link: the record with the most flits,
    /// breaking ties toward the lowest `(node, dir)` in record order.
    /// `None` when the report has no links (a 1×1 mesh).
    pub fn hottest_link(&self) -> Option<&LinkRecord> {
        self.links.iter().reduce(|best, r| if r.flits > best.flits { r } else { best })
    }

    /// Flight events serialized as JSON lines (one event per line).
    pub fn flight_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.flight {
            out.push_str(&serde_json::to_string(ev).expect("event is plain data"));
            out.push('\n');
        }
        out
    }
}

/// Helper for report construction: direction label used in link records.
pub fn dir_label(dir: Direction) -> &'static str {
    match dir {
        Direction::North => "N",
        Direction::East => "E",
        Direction::South => "S",
        Direction::West => "W",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(1023), 10);
        assert_eq!(LatencyHistogram::bucket_of(1024), 11);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HIST_BUCKETS - 1);
        // Every bucket's bounds are consistent with bucket_of.
        for i in 0..HIST_BUCKETS {
            let lo = LatencyHistogram::bucket_lo(i);
            assert_eq!(LatencyHistogram::bucket_of(lo), i, "lo of bucket {i}");
            let hi = LatencyHistogram::bucket_hi(i);
            if i + 1 < HIST_BUCKETS {
                assert_eq!(LatencyHistogram::bucket_of(hi - 1), i, "hi-1 of bucket {i}");
                assert_eq!(LatencyHistogram::bucket_of(hi), i + 1, "hi of bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_records_counts_and_merges() {
        let mut h = LatencyHistogram::new();
        for lat in [0, 1, 2, 3, 100, 100] {
            h.record(lat);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[LatencyHistogram::bucket_of(100)], 2);
        let mut other = LatencyHistogram::new();
        other.record(100);
        h.merge(&other);
        assert_eq!(h.count(), 7);
        assert_eq!(h.buckets[LatencyHistogram::bucket_of(100)], 3);
    }

    #[test]
    fn percentile_upper_bound_brackets_observations() {
        let mut h = LatencyHistogram::new();
        for lat in [10, 20, 30, 1000] {
            h.record(lat);
        }
        // p50 falls within the first two observations' buckets.
        assert!(h.percentile_upper_bound(0.5) >= 20);
        assert!(h.percentile_upper_bound(0.5) <= 64);
        // p100 covers the 1000-cycle outlier.
        assert!(h.percentile_upper_bound(1.0) > 1000);
        assert_eq!(LatencyHistogram::new().percentile_upper_bound(0.5), 0);
    }

    #[test]
    fn flight_ring_wraps_and_preserves_order() {
        let mut fr = FlightRecorder::new(3, ArmSpec::default());
        let ev =
            |cycle| FlightEvent { packet: cycle, class: 0, seq: 0, node: 0, out_port: 0, cycle };
        for c in 0..5 {
            fr.record(ev(c));
        }
        assert_eq!(fr.total_recorded(), 5);
        assert_eq!(fr.dropped(), 2);
        let cycles: Vec<u64> = fr.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "ring keeps the newest, oldest first");
    }

    #[test]
    fn arm_spec_filters_by_node_and_class() {
        let req = Packet::request(3, 7, 8, 0).header;
        let rep = Packet::reply(7, 3, 64, 0).header;
        let all = ArmSpec::default();
        assert!(all.matches(&req) && all.matches(&rep));
        let node3 = ArmSpec { node: Some(3), class: None };
        assert!(node3.matches(&req), "src match");
        assert!(node3.matches(&rep), "dst match");
        assert!(!ArmSpec { node: Some(5), class: None }.matches(&req));
        let reply_only = ArmSpec { node: None, class: Some(PacketClass::Reply) };
        assert!(!reply_only.matches(&req));
        assert!(reply_only.matches(&rep));
        let both = ArmSpec { node: Some(3), class: Some(PacketClass::Request) };
        assert!(both.matches(&req));
        assert!(!both.matches(&rep), "class mismatch wins even when node matches");
    }

    #[test]
    fn zero_capacity_recorder_is_disarmed() {
        let fr = FlightRecorder::new(0, ArmSpec::default());
        assert!(!fr.armed_for(&Packet::request(0, 1, 8, 0).header));
    }

    #[test]
    fn net_telemetry_counts_links_and_occupancy() {
        let mut t = NetTelemetry::new(4, 2, TelemetryConfig::default());
        t.count_link_flit(1, 2, 0);
        t.count_link_flit(1, 2, 0);
        t.count_link_flit(1, 2, 1);
        assert_eq!(t.link_flits(1, 2), 3);
        assert_eq!(t.link_vc_flits(1, 2, 0), 2);
        assert_eq!(t.link_vc_flits(1, 2, 1), 1);
        assert_eq!(t.link_flits(0, 0), 0);
        t.tick_occupancy();
        t.add_occupancy_sample(1, 6);
        t.tick_occupancy();
        assert!((t.avg_occupancy(1) - 3.0).abs() < 1e-12);
        assert_eq!(t.avg_occupancy(0), 0.0);
    }

    #[test]
    fn report_json_roundtrip() {
        let report = TelemetryReport {
            label: "net".into(),
            radix: 2,
            cycles: 10,
            hist: LatencyHistograms::default(),
            links: vec![LinkRecord {
                node: 0,
                x: 0,
                y: 0,
                dir: "E".into(),
                flits: 5,
                vc_flits: vec![3, 2],
                utilization: 0.5,
            }],
            heatmap: vec![vec![0.5, 0.0], vec![0.0, 0.0]],
            avg_occupancy: vec![0.0; 4],
            flight: vec![FlightEvent {
                packet: 1,
                class: 1,
                seq: 0,
                node: 0,
                out_port: 1,
                cycle: 3,
            }],
            flight_dropped: 0,
        };
        let back = TelemetryReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        assert_eq!(report.flight_jsonl().lines().count(), 1);
    }
}
