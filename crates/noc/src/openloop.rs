//! Open-loop many-to-few-to-many traffic harness (paper Figure 21).
//!
//! Compute nodes inject single-flit read requests at a configurable rate
//! toward the few MC nodes (uniform-random or hotspot selection); each MC
//! responds to every request with a four-flit read reply. Latency is
//! reported over packets *generated* during the measurement window,
//! including source queueing, so the curves exhibit the classic saturation
//! blow-up as offered load approaches network capacity.
//!
//! The harness comes in two shapes over one core: [`run_open_loop`] /
//! [`run_open_loop_on`] drive a single probe to completion, while
//! [`OpenLoopProbe`] exposes the same per-cycle loop one `tick` at a
//! time so a batch driver ([`run_probes_lockstep`]) can interleave many
//! probes — e.g. the tuner's stage-2 probe groups on the arena engine.

use crate::config::NetworkConfig;
use crate::interconnect::Interconnect;
use crate::network::Network;
use crate::packet::Packet;
use crate::types::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Destination selection among the MC nodes.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Each request picks an MC uniformly at random (1/m each).
    UniformRandom,
    /// A fraction of requests target one hot MC; the rest are uniform over
    /// the others. The paper uses 20% to one of eight MCs.
    Hotspot {
        /// Index (into the MC list) of the hot MC.
        hot: usize,
        /// Fraction of requests sent to the hot MC.
        fraction: f64,
    },
}

/// Open-loop experiment configuration.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Network under test. Its `mc_nodes` are the few destinations.
    pub net: NetworkConfig,
    /// Offered load per compute node, in flits/cycle (requests are one
    /// flit, so this equals packets/cycle/node).
    pub injection_rate: f64,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Warm-up cycles before measurement.
    pub warmup: u64,
    /// Measurement window in cycles.
    pub measure: u64,
    /// Extra cycles allowed for measured packets to drain.
    pub drain: u64,
    /// Request payload bytes (default 8: one flit at 16-byte channels).
    pub request_bytes: u32,
    /// Reply payload bytes (default 64: four flits at 16-byte channels).
    pub reply_bytes: u32,
    /// Traffic RNG seed.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// Defaults matching Figure 21 for a given network configuration and
    /// injection rate.
    pub fn new(net: NetworkConfig, injection_rate: f64, pattern: TrafficPattern) -> Self {
        OpenLoopConfig {
            net,
            injection_rate,
            pattern,
            warmup: 10_000,
            measure: 20_000,
            drain: 30_000,
            request_bytes: 8,
            reply_bytes: 64,
            seed: 0x0f21,
        }
    }

    /// `true` when a packet generated at cycle `now` belongs to the
    /// measurement window: **inclusive** of `warmup` (the first measured
    /// cycle), **exclusive** of `warmup + measure` (the first drain
    /// cycle). The single source of truth for measurement membership —
    /// both the generation and the throughput-accounting paths of
    /// [`run_open_loop`] go through here, so the boundary semantics
    /// cannot drift apart.
    pub fn in_measurement_window(&self, now: u64) -> bool {
        (self.warmup..self.warmup + self.measure).contains(&now)
    }
}

/// Result of one open-loop run at one injection rate.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopResult {
    /// Offered load (flits/cycle/compute-node), as configured.
    pub offered: f64,
    /// Accepted throughput over the measurement window, in ejected flits
    /// per cycle per node (all nodes, both classes).
    pub accepted: f64,
    /// Flits ejected *during* the measurement window per cycle per node,
    /// regardless of when they were generated — the classic
    /// accepted-throughput metric. Unlike [`accepted`](Self::accepted)
    /// (which follows window-generated packets into the drain and can
    /// transiently exceed sustainable rates past saturation), this is a
    /// steady-state rate bounded by the fabric's physical capacity, so it
    /// is the quantity the static saturation bound (`tenoc-verify`'s
    /// `LoadReport::accepted_bound`) is validated against.
    pub ejection_rate: f64,
    /// Like [`ejection_rate`](Self::ejection_rate) but in payload *bytes*
    /// per cycle per node, summed from each ejected packet's true size
    /// rather than its flit count. Flit counts depend on the channel
    /// width of the fabric that carried the packet, so this is the
    /// throughput measure that stays comparable across fabrics of
    /// different channel widths (including the half-width slices of a
    /// double network).
    pub ejection_bytes_rate: f64,
    /// Mean latency of measured packets (generation to ejection),
    /// requests and replies combined.
    pub avg_latency: f64,
    /// Mean measured request latency.
    pub avg_request_latency: f64,
    /// Mean measured reply latency.
    pub avg_reply_latency: f64,
    /// Fraction of measured packets that drained before the deadline.
    /// Values below ~0.99 indicate the network is past saturation.
    pub delivered_fraction: f64,
}

impl OpenLoopResult {
    /// `true` when the run shows saturation (undelivered measured packets
    /// or very large mean latency).
    pub fn saturated(&self) -> bool {
        self.delivered_fraction < 0.99 || self.avg_latency > 500.0
    }
}

/// Runs one open-loop simulation.
///
/// # Panics
///
/// Panics if the configuration has no MC nodes or fails validation.
pub fn run_open_loop(cfg: &OpenLoopConfig) -> OpenLoopResult {
    let mut net = Network::new(cfg.net.clone());
    run_open_loop_on(cfg, &mut net)
}

/// Runs one open-loop simulation on a caller-provided network, so the
/// caller can observe the fabric afterwards — arm telemetry beforehand
/// ([`Network::arm_telemetry`]) or read [`Network::link_loads`] after the
/// run. The network must be freshly built from `cfg.net` (the traffic
/// generator addresses `cfg.net`'s compute and MC nodes).
///
/// # Panics
///
/// Panics if the configuration has no MC nodes.
pub fn run_open_loop_on(cfg: &OpenLoopConfig, net: &mut Network) -> OpenLoopResult {
    let mut core = ProbeCore::new(cfg);
    while !core.done() {
        core.tick(cfg, net);
    }
    core.result(cfg)
}

/// The traffic-generation and accounting state of one open-loop probe,
/// independent of which [`Interconnect`] implementation it drives. One
/// [`tick`](ProbeCore::tick) is exactly one loop iteration of the
/// original monolithic runner, so any interleaving of whole ticks across
/// probes reproduces the solo results bit for bit (probes share no
/// state).
struct ProbeCore {
    mcs: Vec<NodeId>,
    compute: Vec<NodeId>,
    nodes: usize,
    rng: SmallRng,
    /// Unbounded source queues (standard open-loop methodology).
    src_q: Vec<VecDeque<Packet>>,
    reply_q: Vec<VecDeque<Packet>>,
    now: u64,
    total: u64,
    meas_end: u64,
    generated_measured: u64,
    delivered_measured: u64,
    lat_sum: [u64; 2],
    lat_cnt: [u64; 2],
    ejected_flits_window: u64,
    ejected_flits_in_window: u64,
    ejected_bytes_in_window: u64,
}

impl ProbeCore {
    fn new(cfg: &OpenLoopConfig) -> Self {
        assert!(!cfg.net.mc_nodes.is_empty(), "open-loop traffic needs MC nodes");
        let mcs = cfg.net.mc_nodes.clone();
        let nodes = cfg.net.mesh.len();
        let compute: Vec<NodeId> = (0..nodes).filter(|n| !mcs.contains(n)).collect();
        ProbeCore {
            mcs,
            compute,
            nodes,
            rng: SmallRng::seed_from_u64(cfg.seed),
            src_q: vec![VecDeque::new(); nodes],
            reply_q: vec![VecDeque::new(); nodes],
            now: 0,
            total: cfg.warmup + cfg.measure + cfg.drain,
            meas_end: cfg.warmup + cfg.measure,
            generated_measured: 0,
            delivered_measured: 0,
            lat_sum: [0; 2],
            lat_cnt: [0; 2],
            ejected_flits_window: 0,
            ejected_flits_in_window: 0,
            ejected_bytes_in_window: 0,
        }
    }

    fn done(&self) -> bool {
        self.now >= self.total
    }

    /// One cycle: generate, drain source queues, service MCs, consume
    /// replies, step the network.
    fn tick(&mut self, cfg: &OpenLoopConfig, net: &mut dyn Interconnect) {
        let now = self.now;
        // Generate new requests at the compute nodes.
        if now < self.meas_end {
            for &c in &self.compute {
                if self.rng.gen_bool(cfg.injection_rate.min(1.0)) {
                    let dst = pick_mc(&self.mcs, cfg.pattern, &mut self.rng);
                    let mut p = Packet::request(c, dst, cfg.request_bytes, 0);
                    p.header.created = now;
                    self.src_q[c].push_back(p);
                    if cfg.in_measurement_window(now) {
                        self.generated_measured += 1;
                        // Mark measured packets via the tag.
                        self.src_q[c].back_mut().unwrap().header.tag = 1;
                    }
                }
            }
        }
        // Drain source queues into the network.
        for &c in &self.compute {
            while let Some(&p) = self.src_q[c].front() {
                if net.try_inject(c, p).is_ok() {
                    self.src_q[c].pop_front();
                } else {
                    break;
                }
            }
        }
        // MCs: service ejected requests, emit replies; drain reply queues.
        for &mc in &self.mcs {
            while let Some(req) = net.pop(mc) {
                let mut rep = Packet::reply(mc, req.header.src, cfg.reply_bytes, req.header.tag);
                // Stamped at the service cycle, matching the request
                // convention (created == first cycle the packet can
                // inject); stamping now+1 would credit replies one cycle
                // of latency they never paid.
                rep.header.created = now;
                self.reply_q[mc].push_back(rep);
                if cfg.in_measurement_window(now) {
                    self.ejected_flits_in_window += req.header.flits as u64;
                    self.ejected_bytes_in_window += req.header.size_bytes as u64;
                }
                if req.header.tag == 1 {
                    let l = req.total_latency();
                    self.lat_sum[0] += l;
                    self.lat_cnt[0] += 1;
                    if cfg.in_measurement_window(req.header.created) {
                        self.ejected_flits_window += req.header.flits as u64;
                    }
                }
            }
            while let Some(&p) = self.reply_q[mc].front() {
                if net.try_inject(mc, p).is_ok() {
                    self.reply_q[mc].pop_front();
                } else {
                    break;
                }
            }
        }
        // Compute nodes: consume replies.
        for &c in &self.compute {
            while let Some(rep) = net.pop(c) {
                if cfg.in_measurement_window(now) {
                    self.ejected_flits_in_window += rep.header.flits as u64;
                    self.ejected_bytes_in_window += rep.header.size_bytes as u64;
                }
                if rep.header.tag == 1 {
                    let l = rep.total_latency();
                    self.lat_sum[1] += l;
                    self.lat_cnt[1] += 1;
                    self.delivered_measured += 1;
                    self.ejected_flits_window += rep.header.flits as u64;
                }
            }
        }
        net.step();
        self.now += 1;
    }

    fn result(&self, cfg: &OpenLoopConfig) -> OpenLoopResult {
        let total_lat: u64 = self.lat_sum.iter().sum();
        let total_cnt: u64 = self.lat_cnt.iter().sum();
        OpenLoopResult {
            offered: cfg.injection_rate,
            accepted: self.ejected_flits_window as f64 / cfg.measure as f64 / self.nodes as f64,
            ejection_rate: self.ejected_flits_in_window as f64
                / cfg.measure as f64
                / self.nodes as f64,
            ejection_bytes_rate: self.ejected_bytes_in_window as f64
                / cfg.measure as f64
                / self.nodes as f64,
            avg_latency: if total_cnt == 0 {
                f64::INFINITY
            } else {
                total_lat as f64 / total_cnt as f64
            },
            avg_request_latency: if self.lat_cnt[0] == 0 {
                f64::INFINITY
            } else {
                self.lat_sum[0] as f64 / self.lat_cnt[0] as f64
            },
            avg_reply_latency: if self.lat_cnt[1] == 0 {
                f64::INFINITY
            } else {
                self.lat_sum[1] as f64 / self.lat_cnt[1] as f64
            },
            delivered_fraction: if self.generated_measured == 0 {
                1.0
            } else {
                self.delivered_measured as f64 / self.generated_measured as f64
            },
        }
    }
}

/// One open-loop probe bundled with the network it drives, advanced one
/// cycle at a time so a batch driver can interleave many probes. The
/// network must be freshly built from `cfg.net` (the traffic generator
/// addresses `cfg.net`'s compute and MC nodes). Probes share no state,
/// so any whole-tick interleaving — solo, round-robin, lockstep — yields
/// bit-identical results for every probe.
pub struct OpenLoopProbe<I> {
    cfg: OpenLoopConfig,
    core: ProbeCore,
    net: I,
}

impl<I: Interconnect> OpenLoopProbe<I> {
    /// Wraps a probe around a freshly-built network.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has no MC nodes.
    pub fn new(cfg: OpenLoopConfig, net: I) -> Self {
        let core = ProbeCore::new(&cfg);
        OpenLoopProbe { cfg, core, net }
    }

    /// `true` once warmup + measurement + drain have all elapsed.
    pub fn done(&self) -> bool {
        self.core.done()
    }

    /// Advances the probe by one cycle (a no-op once done).
    pub fn tick(&mut self) {
        if !self.core.done() {
            self.core.tick(&self.cfg, &mut self.net);
        }
    }

    /// The probe's result so far (final once [`done`](Self::done)).
    pub fn result(&self) -> OpenLoopResult {
        self.core.result(&self.cfg)
    }

    /// The network under test (e.g. to read link loads after the run).
    pub fn network(&self) -> &I {
        &self.net
    }
}

/// Advances a group of probes to completion in bounded lockstep rounds
/// and returns their results in input order. Intended for same-shape
/// groups batched on the arena engine, where interleaving keeps the
/// per-shape routing/geometry tables hot; correctness does not depend on
/// grouping, and the results are bit-identical to running each probe
/// solo (probes share no state).
pub fn run_probes_lockstep<I: Interconnect>(
    probes: &mut [OpenLoopProbe<I>],
) -> Vec<OpenLoopResult> {
    /// Cycles each probe advances per round before the driver moves on.
    const ROUND_CYCLES: u64 = 1024;
    loop {
        let mut advanced = false;
        for p in probes.iter_mut() {
            for _ in 0..ROUND_CYCLES {
                if p.done() {
                    break;
                }
                p.tick();
                advanced = true;
            }
        }
        if !advanced {
            break;
        }
    }
    probes.iter().map(|p| p.result()).collect()
}

fn pick_mc<R: Rng>(mcs: &[NodeId], pattern: TrafficPattern, rng: &mut R) -> NodeId {
    match pattern {
        TrafficPattern::UniformRandom => mcs[rng.gen_range(0..mcs.len())],
        TrafficPattern::Hotspot { hot, fraction } => {
            if rng.gen_bool(fraction) {
                mcs[hot]
            } else {
                let others: usize = rng.gen_range(0..mcs.len() - 1);
                let idx = if others >= hot { others + 1 } else { others };
                mcs[idx]
            }
        }
    }
}

/// Sweeps injection rates and returns the (rate, result) curve, stopping
/// early once two consecutive points are saturated.
pub fn latency_curve(
    base: &OpenLoopConfig,
    rates: impl IntoIterator<Item = f64>,
) -> Vec<OpenLoopResult> {
    let mut out = Vec::new();
    let mut saturated_streak = 0;
    for rate in rates {
        let mut cfg = base.clone();
        cfg.injection_rate = rate;
        let r = run_open_loop(&cfg);
        let sat = r.saturated();
        out.push(r);
        saturated_streak = if sat { saturated_streak + 1 } else { 0 };
        if saturated_streak >= 2 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::ArenaNetwork;
    use crate::config::NetworkConfig;

    fn quick_cfg(rate: f64) -> OpenLoopConfig {
        let mut c = OpenLoopConfig::new(
            NetworkConfig::baseline_mesh(6),
            rate,
            TrafficPattern::UniformRandom,
        );
        c.warmup = 500;
        c.measure = 1500;
        c.drain = 3000;
        c
    }

    #[test]
    fn low_load_latency_near_zero_load() {
        let r = run_open_loop(&quick_cfg(0.005));
        assert!(!r.saturated(), "0.005 flits/cycle/node must be below saturation");
        // Zero-load-ish: a handful of hops at 5 cycles plus serialization.
        assert!(r.avg_latency > 10.0 && r.avg_latency < 80.0, "latency {}", r.avg_latency);
        assert!(r.delivered_fraction > 0.99);
    }

    #[test]
    fn latency_grows_with_load() {
        let lo = run_open_loop(&quick_cfg(0.005));
        let hi = run_open_loop(&quick_cfg(0.05));
        assert!(
            hi.avg_latency > lo.avg_latency,
            "latency must rise with load: {} vs {}",
            lo.avg_latency,
            hi.avg_latency
        );
    }

    #[test]
    fn extreme_load_saturates() {
        let r = run_open_loop(&quick_cfg(0.5));
        assert!(r.saturated(), "0.5 flits/cycle/node is far past many-to-few capacity");
    }

    #[test]
    fn hotspot_pick_respects_fraction() {
        let mcs: Vec<NodeId> = (0..8).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let mut hot_hits = 0;
        for _ in 0..n {
            let mc = pick_mc(&mcs, TrafficPattern::Hotspot { hot: 2, fraction: 0.2 }, &mut rng);
            if mc == 2 {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "hot fraction {frac}");
    }

    /// Satellite regression: pin the measurement-window boundaries so
    /// inclusive/exclusive semantics can't drift. A packet generated
    /// exactly at `warmup` is measured; one generated exactly at
    /// `warmup + measure` is not.
    #[test]
    fn measurement_window_boundaries_are_pinned() {
        let cfg = quick_cfg(0.01); // warmup 500, measure 1500
        assert!(!cfg.in_measurement_window(cfg.warmup - 1), "last warm-up cycle is unmeasured");
        assert!(cfg.in_measurement_window(cfg.warmup), "first measured cycle is warmup itself");
        assert!(cfg.in_measurement_window(cfg.warmup + cfg.measure - 1), "last measured cycle");
        assert!(
            !cfg.in_measurement_window(cfg.warmup + cfg.measure),
            "a packet generated at warmup + measure belongs to the drain, not the window"
        );
    }

    /// The window helper is the arbiter for a degenerate zero-length
    /// window: nothing is ever measured.
    #[test]
    fn zero_length_window_measures_nothing() {
        let mut cfg = quick_cfg(0.01);
        cfg.measure = 0;
        assert!(!cfg.in_measurement_window(cfg.warmup));
    }

    #[test]
    fn curve_stops_after_saturation() {
        let base = quick_cfg(0.0);
        let rates = [0.01, 0.3, 0.4, 0.5, 0.6];
        let curve = latency_curve(&base, rates);
        assert!(curve.len() < rates.len(), "sweep must stop early once saturated");
    }

    fn results_eq(a: &OpenLoopResult, b: &OpenLoopResult) -> bool {
        a.offered == b.offered
            && a.accepted == b.accepted
            && a.ejection_rate == b.ejection_rate
            && a.avg_latency == b.avg_latency
            && a.avg_request_latency == b.avg_request_latency
            && a.avg_reply_latency == b.avg_reply_latency
            && a.delivered_fraction == b.delivered_fraction
    }

    /// The per-cycle probe is the same loop as the monolithic runner:
    /// ticking one probe to completion reproduces `run_open_loop`
    /// bit for bit.
    #[test]
    fn probe_matches_monolithic_runner() {
        let cfg = quick_cfg(0.02);
        let solo = run_open_loop(&cfg);
        let mut probe = OpenLoopProbe::new(cfg.clone(), Network::new(cfg.net.clone()));
        while !probe.done() {
            probe.tick();
        }
        assert!(results_eq(&solo, &probe.result()), "{solo:?} vs {:?}", probe.result());
    }

    /// Probes share no state: lockstep interleaving of several probes
    /// (different rates, one shape) equals each probe run solo, and the
    /// arena engine equals the oracle network.
    #[test]
    fn lockstep_probes_match_solo_and_arena_matches_oracle() {
        let rates = [0.01, 0.03, 0.06];
        let solo: Vec<OpenLoopResult> =
            rates.iter().map(|&r| run_open_loop(&quick_cfg(r))).collect();
        let mut oracle_probes: Vec<OpenLoopProbe<Network>> = rates
            .iter()
            .map(|&r| {
                let cfg = quick_cfg(r);
                OpenLoopProbe::new(cfg.clone(), Network::new(cfg.net.clone()))
            })
            .collect();
        let batched = run_probes_lockstep(&mut oracle_probes);
        for (s, b) in solo.iter().zip(&batched) {
            assert!(results_eq(s, b), "lockstep diverged: {s:?} vs {b:?}");
        }

        let cfg = quick_cfg(0.03);
        assert!(ArenaNetwork::supports(&cfg.net), "baseline mesh is arena-eligible");
        let mut arena_probes =
            vec![OpenLoopProbe::new(cfg.clone(), ArenaNetwork::new(cfg.net.clone()))];
        let arena = run_probes_lockstep(&mut arena_probes);
        assert!(
            results_eq(&solo[1], &arena[0]),
            "arena probe diverged from oracle: {:?} vs {:?}",
            solo[1],
            arena[0]
        );
    }
}
