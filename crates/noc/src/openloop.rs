//! Open-loop many-to-few-to-many traffic harness (paper Figure 21).
//!
//! Compute nodes inject single-flit read requests at a configurable rate
//! toward the few MC nodes (uniform-random or hotspot selection); each MC
//! responds to every request with a four-flit read reply. Latency is
//! reported over packets *generated* during the measurement window,
//! including source queueing, so the curves exhibit the classic saturation
//! blow-up as offered load approaches network capacity.

use crate::config::NetworkConfig;
use crate::interconnect::Interconnect;
use crate::network::Network;
use crate::packet::Packet;
use crate::types::NodeId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Destination selection among the MC nodes.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum TrafficPattern {
    /// Each request picks an MC uniformly at random (1/m each).
    UniformRandom,
    /// A fraction of requests target one hot MC; the rest are uniform over
    /// the others. The paper uses 20% to one of eight MCs.
    Hotspot {
        /// Index (into the MC list) of the hot MC.
        hot: usize,
        /// Fraction of requests sent to the hot MC.
        fraction: f64,
    },
}

/// Open-loop experiment configuration.
#[derive(Clone, Debug)]
pub struct OpenLoopConfig {
    /// Network under test. Its `mc_nodes` are the few destinations.
    pub net: NetworkConfig,
    /// Offered load per compute node, in flits/cycle (requests are one
    /// flit, so this equals packets/cycle/node).
    pub injection_rate: f64,
    /// Traffic pattern.
    pub pattern: TrafficPattern,
    /// Warm-up cycles before measurement.
    pub warmup: u64,
    /// Measurement window in cycles.
    pub measure: u64,
    /// Extra cycles allowed for measured packets to drain.
    pub drain: u64,
    /// Request payload bytes (default 8: one flit at 16-byte channels).
    pub request_bytes: u32,
    /// Reply payload bytes (default 64: four flits at 16-byte channels).
    pub reply_bytes: u32,
    /// Traffic RNG seed.
    pub seed: u64,
}

impl OpenLoopConfig {
    /// Defaults matching Figure 21 for a given network configuration and
    /// injection rate.
    pub fn new(net: NetworkConfig, injection_rate: f64, pattern: TrafficPattern) -> Self {
        OpenLoopConfig {
            net,
            injection_rate,
            pattern,
            warmup: 10_000,
            measure: 20_000,
            drain: 30_000,
            request_bytes: 8,
            reply_bytes: 64,
            seed: 0x0f21,
        }
    }

    /// `true` when a packet generated at cycle `now` belongs to the
    /// measurement window: **inclusive** of `warmup` (the first measured
    /// cycle), **exclusive** of `warmup + measure` (the first drain
    /// cycle). The single source of truth for measurement membership —
    /// both the generation and the throughput-accounting paths of
    /// [`run_open_loop`] go through here, so the boundary semantics
    /// cannot drift apart.
    pub fn in_measurement_window(&self, now: u64) -> bool {
        (self.warmup..self.warmup + self.measure).contains(&now)
    }
}

/// Result of one open-loop run at one injection rate.
#[derive(Clone, Copy, Debug)]
pub struct OpenLoopResult {
    /// Offered load (flits/cycle/compute-node), as configured.
    pub offered: f64,
    /// Accepted throughput over the measurement window, in ejected flits
    /// per cycle per node (all nodes, both classes).
    pub accepted: f64,
    /// Flits ejected *during* the measurement window per cycle per node,
    /// regardless of when they were generated — the classic
    /// accepted-throughput metric. Unlike [`accepted`](Self::accepted)
    /// (which follows window-generated packets into the drain and can
    /// transiently exceed sustainable rates past saturation), this is a
    /// steady-state rate bounded by the fabric's physical capacity, so it
    /// is the quantity the static saturation bound (`tenoc-verify`'s
    /// `LoadReport::accepted_bound`) is validated against.
    pub ejection_rate: f64,
    /// Mean latency of measured packets (generation to ejection),
    /// requests and replies combined.
    pub avg_latency: f64,
    /// Mean measured request latency.
    pub avg_request_latency: f64,
    /// Mean measured reply latency.
    pub avg_reply_latency: f64,
    /// Fraction of measured packets that drained before the deadline.
    /// Values below ~0.99 indicate the network is past saturation.
    pub delivered_fraction: f64,
}

impl OpenLoopResult {
    /// `true` when the run shows saturation (undelivered measured packets
    /// or very large mean latency).
    pub fn saturated(&self) -> bool {
        self.delivered_fraction < 0.99 || self.avg_latency > 500.0
    }
}

/// Runs one open-loop simulation.
///
/// # Panics
///
/// Panics if the configuration has no MC nodes or fails validation.
pub fn run_open_loop(cfg: &OpenLoopConfig) -> OpenLoopResult {
    let mut net = Network::new(cfg.net.clone());
    run_open_loop_on(cfg, &mut net)
}

/// Runs one open-loop simulation on a caller-provided network, so the
/// caller can observe the fabric afterwards — arm telemetry beforehand
/// ([`Network::arm_telemetry`]) or read [`Network::link_loads`] after the
/// run. The network must be freshly built from `cfg.net` (the traffic
/// generator addresses `cfg.net`'s compute and MC nodes).
///
/// # Panics
///
/// Panics if the configuration has no MC nodes.
pub fn run_open_loop_on(cfg: &OpenLoopConfig, net: &mut Network) -> OpenLoopResult {
    assert!(!cfg.net.mc_nodes.is_empty(), "open-loop traffic needs MC nodes");
    let mcs = cfg.net.mc_nodes.clone();
    let nodes = cfg.net.mesh.len();
    let compute: Vec<NodeId> = (0..nodes).filter(|n| !mcs.contains(n)).collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Unbounded source queues (standard open-loop methodology).
    let mut src_q: Vec<VecDeque<Packet>> = vec![VecDeque::new(); nodes];
    let mut reply_q: Vec<VecDeque<Packet>> = vec![VecDeque::new(); nodes];

    let total = cfg.warmup + cfg.measure + cfg.drain;
    let meas_end = cfg.warmup + cfg.measure;

    let mut generated_measured = 0u64;
    let mut delivered_measured = 0u64;
    let mut lat_sum = [0u64; 2];
    let mut lat_cnt = [0u64; 2];
    let mut ejected_flits_window = 0u64;
    let mut ejected_flits_in_window = 0u64;

    for now in 0..total {
        // Generate new requests at the compute nodes.
        if now < meas_end {
            for &c in &compute {
                if rng.gen_bool(cfg.injection_rate.min(1.0)) {
                    let dst = pick_mc(&mcs, cfg.pattern, &mut rng);
                    let mut p = Packet::request(c, dst, cfg.request_bytes, 0);
                    p.header.created = now;
                    src_q[c].push_back(p);
                    if cfg.in_measurement_window(now) {
                        generated_measured += 1;
                        // Mark measured packets via the tag.
                        src_q[c].back_mut().unwrap().header.tag = 1;
                    }
                }
            }
        }
        // Drain source queues into the network.
        for &c in &compute {
            while let Some(&p) = src_q[c].front() {
                if net.try_inject(c, p).is_ok() {
                    src_q[c].pop_front();
                } else {
                    break;
                }
            }
        }
        // MCs: service ejected requests, emit replies; drain reply queues.
        for &mc in &mcs {
            while let Some(req) = net.pop(mc) {
                let mut rep = Packet::reply(mc, req.header.src, cfg.reply_bytes, req.header.tag);
                // Stamped at the service cycle, matching the request
                // convention (created == first cycle the packet can
                // inject); stamping now+1 would credit replies one cycle
                // of latency they never paid.
                rep.header.created = now;
                reply_q[mc].push_back(rep);
                if cfg.in_measurement_window(now) {
                    ejected_flits_in_window += req.header.flits as u64;
                }
                if req.header.tag == 1 {
                    let l = req.total_latency();
                    lat_sum[0] += l;
                    lat_cnt[0] += 1;
                    if cfg.in_measurement_window(req.header.created) {
                        ejected_flits_window += req.header.flits as u64;
                    }
                }
            }
            while let Some(&p) = reply_q[mc].front() {
                if net.try_inject(mc, p).is_ok() {
                    reply_q[mc].pop_front();
                } else {
                    break;
                }
            }
        }
        // Compute nodes: consume replies.
        for &c in &compute {
            while let Some(rep) = net.pop(c) {
                if cfg.in_measurement_window(now) {
                    ejected_flits_in_window += rep.header.flits as u64;
                }
                if rep.header.tag == 1 {
                    let l = rep.total_latency();
                    lat_sum[1] += l;
                    lat_cnt[1] += 1;
                    delivered_measured += 1;
                    ejected_flits_window += rep.header.flits as u64;
                }
            }
        }
        net.step();
    }

    let total_lat: u64 = lat_sum.iter().sum();
    let total_cnt: u64 = lat_cnt.iter().sum();
    OpenLoopResult {
        offered: cfg.injection_rate,
        accepted: ejected_flits_window as f64 / cfg.measure as f64 / nodes as f64,
        ejection_rate: ejected_flits_in_window as f64 / cfg.measure as f64 / nodes as f64,
        avg_latency: if total_cnt == 0 {
            f64::INFINITY
        } else {
            total_lat as f64 / total_cnt as f64
        },
        avg_request_latency: if lat_cnt[0] == 0 {
            f64::INFINITY
        } else {
            lat_sum[0] as f64 / lat_cnt[0] as f64
        },
        avg_reply_latency: if lat_cnt[1] == 0 {
            f64::INFINITY
        } else {
            lat_sum[1] as f64 / lat_cnt[1] as f64
        },
        delivered_fraction: if generated_measured == 0 {
            1.0
        } else {
            delivered_measured as f64 / generated_measured as f64
        },
    }
}

fn pick_mc<R: Rng>(mcs: &[NodeId], pattern: TrafficPattern, rng: &mut R) -> NodeId {
    match pattern {
        TrafficPattern::UniformRandom => mcs[rng.gen_range(0..mcs.len())],
        TrafficPattern::Hotspot { hot, fraction } => {
            if rng.gen_bool(fraction) {
                mcs[hot]
            } else {
                let others: usize = rng.gen_range(0..mcs.len() - 1);
                let idx = if others >= hot { others + 1 } else { others };
                mcs[idx]
            }
        }
    }
}

/// Sweeps injection rates and returns the (rate, result) curve, stopping
/// early once two consecutive points are saturated.
pub fn latency_curve(
    base: &OpenLoopConfig,
    rates: impl IntoIterator<Item = f64>,
) -> Vec<OpenLoopResult> {
    let mut out = Vec::new();
    let mut saturated_streak = 0;
    for rate in rates {
        let mut cfg = base.clone();
        cfg.injection_rate = rate;
        let r = run_open_loop(&cfg);
        let sat = r.saturated();
        out.push(r);
        saturated_streak = if sat { saturated_streak + 1 } else { 0 };
        if saturated_streak >= 2 {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;

    fn quick_cfg(rate: f64) -> OpenLoopConfig {
        let mut c = OpenLoopConfig::new(
            NetworkConfig::baseline_mesh(6),
            rate,
            TrafficPattern::UniformRandom,
        );
        c.warmup = 500;
        c.measure = 1500;
        c.drain = 3000;
        c
    }

    #[test]
    fn low_load_latency_near_zero_load() {
        let r = run_open_loop(&quick_cfg(0.005));
        assert!(!r.saturated(), "0.005 flits/cycle/node must be below saturation");
        // Zero-load-ish: a handful of hops at 5 cycles plus serialization.
        assert!(r.avg_latency > 10.0 && r.avg_latency < 80.0, "latency {}", r.avg_latency);
        assert!(r.delivered_fraction > 0.99);
    }

    #[test]
    fn latency_grows_with_load() {
        let lo = run_open_loop(&quick_cfg(0.005));
        let hi = run_open_loop(&quick_cfg(0.05));
        assert!(
            hi.avg_latency > lo.avg_latency,
            "latency must rise with load: {} vs {}",
            lo.avg_latency,
            hi.avg_latency
        );
    }

    #[test]
    fn extreme_load_saturates() {
        let r = run_open_loop(&quick_cfg(0.5));
        assert!(r.saturated(), "0.5 flits/cycle/node is far past many-to-few capacity");
    }

    #[test]
    fn hotspot_pick_respects_fraction() {
        let mcs: Vec<NodeId> = (0..8).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 20_000;
        let mut hot_hits = 0;
        for _ in 0..n {
            let mc = pick_mc(&mcs, TrafficPattern::Hotspot { hot: 2, fraction: 0.2 }, &mut rng);
            if mc == 2 {
                hot_hits += 1;
            }
        }
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "hot fraction {frac}");
    }

    /// Satellite regression: pin the measurement-window boundaries so
    /// inclusive/exclusive semantics can't drift. A packet generated
    /// exactly at `warmup` is measured; one generated exactly at
    /// `warmup + measure` is not.
    #[test]
    fn measurement_window_boundaries_are_pinned() {
        let cfg = quick_cfg(0.01); // warmup 500, measure 1500
        assert!(!cfg.in_measurement_window(cfg.warmup - 1), "last warm-up cycle is unmeasured");
        assert!(cfg.in_measurement_window(cfg.warmup), "first measured cycle is warmup itself");
        assert!(cfg.in_measurement_window(cfg.warmup + cfg.measure - 1), "last measured cycle");
        assert!(
            !cfg.in_measurement_window(cfg.warmup + cfg.measure),
            "a packet generated at warmup + measure belongs to the drain, not the window"
        );
    }

    /// The window helper is the arbiter for a degenerate zero-length
    /// window: nothing is ever measured.
    #[test]
    fn zero_length_window_measures_nothing() {
        let mut cfg = quick_cfg(0.01);
        cfg.measure = 0;
        assert!(!cfg.in_measurement_window(cfg.warmup));
    }

    #[test]
    fn curve_stops_after_saturation() {
        let base = quick_cfg(0.0);
        let rates = [0.01, 0.3, 0.4, 0.5, 0.6];
        let curve = latency_curve(&base, rates);
        assert!(curve.len() < rates.len(), "sweep must stop early once saturated");
    }
}
