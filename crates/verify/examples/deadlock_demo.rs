//! Demonstrates the analyzer catching an unsafe network: the paper's 6x6
//! checkerboard mesh with checkerboard routing, but with the YX->XY phase
//! split removed so both phases share one VC. The two-phase routes can then
//! form a cyclic buffer wait, and `analyze` reports a concrete dependency
//! cycle with the packet populations that realize it.
//!
//! Run with: `cargo run -p tenoc-verify --example deadlock_demo`

use tenoc_noc::{NetworkConfig, VcLayout};
use tenoc_verify::analyze;

fn main() {
    // The shipped configuration: safe.
    let safe = NetworkConfig::checkerboard_mesh(6);
    let report = analyze(&safe);
    println!("{report}\n");
    assert!(report.is_clean());

    // The same fabric with one shared VC per class and no phase split:
    // checkerboard routing's case-2 (YX-then-XY) routes now deadlock.
    let mut unsafe_cfg = NetworkConfig::checkerboard_mesh(6);
    unsafe_cfg.vcs = VcLayout::new(2, 1, false);
    let report = analyze(&unsafe_cfg);
    println!("{report}");
    assert!(!report.is_clean(), "expected a reported dependency cycle");
}
