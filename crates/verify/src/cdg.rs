//! Channel dependency graph (CDG) construction and cycle analysis.
//!
//! Following Dally & Seitz, the resources a wormhole network can deadlock
//! on are its *virtual channels*: one CDG vertex per (directed physical
//! link, VC) pair. A packet holding VC `a` on one link while requesting
//! any VC in the set `B` on the next link contributes the edges
//! `a -> b` for every `b in B`. If every packet eventually reaches an
//! ejection port (a sink outside the graph) and the CDG is acyclic, no
//! cyclic wait can form and the routing function is deadlock-free; if the
//! CDG has a cycle, the routing function *permits* a set of packets whose
//! buffer waits form that cycle.
//!
//! Vertices are identified as `(node * 4 + dir) * total_vcs + vc`, where
//! `dir` indexes the outgoing direction of the link at `node`
//! ([`Direction::index`]). Edges carry a [`Witness`] — the first
//! (src, dst, class, plan) whose traced route introduced the dependency —
//! so a reported cycle names concrete packets that can form it.

use std::collections::{HashMap, HashSet, VecDeque};
use tenoc_noc::routing::VcSet;
use tenoc_noc::{Direction, Mesh, NodeId, PacketClass, Phase};

/// The packet population that introduced a dependency edge. The first
/// witness wins; it is reported when the edge participates in a cycle.
#[derive(Copy, Clone, Debug)]
pub struct Witness {
    /// Source terminal of the witnessing route.
    pub src: NodeId,
    /// Destination terminal of the witnessing route.
    pub dst: NodeId,
    /// Protocol class of the witnessing packet.
    pub class: PacketClass,
    /// Injection-time routing phase of the witnessing packet.
    pub phase: Phase,
    /// Case-2 intermediate of the witnessing plan, if any.
    pub via: Option<NodeId>,
}

impl std::fmt::Display for Witness {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?} {} -> {}", self.class, self.src, self.dst)?;
        write!(f, " [{:?}", self.phase)?;
        if let Some(via) = self.via {
            write!(f, " via {via}")?;
        }
        write!(f, "]")
    }
}

/// A channel dependency graph at virtual-channel granularity.
pub struct Cdg {
    mesh: Mesh,
    total_vcs: usize,
    n_vertices: usize,
    adj: Vec<Vec<u32>>,
    edges: HashSet<(u32, u32)>,
    witnesses: HashMap<(u32, u32), Witness>,
    used: Vec<bool>,
}

impl Cdg {
    /// An empty CDG sized for `mesh` with `total_vcs` VCs per link.
    pub fn new(mesh: &Mesh, total_vcs: u8) -> Self {
        let n_vertices = mesh.len() * 4 * total_vcs as usize;
        Cdg {
            mesh: mesh.clone(),
            total_vcs: total_vcs as usize,
            n_vertices,
            adj: vec![Vec::new(); n_vertices],
            edges: HashSet::new(),
            witnesses: HashMap::new(),
            used: vec![false; n_vertices],
        }
    }

    fn vid(&self, node: NodeId, dir: Direction, vc: u8) -> u32 {
        debug_assert!((vc as usize) < self.total_vcs);
        ((node * 4 + dir.index()) * self.total_vcs + vc as usize) as u32
    }

    /// Marks the (link, VC) resources in `vcs` as reachable by traffic.
    /// Resources no route ever touches are excluded from the vertex count.
    pub fn mark_used(&mut self, node: NodeId, dir: Direction, vcs: VcSet) {
        for vc in vcs.iter() {
            let v = self.vid(node, dir, vc) as usize;
            self.used[v] = true;
        }
    }

    /// Adds the dependency edges from every VC a packet may hold on the
    /// link `(hold_node, hold_dir)` to every VC it may request on the next
    /// link `(want_node, want_dir)`.
    pub fn add_dependency(
        &mut self,
        hold: (NodeId, Direction, VcSet),
        want: (NodeId, Direction, VcSet),
        witness: Witness,
    ) {
        self.mark_used(hold.0, hold.1, hold.2);
        self.mark_used(want.0, want.1, want.2);
        for hvc in hold.2.iter() {
            let from = self.vid(hold.0, hold.1, hvc);
            for wvc in want.2.iter() {
                let to = self.vid(want.0, want.1, wvc);
                if self.edges.insert((from, to)) {
                    self.adj[from as usize].push(to);
                    self.witnesses.insert((from, to), witness);
                }
            }
        }
    }

    /// Number of (link, VC) resources reachable by at least one route.
    pub fn vertex_count(&self) -> usize {
        self.used.iter().filter(|&&u| u).count()
    }

    /// Number of distinct dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Human-readable name of a vertex: `(x,y)->(x',y') vc<n>`. The target
    /// comes from the topology's own `neighbor` function, so a torus wrap
    /// link reads `(k-1,y)->(0,y)` rather than a phantom off-grid node.
    pub fn describe_vertex(&self, v: u32) -> String {
        let v = v as usize;
        let vc = v % self.total_vcs;
        let rest = v / self.total_vcs;
        let dir = Direction::from_index(rest % 4);
        let node = rest / 4;
        let from = self.mesh.coord(node);
        let (tx, ty) = match self.mesh.neighbor(node, dir) {
            Some(n) => {
                let c = self.mesh.coord(n);
                (c.x as i32, c.y as i32)
            }
            // Off-grid mesh edges keep the historical arithmetic naming.
            None => match dir {
                Direction::North => (from.x as i32, from.y as i32 - 1),
                Direction::East => (from.x as i32 + 1, from.y as i32),
                Direction::South => (from.x as i32, from.y as i32 + 1),
                Direction::West => (from.x as i32 - 1, from.y as i32),
            },
        };
        format!("({},{})->({tx},{ty}) vc{vc} [{dir}]", from.x, from.y)
    }

    /// Strongly connected components that contain a cycle (size > 1, or a
    /// single vertex with a self-loop). Iterative Tarjan.
    fn cyclic_sccs(&self) -> Vec<Vec<u32>> {
        const UNVISITED: u32 = u32::MAX;
        let n = self.n_vertices;
        let mut index = vec![UNVISITED; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next = 0u32;
        let mut out = Vec::new();

        for root in 0..n {
            if index[root] != UNVISITED {
                continue;
            }
            let mut work: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&(v, i)) = work.last() {
                if i == 0 {
                    index[v] = next;
                    low[v] = next;
                    next += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if i < self.adj[v].len() {
                    work.last_mut().expect("frame exists").1 += 1;
                    let w = self.adj[v][i] as usize;
                    if index[w] == UNVISITED {
                        work.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("Tarjan stack underflow");
                            on_stack[w] = false;
                            scc.push(w as u32);
                            if w == v {
                                break;
                            }
                        }
                        let self_loop =
                            scc.len() == 1 && self.edges.contains(&(v as u32, v as u32));
                        if scc.len() > 1 || self_loop {
                            out.push(scc);
                        }
                    }
                }
            }
        }
        out
    }

    /// A shortest dependency cycle, if any exists: the vertex sequence
    /// `v0 -> v1 -> ... -> vL-1 (-> v0)` plus the witness of each edge
    /// (including the closing edge). `None` proves the CDG acyclic.
    pub fn shortest_cycle(&self) -> Option<(Vec<u32>, Vec<Witness>)> {
        let mut best: Option<Vec<u32>> = None;
        for scc in self.cyclic_sccs() {
            let members: HashSet<u32> = scc.iter().copied().collect();
            for &start in &scc {
                if let Some(cycle) = self.bfs_cycle(start, &members) {
                    if best.as_ref().is_none_or(|b| cycle.len() < b.len()) {
                        best = Some(cycle);
                    }
                }
            }
        }
        let cycle = best?;
        let witnesses = cycle
            .iter()
            .zip(cycle.iter().cycle().skip(1))
            .map(|(&a, &b)| self.witnesses[&(a, b)])
            .collect();
        Some((cycle, witnesses))
    }

    /// Shortest path `start -> ... -> start` inside `members` (BFS).
    fn bfs_cycle(&self, start: u32, members: &HashSet<u32>) -> Option<Vec<u32>> {
        let mut parent: HashMap<u32, u32> = HashMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(start);
        // `start` itself is intentionally never marked visited, so the
        // first edge back into it closes the cycle.
        while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v as usize] {
                if w == start {
                    let mut path = vec![v];
                    let mut cur = v;
                    while cur != start {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                if members.contains(&w) && !parent.contains_key(&w) {
                    parent.insert(w, v);
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vcs1(first: u8) -> VcSet {
        VcSet::new(first, 1)
    }

    fn witness() -> Witness {
        Witness { src: 0, dst: 1, class: PacketClass::Request, phase: Phase::Xy, via: None }
    }

    #[test]
    fn acyclic_chain_has_no_cycle() {
        let mesh = Mesh::all_full(3);
        let mut g = Cdg::new(&mesh, 2);
        // 0 -E-> 1 -E-> 2: one straight-line dependency.
        g.add_dependency((0, Direction::East, vcs1(0)), (1, Direction::East, vcs1(0)), witness());
        assert_eq!(g.edge_count(), 1);
        assert!(g.shortest_cycle().is_none());
    }

    #[test]
    fn four_edge_ring_is_detected_minimally() {
        let mesh = Mesh::all_full(3);
        let mut g = Cdg::new(&mesh, 1);
        // A clockwise ring through nodes 0,1,4,3 plus a pendant edge that
        // must not appear in the reported cycle.
        let ring = [
            (0, Direction::East),
            (1, Direction::South),
            (4, Direction::West),
            (3, Direction::North),
        ];
        for i in 0..4 {
            g.add_dependency(
                (ring[i].0, ring[i].1, vcs1(0)),
                (ring[(i + 1) % 4].0, ring[(i + 1) % 4].1, vcs1(0)),
                witness(),
            );
        }
        g.add_dependency((6, Direction::East, vcs1(0)), (0, Direction::East, vcs1(0)), witness());
        let (cycle, wits) = g.shortest_cycle().expect("ring must be found");
        assert_eq!(cycle.len(), 4);
        assert_eq!(wits.len(), 4);
        // The pendant vertex (node 6) is not part of the cycle.
        for &v in &cycle {
            assert!(!g.describe_vertex(v).contains("(0,2)"), "{}", g.describe_vertex(v));
        }
    }

    #[test]
    fn vertex_description_names_link_and_vc() {
        let mesh = Mesh::all_full(3);
        let mut g = Cdg::new(&mesh, 2);
        g.mark_used(4, Direction::North, vcs1(1));
        let v = g.vid(4, Direction::North, 1);
        assert_eq!(g.describe_vertex(v), "(1,1)->(1,0) vc1 [N]");
        assert_eq!(g.vertex_count(), 1);
    }
}
