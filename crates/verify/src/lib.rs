//! # tenoc-verify — static verification of tenoc-noc configurations
//!
//! Proves safety properties of a [`NetworkConfig`] *without running the
//! simulator*, by exhaustively enumerating the routing function (every
//! ordered source/destination pair, protocol class and injection plan the
//! production [`plan_injection`](tenoc_noc::routing::plan_injection) can
//! produce) and analyzing the resulting channel dependency graph:
//!
//! * **Routing-deadlock freedom** — the Dally–Seitz channel dependency
//!   graph at virtual-channel granularity is acyclic (Tarjan SCC); a
//!   violation reports a shortest dependency cycle together with the
//!   concrete packets that form it.
//! * **Protocol-deadlock freedom** — request and reply classes own
//!   disjoint VC sets (two-class layouts), or the configuration is
//!   flagged as relying on physically disjoint networks (double-network
//!   slicing, [`analyze_double`]).
//! * **Turn legality and minimality** — no route turns at a half-router
//!   (checked against the router's own
//!   [`connection_allowed`](tenoc_noc::topology::connection_allowed)) and
//!   every route's hop count equals the Manhattan distance, including
//!   checkerboard case-2 routes through an intermediate.
//! * **Routability** — checkerboard pairs are unroutable *exactly* when
//!   both endpoints are full-routers at odd coordinate parity, and no
//!   configured MC placement hits an unroutable pair.
//! * **VC-partition correctness** — the (class, phase) VC sets tile the
//!   physical VCs with no overlap and no waste.
//!
//! The library entry point is [`analyze`]; the `noc-verify` binary (in the
//! root `tenoc` package) applies it to every shipped preset. Debug-build
//! simulations self-verify: [`install_debug_auditor`] hooks the analyzer
//! into [`tenoc_noc::audit`], making `Network::new` panic on any
//! configuration that fails verification (release builds skip this).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdg;
pub mod checks;
pub mod load;
pub mod route;

pub use cdg::{Cdg, Witness};
pub use checks::expected_unroutable;

use std::sync::Mutex;
use tenoc_noc::NetworkConfig;

/// Which property a finding is about.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum CheckKind {
    /// `NetworkConfig::validate` preconditions.
    Config,
    /// Channel-dependency-graph acyclicity.
    RoutingDeadlock,
    /// Request/reply VC disjointness (or physical disjointness).
    ProtocolSeparation,
    /// No turns at half-routers; all hops use allowed connections.
    TurnLegality,
    /// Hop count equals the fabric's shortest-path distance (Manhattan on
    /// the mesh, wrap-aware on the torus) for every route.
    Minimality,
    /// Unroutable pairs match the specification; MC placement safe.
    Routability,
    /// (class, phase) VC sets tile the physical VCs exactly.
    VcPartition,
}

impl CheckKind {
    /// Stable lowercase identifier for reports and filtering.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckKind::Config => "config",
            CheckKind::RoutingDeadlock => "routing-deadlock",
            CheckKind::ProtocolSeparation => "protocol-separation",
            CheckKind::TurnLegality => "turn-legality",
            CheckKind::Minimality => "minimality",
            CheckKind::Routability => "routability",
            CheckKind::VcPartition => "vc-partition",
        }
    }
}

/// Whether a finding breaks the configuration or documents a proof.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Severity {
    /// A property was proven or a caveat is worth knowing; not an error.
    Info,
    /// The configuration is unsafe to simulate.
    Violation,
}

/// One structured result of one check.
#[derive(Clone, Debug)]
pub struct Finding {
    /// The property this finding is about.
    pub check: CheckKind,
    /// Proof note or violation.
    pub severity: Severity,
    /// Human-readable detail (multi-line for cycles and tallies).
    pub message: String,
}

impl Finding {
    /// An informational (proof) finding.
    pub fn info(check: CheckKind, message: String) -> Self {
        Finding { check, severity: Severity::Info, message }
    }

    /// A violation finding.
    pub fn violation(check: CheckKind, message: String) -> Self {
        Finding { check, severity: Severity::Violation, message }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let tag = match self.severity {
            Severity::Info => "info",
            Severity::Violation => "VIOLATION",
        };
        write!(f, "[{tag}] {}: {}", self.check.as_str(), self.message)
    }
}

/// Work accounting for a verification run.
#[derive(Clone, Debug, Default)]
pub struct VerifyStats {
    /// Ordered (src, dst) pairs examined.
    pub pairs: usize,
    /// Pairs for which the routing function returned `UnroutableError`.
    pub unroutable_pairs: usize,
    /// (pair, class, distinct plan) routes walked hop by hop.
    pub plans_traced: usize,
    /// (link, VC) resources reachable by at least one route.
    pub cdg_vertices: usize,
    /// Distinct hold -> request dependencies between those resources.
    pub cdg_edges: usize,
}

/// The result of [`analyze`]: structured findings plus work accounting.
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// What the configuration being analyzed was (for report headers).
    pub subject: String,
    /// All findings, violations first.
    pub findings: Vec<Finding>,
    /// Work accounting.
    pub stats: VerifyStats,
}

impl VerifyReport {
    /// `true` when no finding is a violation.
    pub fn is_clean(&self) -> bool {
        self.violations().next().is_none()
    }

    /// The violation findings only.
    pub fn violations(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity == Severity::Violation)
    }

    /// `true` if some violation concerns the given check.
    pub fn has_violation(&self, check: CheckKind) -> bool {
        self.violations().any(|f| f.check == check)
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n_viol = self.violations().count();
        writeln!(
            f,
            "verify {}: {}",
            self.subject,
            if n_viol == 0 { "CLEAN".to_string() } else { format!("{n_viol} VIOLATION(S)") }
        )?;
        writeln!(
            f,
            "  {} pairs ({} unroutable), {} routes traced, CDG {} vc-channels / {} deps",
            self.stats.pairs,
            self.stats.unroutable_pairs,
            self.stats.plans_traced,
            self.stats.cdg_vertices,
            self.stats.cdg_edges
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Describes a config for report headers: `6x6 checkerboard, Checkerboard
/// routing, 4 VCs (2 classes, phase-split)`.
fn subject_of(cfg: &NetworkConfig) -> String {
    let k = cfg.mesh.radix();
    let half = cfg.mesh.nodes().filter(|&n| cfg.mesh.is_half(n)).count();
    let fabric = match cfg.mesh.fabric() {
        tenoc_noc::Fabric::Mesh => {
            if half > 0 {
                "checkerboard mesh".to_string()
            } else {
                "full-router mesh".to_string()
            }
        }
        tenoc_noc::Fabric::Torus => "torus".to_string(),
        tenoc_noc::Fabric::CMesh { conc } => format!("c-mesh (conc {conc})"),
    };
    format!(
        "{k}x{k} {fabric}, {:?} routing, {} VCs ({} class(es){}{})",
        cfg.routing,
        cfg.vcs.total,
        cfg.vcs.classes,
        if cfg.vcs.split_phases { ", phase-split" } else { "" },
        if cfg.vcs.split_dateline { ", dateline-split" } else { "" },
    )
}

/// Statically verifies one physical network configuration. See the crate
/// docs for the properties checked. Never panics on well-formed meshes;
/// structural problems surface as [`CheckKind::Config`] violations.
pub fn analyze(cfg: &NetworkConfig) -> VerifyReport {
    let mut findings = Vec::new();
    let mut stats = VerifyStats::default();

    if let Err(e) = cfg.validate() {
        findings.push(Finding::violation(CheckKind::Config, e));
        if cfg.mc_nodes.iter().any(|&m| m >= cfg.mesh.len()) {
            // The geometry itself is unusable; nothing further can be
            // proven (or safely enumerated).
            return VerifyReport { subject: subject_of(cfg), findings, stats };
        }
        // Otherwise keep going: the remaining checks demonstrate *which*
        // property the invalid configuration breaks — e.g. the dependency
        // cycle that appears when checkerboard routing lacks phase-split
        // VCs.
    }

    checks::run(cfg, &mut findings, &mut stats);
    findings.sort_by_key(|f| match f.severity {
        Severity::Violation => 0,
        Severity::Info => 1,
    });
    VerifyReport { subject: subject_of(cfg), findings, stats }
}

/// Verifies a configuration used as a channel-sliced **double network**
/// (paper Section IV-C): each protocol class rides its own physical copy
/// of [`NetworkConfig::slice`]. The slice is analyzed like any single
/// network; protocol separation additionally holds by physical
/// disjointness, which is recorded as an info finding.
pub fn analyze_double(cfg: &NetworkConfig) -> VerifyReport {
    if !cfg.channel_bytes.is_multiple_of(2) {
        return VerifyReport {
            subject: format!("double network of [{}]", subject_of(cfg)),
            findings: vec![Finding::violation(
                CheckKind::Config,
                format!("cannot channel-slice an odd channel width ({} B)", cfg.channel_bytes),
            )],
            stats: VerifyStats::default(),
        };
    }
    let mut report = analyze(&cfg.slice());
    report.subject = format!("double network, per-slice [{}]", report.subject);
    report.findings.push(Finding::info(
        CheckKind::ProtocolSeparation,
        "double network: requests and replies ride physically disjoint slices, so \
         protocol-deadlock freedom holds regardless of the per-slice VC layout"
            .to_string(),
    ));
    report
}

/// Auditor installed into `tenoc_noc::audit`: memoized [`analyze`].
///
/// `NetworkConfig` is `PartialEq` but not `Hash`, and simulations build
/// the same handful of configurations over and over, so a small linear
/// memo is both simple and sufficient.
fn audit_config(cfg: &NetworkConfig) -> Result<(), String> {
    type Memo = Vec<(NetworkConfig, Result<(), String>)>;
    static MEMO: Mutex<Memo> = Mutex::new(Vec::new());
    let mut memo = MEMO.lock().expect("auditor memo poisoned");
    if let Some((_, cached)) = memo.iter().find(|(c, _)| c == cfg) {
        return cached.clone();
    }
    let report = analyze(cfg);
    let result = if report.is_clean() { Ok(()) } else { Err(report.to_string()) };
    if memo.len() >= 64 {
        memo.clear();
    }
    memo.push((cfg.clone(), result.clone()));
    result
}

/// Installs the static analyzer as the process-global debug auditor: from
/// then on, every `Network::new` in a debug build statically verifies its
/// configuration before simulating it (and panics with the report if
/// verification fails). Idempotent; returns `false` if an auditor was
/// already installed.
pub fn install_debug_auditor() -> bool {
    tenoc_noc::audit::install_auditor(audit_config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tenoc_noc::{RoutingKind, VcLayout};

    #[test]
    fn baseline_mesh_is_clean() {
        let report = analyze(&NetworkConfig::baseline_mesh(6));
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.stats.pairs, 36 * 35);
        assert_eq!(report.stats.unroutable_pairs, 0);
    }

    #[test]
    fn checkerboard_mesh_is_clean() {
        let report = analyze(&NetworkConfig::checkerboard_mesh(6));
        assert!(report.is_clean(), "{report}");
        assert!(report.stats.unroutable_pairs > 0, "odd-parity pairs must exist");
    }

    #[test]
    fn checkerboard_double_network_is_clean() {
        let report = analyze_double(&NetworkConfig::checkerboard_mesh(6));
        assert!(report.is_clean(), "{report}");
    }

    /// The acceptance case: checkerboard routing with one VC per class and
    /// no phase split must be flagged with a concrete dependency cycle.
    #[test]
    fn checkerboard_without_phase_split_reports_a_cycle() {
        let mut cfg = NetworkConfig::checkerboard_mesh(6);
        cfg.vcs = VcLayout::new(2, 2, false);
        let report = analyze(&cfg);
        assert!(!report.is_clean());
        assert!(report.has_violation(CheckKind::Config), "validate() must also complain");
        assert!(
            report.has_violation(CheckKind::RoutingDeadlock),
            "the CDG must be cyclic: {report}"
        );
        let deadlock = report
            .violations()
            .find(|f| f.check == CheckKind::RoutingDeadlock)
            .expect("deadlock violation present");
        assert!(deadlock.message.contains("cycle of length"), "{}", deadlock.message);
        assert!(deadlock.message.contains("->"), "cycle must list its edges");
    }

    #[test]
    fn baseline_torus_is_clean() {
        let report = analyze(&NetworkConfig::baseline_torus(6));
        assert!(report.is_clean(), "{report}");
        assert!(report.subject.contains("torus"), "{}", report.subject);
        assert!(report.subject.contains("dateline-split"), "{}", report.subject);
        // Wrap links are real channels: 4k^2 of them, each carrying VCs.
        assert!(report.stats.cdg_vertices > 0);
    }

    #[test]
    fn concentrated_mesh_is_clean() {
        let report = analyze(&NetworkConfig::concentrated_mesh(6, 2));
        assert!(report.is_clean(), "{report}");
        assert!(report.subject.contains("c-mesh (conc 2)"), "{}", report.subject);
    }

    /// The torus acceptance case, mirroring the checkerboard-without-
    /// phase-split witness: DOR on a torus without dateline VCs must be
    /// flagged with a concrete CDG cycle that crosses a wraparound link.
    #[test]
    fn torus_without_dateline_reports_a_cycle_crossing_the_wrap_link() {
        let mut cfg = NetworkConfig::baseline_torus(4);
        cfg.vcs = VcLayout::new(4, 2, false); // dateline split dropped
        let report = analyze(&cfg);
        assert!(!report.is_clean());
        assert!(report.has_violation(CheckKind::Config), "validate() must also complain");
        assert!(
            report.has_violation(CheckKind::RoutingDeadlock),
            "the ring CDG must be cyclic: {report}"
        );
        let deadlock = report
            .violations()
            .find(|f| f.check == CheckKind::RoutingDeadlock)
            .expect("deadlock violation present");
        assert!(deadlock.message.contains("cycle of length"), "{}", deadlock.message);
        // The cycle must traverse a wraparound edge: an edge whose source
        // sits on the grid rim and whose target is on the opposite rim.
        let k = 4;
        let rim = (k - 1).to_string();
        let wrap_patterns = [
            // East wrap: (k-1, y) -> (0, y); West wrap: (0, y) -> (k-1, y);
            // South wrap: (x, k-1) -> (x, 0); North wrap: (x, 0) -> (x, k-1).
            (0..k).map(|y| format!("({rim},{y})->(0,{y})")).collect::<Vec<_>>(),
            (0..k).map(|y| format!("(0,{y})->({rim},{y})")).collect(),
            (0..k).map(|x| format!("({x},{rim})->({x},0)")).collect(),
            (0..k).map(|x| format!("({x},0)->({x},{rim})")).collect(),
        ];
        let crosses_wrap =
            wrap_patterns.iter().flatten().any(|p| deadlock.message.contains(p.as_str()));
        assert!(crosses_wrap, "cycle must cross a wraparound link:\n{}", deadlock.message);
    }

    /// A single VC class shared by everything is just as deadlocked.
    #[test]
    fn checkerboard_single_shared_class_reports_a_cycle() {
        let mut cfg = NetworkConfig::checkerboard_mesh(6);
        cfg.vcs = VcLayout::new(2, 1, false);
        let report = analyze(&cfg);
        assert!(report.has_violation(CheckKind::RoutingDeadlock), "{report}");
    }

    /// O1Turn needs its phase split for the same reason.
    #[test]
    fn o1turn_without_phase_split_reports_a_cycle() {
        let mut cfg = NetworkConfig::baseline_mesh(6);
        cfg.routing = RoutingKind::O1Turn;
        cfg.vcs = VcLayout::new(2, 2, false);
        let report = analyze(&cfg);
        assert!(report.has_violation(CheckKind::RoutingDeadlock), "{report}");
    }

    /// O1Turn and ROMM with phase-split VCs verify clean on full meshes.
    #[test]
    fn o1turn_and_romm_with_phase_split_are_clean() {
        for kind in [RoutingKind::O1Turn, RoutingKind::Romm] {
            let mut cfg = NetworkConfig::baseline_mesh(6);
            cfg.routing = kind;
            cfg.vcs = VcLayout::new(4, 2, true);
            let report = analyze(&cfg);
            assert!(report.is_clean(), "{kind:?}: {report}");
        }
    }

    /// DOR-YX is acyclic too (the turn set is restricted the other way).
    #[test]
    fn dor_yx_is_clean() {
        let mut cfg = NetworkConfig::baseline_mesh(4);
        cfg.routing = RoutingKind::DorYx;
        let report = analyze(&cfg);
        assert!(report.is_clean(), "{report}");
    }

    /// An MC placed on a full router of a checkerboard mesh hits
    /// unroutable odd-parity pairs and must be flagged.
    #[test]
    fn mc_on_full_router_flagged_as_unroutable_placement() {
        let mut cfg = NetworkConfig::checkerboard_mesh(6);
        let full = cfg.mesh.nodes().find(|&n| !cfg.mesh.is_half(n)).expect("full router exists");
        cfg.mc_nodes = vec![full];
        let report = analyze(&cfg);
        assert!(report.has_violation(CheckKind::Routability), "{report}");
        assert!(report.violations().any(|f| f.message.contains("MC placement")), "{report}");
    }

    #[test]
    fn structurally_broken_config_reports_config_violation_only() {
        let mut cfg = NetworkConfig::baseline_mesh(4);
        cfg.mc_nodes = vec![999];
        let report = analyze(&cfg);
        assert!(report.has_violation(CheckKind::Config));
        assert_eq!(report.stats.pairs, 0, "no enumeration on unusable geometry");
    }

    #[test]
    fn report_display_is_readable() {
        let report = analyze(&NetworkConfig::baseline_mesh(4));
        let text = report.to_string();
        assert!(text.contains("CLEAN"), "{text}");
        assert!(text.contains("routing-deadlock"), "{text}");
        assert!(text.contains("acyclic"), "{text}");
    }

    #[test]
    fn debug_auditor_accepts_shipped_configs() {
        install_debug_auditor();
        // Building networks must not panic once the auditor is installed
        // (exercises the memoized audit path twice).
        let _ = tenoc_noc::Network::new(NetworkConfig::checkerboard_mesh(6));
        let _ = tenoc_noc::Network::new(NetworkConfig::checkerboard_mesh(6));
        let _ = tenoc_noc::DoubleNetwork::from_single(&NetworkConfig::baseline_mesh(6));
    }

    /// A config that passes `validate()` but fails verification (an MC on
    /// a full router hits unroutable pairs) must be refused by
    /// `Network::new` in debug builds once the auditor is installed.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "failed static verification")]
    fn debug_auditor_rejects_unsafe_config() {
        install_debug_auditor();
        let mut cfg = NetworkConfig::checkerboard_mesh(6);
        let full = cfg.mesh.nodes().find(|&n| !cfg.mesh.is_half(n)).expect("full router");
        cfg.mc_nodes = vec![full];
        assert!(cfg.validate().is_ok(), "must reach the auditor, not validate()");
        let _ = tenoc_noc::Network::new(cfg);
    }
}
