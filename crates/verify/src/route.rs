//! Exhaustive route enumeration shared by the safety checks
//! ([`crate::checks`]) and the static load analyzer ([`crate::load`]).
//!
//! A [`RouteTrace`] is one plan of one `(src, dst, class)` triple walked
//! through the simulator's own [`next_hop`], so everything derived from
//! it — deadlock proofs, channel loads, latency bounds — covers the
//! production routing code by construction rather than a re-derivation.

use tenoc_noc::routing::{next_hop, OutPort, VcSet};
use tenoc_noc::{Direction, Mesh, NodeId, Packet, PacketClass, Phase, RoutingKind, VcLayout};

/// One fully walked route for one plan of one (src, dst, class) triple.
pub struct RouteTrace {
    /// The checkerboard phase the plan was injected with.
    pub phase: Phase,
    /// The case-2 intermediate node, if the plan routes through one.
    pub via: Option<NodeId>,
    /// Nodes visited, `src..=dst` (last only when `ejected`).
    pub nodes: Vec<NodeId>,
    /// `hops[i]` is the direction of the hop `nodes[i] -> nodes[i+1]`.
    pub hops: Vec<Direction>,
    /// `vcsets[i]` is the VC set granted on the link of `hops[i]`.
    pub vcsets: Vec<VcSet>,
    /// Whether the walk reached an ejection decision within the hop cap.
    pub ejected: bool,
}

/// Walks one plan through the production `next_hop`, recording every
/// link-level decision. Never panics: a walk that fails to eject within
/// `4 * mesh.len()` hops is returned truncated with `ejected == false`.
pub fn trace(
    kind: RoutingKind,
    layout: &VcLayout,
    mesh: &Mesh,
    src: NodeId,
    dst: NodeId,
    class: PacketClass,
    plan: (Phase, Option<NodeId>),
) -> RouteTrace {
    let mut hdr = Packet::new(class, src, dst, 8, 0).header;
    hdr.phase = plan.0;
    hdr.via = plan.1;
    let mut t = RouteTrace {
        phase: plan.0,
        via: plan.1,
        nodes: vec![src],
        hops: Vec::new(),
        vcsets: Vec::new(),
        ejected: false,
    };
    let mut node = src;
    for _ in 0..4 * mesh.len() {
        let dec = next_hop(kind, layout, mesh, node, &mut hdr);
        match dec.out {
            OutPort::Eject => {
                t.ejected = true;
                return t;
            }
            OutPort::Dir(d) => {
                let Some(next) = mesh.neighbor(node, d) else {
                    // Route points off the mesh edge; stop here and let
                    // the minimality check report the broken walk.
                    return t;
                };
                t.hops.push(d);
                t.vcsets.push(dec.vcs);
                node = next;
                t.nodes.push(node);
            }
        }
    }
    t
}
