//! Static channel-load and throughput-bound analysis.
//!
//! For a [`NetworkConfig`] plus a [`TrafficMatrix`], this module
//! enumerates the routing function exactly as the safety checks do —
//! every plan [`plan_options`] can produce, walked with the simulator's
//! own `next_hop` — and turns the walks into *performance* facts:
//!
//! * expected per-channel (and per-VC) load under the matrix, in
//!   flits/cycle at unit injection;
//! * the Dally–Towles saturation-throughput upper bound
//!   `theta_sat <= capacity / max_resource_load`, where the resources are
//!   the physical channels (capacity 1 flit/cycle) *and* the terminal
//!   injection/ejection ports (capacity `ports` flits/cycle) — in this
//!   fabric the few MC ejection ports, not the bisection, are usually
//!   the binding resource, which is the paper's central observation;
//! * a zero-load latency lower bound per packet class.
//!
//! Because oblivious routing spreads each packet over its plan set with
//! known probabilities, the expected loads are exact (not sampled), and
//! the bound is sound: no schedule can sustain more than capacity on the
//! busiest resource. The bound is loose exactly where real networks lose
//! throughput to coupling — finite VC buffering, switch-allocation
//! conflicts and protocol coupling between requests and replies — so
//! measured accepted throughput always sits at or below it.

use crate::route::trace;
use serde::{Deserialize, Serialize};
use tenoc_noc::routing::plan_options;
use tenoc_noc::telemetry::dir_label;
use tenoc_noc::{Coord, NetworkConfig, NodeId, Packet, PacketClass};

/// The traffic matrices the analyzer understands.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum TrafficMatrix {
    /// Every node sends single-flit packets to every other node with
    /// equal probability (total unit rate per source).
    Uniform,
    /// Node `(x, y)` sends single-flit packets to node `(y, x)` at unit
    /// rate (self-pairs on the diagonal send nothing).
    Transpose,
    /// The paper's many-to-few-to-many pattern derived from the
    /// configured MC placement: each compute node sends 8-byte read
    /// requests at unit rate to a uniformly random MC, and each request
    /// produces a 64-byte read reply — the same traffic
    /// `tenoc_noc::openloop` generates, so the bound is directly
    /// comparable to [`tenoc_noc::openloop::OpenLoopResult::accepted`].
    ManyToFew,
}

impl TrafficMatrix {
    /// All matrices, in declaration order.
    pub const ALL: [TrafficMatrix; 3] =
        [TrafficMatrix::Uniform, TrafficMatrix::Transpose, TrafficMatrix::ManyToFew];

    /// Stable lowercase label used in reports and CLI flags.
    pub fn label(&self) -> &'static str {
        match self {
            TrafficMatrix::Uniform => "uniform",
            TrafficMatrix::Transpose => "transpose",
            TrafficMatrix::ManyToFew => "many-to-few",
        }
    }
}

/// One source→destination flow of the traffic matrix: `rate` packets per
/// cycle of `size_bytes` payload at unit injection scale.
#[derive(Clone, Debug, PartialEq)]
pub struct Demand {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Protocol class the flow rides.
    pub class: PacketClass,
    /// Packets per cycle at unit injection scale.
    pub rate: f64,
    /// Payload size; flit count follows from the channel width.
    pub size_bytes: u32,
}

/// Expands a matrix into its demand list for a configuration. Rates are
/// normalized so one unit of injection scale means one packet per cycle
/// per source node ([`TrafficMatrix::ManyToFew`]: per *compute* node, the
/// open-loop harness's `injection_rate` convention).
pub fn demands(matrix: TrafficMatrix, cfg: &NetworkConfig) -> Vec<Demand> {
    let mesh = &cfg.mesh;
    let one_flit = cfg.channel_bytes;
    let mut out = Vec::new();
    match matrix {
        TrafficMatrix::Uniform => {
            let others = (mesh.len() - 1).max(1) as f64;
            for src in mesh.nodes() {
                for dst in mesh.nodes() {
                    if src != dst {
                        out.push(Demand {
                            src,
                            dst,
                            class: PacketClass::Request,
                            rate: 1.0 / others,
                            size_bytes: one_flit,
                        });
                    }
                }
            }
        }
        TrafficMatrix::Transpose => {
            for src in mesh.nodes() {
                let c = mesh.coord(src);
                let dst = mesh.node(Coord::new(c.y, c.x));
                if src != dst {
                    out.push(Demand {
                        src,
                        dst,
                        class: PacketClass::Request,
                        rate: 1.0,
                        size_bytes: one_flit,
                    });
                }
            }
        }
        TrafficMatrix::ManyToFew => {
            let mcs = &cfg.mc_nodes;
            let share = 1.0 / mcs.len().max(1) as f64;
            for src in cfg.compute_nodes() {
                for &mc in mcs {
                    out.push(Demand {
                        src,
                        dst: mc,
                        class: PacketClass::Request,
                        rate: share,
                        size_bytes: 8,
                    });
                    out.push(Demand {
                        src: mc,
                        dst: src,
                        class: PacketClass::Reply,
                        rate: share,
                        size_bytes: 64,
                    });
                }
            }
        }
    }
    out
}

/// Expected traffic on one directed physical channel.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChannelLoad {
    /// Source node of the channel.
    pub node: u64,
    /// Source column.
    pub x: u16,
    /// Source row.
    pub y: u16,
    /// Channel direction (`N`/`E`/`S`/`W`), matching
    /// [`tenoc_noc::telemetry::LinkRecord::dir`].
    pub dir: String,
    /// Expected flits/cycle at unit injection scale.
    pub load: f64,
    /// Expected flits/cycle per VC (plans spread uniformly over the VC
    /// set granted on the link).
    pub vc_loads: Vec<f64>,
}

/// Zero-load latency bounds for one packet class.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClassZeroLoad {
    /// Class label (`request` / `reply`).
    pub class: String,
    /// Rate-weighted mean over the matrix's demands of the per-demand
    /// best-plan latency.
    pub mean: f64,
    /// Minimum over demands — the fastest any packet of the class can
    /// traverse the fabric.
    pub min: f64,
}

/// The static load analysis of one physical network under one matrix.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Human-readable configuration summary (same as the verify report).
    pub subject: String,
    /// Matrix label (`uniform` / `transpose` / `many-to-few`).
    pub matrix: String,
    /// Every directed channel's expected load, in node-major order —
    /// index-compatible with [`tenoc_noc::Network::link_loads`] and the
    /// telemetry link records.
    pub channels: Vec<ChannelLoad>,
    /// Per-node injection-terminal load, normalized by the node's
    /// injection port count (1.0 = terminal saturated), node order.
    pub inject_loads: Vec<f64>,
    /// Per-node ejection-terminal load, normalized likewise.
    pub eject_loads: Vec<f64>,
    /// The largest normalized resource load at unit injection scale.
    pub max_load: f64,
    /// Which resource is binding, e.g. `channel 14 W` or
    /// `eject terminal at node 28`.
    pub bottleneck: String,
    /// Saturation-throughput upper bound: the injection scale (packets
    /// per cycle per source node, see [`demands`]) at which the binding
    /// resource reaches capacity. `0.0` for an empty matrix.
    pub saturation_rate: f64,
    /// The bound converted to the open-loop harness's unit: ejected
    /// flits per cycle per node (all nodes, both classes) at
    /// `saturation_rate` — directly comparable to
    /// [`tenoc_noc::openloop::OpenLoopResult::accepted`].
    pub accepted_bound: f64,
    /// Zero-load latency bounds per class present in the matrix.
    pub zero_load: Vec<ClassZeroLoad>,
    /// Flows in the matrix.
    pub demands_total: usize,
    /// Flows skipped because the routing function cannot deliver them
    /// (checkerboard full-to-full odd-parity pairs under [`Uniform`];
    /// zero for any matrix a legal configuration is actually run with).
    ///
    /// [`Uniform`]: TrafficMatrix::Uniform
    pub demands_unroutable: usize,
}

impl LoadReport {
    /// The channels whose load ties the maximum channel load within
    /// `eps` (relative), hottest argmax set for comparison against a
    /// telemetry heatmap. Empty only when the report has no channels.
    pub fn hottest_channels(&self, eps: f64) -> Vec<&ChannelLoad> {
        let max = self.channels.iter().map(|c| c.load).fold(0.0_f64, f64::max);
        if max <= 0.0 {
            return Vec::new();
        }
        self.channels.iter().filter(|c| c.load >= max * (1.0 - eps)).collect()
    }

    /// The maximum expected load over channels only (excluding
    /// terminals), in flits/cycle at unit injection scale.
    pub fn max_channel_load(&self) -> f64 {
        self.channels.iter().map(|c| c.load).fold(0.0_f64, f64::max)
    }
}

/// Router pipeline depth of `node` under `cfg` (half-routers are
/// shallower).
fn stages(cfg: &NetworkConfig, node: NodeId) -> u64 {
    if cfg.mesh.is_half(node) {
        u64::from(cfg.half_router_stages)
    } else {
        u64::from(cfg.router_stages)
    }
}

/// Analyzes one physical network under one traffic matrix.
///
/// The enumeration never panics on unroutable pairs — they are counted
/// in [`LoadReport::demands_unroutable`] and excluded from the loads —
/// but the configuration's geometry must be usable (MC nodes inside the
/// mesh), which [`crate::analyze`] checks first.
pub fn analyze_load(cfg: &NetworkConfig, matrix: TrafficMatrix) -> LoadReport {
    analyze_load_demands(cfg, matrix.label().to_string(), demands(matrix, cfg))
}

/// The enumeration core: analyzes an explicit demand list (callers
/// normally go through [`analyze_load`]; the double-network path filters
/// the demand list by class first).
pub fn analyze_load_demands(
    cfg: &NetworkConfig,
    matrix_label: String,
    flows: Vec<Demand>,
) -> LoadReport {
    let mesh = &cfg.mesh;
    let n = mesh.len();
    let total_vcs = cfg.vcs.total as usize;

    // Dense per-(node, dir) accumulators; only real channels are emitted.
    let mut chan = vec![0.0_f64; n * 4];
    let mut vc_chan = vec![0.0_f64; n * 4 * total_vcs];
    let mut inject = vec![0.0_f64; n];
    let mut eject = vec![0.0_f64; n];

    let mut unroutable = 0usize;
    let mut flit_rate_total = 0.0_f64;
    // Per class: (weighted latency sum, rate sum, min latency).
    let mut lat: [(f64, f64, f64); 2] = [(0.0, 0.0, f64::INFINITY); 2];

    for d in &flows {
        let flits = f64::from(
            Packet::new(d.class, d.src, d.dst, d.size_bytes, 0).flits_at_width(cfg.channel_bytes),
        );
        let Ok(plans) = plan_options(cfg.routing, mesh, d.src, d.dst) else {
            unroutable += 1;
            continue;
        };
        let share = d.rate / plans.len() as f64;
        let mut best_lat = u64::MAX;
        let mut delivered = false;
        for &plan in &plans {
            let t = trace(cfg.routing, &cfg.vcs, mesh, d.src, d.dst, d.class, plan);
            if !t.ejected {
                continue;
            }
            delivered = true;
            // Full pipeline plus link traversal at every router the
            // packet *leaves*; at the destination only route computation
            // and switch traversal precede ejection (VC/switch
            // allocation are pre-ejection stages the eject path skips);
            // plus head-to-tail serialization of a multi-flit packet.
            // Calibrated cycle-exact against single-packet simulations
            // on 1-, 3- and 4-stage routers.
            let mut l: u64 = t.hops.len() as u64 * u64::from(cfg.link_latency);
            for &node in &t.nodes[..t.hops.len()] {
                l += stages(cfg, node);
            }
            let dst_t = cfg.timing(d.dst);
            l += dst_t.rc_delay + dst_t.st_delay;
            l += flits as u64 - 1;
            best_lat = best_lat.min(l);
            for (i, &dir) in t.hops.iter().enumerate() {
                let slot = t.nodes[i] * 4 + dir as usize;
                chan[slot] += share * flits;
                let set = t.vcsets[i];
                let per_vc = share * flits / f64::from(set.count.max(1));
                for vc in set.iter() {
                    vc_chan[slot * total_vcs + vc as usize] += per_vc;
                }
            }
        }
        if !delivered {
            unroutable += 1;
            continue;
        }
        inject[d.src] += d.rate * flits;
        eject[d.dst] += d.rate * flits;
        flit_rate_total += d.rate * flits;
        let c = d.class as usize;
        let bl = best_lat as f64;
        lat[c].0 += d.rate * bl;
        lat[c].1 += d.rate;
        lat[c].2 = lat[c].2.min(bl);
    }

    let ports = |node: NodeId, counts: (usize, usize)| -> f64 {
        if cfg.mc_nodes.contains(&node) {
            counts.0 as f64
        } else {
            counts.1 as f64
        }
    };

    let mut channels = Vec::new();
    let mut max_load = 0.0_f64;
    let mut bottleneck = String::from("none");
    for (node, dir) in mesh.links() {
        let slot = node * 4 + dir as usize;
        let load = chan[slot];
        let c = mesh.coord(node);
        channels.push(ChannelLoad {
            node: node as u64,
            x: c.x,
            y: c.y,
            dir: dir_label(dir).to_string(),
            load,
            vc_loads: vc_chan[slot * total_vcs..(slot + 1) * total_vcs].to_vec(),
        });
        if load > max_load {
            max_load = load;
            bottleneck = format!("channel {node} {}", dir_label(dir));
        }
    }
    let mut inject_loads = Vec::with_capacity(n);
    let mut eject_loads = Vec::with_capacity(n);
    for node in mesh.nodes() {
        let inj = inject[node] / ports(node, (cfg.mc_inject_ports, cfg.core_inject_ports));
        let ej = eject[node] / ports(node, (cfg.mc_eject_ports, cfg.core_eject_ports));
        if inj > max_load {
            max_load = inj;
            bottleneck = format!("inject terminal at node {node}");
        }
        if ej > max_load {
            max_load = ej;
            bottleneck = format!("eject terminal at node {node}");
        }
        inject_loads.push(inj);
        eject_loads.push(ej);
    }

    let saturation_rate = if max_load > 0.0 { 1.0 / max_load } else { 0.0 };
    let accepted_bound = saturation_rate * flit_rate_total / n as f64;

    let mut zero_load = Vec::new();
    for class in [PacketClass::Request, PacketClass::Reply] {
        let (sum, rate, min) = lat[class as usize];
        if rate > 0.0 {
            zero_load.push(ClassZeroLoad {
                class: match class {
                    PacketClass::Request => "request".to_string(),
                    PacketClass::Reply => "reply".to_string(),
                },
                mean: sum / rate,
                min,
            });
        }
    }

    LoadReport {
        subject: crate::subject_of(cfg),
        matrix: matrix_label,
        channels,
        inject_loads,
        eject_loads,
        max_load,
        bottleneck,
        saturation_rate,
        accepted_bound,
        zero_load,
        demands_total: flows.len(),
        demands_unroutable: unroutable,
    }
}

/// The static load analysis of a channel-sliced double network: requests
/// ride one half-width slice, replies the other.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DoubleLoadReport {
    /// Analysis of the request slice (request demands only).
    pub request: LoadReport,
    /// Analysis of the reply slice (reply demands only).
    pub reply: LoadReport,
    /// Combined saturation bound: the injection scale at which the first
    /// of the two slices saturates.
    pub saturation_rate: f64,
    /// Combined accepted-throughput bound in ejected flits per cycle per
    /// node, summing both slices at the combined saturation scale.
    pub accepted_bound: f64,
}

/// Analyzes a double (channel-sliced) network under one matrix. Each
/// slice is analyzed as its own half-width physical network carrying only
/// its class's demands; matrices with one class leave the reply slice
/// idle.
///
/// # Panics
///
/// Panics if `cfg.channel_bytes` is odd (cannot be sliced); gate on
/// [`crate::analyze_double`] first.
pub fn analyze_load_double(cfg: &NetworkConfig, matrix: TrafficMatrix) -> DoubleLoadReport {
    let sliced = cfg.slice();
    let request = analyze_class_slice(&sliced, cfg, matrix, PacketClass::Request);
    let reply = analyze_class_slice(&sliced, cfg, matrix, PacketClass::Reply);
    let mut saturation_rate = f64::INFINITY;
    for slice in [&request, &reply] {
        if slice.max_load > 0.0 {
            saturation_rate = saturation_rate.min(slice.saturation_rate);
        }
    }
    if saturation_rate == f64::INFINITY {
        saturation_rate = 0.0;
    }
    let n = cfg.mesh.len() as f64;
    // Recover each slice's total flit rate from its own bound, then
    // re-scale both to the combined saturation point.
    let flit_rate = |r: &LoadReport| {
        if r.saturation_rate > 0.0 {
            r.accepted_bound * n / r.saturation_rate
        } else {
            0.0
        }
    };
    let accepted_bound = saturation_rate * (flit_rate(&request) + flit_rate(&reply)) / n;
    DoubleLoadReport { request, reply, saturation_rate, accepted_bound }
}

/// Analyzes one class's slice of a double network: the sliced physical
/// config carries only `class`'s share of `matrix`'s demands.
fn analyze_class_slice(
    sliced: &NetworkConfig,
    orig: &NetworkConfig,
    matrix: TrafficMatrix,
    class: PacketClass,
) -> LoadReport {
    // The demand expansion only depends on mesh and MC placement, which
    // the slice shares with the original — so expand on the slice and
    // keep this class's flows.
    let flows = demands(matrix, sliced).into_iter().filter(|d| d.class == class).collect();
    let mut report = analyze_load_demands(
        sliced,
        format!("{} ({} slice)", matrix.label(), class_label(class)),
        flows,
    );
    report.subject = format!("{} slice of [{}]", class_label(class), crate::subject_of(orig));
    report
}

fn class_label(class: PacketClass) -> &'static str {
    match class {
        PacketClass::Request => "request",
        PacketClass::Reply => "reply",
    }
}
