//! The individual static checks run by [`crate::analyze`].
//!
//! All checks share one exhaustive enumeration of the routing function:
//! for every ordered (src, dst) pair, every protocol class and every plan
//! in [`plan_options`] (the complete set of outcomes `plan_injection` can
//! produce), the route is walked with the simulator's own [`next_hop`].
//! Because the walk reuses the production routing code, the proofs cover
//! the simulator's behavior by construction rather than a re-derivation
//! of it.

use crate::cdg::{Cdg, Witness};
use crate::route::{trace, RouteTrace};
use crate::{CheckKind, Finding, VerifyStats};
use tenoc_noc::routing::{plan_options, vc_set_for, VcSet};
use tenoc_noc::topology::{connection_allowed, InPort, OutPortKind};
use tenoc_noc::{Mesh, NetworkConfig, NodeId, PacketClass, Phase, RoutingKind};

/// The independent routability specification for checkerboard meshes: a
/// pair is unroutable exactly when both endpoints are full-routers, they
/// share neither row nor column, and the XY turn node `(d.x, s.y)` has
/// odd parity (for full-to-full pairs the YX turn node then has odd
/// parity too, so every minimal turn lands on a half-router).
pub fn expected_unroutable(mesh: &Mesh, src: NodeId, dst: NodeId) -> bool {
    let s = mesh.coord(src);
    let d = mesh.coord(dst);
    !mesh.is_half(src)
        && !mesh.is_half(dst)
        && !s.same_row(d)
        && !s.same_col(d)
        && (d.x + s.y) % 2 == 1
}

/// Caps the number of per-pair violation messages so a systematically
/// broken configuration produces a readable report.
const MAX_DETAILS: usize = 8;

struct Tally {
    violations: Vec<String>,
    total: usize,
}

impl Tally {
    fn new() -> Self {
        Tally { violations: Vec::new(), total: 0 }
    }

    fn push(&mut self, msg: String) {
        self.total += 1;
        if self.violations.len() < MAX_DETAILS {
            self.violations.push(msg);
        }
    }

    fn into_finding(self, check: CheckKind, ok_msg: String, findings: &mut Vec<Finding>) {
        if self.total == 0 {
            findings.push(Finding::info(check, ok_msg));
        } else {
            let mut msg = format!("{} violation(s):", self.total);
            for v in &self.violations {
                msg.push_str("\n    ");
                msg.push_str(v);
            }
            if self.total > self.violations.len() {
                msg.push_str(&format!("\n    ... and {} more", self.total - self.violations.len()));
            }
            findings.push(Finding::violation(check, msg));
        }
    }
}

/// Runs routability, turn-legality, minimality, routing-deadlock,
/// VC-partition and protocol-separation checks, appending one finding per
/// check (info when proven, violation with details otherwise).
pub fn run(cfg: &NetworkConfig, findings: &mut Vec<Finding>, stats: &mut VerifyStats) {
    let mesh = &cfg.mesh;
    let layout = &cfg.vcs;
    let kind = cfg.routing;
    let classes: &[PacketClass] =
        if layout.classes == 2 { &PacketClass::ALL } else { &[PacketClass::Request] };

    let mut cdg = Cdg::new(mesh, layout.total);
    let mut routability = Tally::new();
    let mut turns = Tally::new();
    let mut minimality = Tally::new();

    for src in mesh.nodes() {
        for dst in mesh.nodes() {
            if src == dst {
                continue;
            }
            stats.pairs += 1;
            let options = match plan_options(kind, mesh, src, dst) {
                Ok(o) => o,
                Err(_) => {
                    stats.unroutable_pairs += 1;
                    let expected =
                        kind == RoutingKind::Checkerboard && expected_unroutable(mesh, src, dst);
                    if !expected {
                        routability.push(format!(
                            "{src} -> {dst} unroutable but not a full-to-full odd-parity \
                             checkerboard pair"
                        ));
                    }
                    continue;
                }
            };
            if kind == RoutingKind::Checkerboard && expected_unroutable(mesh, src, dst) {
                routability.push(format!(
                    "{src} -> {dst} routable but the checkerboard specification says it must \
                     not be"
                ));
            }
            // Dedup: repeated options only carry probability weight.
            let mut plans: Vec<(Phase, Option<NodeId>)> = Vec::new();
            for p in options {
                if !plans.contains(&p) {
                    plans.push(p);
                }
            }
            for &plan in &plans {
                for &class in classes {
                    stats.plans_traced += 1;
                    let t = trace(kind, layout, mesh, src, dst, class, plan);
                    check_route(cfg, &t, src, dst, class, &mut turns, &mut minimality);
                    feed_cdg(&mut cdg, &t, src, dst, class);
                }
            }
        }
    }

    check_mc_reachability(cfg, &mut routability);

    stats.cdg_vertices = cdg.vertex_count();
    stats.cdg_edges = cdg.edge_count();

    let routable = stats.pairs - stats.unroutable_pairs;
    routability.into_finding(
        CheckKind::Routability,
        if kind == RoutingKind::Checkerboard {
            format!(
                "{routable}/{} ordered pairs routable; all {} unroutable pairs match the \
                 full-to-full odd-parity predicate exactly; every MC <-> node pair routable",
                stats.pairs, stats.unroutable_pairs
            )
        } else {
            format!("all {} ordered pairs routable", stats.pairs)
        },
        findings,
    );
    turns.into_finding(
        CheckKind::TurnLegality,
        "no route turns at a half-router and every hop uses an allowed router connection"
            .to_string(),
        findings,
    );
    minimality.into_finding(
        CheckKind::Minimality,
        format!(
            "all {} traced routes are minimal (hop count == shortest-path distance)",
            stats.plans_traced
        ),
        findings,
    );

    match cdg.shortest_cycle() {
        None => findings.push(Finding::info(
            CheckKind::RoutingDeadlock,
            format!(
                "channel dependency graph is acyclic ({} vc-channels, {} dependencies): \
                 routing-deadlock-free",
                stats.cdg_vertices, stats.cdg_edges
            ),
        )),
        Some((cycle, witnesses)) => {
            let mut msg = format!(
                "channel dependency graph has a cycle of length {} (of {} vc-channels, {} \
                 dependencies); a deadlocked packet set:",
                cycle.len(),
                stats.cdg_vertices,
                stats.cdg_edges
            );
            for (i, &v) in cycle.iter().enumerate() {
                let next = cycle[(i + 1) % cycle.len()];
                msg.push_str(&format!(
                    "\n    {} -> {}  (held/requested by {})",
                    cdg.describe_vertex(v),
                    cdg.describe_vertex(next),
                    witnesses[i]
                ));
            }
            findings.push(Finding::violation(CheckKind::RoutingDeadlock, msg));
        }
    }

    check_vc_partition(cfg, findings);
    check_protocol_separation(cfg, findings);
}

/// Per-route checks: turn legality at every intermediate router, and
/// minimality — the walk must eject at its destination after exactly
/// Manhattan-distance hops.
fn check_route(
    cfg: &NetworkConfig,
    t: &RouteTrace,
    src: NodeId,
    dst: NodeId,
    class: PacketClass,
    turns: &mut Tally,
    minimality: &mut Tally,
) {
    let mesh = &cfg.mesh;
    let label = || {
        let via = t.via.map(|v| format!(" via {v}")).unwrap_or_default();
        format!("{class:?} {src} -> {dst} [{:?}{via}]", t.phase)
    };

    if !t.ejected {
        minimality.push(format!("{} never reaches an ejection decision", label()));
        return;
    }
    if *t.nodes.last().expect("trace has nodes") != dst {
        minimality.push(format!(
            "{} ejects at node {} instead of its destination",
            label(),
            t.nodes.last().expect("trace has nodes")
        ));
        return;
    }
    let dist = mesh.distance(src, dst);
    if t.hops.len() as u32 != dist {
        minimality.push(format!(
            "{} takes {} hops, shortest-path distance is {dist}",
            label(),
            t.hops.len()
        ));
    }

    // Hop i enters nodes[i+1] from direction hops[i] (so through input
    // port hops[i].opposite()) and leaves through hops[i+1]; the final
    // decision at the destination is an ejection, which is always allowed.
    for i in 0..t.hops.len().saturating_sub(1) {
        let router = t.nodes[i + 1];
        let inp = InPort::Dir(t.hops[i].opposite());
        let out = OutPortKind::Dir(t.hops[i + 1]);
        if !connection_allowed(mesh.kind(router), inp, out) {
            turns.push(format!(
                "{} turns {:?} -> {:?} at {} router {router}",
                label(),
                t.hops[i],
                t.hops[i + 1],
                if mesh.is_half(router) { "half" } else { "full" }
            ));
        }
    }
}

/// Adds the route's dependencies to the CDG: the packet may hold any
/// granted VC on link `i` while requesting the VCs granted on link
/// `i + 1`. Injection sources and ejection sinks terminate chains, so
/// they contribute no edges (only vertex usage).
fn feed_cdg(cdg: &mut Cdg, t: &RouteTrace, src: NodeId, dst: NodeId, class: PacketClass) {
    let witness = Witness { src, dst, class, phase: t.phase, via: t.via };
    for i in 0..t.hops.len() {
        cdg.mark_used(t.nodes[i], t.hops[i], t.vcsets[i]);
        if i + 1 < t.hops.len() {
            cdg.add_dependency(
                (t.nodes[i], t.hops[i], t.vcsets[i]),
                (t.nodes[i + 1], t.hops[i + 1], t.vcsets[i + 1]),
                witness,
            );
        }
    }
}

/// Every configured MC must be able to exchange traffic with every other
/// node in both directions — the paper's placement rule (MCs and L2 banks
/// on half-routers) exists precisely to avoid unroutable pairs.
fn check_mc_reachability(cfg: &NetworkConfig, routability: &mut Tally) {
    for &mc in &cfg.mc_nodes {
        for node in cfg.mesh.nodes() {
            if node == mc {
                continue;
            }
            for (a, b) in [(node, mc), (mc, node)] {
                if plan_options(cfg.routing, &cfg.mesh, a, b).is_err() {
                    routability.push(format!(
                        "MC placement broken: {a} -> {b} unroutable (MC at node {mc})"
                    ));
                }
            }
        }
    }
}

/// The (class, phase) VC sets the routing function hands out — further
/// split into pre-/post-dateline halves on a torus — must tile the
/// physical VCs exactly: no overlap between distinct sets (overlap
/// re-couples traffic the layout claims to isolate) and no unused VC
/// (dead buffering the area model would still pay for).
fn check_vc_partition(cfg: &NetworkConfig, findings: &mut Vec<Finding>) {
    let layout = &cfg.vcs;
    let kind = cfg.routing;
    let classes: &[PacketClass] =
        if layout.classes == 2 { &PacketClass::ALL } else { &[PacketClass::Request] };
    let phases: &[Phase] =
        if kind.needs_phase_split() { &[Phase::Xy, Phase::Yx] } else { &[Phase::Xy] };

    let mut sets: Vec<(String, VcSet)> = Vec::new();
    for &class in classes {
        for &phase in phases {
            if layout.split_dateline {
                for crossed in [false, true] {
                    let set = layout.dateline_set(class, phase, crossed);
                    let tag = if crossed { "post-dateline" } else { "pre-dateline" };
                    if !sets.iter().any(|(_, s)| *s == set) {
                        sets.push((format!("({class:?}, {phase:?}, {tag})"), set));
                    }
                }
            } else {
                let set = vc_set_for(kind, layout, class, phase);
                if !sets.iter().any(|(_, s)| *s == set) {
                    sets.push((format!("({class:?}, {phase:?})"), set));
                }
            }
        }
    }

    let mut owners: Vec<Vec<&str>> = vec![Vec::new(); layout.total as usize];
    for (name, set) in &sets {
        for vc in set.iter() {
            if (vc as usize) < owners.len() {
                owners[vc as usize].push(name.as_str());
            } else {
                findings.push(Finding::violation(
                    CheckKind::VcPartition,
                    format!("{name} grants vc{vc}, beyond the {} physical VCs", layout.total),
                ));
                return;
            }
        }
    }

    let mut problems = Vec::new();
    for (vc, who) in owners.iter().enumerate() {
        match who.len() {
            0 => problems.push(format!("vc{vc} is granted to no (class, phase) set")),
            1 => {}
            _ => problems.push(format!(
                "vc{vc} is granted to {} distinct sets: {}",
                who.len(),
                who.join(", ")
            )),
        }
    }
    if problems.is_empty() {
        findings.push(Finding::info(
            CheckKind::VcPartition,
            format!(
                "{} distinct (class, phase) sets tile the {} VCs exactly",
                sets.len(),
                layout.total
            ),
        ));
    } else {
        findings.push(Finding::violation(CheckKind::VcPartition, problems.join("; ")));
    }
}

/// Request/reply protocol deadlock: with a two-class layout the classes
/// must own disjoint VC sets on every link (two logical networks on one
/// fabric). A single-class layout provides no in-network separation —
/// that is only safe when each physical network carries one class, as the
/// channel-sliced double network does, so it is reported as info rather
/// than a violation.
fn check_protocol_separation(cfg: &NetworkConfig, findings: &mut Vec<Finding>) {
    let layout = &cfg.vcs;
    if layout.classes != 2 {
        findings.push(Finding::info(
            CheckKind::ProtocolSeparation,
            "single-class VC layout: request/reply isolation is not provided in-network and \
             must come from physically disjoint networks (double-network slicing)"
                .to_string(),
        ));
        return;
    }
    let phases: &[Phase] =
        if cfg.routing.needs_phase_split() { &[Phase::Xy, Phase::Yx] } else { &[Phase::Xy] };
    let mut overlaps = Vec::new();
    for &pq in phases {
        for &pr in phases {
            let rq = vc_set_for(cfg.routing, layout, PacketClass::Request, pq);
            let rp = vc_set_for(cfg.routing, layout, PacketClass::Reply, pr);
            for vc in rq.iter() {
                if rp.contains(vc) {
                    overlaps
                        .push(format!("vc{vc} serves both Request ({pq:?}) and Reply ({pr:?})"));
                }
            }
        }
    }
    if overlaps.is_empty() {
        findings.push(Finding::info(
            CheckKind::ProtocolSeparation,
            "request and reply classes own disjoint VC sets in every phase: \
             protocol-deadlock-free (two logical networks on one fabric)"
                .to_string(),
        ));
    } else {
        overlaps.truncate(MAX_DETAILS);
        findings.push(Finding::violation(CheckKind::ProtocolSeparation, overlaps.join("; ")));
    }
}
