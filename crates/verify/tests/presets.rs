//! Conformance: every shipped tenoc-core preset verifies clean.
//!
//! This is the library-level counterpart of `noc-verify --all-presets`:
//! if any paper design point permits a routing deadlock, an unroutable
//! MC pair, a half-router turn or a broken VC partition, this test names
//! it and prints the full report.

use tenoc_core::presets::Preset;
use tenoc_core::system::IcntConfig;
use tenoc_verify::{analyze, analyze_double};

#[test]
fn all_presets_verify_clean_at_paper_scale() {
    let mut verified = 0;
    for preset in Preset::NAMED {
        let label = preset.label();
        let report = match preset.icnt(6) {
            IcntConfig::Mesh(c) => analyze(&c),
            IcntConfig::Double(c) => analyze_double(&c),
            // Idealized interconnects have no routed fabric to verify.
            IcntConfig::Perfect(_) | IcntConfig::BwLimited(..) => continue,
        };
        assert!(report.is_clean(), "{label}: {report}");
        assert!(report.stats.plans_traced > 0, "{label}: nothing was traced");
        verified += 1;
    }
    assert!(verified >= 10, "most presets carry a routed network ({verified} verified)");
}

#[test]
fn presets_verify_clean_at_other_radices() {
    for k in [4, 8] {
        for preset in [Preset::BaselineTbDor, Preset::CpCr4vc, Preset::DoubleCpCr] {
            let label = preset.label();
            let report = match preset.icnt(k) {
                IcntConfig::Mesh(c) => analyze(&c),
                IcntConfig::Double(c) => analyze_double(&c),
                IcntConfig::Perfect(_) | IcntConfig::BwLimited(..) => continue,
            };
            assert!(report.is_clean(), "{label} at k={k}: {report}");
        }
    }
}
