//! Property tests of the static load analyzer (ISSUE 6 satellite): for
//! randomly drawn *legal* configurations, the static saturation bound
//! must dominate the throughput the simulator actually sustains, and the
//! static zero-load latency must be a floor on the latency measured at a
//! very low injection rate.
//!
//! Windows are short (the simulator runs in debug mode here), so the
//! throughput comparison uses the same keep-up filter as
//! `tenoc-harness`'s cross-validation: past saturation the delivered
//! traffic mix legitimately drifts away from the analyzed matrix, and
//! only rates the fabric keeps up with witness the bound.

use proptest::prelude::*;
use tenoc_noc::openloop::{run_open_loop, OpenLoopConfig, TrafficPattern};
use tenoc_noc::{NetworkConfig, VcLayout};
use tenoc_verify::load::{analyze_load, TrafficMatrix};

/// A randomly drawn legal configuration: baseline full-router mesh (DOR
/// with 2 or 4 VCs) or checkerboard mesh (checkerboard routing,
/// phase-split 4 or 8 VCs), with varied MC terminal ports, buffer depth
/// and router pipeline depth.
fn draw_config(
    checkerboard: bool,
    wide_vcs: bool,
    mc_ports: usize,
    vc_depth: usize,
    fast_routers: bool,
) -> NetworkConfig {
    let mut cfg = if checkerboard {
        let mut c = NetworkConfig::checkerboard_mesh(6);
        c.vcs = VcLayout::new(if wide_vcs { 8 } else { 4 }, 2, true);
        c
    } else {
        let mut c = NetworkConfig::baseline_mesh(6);
        c.vcs = VcLayout::new(if wide_vcs { 4 } else { 2 }, 2, false);
        c
    };
    cfg.mc_inject_ports = mc_ports;
    cfg.mc_eject_ports = mc_ports;
    cfg.vc_depth = vc_depth;
    if fast_routers {
        cfg.router_stages = 1;
        cfg.half_router_stages = 1;
    }
    cfg
}

fn quick_run(cfg: &NetworkConfig, rate: f64) -> tenoc_noc::openloop::OpenLoopResult {
    let mut ol = OpenLoopConfig::new(cfg.clone(), rate, TrafficPattern::UniformRandom);
    ol.warmup = 800;
    ol.measure = 3_000;
    ol.drain = 5_000;
    run_open_loop(&ol)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    fn static_bound_dominates_sustained_throughput(
        checkerboard in any::<bool>(),
        wide_vcs in any::<bool>(),
        mc_ports in 1usize..=2,
        vc_depth in prop::sample::select(vec![4usize, 8]),
        fast_routers in any::<bool>(),
    ) {
        let cfg = draw_config(checkerboard, wide_vcs, mc_ports, vc_depth, fast_routers);
        prop_assert!(tenoc_verify::analyze(&cfg).is_clean(), "drew an illegal config");
        let report = analyze_load(&cfg, TrafficMatrix::ManyToFew);
        prop_assert!(report.saturation_rate > 0.0);
        // Offered flits/cycle/node per unit injection rate — the
        // report's own unit conversion.
        let offered_per_rate = report.accepted_bound / report.saturation_rate;
        for rate in [0.05, 0.12, 0.3] {
            let r = quick_run(&cfg, rate);
            let offered = rate * offered_per_rate;
            let keeping_up = r.ejection_rate >= 0.9 * offered;
            if keeping_up {
                prop_assert!(
                    r.ejection_rate <= report.accepted_bound * 1.05,
                    "rate {rate}: sustained {:.4} exceeds static bound {:.4}",
                    r.ejection_rate,
                    report.accepted_bound
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    fn static_zero_load_latency_is_a_floor(
        checkerboard in any::<bool>(),
        wide_vcs in any::<bool>(),
        mc_ports in 1usize..=2,
        vc_depth in prop::sample::select(vec![4usize, 8]),
        fast_routers in any::<bool>(),
    ) {
        let cfg = draw_config(checkerboard, wide_vcs, mc_ports, vc_depth, fast_routers);
        let report = analyze_load(&cfg, TrafficMatrix::ManyToFew);
        let r = quick_run(&cfg, 0.005);
        prop_assert!(!r.saturated(), "0.005 must be deep below saturation");
        let zl = |class: &str| {
            report.zero_load.iter().find(|z| z.class == class).map(|z| z.mean).unwrap()
        };
        // 5% tolerance: short-window sampling noise on the measured mean.
        prop_assert!(
            zl("request") <= r.avg_request_latency * 1.05,
            "static request zero-load {:.2} above measured mean {:.2}",
            zl("request"),
            r.avg_request_latency
        );
        prop_assert!(
            zl("reply") <= r.avg_reply_latency * 1.05,
            "static reply zero-load {:.2} above measured mean {:.2}",
            zl("reply"),
            r.avg_reply_latency
        );
    }
}
