//! The memory controller: request queue, scheduling policy, command
//! issue and completion tracking.

use crate::bank::Bank;
use crate::timing::DramConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Scheduling policy of the controller.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// First-ready FCFS: row hits are served first (in age order), then
    /// the oldest request opens its row. The paper's baseline.
    FrFcfs,
    /// Strict in-order service of the oldest request (ablation baseline).
    Fcfs,
}

/// Row-buffer management policy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum PagePolicy {
    /// Keep rows open until a conflicting request needs the bank (the
    /// default; pairs naturally with FR-FCFS).
    Open,
    /// Precharge a bank as soon as no queued request hits its open row
    /// (approximates auto-precharge; trades row-hit opportunity for lower
    /// conflict latency).
    Closed,
}

/// A request presented to the DRAM channel.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramRequest {
    /// Byte address (within this channel's space).
    pub addr: u64,
    /// `true` for writes.
    pub is_write: bool,
    /// Caller correlation tag.
    pub tag: u64,
    /// Cycle the request entered the queue.
    pub arrival: u64,
}

impl DramRequest {
    /// A read request.
    pub fn read(addr: u64, tag: u64, arrival: u64) -> Self {
        DramRequest { addr, is_write: false, tag, arrival }
    }

    /// A write request.
    pub fn write(addr: u64, tag: u64, arrival: u64) -> Self {
        DramRequest { addr, is_write: true, tag, arrival }
    }
}

/// A queued request with its address decode cached: the schedulers
/// re-inspect every queue entry's (bank, row) each cycle, and the decode
/// divides by runtime values (`row_bytes`, `banks`), so it is computed
/// once at enqueue instead of O(queue) times per scan.
#[derive(Copy, Clone, Debug)]
struct QueuedRequest {
    req: DramRequest,
    bank: usize,
    row: u64,
}

/// A completed request, available to the caller at `done`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The original request.
    pub request: DramRequest,
    /// Cycle at which the last data beat left the pins.
    pub done: u64,
}

/// Controller statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramStats {
    /// Requests accepted into the queue.
    pub accepted: u64,
    /// Requests refused (queue full).
    pub refused: u64,
    /// Completed reads.
    pub reads_done: u64,
    /// Completed writes.
    pub writes_done: u64,
    /// Activates issued (row opens).
    pub activates: u64,
    /// Precharges issued (row closes).
    pub precharges: u64,
    /// Cycles the data pins were transferring.
    pub data_bus_busy: u64,
    /// Cycles with at least one request pending (queued or in flight).
    pub busy_cycles: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Total cycles observed.
    pub cycles: u64,
    /// Sum of queue residency over completed requests (for mean latency).
    pub latency_sum: u64,
}

impl DramStats {
    /// DRAM efficiency: fraction of pending time the data pins were busy
    /// (the paper's definition in Section V-E).
    pub fn efficiency(&self) -> f64 {
        if self.busy_cycles == 0 {
            return 0.0;
        }
        self.data_bus_busy as f64 / self.busy_cycles as f64
    }

    /// Row-hit rate: fraction of column commands served from an already
    /// open row (requests that did not need their own activate).
    pub fn row_hit_rate(&self) -> f64 {
        let cas = self.reads_done + self.writes_done;
        if cas == 0 {
            return 0.0;
        }
        (cas.saturating_sub(self.activates)) as f64 / cas as f64
    }

    /// Mean request latency (arrival to data completion).
    pub fn avg_latency(&self) -> f64 {
        let done = self.reads_done + self.writes_done;
        if done == 0 {
            return 0.0;
        }
        self.latency_sum as f64 / done as f64
    }
}

/// One DRAM channel with its scheduler (see the crate-level example).
#[derive(Clone, Debug)]
pub struct MemoryController {
    cfg: DramConfig,
    policy: SchedulingPolicy,
    page_policy: PagePolicy,
    banks: Vec<Bank>,
    queue: VecDeque<QueuedRequest>,
    in_flight: VecDeque<Completion>,
    /// Earliest cycle the shared data bus is free.
    bus_free: u64,
    /// Last ACTIVATE cycle on any bank (tRRD).
    last_activate: Option<u64>,
    /// Next scheduled refresh command.
    next_refresh: u64,
    /// Cycle until which the whole channel is blocked by a refresh.
    refresh_until: u64,
    stats: DramStats,
}

impl MemoryController {
    /// Creates an FR-FCFS controller.
    ///
    /// # Panics
    ///
    /// Panics if the timing parameters are inconsistent.
    pub fn new(cfg: DramConfig) -> Self {
        Self::with_policy(cfg, SchedulingPolicy::FrFcfs)
    }

    /// Creates a controller with an explicit scheduling policy.
    ///
    /// # Panics
    ///
    /// Panics if the timing parameters are inconsistent.
    pub fn with_policy(cfg: DramConfig, policy: SchedulingPolicy) -> Self {
        Self::with_policies(cfg, policy, PagePolicy::Open)
    }

    /// Creates a controller with explicit scheduling and page policies.
    ///
    /// # Panics
    ///
    /// Panics if the timing parameters are inconsistent.
    pub fn with_policies(
        cfg: DramConfig,
        policy: SchedulingPolicy,
        page_policy: PagePolicy,
    ) -> Self {
        cfg.timings.validate().expect("invalid DRAM timings");
        MemoryController {
            policy,
            page_policy,
            banks: vec![Bank::new(); cfg.banks],
            queue: VecDeque::with_capacity(cfg.queue_capacity),
            in_flight: VecDeque::new(),
            bus_free: 0,
            last_activate: None,
            next_refresh: cfg.timings.t_refi.max(1),
            refresh_until: 0,
            stats: DramStats::default(),
            cfg,
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Current statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// `true` if the request queue has room.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.cfg.queue_capacity
    }

    /// Queued request count.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Requests queued or being transferred.
    pub fn pending(&self) -> usize {
        self.queue.len() + self.in_flight.len()
    }

    /// Enqueues a request.
    ///
    /// # Errors
    ///
    /// Returns the request back if the queue is full.
    pub fn push(&mut self, req: DramRequest) -> Result<(), DramRequest> {
        if !self.can_accept() {
            self.stats.refused += 1;
            return Err(req);
        }
        self.stats.accepted += 1;
        let bank = self.cfg.bank_of(req.addr);
        let row = self.cfg.row_of(req.addr);
        self.queue.push_back(QueuedRequest { req, bank, row });
        Ok(())
    }

    /// Pops the next completion whose data finished by `now`.
    pub fn pop_completed(&mut self, now: u64) -> Option<Completion> {
        match self.in_flight.front() {
            Some(c) if c.done <= now => self.in_flight.pop_front(),
            _ => None,
        }
    }

    /// Advances the channel by one DRAM clock, issuing at most one command.
    pub fn step(&mut self, now: u64) {
        self.stats.cycles += 1;
        if self.pending() > 0 {
            self.stats.busy_cycles += 1;
        }
        // Refresh: block the whole channel for tRFC every tREFI. Issued
        // lazily once all banks can precharge (closed rows reopen after).
        if self.cfg.timings.t_refi > 0 && now >= self.next_refresh {
            let all_idle =
                self.banks.iter().all(|b| b.open_row().is_none() || b.can_precharge(now));
            if all_idle {
                for b in &mut self.banks {
                    if b.open_row().is_some() {
                        b.precharge(now, &self.cfg.timings);
                        self.stats.precharges += 1;
                    }
                }
                self.refresh_until = now + self.cfg.timings.t_rfc;
                self.next_refresh += self.cfg.timings.t_refi;
                self.stats.refreshes += 1;
            }
        }
        if now < self.refresh_until {
            return;
        }
        match self.policy {
            SchedulingPolicy::FrFcfs => self.step_frfcfs(now),
            SchedulingPolicy::Fcfs => self.step_fcfs(now),
        }
    }

    fn rrd_ok(&self, now: u64) -> bool {
        match self.last_activate {
            Some(t) => now >= t + self.cfg.timings.t_rrd,
            None => true,
        }
    }

    fn issue_cas(&mut self, idx: usize, now: u64) {
        let QueuedRequest { req, bank, row } = self.queue.remove(idx).expect("index valid");
        self.banks[bank].cas(row, now);
        let burst = self.cfg.burst_cycles();
        let start = (now + self.cfg.timings.t_cl).max(self.bus_free);
        let done = start + burst;
        self.bus_free = done;
        self.stats.data_bus_busy += burst;
        if req.is_write {
            self.stats.writes_done += 1;
        } else {
            self.stats.reads_done += 1;
        }
        self.stats.latency_sum += done.saturating_sub(req.arrival);
        // Keep completions sorted by done time (bus serialization makes
        // later issues finish later, so push_back preserves order).
        self.in_flight.push_back(Completion { request: req, done });
    }

    fn step_frfcfs(&mut self, now: u64) {
        // 1. Oldest row hit whose bank may issue and whose data slot is
        //    available.
        let hit = self.queue.iter().position(|r| self.banks[r.bank].can_cas(r.row, now));
        if let Some(idx) = hit {
            self.issue_cas(idx, now);
            return;
        }
        // 2. Oldest request whose bank is closed and may activate.
        if self.rrd_ok(now) {
            let act = self.queue.iter().position(|r| self.banks[r.bank].can_activate(now));
            if let Some(idx) = act {
                let r = self.queue[idx];
                self.banks[r.bank].activate(r.row, now, &self.cfg.timings);
                self.last_activate = Some(now);
                self.stats.activates += 1;
                return;
            }
        }
        // 3. Oldest request with a row conflict — precharge, but only if no
        //    earlier queued request still hits that bank's open row.
        let pre = self.queue.iter().position(|r| {
            let bank = &self.banks[r.bank];
            match bank.open_row() {
                Some(open) => {
                    open != r.row
                        && bank.can_precharge(now)
                        && !self.queue.iter().any(|q| q.bank == r.bank && q.row == open)
                }
                None => false,
            }
        });
        if let Some(idx) = pre {
            let b = self.queue[idx].bank;
            self.banks[b].precharge(now, &self.cfg.timings);
            self.stats.precharges += 1;
            return;
        }
        // Closed-page: eagerly precharge banks no queued request hits.
        if self.page_policy == PagePolicy::Closed {
            for b in 0..self.banks.len() {
                let bank = &self.banks[b];
                let Some(open) = bank.open_row() else { continue };
                if bank.can_precharge(now)
                    && !self.queue.iter().any(|q| q.bank == b && q.row == open)
                {
                    self.banks[b].precharge(now, &self.cfg.timings);
                    self.stats.precharges += 1;
                    return;
                }
            }
        }
    }

    fn step_fcfs(&mut self, now: u64) {
        let Some(&r) = self.queue.front() else { return };
        let QueuedRequest { bank: b, row, .. } = r;
        if self.banks[b].can_cas(row, now) {
            self.issue_cas(0, now);
        } else if self.banks[b].open_row().is_some()
            && self.banks[b].open_row() != Some(row)
            && self.banks[b].can_precharge(now)
        {
            self.banks[b].precharge(now, &self.cfg.timings);
            self.stats.precharges += 1;
        } else if self.banks[b].can_activate(now) && self.rrd_ok(now) {
            self.banks[b].activate(row, now, &self.cfg.timings);
            self.last_activate = Some(now);
            self.stats.activates += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mc: &mut MemoryController, cycles: u64) -> Vec<Completion> {
        let mut out = Vec::new();
        for now in 0..cycles {
            mc.step(now);
            while let Some(c) = mc.pop_completed(now) {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let mut mc = MemoryController::new(DramConfig::gddr3());
        mc.push(DramRequest::read(0, 7, 0)).unwrap();
        let done = run(&mut mc, 100);
        assert_eq!(done.len(), 1);
        // ACT at 0, CAS at tRCD=12, data at 12+tCL=21..25.
        assert_eq!(done[0].done, 25);
        assert_eq!(done[0].request.tag, 7);
    }

    #[test]
    fn row_hits_pipeline_on_the_bus() {
        let mut mc = MemoryController::new(DramConfig::gddr3());
        // Four reads to the same row.
        for i in 0..4 {
            mc.push(DramRequest::read(i * 64, i, 0)).unwrap();
        }
        let done = run(&mut mc, 200);
        assert_eq!(done.len(), 4);
        // After the first completion, subsequent ones stream every
        // burst_cycles = 4 cycles.
        for w in done.windows(2) {
            assert_eq!(w[1].done - w[0].done, 4, "row hits must stream back-to-back");
        }
        assert_eq!(mc.stats().activates, 1, "one row open serves all four");
    }

    #[test]
    fn frfcfs_prefers_row_hits_over_older_conflicts() {
        let cfg = DramConfig::gddr3();
        let mut mc = MemoryController::new(cfg);
        let row_stride = cfg.row_bytes * cfg.banks as u64; // same bank, next row
                                                           // Oldest request to row 0 (bank 0), then a conflict to row 1
                                                           // (bank 0), then another hit to row 0.
        mc.push(DramRequest::read(0, 0, 0)).unwrap();
        mc.push(DramRequest::read(row_stride, 1, 0)).unwrap();
        mc.push(DramRequest::read(64, 2, 0)).unwrap();
        let done = run(&mut mc, 300);
        let order: Vec<u64> = done.iter().map(|c| c.request.tag).collect();
        assert_eq!(order, vec![0, 2, 1], "row hit (tag 2) bypasses older conflict (tag 1)");
    }

    #[test]
    fn fcfs_serves_in_order() {
        let cfg = DramConfig::gddr3();
        let mut mc = MemoryController::with_policy(cfg, SchedulingPolicy::Fcfs);
        let row_stride = cfg.row_bytes * cfg.banks as u64;
        mc.push(DramRequest::read(0, 0, 0)).unwrap();
        mc.push(DramRequest::read(row_stride, 1, 0)).unwrap();
        mc.push(DramRequest::read(64, 2, 0)).unwrap();
        let done = run(&mut mc, 400);
        let order: Vec<u64> = done.iter().map(|c| c.request.tag).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn frfcfs_beats_fcfs_on_interleaved_rows() {
        let cfg = DramConfig::gddr3();
        let row_stride = cfg.row_bytes * cfg.banks as u64;
        let pattern: Vec<u64> = (0..16)
            .map(|i| if i % 2 == 0 { (i / 2) * 64 } else { row_stride + (i / 2) * 64 })
            .collect();
        let mut frf = MemoryController::new(cfg);
        let mut fcfs = MemoryController::with_policy(cfg, SchedulingPolicy::Fcfs);
        for (i, &a) in pattern.iter().enumerate() {
            frf.push(DramRequest::read(a, i as u64, 0)).unwrap();
            fcfs.push(DramRequest::read(a, i as u64, 0)).unwrap();
        }
        let f1 = run(&mut frf, 2000);
        let f2 = run(&mut fcfs, 2000);
        assert_eq!(f1.len(), 16);
        assert_eq!(f2.len(), 16);
        let last_frf = f1.iter().map(|c| c.done).max().unwrap();
        let last_fcfs = f2.iter().map(|c| c.done).max().unwrap();
        assert!(
            last_frf < last_fcfs,
            "FR-FCFS ({last_frf}) must finish before FCFS ({last_fcfs}) on ping-pong rows"
        );
        assert!(frf.stats().row_hit_rate() > fcfs.stats().row_hit_rate());
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut mc = MemoryController::new(DramConfig::gddr3());
        for i in 0..32 {
            mc.push(DramRequest::read(i * 64, i, 0)).unwrap();
        }
        assert!(!mc.can_accept());
        assert!(mc.push(DramRequest::read(0, 99, 0)).is_err());
        assert_eq!(mc.stats().refused, 1);
    }

    #[test]
    fn banks_activate_in_parallel_with_trrd_gap() {
        let cfg = DramConfig::gddr3();
        let mut mc = MemoryController::new(cfg);
        // Two reads to different banks.
        mc.push(DramRequest::read(0, 0, 0)).unwrap();
        mc.push(DramRequest::read(cfg.row_bytes, 1, 0)).unwrap();
        let done = run(&mut mc, 200);
        assert_eq!(done.len(), 2);
        // Second ACT issues at tRRD=8; CAS at 8+12=20, data 29..33. The
        // two transfers cannot overlap the shared bus: second done is
        // max(29, 25) + 4 = 33.
        assert_eq!(done[0].done, 25);
        assert_eq!(done[1].done, 33);
        assert_eq!(mc.stats().activates, 2);
    }

    #[test]
    fn efficiency_reflects_streaming() {
        let cfg = DramConfig::gddr3();
        let mut mc = MemoryController::new(cfg);
        // Keep the queue full of same-row reads for a while.
        let mut pushed = 0u64;
        for now in 0..2000u64 {
            while pushed < 400
                && mc.push(DramRequest::read((pushed % 32) * 64, pushed, now)).is_ok()
            {
                pushed += 1;
            }
            mc.step(now);
            while mc.pop_completed(now).is_some() {}
        }
        let eff = mc.stats().efficiency();
        assert!(eff > 0.9, "streaming same-row reads should keep the pins busy, got {eff}");
    }

    #[test]
    fn closed_page_precharges_eagerly() {
        let cfg = DramConfig::gddr3();
        let mut open_mc = MemoryController::new(cfg);
        let mut closed_mc =
            MemoryController::with_policies(cfg, SchedulingPolicy::FrFcfs, PagePolicy::Closed);
        for mc in [&mut open_mc, &mut closed_mc] {
            mc.push(DramRequest::read(0, 0, 0)).unwrap();
        }
        for now in 0..200 {
            open_mc.step(now);
            closed_mc.step(now);
            open_mc.pop_completed(now);
            closed_mc.pop_completed(now);
        }
        assert_eq!(open_mc.stats().precharges, 0, "open-page keeps the row open");
        assert_eq!(closed_mc.stats().precharges, 1, "closed-page precharges after use");
    }

    #[test]
    fn closed_page_still_completes_all_requests() {
        let cfg = DramConfig::gddr3();
        let mut mc =
            MemoryController::with_policies(cfg, SchedulingPolicy::FrFcfs, PagePolicy::Closed);
        for i in 0..16u64 {
            mc.push(DramRequest::read(i * 4096, i, 0)).unwrap();
        }
        let done = run(&mut mc, 5_000);
        assert_eq!(done.len(), 16);
    }

    #[test]
    fn refresh_blocks_the_channel_periodically() {
        let mut cfg = DramConfig::gddr3();
        cfg.timings.t_refi = 200;
        cfg.timings.t_rfc = 50;
        let mut mc = MemoryController::new(cfg);
        // Keep a trickle of same-row reads flowing.
        let mut pushed = 0u64;
        let mut done = Vec::new();
        for now in 0..2_000u64 {
            if pushed <= now / 20 {
                let _ = mc.push(DramRequest::read((pushed % 8) * 64, pushed, now));
                pushed += 1;
            }
            mc.step(now);
            while let Some(c) = mc.pop_completed(now) {
                done.push(c);
            }
        }
        assert!(mc.stats().refreshes >= 8, "refreshes: {}", mc.stats().refreshes);
        assert!(!done.is_empty());
        // No completion may fall strictly inside a refresh window; spot
        // check gaps exist around multiples of tREFI.
        let last = done.iter().map(|c| c.done).max().unwrap();
        assert!(last < 2_000);
    }

    #[test]
    fn refresh_disabled_when_trefi_zero() {
        let mut cfg = DramConfig::gddr3();
        cfg.timings.t_refi = 0;
        let mut mc = MemoryController::new(cfg);
        for now in 0..10_000 {
            mc.step(now);
        }
        assert_eq!(mc.stats().refreshes, 0);
    }

    #[test]
    fn write_requests_complete() {
        let mut mc = MemoryController::new(DramConfig::gddr3());
        mc.push(DramRequest::write(128, 5, 0)).unwrap();
        let done = run(&mut mc, 100);
        assert_eq!(done.len(), 1);
        assert!(done[0].request.is_write);
        assert_eq!(mc.stats().writes_done, 1);
    }
}
