//! # tenoc-dram — GDDR3 DRAM timing model with an FR-FCFS controller
//!
//! Bank-state DRAM timing model matching the paper's Table II memory
//! system: GDDR3 timing parameters (`tCL=9, tRP=13, tRC=34, tRAS=21,
//! tRCD=12, tRRD=8` in DRAM clocks), a 32-entry request queue per memory
//! controller, and out-of-order first-ready first-come-first-served
//! (FR-FCFS) scheduling. A strict in-order FCFS policy is provided for
//! ablation.
//!
//! Peak transfer rate is [`DramConfig::bytes_per_cycle`] bytes per DRAM
//! clock (16 B for the paper's configuration), and the model reports
//! **DRAM efficiency** — the fraction of time the data pins transfer data
//! while requests are pending — which the paper uses to explain the
//! multi-port ejection results (Section V-E).
//!
//! # Example
//!
//! ```
//! use tenoc_dram::{DramConfig, DramRequest, MemoryController};
//!
//! let mut mc = MemoryController::new(DramConfig::gddr3());
//! mc.push(DramRequest::read(0x1000, 1, 0)).unwrap();
//! let mut done = None;
//! for now in 0..200 {
//!     mc.step(now);
//!     if let Some(c) = mc.pop_completed(now) {
//!         done = Some(c);
//!         break;
//!     }
//! }
//! let done = done.expect("request completes");
//! assert_eq!(done.request.tag, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bank;
pub mod controller;
pub mod timing;

pub use bank::Bank;
pub use controller::{
    Completion, DramRequest, DramStats, MemoryController, PagePolicy, SchedulingPolicy,
};
pub use timing::{DramConfig, GddrTimings};
