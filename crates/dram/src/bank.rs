//! A single DRAM bank's row state and command timing.

use crate::timing::GddrTimings;

/// State of one DRAM bank.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Bank {
    open_row: Option<u64>,
    /// Earliest cycle an ACTIVATE may issue (covers tRC and tRP).
    next_activate: u64,
    /// Earliest cycle a PRECHARGE may issue (covers tRAS).
    next_precharge: u64,
    /// Earliest cycle a column command may issue (covers tRCD).
    next_cas: u64,
}

impl Default for Bank {
    fn default() -> Self {
        Self::new()
    }
}

impl Bank {
    /// A bank with all rows closed and no timing obligations.
    pub fn new() -> Self {
        Bank { open_row: None, next_activate: 0, next_precharge: 0, next_cas: 0 }
    }

    /// Currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        self.open_row
    }

    /// `true` if `row` is open.
    pub fn row_hit(&self, row: u64) -> bool {
        self.open_row == Some(row)
    }

    /// `true` if an ACTIVATE may issue at `now` (bank-local constraints;
    /// the controller also enforces the inter-bank tRRD).
    pub fn can_activate(&self, now: u64) -> bool {
        self.open_row.is_none() && now >= self.next_activate
    }

    /// `true` if a PRECHARGE may issue at `now`.
    pub fn can_precharge(&self, now: u64) -> bool {
        self.open_row.is_some() && now >= self.next_precharge
    }

    /// `true` if a column command to `row` may issue at `now`.
    pub fn can_cas(&self, row: u64, now: u64) -> bool {
        self.row_hit(row) && now >= self.next_cas
    }

    /// Issues an ACTIVATE for `row`.
    ///
    /// # Panics
    ///
    /// Panics if the activate violates bank timing (simulator bug).
    pub fn activate(&mut self, row: u64, now: u64, t: &GddrTimings) {
        assert!(self.can_activate(now), "ACT issued while bank busy or row open");
        self.open_row = Some(row);
        self.next_cas = now + t.t_rcd;
        self.next_precharge = now + t.t_ras;
        self.next_activate = now + t.t_rc;
    }

    /// Issues a PRECHARGE.
    ///
    /// # Panics
    ///
    /// Panics if the precharge violates tRAS.
    pub fn precharge(&mut self, now: u64, t: &GddrTimings) {
        assert!(self.can_precharge(now), "PRE issued before tRAS or with no open row");
        self.open_row = None;
        self.next_activate = self.next_activate.max(now + t.t_rp);
    }

    /// Issues a column command (read or write) to the open row.
    ///
    /// # Panics
    ///
    /// Panics if the row is not open or tRCD has not elapsed.
    pub fn cas(&mut self, row: u64, now: u64) {
        assert!(self.can_cas(row, now), "CAS issued to closed row or before tRCD");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> GddrTimings {
        GddrTimings::gtx280()
    }

    #[test]
    fn activate_opens_row_after_rcd() {
        let mut b = Bank::new();
        b.activate(5, 0, &t());
        assert!(b.row_hit(5));
        assert!(!b.can_cas(5, 11), "tRCD=12 not yet elapsed");
        assert!(b.can_cas(5, 12));
        assert!(!b.can_cas(6, 100), "other rows are not open");
    }

    #[test]
    fn precharge_respects_tras_and_trp() {
        let mut b = Bank::new();
        b.activate(1, 0, &t());
        assert!(!b.can_precharge(20), "tRAS=21");
        assert!(b.can_precharge(21));
        b.precharge(21, &t());
        assert_eq!(b.open_row(), None);
        // tRC=34 from the activate dominates 21+tRP=34: equal here.
        assert!(!b.can_activate(33));
        assert!(b.can_activate(34));
    }

    #[test]
    fn trc_enforced_between_activates() {
        let mut b = Bank::new();
        b.activate(1, 0, &t());
        b.precharge(21, &t());
        b.activate(2, 34, &t());
        assert!(b.row_hit(2));
    }

    #[test]
    #[should_panic(expected = "ACT issued")]
    fn double_activate_panics() {
        let mut b = Bank::new();
        b.activate(1, 0, &t());
        b.activate(2, 1, &t());
    }

    #[test]
    #[should_panic(expected = "PRE issued")]
    fn early_precharge_panics() {
        let mut b = Bank::new();
        b.activate(1, 0, &t());
        b.precharge(5, &t());
    }

    #[test]
    #[should_panic(expected = "CAS issued")]
    fn cas_to_closed_row_panics() {
        let mut b = Bank::new();
        b.cas(3, 50);
    }
}
