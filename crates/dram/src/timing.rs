//! GDDR3 timing parameters and DRAM geometry.

use serde::{Deserialize, Serialize};

/// GDDR3 timing constraints, in DRAM clock cycles (paper Table II).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct GddrTimings {
    /// CAS latency: column command to first data beat.
    pub t_cl: u64,
    /// Row precharge time: precharge to activate.
    pub t_rp: u64,
    /// Row cycle time: activate to activate, same bank.
    pub t_rc: u64,
    /// Row active time: activate to precharge, same bank.
    pub t_ras: u64,
    /// RAS-to-CAS delay: activate to column command.
    pub t_rcd: u64,
    /// Activate-to-activate delay, different banks.
    pub t_rrd: u64,
    /// Average interval between refresh commands (tREFI). Zero disables
    /// refresh modeling.
    pub t_refi: u64,
    /// Refresh cycle time (tRFC): all banks are blocked for this long on
    /// each refresh.
    pub t_rfc: u64,
}

impl GddrTimings {
    /// The paper's GDDR3 timings: `tCL=9, tRP=13, tRC=34, tRAS=21,
    /// tRCD=12, tRRD=8`.
    pub fn gtx280() -> Self {
        GddrTimings {
            t_cl: 9,
            t_rp: 13,
            t_rc: 34,
            t_ras: 21,
            t_rcd: 12,
            t_rrd: 8,
            // ~3.9 us tREFI / ~120 ns tRFC at 1107 MHz.
            t_refi: 4320,
            t_rfc: 133,
        }
    }

    /// Checks internal consistency (e.g. `tRC >= tRAS + tRP`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the violated relation.
    pub fn validate(&self) -> Result<(), String> {
        if self.t_rc < self.t_ras + self.t_rp {
            return Err(format!(
                "tRC ({}) must cover tRAS + tRP ({} + {})",
                self.t_rc, self.t_ras, self.t_rp
            ));
        }
        if self.t_ras < self.t_rcd {
            return Err(format!("tRAS ({}) must cover tRCD ({})", self.t_ras, self.t_rcd));
        }
        if self.t_refi > 0 && self.t_rfc >= self.t_refi {
            return Err(format!(
                "tRFC ({}) must be shorter than tREFI ({})",
                self.t_rfc, self.t_refi
            ));
        }
        Ok(())
    }
}

/// Full configuration of one DRAM channel (one memory controller).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct DramConfig {
    /// Timing constraints.
    pub timings: GddrTimings,
    /// Number of banks per channel.
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Transfer granularity in bytes (one memory access: an L2 line).
    pub burst_bytes: u64,
    /// Peak data-pin bandwidth in bytes per DRAM clock (16 for the
    /// paper's configuration).
    pub bytes_per_cycle: u64,
    /// Request queue capacity (paper: 32).
    pub queue_capacity: usize,
}

impl DramConfig {
    /// The paper's GDDR3 channel: 8 banks, 2 KiB rows, 64 B bursts at
    /// 16 B/cycle, 32-entry queue.
    pub fn gddr3() -> Self {
        DramConfig {
            timings: GddrTimings::gtx280(),
            banks: 8,
            row_bytes: 2048,
            burst_bytes: 64,
            bytes_per_cycle: 16,
            queue_capacity: 32,
        }
    }

    /// Cycles the data bus is occupied by one burst.
    pub fn burst_cycles(&self) -> u64 {
        self.burst_bytes.div_ceil(self.bytes_per_cycle)
    }

    /// Bank index for a byte address (bank bits above the row offset,
    /// interleaving consecutive rows across banks).
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.row_bytes) % self.banks as u64) as usize
    }

    /// Row index within a bank for a byte address.
    pub fn row_of(&self, addr: u64) -> u64 {
        addr / self.row_bytes / self.banks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timings_are_consistent() {
        GddrTimings::gtx280().validate().unwrap();
    }

    #[test]
    fn inconsistent_timings_rejected() {
        let mut t = GddrTimings::gtx280();
        t.t_rc = 10;
        assert!(t.validate().is_err());
        let mut t = GddrTimings::gtx280();
        t.t_ras = 5;
        assert!(t.validate().is_err());
    }

    #[test]
    fn burst_occupies_four_cycles() {
        assert_eq!(DramConfig::gddr3().burst_cycles(), 4);
    }

    #[test]
    fn bank_row_mapping_interleaves_rows() {
        let c = DramConfig::gddr3();
        // Consecutive rows land in consecutive banks.
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(2048), 1);
        assert_eq!(c.bank_of(2048 * 8), 0);
        assert_eq!(c.row_of(0), 0);
        assert_eq!(c.row_of(2048 * 8), 1);
        // Addresses within one row share bank and row.
        assert_eq!(c.bank_of(100), c.bank_of(2000));
        assert_eq!(c.row_of(100), c.row_of(2000));
    }
}
