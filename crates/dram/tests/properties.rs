//! Property-based tests of the DRAM channel: completeness, bus
//! serialization and timing-constraint compliance (the bank model panics
//! on any violated constraint, so simply driving random traffic through
//! the controller exercises the timing rules).

use proptest::prelude::*;
use tenoc_dram::{Completion, DramConfig, DramRequest, MemoryController, SchedulingPolicy};

fn drive(mc: &mut MemoryController, reqs: &[DramRequest], max_cycles: u64) -> Vec<Completion> {
    let mut out = Vec::new();
    let mut next = 0usize;
    for now in 0..max_cycles {
        while next < reqs.len() {
            let mut r = reqs[next];
            r.arrival = now;
            if mc.push(r).is_err() {
                break;
            }
            next += 1;
        }
        mc.step(now);
        while let Some(c) = mc.pop_completed(now) {
            out.push(c);
        }
        if next == reqs.len() && mc.pending() == 0 {
            break;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    /// Every request completes exactly once under both policies, and the
    /// shared data bus never overlaps transfers.
    #[test]
    fn all_requests_complete_without_bus_overlap(
        addrs in prop::collection::vec((0u64..1_000, any::<bool>()), 1..80),
        frfcfs in any::<bool>(),
    ) {
        let cfg = DramConfig::gddr3();
        let policy = if frfcfs { SchedulingPolicy::FrFcfs } else { SchedulingPolicy::Fcfs };
        let mut mc = MemoryController::with_policy(cfg, policy);
        let reqs: Vec<DramRequest> = addrs
            .iter()
            .enumerate()
            .map(|(i, &(a, w))| {
                let addr = a * 64;
                if w { DramRequest::write(addr, i as u64, 0) } else { DramRequest::read(addr, i as u64, 0) }
            })
            .collect();
        let done = drive(&mut mc, &reqs, 200_000);
        prop_assert_eq!(done.len(), reqs.len(), "all requests must complete");
        // Exactly-once completion.
        let mut tags: Vec<u64> = done.iter().map(|c| c.request.tag).collect();
        tags.sort_unstable();
        let expected: Vec<u64> = (0..reqs.len() as u64).collect();
        prop_assert_eq!(tags, expected);
        // Bus serialization: completion times spaced by at least one burst.
        let mut times: Vec<u64> = done.iter().map(|c| c.done).collect();
        times.sort_unstable();
        for w in times.windows(2) {
            prop_assert!(w[1] - w[0] >= cfg.burst_cycles(), "bus overlap: {w:?}");
        }
    }

    /// FCFS preserves arrival order of completions.
    #[test]
    fn fcfs_completes_in_order(addrs in prop::collection::vec(0u64..200, 1..40)) {
        let mut mc = MemoryController::with_policy(DramConfig::gddr3(), SchedulingPolicy::Fcfs);
        let reqs: Vec<DramRequest> =
            addrs.iter().enumerate().map(|(i, &a)| DramRequest::read(a * 64, i as u64, 0)).collect();
        let done = drive(&mut mc, &reqs, 200_000);
        let tags: Vec<u64> = done.iter().map(|c| c.request.tag).collect();
        let sorted = {
            let mut t = tags.clone();
            t.sort_unstable();
            t
        };
        prop_assert_eq!(tags, sorted);
    }

    /// FR-FCFS throughput is never worse than strict FCFS.
    #[test]
    fn frfcfs_not_slower_than_fcfs(addrs in prop::collection::vec(0u64..500, 4..60)) {
        let cfg = DramConfig::gddr3();
        let reqs: Vec<DramRequest> =
            addrs.iter().enumerate().map(|(i, &a)| DramRequest::read(a * 64, i as u64, 0)).collect();
        let mut frf = MemoryController::with_policy(cfg, SchedulingPolicy::FrFcfs);
        let mut fcfs = MemoryController::with_policy(cfg, SchedulingPolicy::Fcfs);
        let d1 = drive(&mut frf, &reqs, 400_000);
        let d2 = drive(&mut fcfs, &reqs, 400_000);
        let t1 = d1.iter().map(|c| c.done).max().unwrap();
        let t2 = d2.iter().map(|c| c.done).max().unwrap();
        prop_assert!(t1 <= t2 + 4, "FR-FCFS ({t1}) must not lose to FCFS ({t2})");
    }

    /// Efficiency and row-hit statistics stay within [0, 1].
    #[test]
    fn stats_are_fractions(addrs in prop::collection::vec(0u64..100, 1..50)) {
        let mut mc = MemoryController::new(DramConfig::gddr3());
        let reqs: Vec<DramRequest> =
            addrs.iter().enumerate().map(|(i, &a)| DramRequest::read(a * 64, i as u64, 0)).collect();
        drive(&mut mc, &reqs, 200_000);
        let s = mc.stats();
        prop_assert!((0.0..=1.0).contains(&s.efficiency()));
        prop_assert!((0.0..=1.0).contains(&s.row_hit_rate()));
        prop_assert!(s.avg_latency() >= 0.0);
    }
}
