//! Warp memory-access coalescing (the divergence-detection stage).
//!
//! Global loads and stores from the scalar threads of a warp are coalesced
//! so that only one transaction is generated per distinct cache line
//! (paper Section II, following the CUDA programming guide's coalescing
//! rules at the cache-line granularity).

/// Collapses per-lane byte addresses into the ordered set of distinct
/// line-aligned addresses they touch.
///
/// `None` lanes (inactive threads under divergence) generate no traffic.
/// Order of first touch is preserved, which keeps the generated
/// transaction stream deterministic.
///
/// # Panics
///
/// Panics if `line_bytes` is not a power of two.
pub fn coalesce<I>(lane_addrs: I, line_bytes: u64) -> Vec<u64>
where
    I: IntoIterator<Item = Option<u64>>,
{
    assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
    let mask = !(line_bytes - 1);
    let mut out = Vec::new();
    for addr in lane_addrs.into_iter().flatten() {
        let line = addr & mask;
        if !out.contains(&line) {
            out.push(line);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_warp_coalesces_to_two_lines() {
        // 32 threads x 4-byte accesses, consecutive: 128 B = 2 x 64 B lines.
        let addrs = (0..32).map(|i| Some(0x1000 + i * 4));
        let lines = coalesce(addrs, 64);
        assert_eq!(lines, vec![0x1000, 0x1040]);
    }

    #[test]
    fn same_address_collapses_to_one() {
        let addrs = (0..32).map(|_| Some(0x42u64));
        assert_eq!(coalesce(addrs, 64), vec![0x40]);
    }

    #[test]
    fn fully_divergent_warp_generates_32_transactions() {
        // Stride of one line per lane: worst case.
        let addrs = (0..32u64).map(|i| Some(i * 64));
        assert_eq!(coalesce(addrs, 64).len(), 32);
    }

    #[test]
    fn inactive_lanes_ignored() {
        let addrs = (0..32u64).map(|i| if i % 2 == 0 { Some(i * 4) } else { None });
        let lines = coalesce(addrs, 64);
        assert_eq!(lines, vec![0x0, 0x40]);
    }

    #[test]
    fn empty_warp_generates_nothing() {
        assert!(coalesce(std::iter::repeat_n(None, 32), 64).is_empty());
    }

    #[test]
    fn first_touch_order_preserved() {
        let addrs = [Some(0x100u64), Some(0x000), Some(0x140), Some(0x010)];
        assert_eq!(coalesce(addrs, 64), vec![0x100, 0x000, 0x140]);
    }
}
