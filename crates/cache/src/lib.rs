//! # tenoc-cache — caches, MSHRs and warp access coalescing
//!
//! The cache hierarchy substrate for the accelerator model:
//!
//! * [`Cache`] — a set-associative, LRU cache with write-back/write-through
//!   and write-allocate/no-write-allocate policies, probed and filled
//!   explicitly so the timing simulator controls when misses return.
//! * [`MshrTable`] — miss status holding registers with same-line merging
//!   (64 per core in the paper's Table II).
//! * [`coalesce`] — the memory divergence/coalescing stage (DD in the
//!   paper's Figure 4): collapses the 32 scalar accesses of a warp into
//!   the minimal set of cache-line transactions.
//!
//! # Example
//!
//! ```
//! use tenoc_cache::{Cache, CacheConfig, Access, LookupResult};
//!
//! let mut l1 = Cache::new(CacheConfig::l1_16k());
//! match l1.access(0x80, Access::Read) {
//!     LookupResult::Miss => {
//!         // fetch from memory, then:
//!         let evicted = l1.fill(0x80);
//!         assert!(evicted.is_none());
//!     }
//!     LookupResult::Hit => unreachable!("cold cache"),
//! }
//! assert_eq!(l1.access(0x80, Access::Read), LookupResult::Hit);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalescer;
pub mod mshr;

pub use cache::{
    Access, Cache, CacheConfig, CacheStats, Eviction, LookupResult, ReplacementPolicy, WritePolicy,
};
pub use coalescer::coalesce;
pub use mshr::{MshrOutcome, MshrTable};
