//! Miss status holding registers (MSHRs) with same-line merging.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// Multiplicative hasher for line-address keys. MSHR lookups sit on the
/// per-instruction resource-check path of every core (and the L2 miss
/// path of every MC), so the default SipHash is replaced by one
/// Fibonacci multiply — sufficient for line addresses, whose entropy
/// lives in the low/middle bits, and an order of magnitude cheaper.
/// Table iteration order is never observed (the table has no iterator
/// API), so the hasher cannot affect simulation results.
#[derive(Clone, Debug, Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused for u64 keys, kept total for safety).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_right(29);
    }
}

/// [`BuildHasher`] for [`LineHasher`].
#[derive(Clone, Debug, Default)]
struct BuildLineHasher;

impl BuildHasher for BuildLineHasher {
    type Hasher = LineHasher;

    fn build_hasher(&self) -> LineHasher {
        LineHasher(0)
    }
}

/// Outcome of presenting a miss to the MSHR table.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller must issue a memory fetch for
    /// this line.
    Allocated,
    /// An entry for the line already existed; the access was merged and no
    /// new fetch is needed.
    Merged,
    /// The table (or the entry's target list) is full; the access must be
    /// replayed later.
    Full,
}

/// A table of MSHRs, keyed by line address.
///
/// Each entry tracks the opaque targets (e.g. warp slots) waiting on the
/// line. The paper's cores have 64 MSHRs each.
#[derive(Clone, Debug)]
pub struct MshrTable {
    capacity: usize,
    max_targets: usize,
    entries: HashMap<u64, Vec<u64>, BuildLineHasher>,
    /// Retired target lists kept for reuse (bounded by `capacity`), so
    /// the allocate/complete cycle is allocation-free at steady state.
    pool: Vec<Vec<u64>>,
}

impl MshrTable {
    /// Creates a table with `capacity` entries of up to `max_targets`
    /// merged targets each.
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn new(capacity: usize, max_targets: usize) -> Self {
        assert!(capacity > 0 && max_targets > 0);
        MshrTable {
            capacity,
            max_targets,
            entries: HashMap::with_capacity_and_hasher(capacity, BuildLineHasher),
            pool: Vec::with_capacity(capacity),
        }
    }

    /// Entries in use.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entry is allocated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when no further entry can be allocated.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// `true` if a fetch for `line_addr` is outstanding.
    pub fn contains(&self, line_addr: u64) -> bool {
        self.entries.contains_key(&line_addr)
    }

    /// Presents a miss for `line_addr` on behalf of `target`.
    pub fn allocate(&mut self, line_addr: u64, target: u64) -> MshrOutcome {
        if let Some(targets) = self.entries.get_mut(&line_addr) {
            if targets.len() >= self.max_targets {
                return MshrOutcome::Full;
            }
            targets.push(target);
            return MshrOutcome::Merged;
        }
        if self.entries.len() >= self.capacity {
            return MshrOutcome::Full;
        }
        let mut targets = self.pool.pop().unwrap_or_default();
        targets.push(target);
        self.entries.insert(line_addr, targets);
        MshrOutcome::Allocated
    }

    /// Completes the fetch for `line_addr`, releasing the entry and
    /// leaving the merged targets (in arrival order) in `out` — which is
    /// cleared first. The entry's storage is recycled, so the hot
    /// fill path never allocates.
    ///
    /// # Panics
    ///
    /// Panics if no entry exists — a completion without an allocation is a
    /// simulator bug.
    pub fn complete_into(&mut self, line_addr: u64, out: &mut Vec<u64>) {
        let mut targets = self
            .entries
            .remove(&line_addr)
            .unwrap_or_else(|| panic!("MSHR completion for unallocated line {line_addr:#x}"));
        out.clear();
        std::mem::swap(out, &mut targets);
        // `targets` now holds the caller's cleared buffer; keep whichever
        // capacity is worth pooling.
        if self.pool.len() < self.capacity {
            targets.clear();
            self.pool.push(targets);
        }
    }

    /// Completes the fetch for `line_addr`, releasing the entry and
    /// returning the merged targets (in arrival order). Convenience
    /// wrapper over [`MshrTable::complete_into`].
    ///
    /// # Panics
    ///
    /// Panics if no entry exists — a completion without an allocation is a
    /// simulator bug.
    pub fn complete(&mut self, line_addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.complete_into(line_addr, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge_then_complete() {
        let mut m = MshrTable::new(4, 8);
        assert_eq!(m.allocate(0x100, 1), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x100, 2), MshrOutcome::Merged);
        assert_eq!(m.allocate(0x100, 3), MshrOutcome::Merged);
        assert_eq!(m.len(), 1, "merged accesses share one entry");
        assert_eq!(m.complete(0x100), vec![1, 2, 3]);
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_limits_distinct_lines() {
        let mut m = MshrTable::new(2, 8);
        assert_eq!(m.allocate(0x000, 0), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x040, 1), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x080, 2), MshrOutcome::Full);
        assert!(m.is_full());
        // Merging into existing entries still works at capacity.
        assert_eq!(m.allocate(0x000, 3), MshrOutcome::Merged);
        m.complete(0x000);
        assert_eq!(m.allocate(0x080, 2), MshrOutcome::Allocated);
    }

    #[test]
    fn target_limit_enforced() {
        let mut m = MshrTable::new(4, 2);
        assert_eq!(m.allocate(0x0, 0), MshrOutcome::Allocated);
        assert_eq!(m.allocate(0x0, 1), MshrOutcome::Merged);
        assert_eq!(m.allocate(0x0, 2), MshrOutcome::Full);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn complete_without_allocate_panics() {
        let mut m = MshrTable::new(4, 4);
        m.complete(0xdead);
    }

    #[test]
    fn complete_into_reuses_caller_buffer_and_recycles_storage() {
        let mut m = MshrTable::new(4, 8);
        let mut buf = vec![0xff; 8]; // stale contents must be cleared
        m.allocate(0x100, 1);
        m.allocate(0x100, 2);
        m.complete_into(0x100, &mut buf);
        assert_eq!(buf, vec![1, 2]);
        // A second allocate/complete round trip reuses pooled storage and
        // still reports targets in arrival order.
        m.allocate(0x200, 9);
        m.complete_into(0x200, &mut buf);
        assert_eq!(buf, vec![9]);
    }
}
