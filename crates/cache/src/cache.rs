//! Set-associative cache with explicit miss handling.
//!
//! The cache is a *tag store* only — data movement is modeled by the
//! timing simulator. `access` probes (and updates state on hits); on a
//! miss the caller fetches the line and later calls `fill`, which may
//! return a dirty victim that must be written back (the paper's L1 is
//! write-back write-allocate; the L2 banks use the same model).

use serde::{Deserialize, Serialize};

/// Replacement policy for victim selection within a set.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least recently used line (the default, and the paper's
    /// assumed policy).
    Lru,
    /// Evict the oldest-filled line regardless of use.
    Fifo,
    /// Evict a pseudo-randomly chosen line (deterministic hash of the
    /// cache's access count, so simulations stay reproducible).
    Random,
}

/// Write-hit policy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum WritePolicy {
    /// Write hits mark the line dirty; dirty victims are written back on
    /// eviction.
    WriteBack,
    /// Write hits propagate immediately (no dirty state).
    WriteThrough,
}

/// Cache geometry and policy.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Write-hit policy.
    pub write_policy: WritePolicy,
    /// Whether write misses allocate a line.
    pub write_allocate: bool,
    /// Victim selection policy.
    pub replacement: ReplacementPolicy,
}

impl CacheConfig {
    /// The paper's 16 KB per-core L1 data cache: 64 B lines, 4-way,
    /// write-back write-allocate.
    pub fn l1_16k() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 64,
            assoc: 4,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// The paper's 128 KB per-MC L2 bank: 64 B lines, 8-way, write-back.
    pub fn l2_128k() -> Self {
        CacheConfig {
            size_bytes: 128 * 1024,
            line_bytes: 64,
            assoc: 8,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: ReplacementPolicy::Lru,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.size_bytes / self.line_bytes) as usize / self.assoc
    }

    /// Line-aligned address of `addr`.
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// Validates the geometry (power-of-two line size, divisible capacity).
    ///
    /// # Errors
    ///
    /// Returns a message describing the violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() {
            return Err("line size must be a power of two".into());
        }
        if self.assoc == 0 {
            return Err("associativity must be positive".into());
        }
        if !self.size_bytes.is_multiple_of(self.line_bytes * self.assoc as u64) {
            return Err("capacity must divide evenly into sets".into());
        }
        Ok(())
    }
}

/// Kind of access.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Access {
    /// Load.
    Read,
    /// Store.
    Write,
}

/// Result of a cache probe.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum LookupResult {
    /// Line present; LRU and dirty state updated.
    Hit,
    /// Line absent; the caller must fetch and later [`Cache::fill`].
    Miss,
}

/// A victim evicted by a fill.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Eviction {
    /// Line-aligned address of the victim.
    pub line_addr: u64,
    /// Whether the victim was dirty (requires a write-back).
    pub dirty: bool,
}

/// Hit/miss statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Read hits.
    pub read_hits: u64,
    /// Read misses.
    pub read_misses: u64,
    /// Write hits.
    pub write_hits: u64,
    /// Write misses.
    pub write_misses: u64,
    /// Dirty evictions (write-backs generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Overall hit rate.
    pub fn hit_rate(&self) -> f64 {
        let hits = self.read_hits + self.write_hits;
        let total = hits + self.read_misses + self.write_misses;
        if total == 0 {
            return 0.0;
        }
        hits as f64 / total as f64
    }
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    last_use: u64,
    filled_at: u64,
}

/// A set-associative LRU cache tag store (see the crate-level example).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
    stats: CacheStats,
    /// `log2(line_bytes)` (line size is validated to be a power of two):
    /// the address decode runs on every probe of every L1 and L2, so the
    /// runtime divisions are precomputed into shifts.
    line_shift: u32,
    /// Set count, cached off the config.
    sets_count: u64,
    /// `log2(sets_count)` when the set count is a power of two (the
    /// common case), else `None` and the decode falls back to division.
    set_shift: Option<u32>,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache configuration");
        let empty = Line { tag: 0, valid: false, dirty: false, last_use: 0, filled_at: 0 };
        let sets_count = cfg.sets() as u64;
        Cache {
            sets: vec![vec![empty; cfg.assoc]; cfg.sets()],
            tick: 0,
            stats: CacheStats::default(),
            line_shift: cfg.line_bytes.trailing_zeros(),
            sets_count,
            set_shift: sets_count.is_power_of_two().then(|| sets_count.trailing_zeros()),
            cfg,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        match self.set_shift {
            Some(s) => ((line & (self.sets_count - 1)) as usize, line >> s),
            None => ((line % self.sets_count) as usize, line / self.sets_count),
        }
    }

    /// Probes the cache. Hits update LRU state and (for write-back writes)
    /// the dirty bit. Misses update statistics only; the caller is
    /// responsible for fetching and [`fill`](Self::fill)ing the line.
    pub fn access(&mut self, addr: u64, access: Access) -> LookupResult {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let tick = self.tick;
        let write_back = self.cfg.write_policy == WritePolicy::WriteBack;
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = tick;
            match access {
                Access::Read => self.stats.read_hits += 1,
                Access::Write => {
                    self.stats.write_hits += 1;
                    if write_back {
                        line.dirty = true;
                    }
                }
            }
            LookupResult::Hit
        } else {
            match access {
                Access::Read => self.stats.read_misses += 1,
                Access::Write => self.stats.write_misses += 1,
            }
            LookupResult::Miss
        }
    }

    /// Probes without modifying any state.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets[set].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Installs the line containing `addr`, evicting the LRU victim if the
    /// set is full. Returns the victim if one was evicted.
    ///
    /// Filling a line that is already present is a no-op returning `None`
    /// (two merged misses may both attempt the fill).
    pub fn fill(&mut self, addr: u64) -> Option<Eviction> {
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        if self.sets[set].iter().any(|l| l.valid && l.tag == tag) {
            return None;
        }
        let tick = self.tick;
        let sets_count = self.sets_count;
        let line_bytes = self.cfg.line_bytes;
        let policy = self.cfg.replacement;
        let way = self.sets[set].iter().position(|l| !l.valid).unwrap_or_else(|| match policy {
            ReplacementPolicy::Lru => {
                self.sets[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.last_use)
                    .expect("associativity > 0")
                    .0
            }
            ReplacementPolicy::Fifo => {
                self.sets[set]
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.filled_at)
                    .expect("associativity > 0")
                    .0
            }
            ReplacementPolicy::Random => {
                // SplitMix-style hash of the access counter: cheap,
                // uniform enough, and fully deterministic.
                let mut z = tick.wrapping_add(0x9e37_79b9_7f4a_7c15);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                ((z ^ (z >> 31)) % self.cfg.assoc as u64) as usize
            }
        });
        let victim = self.sets[set][way];
        self.sets[set][way] =
            Line { tag, valid: true, dirty: false, last_use: tick, filled_at: tick };
        if victim.valid {
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            Some(Eviction {
                line_addr: (victim.tag * sets_count + set as u64) * line_bytes,
                dirty: victim.dirty,
            })
        } else {
            None
        }
    }

    /// Marks the line containing `addr` dirty if present (used when a
    /// write is performed into a just-filled line under write-allocate).
    pub fn mark_dirty(&mut self, addr: u64) {
        let (set, tag) = self.set_and_tag(addr);
        if let Some(line) = self.sets[set].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.dirty = true;
        }
    }

    /// Number of valid lines (for tests and occupancy diagnostics).
    pub fn valid_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64 B = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: ReplacementPolicy::Lru,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.access(0x100, Access::Read), LookupResult::Miss);
        assert_eq!(c.fill(0x100), None);
        assert_eq!(c.access(0x100, Access::Read), LookupResult::Hit);
        assert_eq!(c.access(0x13f, Access::Read), LookupResult::Hit, "same line");
        assert_eq!(c.access(0x140, Access::Read), LookupResult::Miss, "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Three lines mapping to set 0: line addresses with stride
        // sets*line = 4*64 = 256.
        c.fill(0x000);
        c.fill(0x100);
        c.access(0x000, Access::Read); // make 0x000 most recent
        let ev = c.fill(0x200).expect("set full, victim evicted");
        assert_eq!(ev.line_addr, 0x100, "LRU victim");
        assert!(!ev.dirty);
        assert!(c.contains(0x000));
        assert!(c.contains(0x200));
        assert!(!c.contains(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.fill(0x000);
        assert_eq!(c.access(0x000, Access::Write), LookupResult::Hit);
        c.fill(0x100);
        c.access(0x100, Access::Read);
        // Evict 0x000 (LRU after the 0x100 touch? No: 0x000 was written at
        // tick2, 0x100 read later). Touch order: fill0, write0, fill1,
        // read1 -> LRU is 0x000.
        let ev = c.fill(0x200).unwrap();
        assert_eq!(ev.line_addr, 0x000);
        assert!(ev.dirty, "written line must come back dirty");
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn write_through_never_dirty() {
        let mut c = Cache::new(CacheConfig {
            write_policy: WritePolicy::WriteThrough,
            ..CacheConfig::l1_16k()
        });
        c.fill(0x40);
        c.access(0x40, Access::Write);
        // Force eviction of everything in that set.
        let sets = c.config().sets() as u64;
        let mut dirty_seen = false;
        for i in 1..=c.config().assoc as u64 {
            if let Some(ev) = c.fill(0x40 + i * sets * 64) {
                dirty_seen |= ev.dirty;
            }
        }
        assert!(!dirty_seen);
    }

    #[test]
    fn fill_is_idempotent() {
        let mut c = tiny();
        c.fill(0x80);
        assert_eq!(c.fill(0x80), None);
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn eviction_address_roundtrips() {
        let mut c = tiny();
        // Fill two ways of set 1 then evict; the reported victim address
        // must map back to set 1.
        c.fill(0x40);
        c.fill(0x140);
        let ev = c.fill(0x240).unwrap();
        assert_eq!(ev.line_addr, 0x40);
    }

    #[test]
    fn capacity_and_associativity_respected() {
        let mut c = tiny();
        for i in 0..64 {
            c.access(i * 64, Access::Read);
            c.fill(i * 64);
        }
        assert_eq!(c.valid_lines(), 8, "4 sets x 2 ways");
    }

    #[test]
    fn hit_rate_statistic() {
        let mut c = tiny();
        c.access(0, Access::Read);
        c.fill(0);
        for _ in 0..9 {
            c.access(0, Access::Read);
        }
        assert!((c.stats().hit_rate() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn fifo_evicts_oldest_fill_despite_recent_use() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 512,
            line_bytes: 64,
            assoc: 2,
            write_policy: WritePolicy::WriteBack,
            write_allocate: true,
            replacement: ReplacementPolicy::Fifo,
        });
        c.fill(0x000);
        c.fill(0x100);
        c.access(0x000, Access::Read); // recency must not matter
        let ev = c.fill(0x200).unwrap();
        assert_eq!(ev.line_addr, 0x000, "FIFO evicts the oldest fill");
    }

    #[test]
    fn random_replacement_is_deterministic_and_in_set() {
        let mk = || {
            let mut c = Cache::new(CacheConfig {
                size_bytes: 512,
                line_bytes: 64,
                assoc: 2,
                write_policy: WritePolicy::WriteBack,
                write_allocate: true,
                replacement: ReplacementPolicy::Random,
            });
            c.fill(0x000);
            c.fill(0x100);
            c.fill(0x200).unwrap().line_addr
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b, "random replacement must be reproducible");
        assert!(a == 0x000 || a == 0x100);
    }

    #[test]
    fn paper_configs_validate() {
        CacheConfig::l1_16k().validate().unwrap();
        CacheConfig::l2_128k().validate().unwrap();
        assert_eq!(CacheConfig::l1_16k().sets(), 64);
        assert_eq!(CacheConfig::l2_128k().sets(), 256);
    }
}
