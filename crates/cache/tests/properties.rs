//! Property-based tests for caches, MSHRs and the coalescer.

use proptest::prelude::*;
use std::collections::HashSet;
use tenoc_cache::{
    coalesce, Access, Cache, CacheConfig, LookupResult, MshrOutcome, MshrTable, ReplacementPolicy,
    WritePolicy,
};

fn tiny_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        line_bytes: 64,
        assoc: 2,
        write_policy: WritePolicy::WriteBack,
        write_allocate: true,
        replacement: ReplacementPolicy::Lru,
    })
}

proptest! {
    /// The cache never holds more lines than its capacity, regardless of
    /// the access/fill sequence.
    #[test]
    fn capacity_never_exceeded(ops in prop::collection::vec((0u64..4096, any::<bool>()), 1..300)) {
        let mut c = tiny_cache();
        for (addr, write) in ops {
            let a = addr * 16; // denser than lines to exercise aliasing
            let acc = if write { Access::Write } else { Access::Read };
            if c.access(a, acc) == LookupResult::Miss {
                c.fill(a);
            }
            prop_assert!(c.valid_lines() <= 16, "1 KiB / 64 B = 16 lines");
        }
    }

    /// After a fill, the line is present until evicted by a conflicting
    /// fill; a hit never reports for an address that was never filled.
    #[test]
    fn hits_only_after_fills(ops in prop::collection::vec(0u64..64, 1..200)) {
        let mut c = tiny_cache();
        let mut filled: HashSet<u64> = HashSet::new();
        for addr in ops {
            let a = addr * 64;
            match c.access(a, Access::Read) {
                LookupResult::Hit => {
                    prop_assert!(filled.contains(&a), "hit for never-filled {a:#x}");
                }
                LookupResult::Miss => {
                    if let Some(ev) = c.fill(a) {
                        filled.remove(&ev.line_addr);
                    }
                    filled.insert(a);
                }
            }
        }
    }

    /// Evicted dirty lines are exactly those written since their fill.
    #[test]
    fn dirty_evictions_track_writes(ops in prop::collection::vec((0u64..48, any::<bool>()), 1..200)) {
        let mut c = tiny_cache();
        let mut dirty: HashSet<u64> = HashSet::new();
        for (addr, write) in ops {
            let a = addr * 64;
            let acc = if write { Access::Write } else { Access::Read };
            match c.access(a, acc) {
                LookupResult::Hit => {
                    if write {
                        dirty.insert(a);
                    }
                }
                LookupResult::Miss => {
                    if let Some(ev) = c.fill(a) {
                        prop_assert_eq!(
                            ev.dirty,
                            dirty.remove(&ev.line_addr),
                            "dirty flag mismatch for {:#x}", ev.line_addr
                        );
                    }
                    if write {
                        c.mark_dirty(a);
                        dirty.insert(a);
                    }
                }
            }
        }
    }

    /// MSHR bookkeeping: every allocation is eventually released with the
    /// right number of merged targets.
    #[test]
    fn mshr_targets_roundtrip(lines in prop::collection::vec(0u64..8, 1..100)) {
        let mut m = MshrTable::new(64, 64);
        let mut expect: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for (i, line) in lines.iter().enumerate() {
            let a = line * 64;
            match m.allocate(a, i as u64) {
                MshrOutcome::Allocated | MshrOutcome::Merged => {
                    expect.entry(a).or_default().push(i as u64);
                }
                MshrOutcome::Full => {}
            }
        }
        for (a, targets) in expect {
            prop_assert_eq!(m.complete(a), targets);
        }
        prop_assert!(m.is_empty());
    }

    /// Coalescing output is the distinct line set of the input, capped at
    /// the warp width.
    #[test]
    fn coalesce_distinct_and_complete(addrs in prop::collection::vec(prop::option::of(0u64..100_000), 0..32)) {
        let lines = coalesce(addrs.clone(), 64);
        // Distinct.
        let set: HashSet<&u64> = lines.iter().collect();
        prop_assert_eq!(set.len(), lines.len());
        // Complete and line-aligned.
        for a in addrs.iter().flatten() {
            prop_assert!(lines.contains(&(a & !63)));
        }
        for l in &lines {
            prop_assert_eq!(l % 64, 0);
        }
        prop_assert!(lines.len() <= 32);
    }

    /// Write-through caches never report dirty evictions.
    #[test]
    fn write_through_never_dirty(ops in prop::collection::vec(0u64..64, 1..150)) {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            line_bytes: 64,
            assoc: 2,
            write_policy: WritePolicy::WriteThrough,
            write_allocate: true,
            replacement: ReplacementPolicy::Lru,
        });
        for addr in ops {
            let a = addr * 64;
            if c.access(a, Access::Write) == LookupResult::Miss {
                if let Some(ev) = c.fill(a) {
                    prop_assert!(!ev.dirty);
                }
            }
        }
    }
}
