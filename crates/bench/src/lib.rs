//! # tenoc-bench — figure/table regeneration harnesses
//!
//! Each `[[bench]]` target of this crate regenerates one table or figure
//! of *Throughput-Effective On-Chip Networks for Manycore Accelerators*
//! (MICRO 2010) and prints the same rows/series the paper reports:
//!
//! | target | reproduces |
//! |---|---|
//! | `fig02_design_space` | Figure 2 (IPC vs 1/mm² scatter) |
//! | `fig06_limit_study` | Figure 6 (bandwidth limit study) |
//! | `fig07_perfect_noc` | Figure 7 (perfect-NoC speedups) |
//! | `fig08_mc_injection` | Figure 8 (speedup vs MC injection rate) |
//! | `fig09_bw_vs_latency` | Figure 9 (2x bandwidth vs 1-cycle router) |
//! | `fig10_latency_ratio` | Figure 10 (NoC latency ratio) |
//! | `fig11_mc_stall` | Figure 11 (MC reply-injection stalls) |
//! | `fig16_placement` | Figure 16 (checkerboard MC placement) |
//! | `fig17_checkerboard_routing` | Figure 17 (CR vs DOR) |
//! | `fig18_double_network` | Figure 18 (channel-sliced double network) |
//! | `fig19_multiport` | Figure 19 (multi-port MC routers) |
//! | `fig20_combined` | Figure 20 (combined throughput-effective design) |
//! | `fig21_open_loop` | Figure 21 (open-loop latency curves) |
//! | `tab06_area` | Table VI (area model) |
//! | `perf_micro` | criterion microbenchmarks of the simulator itself |
//!
//! Run all of them with `cargo bench --workspace`. By default kernels are
//! scaled down (`TENOC_SCALE`, default 0.12) so the full set finishes in
//! minutes; set `TENOC_FULL=1` for full-length runs.
//!
//! Suite sweeps fan out over `tenoc-harness`'s worker pool (one cell per
//! `(preset, benchmark)` pair): `TENOC_JOBS=N` picks the worker count,
//! defaulting to the machine's available parallelism. Results are
//! bit-identical at any job count and reproduce exactly what the old
//! sequential loops printed (every cell pins the system default seed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tenoc_core::experiments::SuiteResult;
use tenoc_harness::{engine, SeedMode, SweepGrid};
use tenoc_workloads::TrafficClass;

pub use tenoc_core::experiments;
pub use tenoc_core::presets::Preset;

/// Workload seed of every bench cell: the closed-loop system's default,
/// pinned so the engine reproduces the sequential loops' numbers.
const BENCH_SEED: u64 = 0x7e0c;

/// Prints a standard figure header with the scale in effect.
pub fn header(fig: &str, what: &str) {
    let scale = tenoc_core::experiments::scale_from_env();
    let jobs = tenoc_harness::jobs_from_env();
    println!("================================================================");
    println!("{fig}: {what}");
    println!("(kernel scale {scale}; TENOC_FULL=1 for full-length runs; {jobs} jobs)");
    println!("================================================================");
}

/// Runs each preset's full 31-benchmark suite through the parallel sweep
/// engine, returning one result list per preset in suite order.
///
/// Equivalent to mapping [`experiments::run_suite`] over `presets`, but
/// all `presets x benchmarks` cells share one worker pool, so the grid
/// parallelizes across `TENOC_JOBS` workers instead of running strictly
/// sequentially.
///
/// # Panics
///
/// Panics if any run hits the safety cycle limit (closed-loop runs must
/// always drain).
pub fn run_suites_par(presets: &[Preset], scale: f64) -> Vec<Vec<SuiteResult>> {
    let names: Vec<String> = tenoc_workloads::suite().iter().map(|s| s.name.clone()).collect();
    let grid =
        SweepGrid::new(presets.to_vec(), names, scale).with_seed_mode(SeedMode::Fixed(BENCH_SEED));
    let results = engine::run_grid(&grid, tenoc_harness::jobs_from_env());
    results
        .chunks(grid.benchmarks.len())
        .map(|chunk| {
            chunk
                .iter()
                .map(|r| SuiteResult {
                    name: r.cell.benchmark.clone(),
                    class: r.class,
                    metrics: r.metrics,
                })
                .collect()
        })
        .collect()
}

/// Runs one preset's whole suite through the parallel sweep engine.
///
/// # Panics
///
/// Panics if any run hits the safety cycle limit.
pub fn run_suite_par(preset: Preset, scale: f64) -> Vec<SuiteResult> {
    run_suites_par(&[preset], scale).pop().expect("one preset in, one sweep out")
}

/// Prints one per-benchmark percentage row set.
pub fn print_speedup_rows(rows: &[(String, TrafficClass, f64)]) {
    println!("{:>6} {:>5} {:>9}", "bench", "class", "value");
    for (name, class, v) in rows {
        println!("{name:>6} {class:>5} {v:>+8.1}%");
    }
}

/// Harmonic mean over the speedup *ratios* implied by percentage rows,
/// expressed back as a percentage.
pub fn hm_of_percent(rows: &[(String, TrafficClass, f64)]) -> f64 {
    let hm = tenoc_core::harmonic_mean(rows.iter().map(|(_, _, p)| 1.0 + p / 100.0));
    (hm - 1.0) * 100.0
}

/// Harmonic mean restricted to one class, as a percentage.
pub fn hm_of_percent_class(rows: &[(String, TrafficClass, f64)], class: TrafficClass) -> f64 {
    let hm = tenoc_core::harmonic_mean(
        rows.iter().filter(|(_, c, _)| *c == class).map(|(_, _, p)| 1.0 + p / 100.0),
    );
    (hm - 1.0) * 100.0
}

/// Convenience accessor for a benchmark's metrics within a sweep.
///
/// # Panics
///
/// Panics if the benchmark is missing from the sweep.
pub fn find<'a>(results: &'a [SuiteResult], name: &str) -> &'a SuiteResult {
    results.iter().find(|r| r.name == name).expect("benchmark present in sweep")
}
