//! Figure 9: scaling network bandwidth versus router latency — doubling
//! channel width (16 B -> 32 B) against replacing the 4-cycle routers
//! with aggressive 1-cycle routers.

use tenoc_bench::{experiments, header, hm_of_percent, run_suites_par, Preset};

fn main() {
    header("Figure 9", "2x channel bandwidth vs 1-cycle routers (speedup over baseline)");
    let scale = experiments::scale_from_env();
    let [base, bw2, r1]: [_; 3] =
        run_suites_par(&[Preset::BaselineTbDor, Preset::TbDor2xBw, Preset::TbDor1Cycle], scale)
            .try_into()
            .unwrap();
    let rows_bw = experiments::speedups_percent(&base, &bw2);
    let rows_r1 = experiments::speedups_percent(&base, &r1);
    println!("{:>6} {:>5} {:>12} {:>14}", "bench", "class", "2x bandwidth", "1-cycle router");
    for (b, l) in rows_bw.iter().zip(&rows_r1) {
        println!("{:>6} {:>5} {:>+11.1}% {:>+13.1}%", b.0, b.1.to_string(), b.2, l.2);
    }
    println!("\nHM speedup 2x bandwidth:   {:+.1}%  (paper: 27%)", hm_of_percent(&rows_bw));
    println!("HM speedup 1-cycle router: {:+.1}%  (paper: 2.3%)", hm_of_percent(&rows_r1));
    println!("paper conclusion: these workloads are bandwidth-, not latency-sensitive");
}
