//! Criterion microbenchmarks of the simulator itself: router-pipeline
//! throughput under load, DRAM scheduling throughput and a closed-loop
//! smoke configuration. These track simulator performance regressions;
//! they do not reproduce paper data.

use criterion::{criterion_group, criterion_main, Criterion};
use tenoc_core::presets::Preset;
use tenoc_core::system::{System, SystemConfig};
use tenoc_noc::{Interconnect, Network, NetworkConfig, Packet};
use tenoc_workloads::by_name;

fn bench_network_step(c: &mut Criterion) {
    c.bench_function("network_step_loaded_mesh", |b| {
        let cfg = NetworkConfig::baseline_mesh(6);
        let mcs = cfg.mc_nodes.clone();
        let mut net = Network::new(cfg);
        // Pre-load with traffic and keep re-injecting.
        let mut i = 0u64;
        b.iter(|| {
            let src = (i % 28) as usize;
            let dst = mcs[(i % 8) as usize];
            let _ = net.try_inject(src, Packet::request(src, dst, 8, i));
            net.step();
            for &mc in &mcs {
                while let Some(req) = net.pop(mc) {
                    let _ =
                        net.try_inject(mc, Packet::reply(mc, req.header.src, 64, req.header.tag));
                }
            }
            i += 1;
        });
    });
}

fn bench_dram(c: &mut Criterion) {
    use tenoc_dram::{DramConfig, DramRequest, MemoryController};
    c.bench_function("dram_frfcfs_step", |b| {
        let mut mc = MemoryController::new(DramConfig::gddr3());
        let mut now = 0u64;
        let mut i = 0u64;
        b.iter(|| {
            let _ = mc.push(DramRequest::read((i % 512) * 64, i, now));
            mc.step(now);
            while mc.pop_completed(now).is_some() {}
            now += 1;
            i += 1;
        });
    });
}

fn bench_closed_loop(c: &mut Criterion) {
    c.bench_function("closed_loop_smoke_rd", |b| {
        let spec = by_name("RD").unwrap().scaled(0.02);
        b.iter(|| {
            let cfg = SystemConfig::with_icnt(Preset::BaselineTbDor.icnt(6));
            let mut sys = System::new(cfg, &spec);
            sys.run()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_network_step, bench_dram, bench_closed_loop
}
criterion_main!(benches);
