//! Table I / Section III-B: the two-letter workload classification,
//! re-derived from *measured* behavior rather than asserted.
//!
//! The paper's rule: the first letter is H if the perfect-network speedup
//! exceeds 30%; the second letter is H if accepted traffic with a perfect
//! network exceeds 1 byte/cycle/node averaged over all nodes. All
//! benchmarks must fall into LL, LH or HH (an HL kernel — light traffic
//! yet network-sensitive — should not exist).

use tenoc_bench::{experiments, header, run_suites_par, Preset};

fn main() {
    header("Table I / Sec. III-B", "measured LL/LH/HH classification");
    let scale = experiments::scale_from_env();
    let [base, perfect]: [_; 2] =
        run_suites_par(&[Preset::BaselineTbDor, Preset::Perfect], scale).try_into().unwrap();
    println!(
        "{:>6} {:>8} {:>9} {:>12} {:>9} {:>6}",
        "bench", "intended", "speedup", "B/cyc/node", "measured", "match"
    );
    let mut matches = 0;
    let mut hl = 0;
    for (b, p) in base.iter().zip(&perfect) {
        let speedup = (p.metrics.ipc / b.metrics.ipc - 1.0) * 100.0;
        // Accepted traffic on the perfect network, bytes/cycle/node at the
        // interconnect clock (16-byte flits).
        let bytes = p.metrics.accepted_flits_per_node * 16.0;
        let first = if speedup > 30.0 { 'H' } else { 'L' };
        let second = if bytes > 1.0 { 'H' } else { 'L' };
        let measured = format!("{first}{second}");
        let intended = b.class.to_string();
        let ok = measured == intended;
        matches += ok as u32;
        hl += (measured == "HL") as u32;
        println!(
            "{:>6} {:>8} {:>+8.1}% {:>12.2} {:>9} {:>6}",
            b.name,
            intended,
            speedup,
            bytes,
            measured,
            if ok { "yes" } else { "NO" }
        );
    }
    println!("\n{matches}/31 benchmarks land in their intended class at this scale");
    println!("HL occurrences: {hl} (the paper argues HL cannot exist)");
    println!("note: NNC is the paper's own exception — \"insufficient number of");
    println!("threads to fully occupy the pipeline or saturate the memory system\" —");
    println!("so its perfect-network speedup is latency- rather than bandwidth-driven");
}
