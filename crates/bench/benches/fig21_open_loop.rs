//! Figure 21: open-loop latency versus offered load under many-to-few-
//! to-many traffic (uniform random and hotspot), for the five network
//! organizations the paper compares.

use tenoc_bench::header;
use tenoc_noc::openloop::{run_open_loop, OpenLoopConfig, TrafficPattern};
use tenoc_noc::{Mesh, NetworkConfig, Placement};

fn configs() -> Vec<(&'static str, NetworkConfig)> {
    let tb = NetworkConfig::baseline_mesh(6);
    let tb2x = NetworkConfig { channel_bytes: 32, ..tb.clone() };
    let cp_dor = {
        let mesh = Mesh::all_full(6);
        let mc_nodes = Mesh::checkerboard(6).mcs(Placement::Checkerboard, 8);
        NetworkConfig { mesh, mc_nodes, ..tb.clone() }
    };
    let cp_cr = NetworkConfig::checkerboard_mesh(6);
    let mut cp_cr_2p = cp_cr.clone();
    cp_cr_2p.mc_inject_ports = 2;
    vec![
        ("TB-DOR", tb),
        ("2x-TB-DOR", tb2x),
        ("CP-DOR", cp_dor),
        ("CP-CR", cp_cr),
        ("CP-CR-2P", cp_cr_2p),
    ]
}

fn sweep(pattern: TrafficPattern, title: &str) {
    println!("\n--- {title} ---");
    let quick = std::env::var("TENOC_FULL").map(|v| v == "1").unwrap_or(false);
    let (warmup, measure, drain) =
        if quick { (10_000, 20_000, 30_000) } else { (2_000, 5_000, 10_000) };
    let rates: Vec<f64> = (1..=12).map(|i| i as f64 * 0.01).collect();
    print!("{:>10}", "rate");
    for (name, _) in configs() {
        print!(" {name:>10}");
    }
    println!();
    let mut curves: Vec<Vec<Option<f64>>> = vec![Vec::new(); configs().len()];
    for &rate in &rates {
        for (i, (_, cfg)) in configs().into_iter().enumerate() {
            // Stop extending a curve once it saturates.
            if matches!(curves[i].last(), Some(None)) {
                curves[i].push(None);
                continue;
            }
            let mut ol = OpenLoopConfig::new(cfg, rate, pattern);
            ol.warmup = warmup;
            ol.measure = measure;
            ol.drain = drain;
            let r = run_open_loop(&ol);
            curves[i].push(if r.saturated() { None } else { Some(r.avg_latency) });
        }
        print!("{rate:>10.2}");
        for c in &curves {
            match c.last().unwrap() {
                Some(l) => print!(" {l:>10.1}"),
                None => print!(" {:>10}", "sat"),
            }
        }
        println!();
    }
}

fn main() {
    header("Figure 21", "open-loop latency vs injection rate (1-flit requests, 4-flit replies)");
    sweep(TrafficPattern::UniformRandom, "(a) uniform random many-to-few-to-many");
    sweep(
        TrafficPattern::Hotspot { hot: 0, fraction: 0.2 },
        "(b) hotspot many-to-few-to-many (20% of requests to one MC)",
    );
    println!("\npaper: CP placement and 2P injection raise saturation throughput;");
    println!("2P helps most under hotspot traffic");
}
