//! Criterion benchmarks of the cycle kernel: the fig. 20 combined design
//! point end to end, the active-set scheduler against the unconditional
//! full sweep on the same traffic, and the cost of ticking a drained
//! network. These track simulator performance, not paper data; the
//! checked-in `BENCH_engine.json` (from `tenoc engine-bench`) records the
//! headline simulated-cycles-per-second figure.

use criterion::{criterion_group, criterion_main, Criterion};
use tenoc_core::presets::Preset;
use tenoc_core::system::{System, SystemConfig};
use tenoc_noc::{Interconnect, Network, NetworkConfig, Packet, Tick};
use tenoc_workloads::by_name;

fn bench_fig20_combined(c: &mut Criterion) {
    c.bench_function("engine_fig20_combined_rd", |b| {
        let spec = by_name("RD").unwrap().scaled(0.02);
        b.iter(|| {
            let cfg = SystemConfig::with_icnt(Preset::ThroughputEffective.icnt(6));
            let mut sys = System::new(cfg, &spec);
            sys.run()
        });
    });
}

fn bench_scheduler_vs_sweep(c: &mut Criterion) {
    for (id, full_sweep) in [("network_tick_active_set", false), ("network_tick_full_sweep", true)]
    {
        c.bench_function(id, |b| {
            let cfg = NetworkConfig::baseline_mesh(6);
            let mcs = cfg.mc_nodes.clone();
            let mut net = Network::new(cfg);
            net.set_full_sweep(full_sweep);
            let mut i = 0u64;
            b.iter(|| {
                let src = (i % 28) as usize;
                let dst = mcs[(i % 8) as usize];
                let _ = net.try_inject(src, Packet::request(src, dst, 8, i));
                net.tick();
                for &mc in &mcs {
                    while net.pop(mc).is_some() {}
                }
                i += 1;
            });
        });
    }
}

fn bench_drained_tick(c: &mut Criterion) {
    c.bench_function("network_tick_drained", |b| {
        let mut net = Network::new(NetworkConfig::baseline_mesh(6));
        net.tick();
        b.iter(|| net.tick());
    });
}

criterion_group!(engine, bench_fig20_combined, bench_scheduler_vs_sweep, bench_drained_tick);
criterion_main!(engine);
