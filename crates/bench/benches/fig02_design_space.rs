//! Figure 2: the throughput-effective design space.
//!
//! For each design point, prints average application throughput (IPC),
//! chip area, inverse area (the paper's y-axis) and throughput-
//! effectiveness (IPC/mm²), plus the improvement over the balanced
//! baseline mesh.

use tenoc_bench::{experiments, header, run_suites_par, Preset};
use tenoc_core::area::{throughput_effectiveness, AreaModel};
use tenoc_core::arithmetic_mean;

fn main() {
    header("Figure 2", "throughput-effective design space (IPC vs 1/mm^2)");
    let scale = experiments::scale_from_env();
    let points = [
        ("Balanced Mesh (Sec. III)", Preset::BaselineTbDor),
        ("2x BW", Preset::TbDor2xBw),
        ("Thr. Eff. (Section IV)", Preset::ThroughputEffective),
        ("Thr. Eff. (single net)", Preset::CpCr2pSingle),
        ("Ideal NoC", Preset::Perfect),
    ];
    let presets: Vec<Preset> = points.iter().map(|(_, p)| *p).collect();
    let suites = run_suites_par(&presets, scale);
    let mut rows = Vec::new();
    for ((label, preset), results) in points.iter().zip(&suites) {
        let avg_ipc = arithmetic_mean(results.iter().map(|r| r.metrics.ipc));
        let area = AreaModel::chip_area(&preset.icnt(6));
        rows.push((*label, avg_ipc, area));
    }
    let base_te = throughput_effectiveness(rows[0].1, &rows[0].2);
    println!(
        "{:>26} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "design", "avg IPC", "area [mm^2]", "1/mm^2", "IPC/mm^2", "vs base"
    );
    for (label, ipc, area) in &rows {
        let te = throughput_effectiveness(*ipc, area);
        println!(
            "{label:>26} {ipc:>10.1} {:>12.1} {:>12.6} {:>12.4} {:>+8.1}%",
            area.total(),
            1.0 / area.total(),
            te,
            (te / base_te - 1.0) * 100.0,
        );
    }
    println!("\npaper: Thr.Eff. improves IPC/mm^2 by 25.4% over the balanced mesh");
}
