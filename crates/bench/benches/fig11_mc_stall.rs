//! Figure 11: fraction of time the MCs' reply injection is blocked by the
//! network — the many-to-few-to-many bottleneck signal.

use tenoc_bench::{experiments, header, run_suite_par, Preset};

fn main() {
    header("Figure 11", "fraction of time MC reply injection is blocked (baseline mesh)");
    let scale = experiments::scale_from_env();
    let base = run_suite_par(Preset::BaselineTbDor, scale);
    println!("{:>6} {:>5} {:>10}", "bench", "class", "% stalled");
    let mut max = (String::new(), 0.0f64);
    for r in &base {
        let pct = r.metrics.mc_stall_fraction * 100.0;
        println!("{:>6} {:>5} {:>9.1}%", r.name, r.class.to_string(), pct);
        if pct > max.1 {
            max = (r.name.clone(), pct);
        }
    }
    println!("\nmax: {} at {:.1}% (paper: up to ~70% for some HH benchmarks)", max.0, max.1);
}
