//! Figure 19: multi-port MC routers — extra injection ports, extra
//! ejection ports and both, over the double checkerboard network.

use tenoc_bench::{experiments, header, hm_of_percent, run_suites_par, Preset};

fn main() {
    header("Figure 19", "multi-port MC routers over the double CP-CR network");
    let scale = experiments::scale_from_env();
    let [base, inj, ej, both]: [_; 4] = run_suites_par(
        &[
            Preset::DoubleCpCr,
            Preset::DoubleCpCr2InjPorts,
            Preset::DoubleCpCr2EjPorts,
            Preset::DoubleCpCr2Both,
        ],
        scale,
    )
    .try_into()
    .unwrap();
    let ri = experiments::speedups_percent(&base, &inj);
    let re = experiments::speedups_percent(&base, &ej);
    let rb = experiments::speedups_percent(&base, &both);
    println!("{:>6} {:>5} {:>10} {:>10} {:>10}", "bench", "class", "2 inj", "2 ej", "both");
    for ((a, b), c) in ri.iter().zip(&re).zip(&rb) {
        println!("{:>6} {:>5} {:>+9.1}% {:>+9.1}% {:>+9.1}%", a.0, a.1.to_string(), a.2, b.2, c.2);
    }
    println!(
        "\nHM speedups: 2 inj {:+.1}%, 2 ej {:+.1}%, both {:+.1}%",
        hm_of_percent(&ri),
        hm_of_percent(&re),
        hm_of_percent(&rb)
    );
    println!("paper: extra injection ports help broadly (MC blocked time drops ~38.5%);");
    println!("extra ejection ports help only a few benchmarks (via DRAM row locality)");
}
