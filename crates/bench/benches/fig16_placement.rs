//! Figure 16: overall speedup of the staggered checkerboard MC placement
//! over the baseline top-bottom placement (both DOR, 2 VCs).

use tenoc_bench::{experiments, header, hm_of_percent, print_speedup_rows, run_suites_par, Preset};

fn main() {
    header("Figure 16", "checkerboard MC placement vs top-bottom placement");
    let scale = experiments::scale_from_env();
    let [tb, cp]: [_; 2] =
        run_suites_par(&[Preset::BaselineTbDor, Preset::CpDor2vc], scale).try_into().unwrap();
    let rows = experiments::speedups_percent(&tb, &cp);
    print_speedup_rows(&rows);
    println!("\nHM speedup: {:+.1}% (paper: 13.2%)", hm_of_percent(&rows));
}
