//! Figure 18: channel-sliced double network (two 8 B networks, one per
//! traffic class) versus the single 16 B network with 4 VCs — both with
//! checkerboard routing and placement.

use tenoc_bench::{experiments, header, hm_of_percent, print_speedup_rows, run_suites_par, Preset};

fn main() {
    header("Figure 18", "double network (2 x 8B) vs single network (16B, 4VC)");
    let scale = experiments::scale_from_env();
    let [single, double]: [_; 2] =
        run_suites_par(&[Preset::CpCr4vc, Preset::DoubleCpCr], scale).try_into().unwrap();
    let rows = experiments::speedups_percent(&single, &double);
    print_speedup_rows(&rows);
    println!("\nHM speedup: {:+.1}% (paper: ~+1%, i.e. no change, while the", hm_of_percent(&rows));
    println!("crossbar area shrinks quadratically — see tab06_area)");
}
