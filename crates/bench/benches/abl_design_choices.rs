//! Ablation studies for the design choices DESIGN.md calls out, beyond
//! what the paper itself sweeps:
//!
//! 1. DRAM scheduling: FR-FCFS versus strict FCFS.
//! 2. VC buffer depth at the baseline mesh (4 / 8 / 16 flits).
//! 3. Half-router pipeline depth (3-stage, as modeled, vs. a conservative
//!    4-stage half-router) — the paper notes "the performance impact of
//!    one less stage was negligible".

use tenoc_bench::{experiments, header, Preset};
use tenoc_core::system::{IcntConfig, SystemConfig};
use tenoc_dram::SchedulingPolicy;
use tenoc_noc::NetworkConfig;
use tenoc_workloads::by_name;

fn main() {
    header("Ablations", "design-choice sensitivity studies (not in the paper's figures)");
    let scale = experiments::scale_from_env();
    let names = ["HIS", "MM", "KM", "RD"];

    println!("\n-- DRAM scheduling policy (baseline mesh) --");
    println!("{:>6} {:>12} {:>12} {:>10}", "bench", "FR-FCFS IPC", "FCFS IPC", "FR gain");
    for name in names {
        let spec = by_name(name).unwrap();
        let frf = experiments::run_benchmark(Preset::BaselineTbDor, &spec, scale);
        let mut cfg = SystemConfig::with_icnt(Preset::BaselineTbDor.icnt(6));
        cfg.mc.policy = SchedulingPolicy::Fcfs;
        let fcfs = experiments::run_with_system_config(cfg, &spec, scale);
        println!(
            "{name:>6} {:>12.1} {:>12.1} {:>+9.1}%",
            frf.ipc,
            fcfs.ipc,
            (frf.ipc / fcfs.ipc - 1.0) * 100.0
        );
    }

    println!("\n-- VC buffer depth (baseline mesh, flits per VC) --");
    println!("{:>6} {:>10} {:>10} {:>10}", "bench", "depth 4", "depth 8", "depth 16");
    for name in names {
        let spec = by_name(name).unwrap();
        let mut row = format!("{name:>6}");
        for depth in [4usize, 8, 16] {
            let mut net = NetworkConfig::baseline_mesh(6);
            net.vc_depth = depth;
            let m = experiments::run_with_icnt(IcntConfig::Mesh(net), &spec, scale);
            row.push_str(&format!(" {:>10.1}", m.ipc));
        }
        println!("{row}");
    }

    println!("\n-- half-router pipeline depth (CP-CR mesh) --");
    println!("{:>6} {:>12} {:>12} {:>8}", "bench", "3-stage IPC", "4-stage IPC", "delta");
    for name in names {
        let spec = by_name(name).unwrap();
        let m3 = experiments::run_benchmark(Preset::CpCr4vc, &spec, scale);
        let mut net = NetworkConfig::checkerboard_mesh(6);
        net.half_router_stages = 4;
        let m4 = experiments::run_with_icnt(IcntConfig::Mesh(net), &spec, scale);
        println!(
            "{name:>6} {:>12.1} {:>12.1} {:>+7.1}%",
            m3.ipc,
            m4.ipc,
            (m3.ipc / m4.ipc - 1.0) * 100.0
        );
    }
    println!("\npaper note: \"we found the performance impact of one less stage was negligible\"");

    println!("\n-- warp scheduler (baseline mesh) --");
    println!("{:>6} {:>10} {:>10} {:>8}", "bench", "RR IPC", "GTO IPC", "RR gain");
    for name in names {
        let spec = by_name(name).unwrap();
        let rr = experiments::run_benchmark(Preset::BaselineTbDor, &spec, scale);
        let mut cfg = SystemConfig::with_icnt(Preset::BaselineTbDor.icnt(6));
        cfg.core.scheduler = tenoc_simt::SchedulerPolicy::GreedyThenOldest;
        let gto = experiments::run_with_system_config(cfg, &spec, scale);
        println!(
            "{name:>6} {:>10.1} {:>10.1} {:>+7.1}%",
            rr.ipc,
            gto.ipc,
            (rr.ipc / gto.ipc - 1.0) * 100.0
        );
    }
}
