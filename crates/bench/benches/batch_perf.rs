//! Criterion benchmark of the batched sweep kernel: `run_lockstep`
//! across batch widths B ∈ {1, 2, 4, 8, 16} on the fig. 20 combined
//! design point. Each sample builds B seed-varied RD probes and runs
//! them to completion in lockstep on the arena engine; the simulated
//! cycle total per width is printed once so wall times convert to
//! aggregate simulated-cycles-per-second (flat per-cycle cost as B
//! grows is the win the batching is after). Tracks simulator
//! performance, not paper data; `BENCH_engine.json` (from
//! `tenoc engine-bench --batch N`) records the headline figure.

use criterion::{criterion_group, criterion_main, Criterion};
use tenoc_core::presets::Preset;
use tenoc_core::run_lockstep;
use tenoc_core::system::{EngineKind, System, SystemConfig};
use tenoc_harness::cell_seed;
use tenoc_workloads::by_name;

fn cells(b: usize, scale: f64) -> Vec<System> {
    let spec = by_name("RD").unwrap().scaled(scale);
    (0..b)
        .map(|i| {
            let mut cfg = SystemConfig::with_icnt(Preset::ThroughputEffective.icnt(6));
            cfg.seed = cell_seed(0x7e0c, i as u64);
            cfg.engine = EngineKind::Arena;
            System::new(cfg, &spec)
        })
        .collect()
}

fn bench_batch_widths(c: &mut Criterion) {
    let scale = 0.02;
    for b in [1usize, 2, 4, 8, 16] {
        // Deterministic per width: measure the simulated-cycle total once
        // so a wall time divides out to aggregate sim cycles/s.
        let mut probe = cells(b, scale);
        let total: u64 = run_lockstep(&mut probe).iter().map(|m| m.icnt_cycles).sum();
        eprintln!("batch_perf: B={b} simulates {total} icnt cycles per sample");
        let id = format!("lockstep_rd_b{b}");
        c.bench_function(&id, |bench| {
            bench.iter(|| {
                let mut systems = cells(b, scale);
                run_lockstep(&mut systems)
            });
        });
    }
}

criterion_group!(batch, bench_batch_widths);
criterion_main!(batch);
