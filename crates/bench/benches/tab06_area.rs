//! Table VI: area estimates (65 nm) of every design point, from the
//! ORION-calibrated analytical model.

use tenoc_bench::{header, Preset};
use tenoc_core::area::{AreaModel, RouterArea, GTX280_AREA_MM2};
use tenoc_noc::RouterKind;

fn main() {
    header("Table VI", "area estimations (mm^2), overheads relative to the GTX280 die");
    println!(
        "{:>16} {:>9} {:>8} {:>8} {:>9} {:>10} {:>9} {:>9} {:>10}",
        "config",
        "xbar",
        "buffer",
        "alloc",
        "1 router",
        "router sum",
        "link sum",
        "% NoC",
        "total chip"
    );

    let rows: Vec<(&str, Vec<RouterArea>)> = vec![
        ("Baseline", vec![RouterArea::new(RouterKind::Full, 16, 2, 8, 1, 1)]),
        ("2x-BW", vec![RouterArea::new(RouterKind::Full, 32, 2, 8, 1, 1)]),
        (
            "CP-CR",
            vec![
                RouterArea::new(RouterKind::Half, 16, 4, 8, 1, 1),
                RouterArea::new(RouterKind::Full, 16, 4, 8, 1, 1),
            ],
        ),
        (
            "Double CP-CR",
            vec![
                RouterArea::new(RouterKind::Full, 8, 2, 8, 1, 1),
                RouterArea::new(RouterKind::Half, 8, 2, 8, 1, 1),
            ],
        ),
        (
            "Double CP-CR 2P",
            vec![
                RouterArea::new(RouterKind::Full, 8, 2, 8, 1, 1),
                RouterArea::new(RouterKind::Half, 8, 2, 8, 1, 1),
                RouterArea::new(RouterKind::Half, 8, 2, 8, 2, 1),
            ],
        ),
    ];
    let presets = [
        Preset::BaselineTbDor,
        Preset::TbDor2xBw,
        Preset::CpCr4vc,
        Preset::DoubleCpCr,
        Preset::ThroughputEffective,
    ];
    for ((name, routers), preset) in rows.iter().zip(presets) {
        let chip = AreaModel::chip_area(&preset.icnt(6));
        let fmt3 = |f: fn(&RouterArea) -> f64| {
            routers.iter().map(|r| format!("{:.2}", f(r))).collect::<Vec<_>>().join("/")
        };
        println!(
            "{name:>16} {:>9} {:>8} {:>8} {:>9} {:>10.2} {:>9.2} {:>8.2}% {:>10.1}",
            fmt3(|r| r.crossbar),
            fmt3(|r| r.buffer),
            fmt3(|r| r.allocator),
            routers.iter().map(|r| format!("{:.2}", r.total())).collect::<Vec<_>>().join("/"),
            chip.routers,
            chip.links,
            chip.noc_overhead() * 100.0,
            chip.total(),
        );
    }
    println!("\npaper Table VI reference (router sum / total chip):");
    println!("  Baseline 69.00 / 576.0   2x-BW 263.0 / 790.9   CP-CR 59.20 / 566.2");
    println!("  Double CP-CR 29.74 / 536.7   Double CP-CR 2P 30.44 / 537.4");
    println!(
        "half-router / full-router area ratio: {:.2} (paper: 0.56)",
        RouterArea::new(RouterKind::Half, 16, 4, 8, 1, 1).total()
            / RouterArea::new(RouterKind::Full, 16, 4, 8, 1, 1).total()
    );
    let _ = GTX280_AREA_MM2;
}
