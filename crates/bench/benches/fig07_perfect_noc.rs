//! Figure 7: speedup of a perfect interconnect over the baseline mesh,
//! per benchmark, with the LL/LH/HH classification.

use tenoc_bench::{
    experiments, header, hm_of_percent, hm_of_percent_class, print_speedup_rows, run_suites_par,
    Preset,
};
use tenoc_workloads::TrafficClass;

fn main() {
    header("Figure 7", "speedup of a perfect network over the baseline mesh");
    let scale = experiments::scale_from_env();
    let [base, perfect]: [_; 2] =
        run_suites_par(&[Preset::BaselineTbDor, Preset::Perfect], scale).try_into().unwrap();
    let rows = experiments::speedups_percent(&base, &perfect);
    print_speedup_rows(&rows);
    println!("\nHM speedup (all): {:+.1}%   (paper: 36%)", hm_of_percent(&rows));
    println!(
        "HM speedup (HH):  {:+.1}%   (paper: 87%)",
        hm_of_percent_class(&rows, TrafficClass::HH)
    );
    println!(
        "HM speedup (LL):  {:+.1}%   (paper: low, < 30% per benchmark)",
        hm_of_percent_class(&rows, TrafficClass::LL)
    );
}
