//! Scaling study (the paper's motivation): transistor density grows core
//! counts faster than pins grow MC counts, deepening the many-to-few
//! imbalance. Compare 28 cores (the paper's chip) against 56-core futures
//! built two ways — concentration (2 cores per terminal on the same 6x6
//! mesh) and a bigger 8x8 mesh — all with 8 MCs.

use tenoc_bench::{experiments, header, Preset};
use tenoc_core::system::{IcntConfig, System, SystemConfig};
use tenoc_noc::{Mesh, NetworkConfig, Placement};
use tenoc_workloads::by_name;

fn eight_by_eight() -> NetworkConfig {
    let base = NetworkConfig::baseline_mesh(8);
    // Keep 8 MCs as pins stay scarce.
    let mesh = Mesh::all_full(8);
    let mc_nodes = mesh.top_bottom_mcs(8);
    NetworkConfig { mesh, mc_nodes, ..base }
}

fn checkerboard_8x8() -> NetworkConfig {
    let base = NetworkConfig::checkerboard_mesh(8);
    let mc_nodes = Mesh::checkerboard(8).mcs(Placement::Checkerboard, 8);
    NetworkConfig { mc_nodes, ..base }
}

fn main() {
    header("Scaling study", "28 vs 56 cores over 8 MCs (concentration vs bigger mesh)");
    let scale = experiments::scale_from_env();
    println!(
        "{:>6} {:>26} {:>7} {:>9} {:>11} {:>9}",
        "bench", "configuration", "cores", "IPC", "IPC/core", "MC stall"
    );
    for name in ["MM", "KM", "RD"] {
        let spec = by_name(name).unwrap().scaled(scale);
        let row = |label: &str, cores: usize, cfg: SystemConfig| {
            let mut sys = System::new(cfg, &spec);
            let m = sys.run();
            println!(
                "{name:>6} {label:>26} {cores:>7} {:>9.1} {:>11.2} {:>8.0}%",
                m.ipc,
                m.ipc / cores as f64,
                m.mc_stall_fraction * 100.0
            );
        };
        row("6x6 mesh (paper)", 28, SystemConfig::with_icnt(Preset::BaselineTbDor.icnt(6)));
        let mut conc = SystemConfig::with_icnt(Preset::BaselineTbDor.icnt(6));
        conc.cores_per_node = 2;
        row("6x6 mesh, 2x concentrated", 56, conc);
        row("8x8 mesh", 56, SystemConfig::with_icnt(IcntConfig::Mesh(eight_by_eight())));
        row(
            "8x8 checkerboard CP-CR",
            56,
            SystemConfig::with_icnt(IcntConfig::Mesh(checkerboard_8x8())),
        );
    }
    println!("\nwith pins fixed at 8 MCs, doubling cores mostly deepens the");
    println!("many-to-few bottleneck — per-core throughput falls, and the");
    println!("checkerboard organization keeps paying for memory-bound kernels");
}
