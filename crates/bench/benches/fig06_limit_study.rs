//! Figure 6: limit study — application throughput (and throughput per
//! estimated area) versus the aggregate bandwidth of a zero-latency
//! network, expressed as a fraction of peak off-chip DRAM bandwidth.

use tenoc_bench::{experiments, header, Preset};
use tenoc_core::area::COMPUTE_AREA_MM2;
use tenoc_core::harmonic_mean;
use tenoc_core::presets::bw_limit_flits_per_icnt_cycle;

fn main() {
    header("Figure 6", "bandwidth limit study with a zero-latency network");
    let scale = experiments::scale_from_env();

    // Reference: infinite bandwidth (perfect network).
    let perfect = experiments::run_suite(Preset::Perfect, scale);
    let perfect_hm = harmonic_mean(perfect.iter().map(|r| r.metrics.ipc));

    // The baseline mesh's bisection point: 12 links x 16 B at the marked
    // x = 0.816 of the paper.
    let base_frac = 0.816;
    // NoC area is proportional to the square of channel bandwidth; the
    // baseline (16 B channels at x = 0.816) costs ~90 mm².
    let base_noc_area = 90.0;

    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>14}",
        "x", "flits/iclk", "HM IPC", "norm. IPC", "norm. IPC/mm2"
    );
    let mut max_te = 0.0f64;
    let mut argmax = 0.0;
    for pct in [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2, 1.4, 1.6] {
        let results = experiments::run_suite(Preset::BwLimited(pct), scale);
        let hm = harmonic_mean(results.iter().map(|r| r.metrics.ipc));
        let area = COMPUTE_AREA_MM2 + base_noc_area * (pct / base_frac) * (pct / base_frac);
        let te = hm / area;
        if te > max_te {
            max_te = te;
            argmax = pct;
        }
        println!(
            "{pct:>6.2} {:>12.2} {hm:>10.1} {:>12.3} {:>14.5}",
            bw_limit_flits_per_icnt_cycle(pct, 8),
            hm / perfect_hm,
            te / (perfect_hm / (COMPUTE_AREA_MM2 + base_noc_area)),
        );
    }
    println!("\nthroughput/cost peaks at x = {argmax:.2} (paper: optimum around 0.7-0.8,");
    println!("with x = 0.816 ~= a 16-byte-channel mesh reaching ~93% of infinite bandwidth)");
}
