//! Figure 10: in-network latency reduction of 1-cycle routers over the
//! baseline 4-cycle routers (ratio of mean packet network latencies).

use tenoc_bench::{experiments, header, Preset};

fn main() {
    header("Figure 10", "NoC latency ratio: 1-cycle routers / 4-cycle routers");
    let scale = experiments::scale_from_env();
    let base = experiments::run_suite(Preset::BaselineTbDor, scale);
    let fast = experiments::run_suite(Preset::TbDor1Cycle, scale);
    println!(
        "{:>6} {:>5} {:>10} {:>10} {:>7}",
        "bench", "class", "lat(4cyc)", "lat(1cyc)", "ratio"
    );
    let mut ratios = Vec::new();
    for (b, f) in base.iter().zip(&fast) {
        let ratio = f.metrics.avg_net_latency / b.metrics.avg_net_latency;
        println!(
            "{:>6} {:>5} {:>10.1} {:>10.1} {:>7.2}",
            b.name,
            b.class.to_string(),
            b.metrics.avg_net_latency,
            f.metrics.avg_net_latency,
            ratio
        );
        ratios.push(ratio);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("\nmean latency ratio: {mean:.2} (paper: roughly 0.5-0.9 across benchmarks,");
    println!("yet Figure 9 shows this buys almost no application speedup)");
}
