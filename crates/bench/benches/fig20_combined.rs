//! Figure 20: the combined throughput-effective design (checkerboard
//! placement + routing + double network + 2 injection ports at MCs)
//! versus the baseline top-bottom DOR mesh.

use tenoc_bench::{
    experiments, header, hm_of_percent, hm_of_percent_class, print_speedup_rows, run_suites_par,
    Preset,
};
use tenoc_core::area::AreaModel;
use tenoc_workloads::TrafficClass;

fn main() {
    header("Figure 20", "combined throughput-effective design vs baseline");
    let scale = experiments::scale_from_env();
    let [base, te, single]: [_; 3] = run_suites_par(
        &[Preset::BaselineTbDor, Preset::ThroughputEffective, Preset::CpCr2pSingle],
        scale,
    )
    .try_into()
    .unwrap();
    let rows = experiments::speedups_percent(&base, &te);
    print_speedup_rows(&rows);
    println!("\nHM speedup: {:+.1}% (paper: 17%)", hm_of_percent(&rows));
    println!("HM speedup (HH): {:+.1}%", hm_of_percent_class(&rows, TrafficClass::HH));

    // Throughput-effectiveness improvement (the 25.4% headline): the
    // paper's arithmetic is HM speedup x chip-area ratio
    // (1.17 x 576/537 = 1.254).
    let base_area = AreaModel::chip_area(&Preset::BaselineTbDor.icnt(6));
    let te_area = AreaModel::chip_area(&Preset::ThroughputEffective.icnt(6));
    let hm_ratio = 1.0 + tenoc_bench::hm_of_percent(&rows) / 100.0;
    let improvement = hm_ratio * base_area.total() / te_area.total();
    println!(
        "\nthroughput-effectiveness: HM speedup {:.3} x area ratio {:.3} = {:+.1}%",
        hm_ratio,
        base_area.total() / te_area.total(),
        (improvement - 1.0) * 100.0
    );
    println!("paper: +25.4% IPC/mm^2");

    // The same combination without channel slicing: in this simulator's
    // stricter bandwidth accounting, the 50/50 slice caps saturated reply
    // throughput below the single network (see EXPERIMENTS.md), so the
    // single-network combination better isolates the CP+CR+2P gains.
    let rows_s = experiments::speedups_percent(&base, &single);
    let s_area = AreaModel::chip_area(&Preset::CpCr2pSingle.icnt(6));
    let s_ratio = 1.0 + tenoc_bench::hm_of_percent(&rows_s) / 100.0;
    println!(
        "\nCP-CR-2P on the single 16B network: HM speedup {:+.1}%, IPC/mm^2 {:+.1}%",
        tenoc_bench::hm_of_percent(&rows_s),
        (s_ratio * base_area.total() / s_area.total() - 1.0) * 100.0
    );
}
