//! Figure 17: relative performance of DOR with 4 VCs and checkerboard
//! routing (half-routers) with 4 VCs, both against DOR with 2 VCs — all
//! with the staggered checkerboard MC placement.

use tenoc_bench::{experiments, header, hm_of_percent, run_suites_par, Preset};

fn main() {
    header("Figure 17", "CP-DOR-4VC and CP-CR-4VC relative to CP-DOR-2VC");
    let scale = experiments::scale_from_env();
    let [dor2, dor4, cr4]: [_; 3] =
        run_suites_par(&[Preset::CpDor2vc, Preset::CpDor4vc, Preset::CpCr4vc], scale)
            .try_into()
            .unwrap();
    let rows4 = experiments::speedups_percent(&dor2, &dor4);
    let rowsc = experiments::speedups_percent(&dor2, &cr4);
    println!("{:>6} {:>5} {:>12} {:>12}", "bench", "class", "DOR 4VC", "CR 4VC");
    for (a, c) in rows4.iter().zip(&rowsc) {
        println!("{:>6} {:>5} {:>11.1}% {:>11.1}%", a.0, a.1.to_string(), 100.0 + a.2, 100.0 + c.2);
    }
    let d4 = hm_of_percent(&rows4);
    let cr = hm_of_percent(&rowsc);
    println!("\nHM relative performance: DOR-4VC {:.1}%, CR-4VC {:.1}%", 100.0 + d4, 100.0 + cr);
    println!(
        "CR-4VC vs DOR-4VC (equal buffering): {:+.1}%",
        (100.0 + cr) / (100.0 + d4) * 100.0 - 100.0
    );
    println!("paper: checkerboard routing loses ~1.1% on average while halving");
    println!("the crossbar area of half the routers");
}
