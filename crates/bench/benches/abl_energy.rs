//! Energy extension: throughput-effectiveness generalized to power
//! (IPC/W), using the ORION-class energy model — an extension beyond the
//! paper's area-only analysis.

use tenoc_bench::{experiments, header, Preset};
use tenoc_core::area::AreaModel;
use tenoc_core::system::IcntConfig;
use tenoc_core::PowerModel;
use tenoc_workloads::by_name;

fn main() {
    header("Energy extension", "NoC power of the paper's design points (IPC/W methodology)");
    let scale = experiments::scale_from_env();
    let names = ["HIS", "MM", "KM", "RD"];
    println!(
        "{:>6} {:>18} {:>10} {:>10} {:>10} {:>12}",
        "bench", "design", "IPC", "dyn [W]", "leak [W]", "IPC per W"
    );
    for name in names {
        let spec = by_name(name).unwrap();
        for preset in [Preset::BaselineTbDor, Preset::TbDor2xBw, Preset::CpCr2pSingle] {
            let m = experiments::run_benchmark(preset, &spec, scale);
            let icnt = preset.icnt(6);
            let net = icnt.net();
            let seconds = m.icnt_cycles as f64 / 602e6;
            let dynamic = PowerModel::dynamic_power_w(net, m.flit_hops, seconds);
            let leak = PowerModel::leakage_power_w(&AreaModel::chip_area(&icnt));
            let total = dynamic + leak;
            println!(
                "{name:>6} {:>18} {:>10.1} {:>10.2} {:>10.2} {:>12.1}",
                preset.label(),
                m.ipc,
                dynamic,
                leak,
                m.ipc / total.max(1e-9)
            );
            let _ = matches!(icnt, IcntConfig::Mesh(_));
        }
    }
    println!("\nthe 2x-bandwidth mesh pays quadratic crossbar energy for its speedup;");
    println!("the checkerboard design improves IPC per NoC-watt as well as per mm^2");
}
