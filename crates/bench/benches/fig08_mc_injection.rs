//! Figure 8: perfect-network speedup versus the memory-controller
//! injection rate observed on the perfect network — the correlation that
//! identifies the read-reply path as the bottleneck.

use tenoc_bench::{experiments, header, Preset};

fn main() {
    header("Figure 8", "perfect-NoC speedup vs MC injection rate (flits/cycle/MC)");
    let scale = experiments::scale_from_env();
    let base = experiments::run_suite(Preset::BaselineTbDor, scale);
    let perfect = experiments::run_suite(Preset::Perfect, scale);
    println!("{:>6} {:>5} {:>12} {:>10}", "bench", "class", "MC inj rate", "speedup");
    let mut pts = Vec::new();
    for (b, p) in base.iter().zip(&perfect) {
        let speedup = (p.metrics.ipc / b.metrics.ipc - 1.0) * 100.0;
        let rate = p.metrics.mc_injection_rate;
        println!("{:>6} {:>5} {:>12.3} {:>+9.1}%", b.name, b.class.to_string(), rate, speedup);
        pts.push((rate, speedup));
    }
    // Rank correlation between injection rate and speedup.
    let corr = spearman(&pts);
    println!("\nSpearman rank correlation (rate vs speedup): {corr:.2}");
    println!("paper: speedups are correlated with the MC injection rate");
}

fn spearman(pts: &[(f64, f64)]) -> f64 {
    let rank = |vals: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..vals.len()).collect();
        idx.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).unwrap());
        let mut r = vec![0.0; vals.len()];
        for (rank, &i) in idx.iter().enumerate() {
            r[i] = rank as f64;
        }
        r
    };
    let rx = rank(pts.iter().map(|p| p.0).collect());
    let ry = rank(pts.iter().map(|p| p.1).collect());
    let n = pts.len() as f64;
    let mx = rx.iter().sum::<f64>() / n;
    let my = ry.iter().sum::<f64>() / n;
    let cov: f64 = rx.iter().zip(&ry).map(|(a, b)| (a - mx) * (b - my)).sum();
    let vx: f64 = rx.iter().map(|a| (a - mx) * (a - mx)).sum();
    let vy: f64 = ry.iter().map(|b| (b - my) * (b - my)).sum();
    cov / (vx.sqrt() * vy.sqrt())
}
