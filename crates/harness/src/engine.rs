//! The sweep engine: runs every grid cell on the worker pool and turns
//! results into sealed [`RunRecord`]s.

use crate::grid::{SweepCell, SweepGrid};
use crate::pool::run_indexed;
use crate::record::{RunPerf, RunRecord};
use std::collections::HashMap;
use tenoc_core::area::{throughput_effectiveness, AreaModel};
use tenoc_core::experiments::{run_traced_with_system_config, run_with_system_config};
use tenoc_core::{
    ClockConfig, EngineKind, IcntConfig, PowerModel, RunMetrics, SystemConfig, TelemetryConfig,
};
use tenoc_noc::ArenaNetwork;
use tenoc_simt::TrafficClass;

/// One cell's raw result, before area/power annotation.
#[derive(Clone, Debug)]
pub struct CellResult {
    /// The cell that was run.
    pub cell: SweepCell,
    /// Traffic class of the cell's benchmark.
    pub class: TrafficClass,
    /// Closed-loop metrics.
    pub metrics: RunMetrics,
    /// Wall-clock nanoseconds the simulation took.
    pub wall_nanos: u64,
    /// Telemetry reports when the cell ran with telemetry armed (one per
    /// physical network), empty otherwise.
    pub telemetry: Vec<tenoc_core::TelemetryReport>,
}

/// The fully-resolved system configuration a cell simulates with: the
/// preset's interconnect at the cell's mesh radix, every other parameter
/// at its Table II value, and the cell's private seed. This is the single
/// source of truth for what a cell *is* — the service layer's canonical
/// content hash is computed over it, so it must stay in lockstep with
/// [`run_cell`].
pub fn cell_system_config(cell: &SweepCell) -> SystemConfig {
    let mut cfg = SystemConfig::with_icnt(cell.preset.icnt(cell.mesh_k));
    cfg.seed = cell.seed;
    cfg
}

/// Runs one cell to completion.
///
/// # Panics
///
/// Panics if the benchmark name is unknown or the run hits the safety
/// cycle limit (closed-loop runs must always drain).
pub fn run_cell(cell: &SweepCell) -> CellResult {
    let spec = tenoc_workloads::by_name(&cell.benchmark)
        .unwrap_or_else(|| panic!("unknown benchmark {}", cell.benchmark));
    let cfg = cell_system_config(cell);
    let start = std::time::Instant::now();
    let (metrics, telemetry) = if cell.telemetry {
        run_traced_with_system_config(cfg, &spec, cell.scale, TelemetryConfig::default())
    } else {
        (run_with_system_config(cfg, &spec, cell.scale), Vec::new())
    };
    let wall_nanos = start.elapsed().as_nanos() as u64;
    CellResult { cell: cell.clone(), class: spec.class, metrics, wall_nanos, telemetry }
}

/// Runs every cell of `grid` across `jobs` workers, returning raw results
/// in cell order.
///
/// # Panics
///
/// Propagates panics from [`run_cell`].
pub fn run_grid(grid: &SweepGrid, jobs: usize) -> Vec<CellResult> {
    let cells = grid.cells();
    run_indexed(cells.len(), jobs, |i| run_cell(&cells[i]))
}

/// Runs a sweep and returns sealed records in cell order. Records are
/// bit-identical for any `jobs` value on the same grid.
///
/// # Panics
///
/// Propagates panics from [`run_cell`].
pub fn run_sweep(grid: &SweepGrid, jobs: usize) -> Vec<RunRecord> {
    run_grid(grid, jobs).into_iter().map(|r| annotate(&r)).collect()
}

/// `true` when an interconnect configuration may run on the batched
/// arena engine: a physical network whose shape fits the arena's packed
/// slabs.
pub fn icnt_arena_eligible(icnt: &IcntConfig) -> bool {
    match icnt {
        IcntConfig::Mesh(c) => ArenaNetwork::supports(c),
        IcntConfig::Double(c) => {
            c.channel_bytes.is_multiple_of(2) && ArenaNetwork::supports(&c.slice())
        }
        _ => false,
    }
}

/// The shape-hash batching key over a resolved interconnect: configs
/// whose keys match build identically-dimensioned simulators (same
/// topology, VC layout, buffer depths, ports, clocking) and may run
/// lockstep in one batch. The seed is excluded — batched cells differ in
/// seeds and traffic by design.
pub fn icnt_shape_key(icnt: &IcntConfig) -> String {
    match icnt {
        IcntConfig::Mesh(c) => format!("mesh:{}", c.shape_fingerprint()),
        IcntConfig::Double(c) => format!("double:{}", c.shape_fingerprint()),
        // Ideal networks never reach here (not arena-eligible).
        other => format!("ideal:{other:?}"),
    }
}

/// `true` when a cell may run on the batched arena engine: no telemetry
/// (that needs the oracle's observability hooks) and a physical network
/// whose shape fits the arena's packed slabs.
fn arena_eligible(cell: &SweepCell) -> bool {
    !cell.telemetry && icnt_arena_eligible(&cell.preset.icnt(cell.mesh_k))
}

/// The shape-hash batching key of a sweep cell (see [`icnt_shape_key`]).
fn shape_key(cell: &SweepCell) -> String {
    icnt_shape_key(&cell.preset.icnt(cell.mesh_k))
}

/// The public batching key: `Some(shape)` when the cell may run on the
/// lockstep arena engine, `None` when it must use the per-cell oracle
/// (telemetry armed, ideal network, or a shape the arena cannot pack).
/// Cells with equal keys build identically-dimensioned simulators and may
/// be grouped into one [`run_cells_lockstep`] call — the service layer's
/// scheduler uses this to route same-shape cells through the batched
/// kernel.
pub fn batch_shape_key(cell: &SweepCell) -> Option<String> {
    arena_eligible(cell).then(|| shape_key(cell))
}

/// Runs a set of same-shape cells in lockstep on the arena engine,
/// returning results in input order — metrics bit-identical to
/// [`run_cell`] on each. Each result's wall time is the whole batch's
/// wall time (the cells genuinely co-ran); aggregate throughput is
/// `sum(icnt_cycles) / wall`.
///
/// # Panics
///
/// Panics if a benchmark is unknown, a cell wants telemetry, or a run
/// hits the safety cycle limit.
pub fn run_cells_lockstep(cells: &[SweepCell]) -> Vec<CellResult> {
    let start = std::time::Instant::now();
    let mut systems = Vec::with_capacity(cells.len());
    let mut classes = Vec::with_capacity(cells.len());
    for cell in cells {
        assert!(!cell.telemetry, "telemetry cells must run on the per-cell oracle");
        let spec = tenoc_workloads::by_name(&cell.benchmark)
            .unwrap_or_else(|| panic!("unknown benchmark {}", cell.benchmark));
        let mut cfg = SystemConfig::with_icnt(cell.preset.icnt(cell.mesh_k));
        cfg.seed = cell.seed;
        cfg.engine = EngineKind::Arena;
        classes.push(spec.class);
        systems.push(tenoc_core::System::new(cfg, &spec.scaled(cell.scale)));
    }
    let metrics = tenoc_core::run_lockstep(&mut systems);
    let wall_nanos = start.elapsed().as_nanos() as u64;
    cells
        .iter()
        .zip(metrics)
        .zip(classes)
        .map(|((cell, m), class)| {
            assert!(m.completed, "{} did not complete (possible deadlock)", cell.benchmark);
            CellResult { cell: cell.clone(), class, metrics: m, wall_nanos, telemetry: Vec::new() }
        })
        .collect()
}

/// One unit of work for the batched scheduler: a single cell on the
/// oracle engine, or a same-shape chunk on the lockstep arena engine.
enum WorkUnit {
    Oracle(usize),
    Batch(Vec<usize>),
}

/// Groups cell indices into work units by batching key, preserving cell
/// order within and across groups (first-seen order) so unit composition
/// depends only on the input, never on the thread schedule. Cells with
/// key `None` and singleton shapes go to the per-cell oracle (a
/// singleton gains nothing from the batch path; the oracle kernel is the
/// measured-and-tested default there).
fn plan_units(keys: &[Option<String>], batch: usize) -> Vec<WorkUnit> {
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let mut by_key: HashMap<&str, usize> = HashMap::new();
    let mut singles: Vec<usize> = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        match key {
            Some(k) => {
                let slot = *by_key.entry(k.as_str()).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[slot].push(i);
            }
            None => singles.push(i),
        }
    }
    let mut units: Vec<WorkUnit> = Vec::new();
    for group in groups {
        if group.len() == 1 {
            units.push(WorkUnit::Oracle(group[0]));
        } else {
            for chunk in group.chunks(batch) {
                units.push(WorkUnit::Batch(chunk.to_vec()));
            }
        }
    }
    units.extend(singles.into_iter().map(WorkUnit::Oracle));
    units
}

/// Runs every cell of `grid`, grouping same-shape cells into lockstep
/// batches of at most `batch` cells and falling back to the per-cell
/// oracle for singleton shapes, telemetry cells, and shapes the arena
/// cannot pack. Results are in cell order and bit-identical to
/// [`run_grid`] at any `jobs` and any `batch` width.
///
/// # Panics
///
/// Propagates panics from [`run_cell`] / [`run_cells_lockstep`].
pub fn run_grid_batched(grid: &SweepGrid, jobs: usize, batch: usize) -> Vec<CellResult> {
    let cells = grid.cells();
    if batch <= 1 {
        return run_indexed(cells.len(), jobs, |i| run_cell(&cells[i]));
    }
    let keys: Vec<Option<String>> = cells.iter().map(batch_shape_key).collect();
    let units = plan_units(&keys, batch);

    let produced: Vec<Vec<(usize, CellResult)>> =
        run_indexed(units.len(), jobs, |u| match &units[u] {
            WorkUnit::Oracle(i) => vec![(*i, run_cell(&cells[*i]))],
            WorkUnit::Batch(idxs) => {
                let batch_cells: Vec<SweepCell> = idxs.iter().map(|&i| cells[i].clone()).collect();
                idxs.iter().copied().zip(run_cells_lockstep(&batch_cells)).collect()
            }
        });
    let mut out: Vec<Option<CellResult>> = (0..cells.len()).map(|_| None).collect();
    for (i, result) in produced.into_iter().flatten() {
        out[i] = Some(result);
    }
    out.into_iter().map(|r| r.expect("every cell ran")).collect()
}

/// [`run_sweep`] over the batched scheduler: sealed records in cell
/// order, byte-identical to the unbatched sweep at any `jobs`/`batch`.
///
/// # Panics
///
/// Propagates panics from [`run_grid_batched`].
pub fn run_sweep_batched(grid: &SweepGrid, jobs: usize, batch: usize) -> Vec<RunRecord> {
    run_grid_batched(grid, jobs, batch).into_iter().map(|r| annotate(&r)).collect()
}

/// A closed-loop cell specified by an explicit interconnect
/// configuration rather than a named preset — the unit of work for
/// callers (e.g. the tuner's stage 3) that measure arbitrary design
/// points. Every non-interconnect parameter stays at its Table II value
/// via [`SystemConfig::with_icnt`], exactly like preset cells, so a
/// config cell whose `icnt` equals a preset's produces the same metrics
/// (and shares the same canonical content address in the result cache).
#[derive(Clone, Debug)]
pub struct ConfigCell {
    /// The fully-resolved interconnect to simulate.
    pub icnt: IcntConfig,
    /// Benchmark abbreviation (must exist in `tenoc_workloads`).
    pub benchmark: String,
    /// Workload scale factor.
    pub scale: f64,
    /// The cell's private traffic/workload seed.
    pub seed: u64,
}

/// The fully-resolved system configuration a config cell simulates with
/// (the analogue of [`cell_system_config`] for explicit-config cells).
pub fn config_cell_system_config(cell: &ConfigCell) -> SystemConfig {
    let mut cfg = SystemConfig::with_icnt(cell.icnt.clone());
    cfg.seed = cell.seed;
    cfg
}

/// Runs one config cell to completion on the per-cell oracle engine.
///
/// # Panics
///
/// Panics if the benchmark name is unknown or the run hits the safety
/// cycle limit.
pub fn run_config_cell(cell: &ConfigCell) -> (TrafficClass, RunMetrics) {
    let spec = tenoc_workloads::by_name(&cell.benchmark)
        .unwrap_or_else(|| panic!("unknown benchmark {}", cell.benchmark));
    let metrics = run_with_system_config(config_cell_system_config(cell), &spec, cell.scale);
    (spec.class, metrics)
}

/// The batching key of a config cell: `Some(shape)` when it may run on
/// the lockstep arena engine, `None` when it must use the per-cell
/// oracle.
pub fn config_batch_shape_key(cell: &ConfigCell) -> Option<String> {
    icnt_arena_eligible(&cell.icnt).then(|| icnt_shape_key(&cell.icnt))
}

/// Runs a set of same-shape config cells in lockstep on the arena
/// engine, returning `(class, metrics)` in input order — metrics
/// bit-identical to [`run_config_cell`] on each.
///
/// # Panics
///
/// Panics if a benchmark is unknown or a run hits the safety cycle
/// limit.
pub fn run_config_cells_lockstep(cells: &[ConfigCell]) -> Vec<(TrafficClass, RunMetrics)> {
    let mut systems = Vec::with_capacity(cells.len());
    let mut classes = Vec::with_capacity(cells.len());
    for cell in cells {
        let spec = tenoc_workloads::by_name(&cell.benchmark)
            .unwrap_or_else(|| panic!("unknown benchmark {}", cell.benchmark));
        let mut cfg = config_cell_system_config(cell);
        cfg.engine = EngineKind::Arena;
        classes.push(spec.class);
        systems.push(tenoc_core::System::new(cfg, &spec.scaled(cell.scale)));
    }
    let metrics = tenoc_core::run_lockstep(&mut systems);
    cells
        .iter()
        .zip(metrics)
        .zip(classes)
        .map(|((cell, m), class)| {
            assert!(m.completed, "{} did not complete (possible deadlock)", cell.benchmark);
            (class, m)
        })
        .collect()
}

/// Runs every config cell, grouping same-shape cells into lockstep
/// batches of at most `batch` cells and falling back to the per-cell
/// oracle elsewhere — the explicit-config analogue of
/// [`run_grid_batched`]. Results are in cell order and bit-identical to
/// [`run_config_cell`] on each at any `jobs` and any `batch` width.
///
/// # Panics
///
/// Propagates panics from [`run_config_cell`] /
/// [`run_config_cells_lockstep`].
pub fn run_config_cells(
    cells: &[ConfigCell],
    jobs: usize,
    batch: usize,
) -> Vec<(TrafficClass, RunMetrics)> {
    if batch <= 1 {
        return run_indexed(cells.len(), jobs, |i| run_config_cell(&cells[i]));
    }
    let keys: Vec<Option<String>> = cells.iter().map(config_batch_shape_key).collect();
    let units = plan_units(&keys, batch);
    let produced: Vec<Vec<(usize, (TrafficClass, RunMetrics))>> =
        run_indexed(units.len(), jobs, |u| match &units[u] {
            WorkUnit::Oracle(i) => vec![(*i, run_config_cell(&cells[*i]))],
            WorkUnit::Batch(idxs) => {
                let batch_cells: Vec<ConfigCell> = idxs.iter().map(|&i| cells[i].clone()).collect();
                idxs.iter().copied().zip(run_config_cells_lockstep(&batch_cells)).collect()
            }
        });
    let mut out: Vec<Option<(TrafficClass, RunMetrics)>> = (0..cells.len()).map(|_| None).collect();
    for (i, result) in produced.into_iter().flatten() {
        out[i] = Some(result);
    }
    out.into_iter().map(|r| r.expect("every cell ran")).collect()
}

/// Annotates a raw result with the design point's area/power model and
/// seals the fingerprint.
pub fn annotate(result: &CellResult) -> RunRecord {
    let icnt = result.cell.preset.icnt(result.cell.mesh_k);
    let area = AreaModel::chip_area(&icnt);
    let icnt_hz = ClockConfig::gtx280().icnt_mhz * 1e6;
    let elapsed_s = result.metrics.icnt_cycles as f64 / icnt_hz;
    let power = PowerModel::dynamic_power_w(icnt.net(), result.metrics.flit_hops, elapsed_s);
    let mut record = RunRecord {
        cell: result.cell.index as u64,
        preset: result.cell.preset.label(),
        benchmark: result.cell.benchmark.clone(),
        class: result.class.to_string(),
        scale: result.cell.scale,
        seed: result.cell.seed,
        metrics: result.metrics,
        noc_area_mm2: area.noc(),
        chip_area_mm2: area.total(),
        ipc_per_mm2: throughput_effectiveness(result.metrics.ipc, &area),
        noc_dynamic_power_w: power,
        fingerprint: String::new(),
        perf: RunPerf::measure(result.metrics.icnt_cycles, result.wall_nanos),
        telemetry: if result.telemetry.is_empty() { None } else { Some(result.telemetry.clone()) },
    };
    record.seal();
    record
}

/// The cache hook: seals a record for `cell` from a previously-measured
/// `(class, metrics)` pair without re-simulating. Because wall time and
/// telemetry ride the record's non-serialized side channel, the resulting
/// record is byte-identical to the one [`run_cell`] + [`annotate`] would
/// have produced for the same cell — which is what lets a result cache
/// substitute for simulation without perturbing golden snapshots.
pub fn annotate_cached(cell: &SweepCell, class: TrafficClass, metrics: RunMetrics) -> RunRecord {
    annotate(&CellResult {
        cell: cell.clone(),
        class,
        metrics,
        wall_nanos: 0,
        telemetry: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::SeedMode;
    use tenoc_core::Preset;

    fn tiny() -> SweepGrid {
        SweepGrid::new(
            vec![Preset::BaselineTbDor, Preset::Perfect],
            vec!["HIS".into(), "MM".into()],
            0.02,
        )
    }

    #[test]
    fn sweep_runs_every_cell_in_order() {
        let records = run_sweep(&tiny(), 2);
        assert_eq!(records.len(), 4);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.cell, i as u64);
            assert!(r.metrics.completed);
            assert!(r.metrics.ipc > 0.0);
            assert!(r.fingerprint_valid());
        }
        assert_eq!(records[0].preset, "TB-DOR");
        assert_eq!(records[3].preset, "Perfect");
    }

    #[test]
    fn cached_annotation_is_byte_identical_to_simulation() {
        let grid = SweepGrid::new(vec![Preset::BaselineTbDor], vec!["HIS".into()], 0.02);
        let cell = grid.cell(0);
        let result = run_cell(&cell);
        let direct = annotate(&result);
        let cached = annotate_cached(&cell, result.class, result.metrics);
        assert_eq!(cached, direct);
        assert_eq!(
            crate::record::to_jsonl(std::slice::from_ref(&cached)),
            crate::record::to_jsonl(std::slice::from_ref(&direct))
        );
    }

    #[test]
    fn shape_key_batches_same_shape_cells_only() {
        let grid = SweepGrid::new(
            vec![Preset::BaselineTbDor, Preset::ThroughputEffective, Preset::Perfect],
            vec!["HIS".into(), "MM".into()],
            0.02,
        );
        let cells = grid.cells();
        // Same preset, different benchmark/seed: same shape.
        assert_eq!(batch_shape_key(&cells[0]), batch_shape_key(&cells[1]));
        assert!(batch_shape_key(&cells[0]).is_some());
        // Different fabric: different shape.
        assert_ne!(batch_shape_key(&cells[0]), batch_shape_key(&cells[2]));
        // Ideal networks cannot batch.
        assert_eq!(batch_shape_key(&cells[4]), None);
        // Telemetry forces the oracle.
        let mut t = cells[0].clone();
        t.telemetry = true;
        assert_eq!(batch_shape_key(&t), None);
    }

    #[test]
    fn config_cell_matches_preset_cell_and_batches_identically() {
        // A config cell resolved from a preset must measure exactly what
        // the preset cell measures — this is what lets the tuner share
        // cache entries with preset sweeps.
        let grid = SweepGrid::new(vec![Preset::BaselineTbDor], vec!["HIS".into()], 0.02);
        let cell = grid.cell(0);
        let cfg_cell = ConfigCell {
            icnt: cell.preset.icnt(cell.mesh_k),
            benchmark: cell.benchmark.clone(),
            scale: cell.scale,
            seed: cell.seed,
        };
        let preset_result = run_cell(&cell);
        let (class, metrics) = run_config_cell(&cfg_cell);
        assert_eq!(class, preset_result.class);
        assert_eq!(metrics, preset_result.metrics);
        assert_eq!(config_batch_shape_key(&cfg_cell), batch_shape_key(&cell));

        // Same-shape config cells batched through the lockstep kernel
        // are bit-identical to solo runs, at any jobs/batch.
        let mut b = cfg_cell.clone();
        b.benchmark = "MM".into();
        b.seed = cfg_cell.seed ^ 0x5bd1;
        let cells = vec![cfg_cell.clone(), b.clone()];
        let solo: Vec<_> = cells.iter().map(run_config_cell).collect();
        let batched = run_config_cells(&cells, 2, 8);
        assert_eq!(solo, batched);
    }

    #[test]
    fn ideal_networks_report_zero_noc_power() {
        let grid = SweepGrid::new(vec![Preset::Perfect], vec!["HIS".into()], 0.02);
        let r = &run_sweep(&grid, 1)[0];
        assert_eq!(r.metrics.flit_hops, 0);
        assert_eq!(r.noc_dynamic_power_w, 0.0);
    }

    #[test]
    fn fixed_seed_reproduces_the_default_system_seed() {
        // The engine with a fixed 0x7e0c seed must agree with the plain
        // sequential runner the benches used before.
        let grid = tiny().with_seed_mode(SeedMode::Fixed(0x7e0c));
        let engine = run_grid(&grid, 2);
        let spec = tenoc_workloads::by_name("HIS").unwrap();
        let direct = run_with_system_config(
            SystemConfig::with_icnt(Preset::BaselineTbDor.icnt(6)),
            &spec,
            0.02,
        );
        assert_eq!(engine[0].metrics, direct);
    }
}
